"""Waveform synthesis and slot recovery."""

import numpy as np
import pytest

from repro.phy import (
    LedModel,
    LinkGeometry,
    SlotSampler,
    WaveformSynthesizer,
    calibrated_channel,
)


SLOTS = [True, False, True, True, False, False, True, False]


class TestSynthesis:
    def test_drive_waveform_oversamples(self, config):
        synth = WaveformSynthesizer(config)
        drive = synth.drive_waveform(SLOTS)
        assert drive.size == len(SLOTS) * config.oversampling
        assert set(np.unique(drive)) <= {0.0, 1.0}

    def test_emitted_waveform_is_filtered(self, config):
        synth = WaveformSynthesizer(config)
        light = synth.emitted_waveform(SLOTS)
        assert light.max() <= 1.0
        assert 0.9 < light.max()  # settles within a slot
        # The first sample of an ON slot is below the settled value.
        assert light[0] < light[config.oversampling - 1]

    def test_received_samples_have_ambient_pedestal(self, config, channel, rng):
        synth = WaveformSynthesizer(config)
        samples = synth.received_samples(
            [False] * 32, channel, LinkGeometry.on_axis(3.0), 0.8, rng)
        pedestal = channel.photodiode.ambient_current(0.8)
        assert samples.mean() == pytest.approx(pedestal, rel=0.05)


class TestDefaultAdc:
    def test_short_range_does_not_clip(self, config, channel, rng):
        # Regression: the full scale used to be pinned to a 0.5 m link,
        # so a 0.3 m receiver pushed its signal peaks past the ADC and
        # they were silently flattened.
        geometry = LinkGeometry.on_axis(0.3)
        synth = WaveformSynthesizer(config)
        adc = synth.default_adc(channel, geometry, 1.0)
        pd = channel.photodiode
        old_span = (pd.ambient_current(1.0) + pd.signal_current(
            channel.optics.received_power_w(LinkGeometry.on_axis(0.5))))
        # The 0.3 m operating point genuinely exceeds the old span...
        assert (pd.ambient_current(1.0) + pd.signal_current(
            channel.optics.received_power_w(geometry))) > old_span
        # ...and the derived ADC covers it: no sample saturates.
        samples = synth.received_samples(SLOTS, channel, geometry, 1.0, rng)
        assert samples.max() < adc.full_scale - adc.lsb
        assert SlotSampler(config).decide(samples, len(SLOTS)) == SLOTS

    def test_span_tracks_ambient(self, config, channel):
        synth = WaveformSynthesizer(config)
        geometry = LinkGeometry.on_axis(2.0)
        dark = synth.default_adc(channel, geometry, 0.0)
        bright = synth.default_adc(channel, geometry, 1.0)
        assert bright.full_scale > dark.full_scale
        assert dark.full_scale > 0


class TestSlotSampler:
    def _samples(self, config, amplitude=1.0):
        synth = WaveformSynthesizer(config, led=LedModel(1e-7, 1e-7))
        return amplitude * synth.drive_waveform(SLOTS)

    def test_recovers_clean_slots(self, config):
        sampler = SlotSampler(config)
        samples = self._samples(config)
        assert sampler.decide(samples, len(SLOTS)) == SLOTS

    def test_offset_alignment(self, config):
        sampler = SlotSampler(config)
        samples = np.concatenate([np.zeros(7), self._samples(config)])
        got = sampler.decide(samples, len(SLOTS), offset=7)
        assert got == SLOTS

    def test_survives_moderate_noise(self, config, rng):
        sampler = SlotSampler(config)
        samples = self._samples(config) + rng.normal(0, 0.15,
                                                     len(SLOTS) * 4)
        assert sampler.decide(samples, len(SLOTS)) == SLOTS

    def test_explicit_threshold(self, config):
        sampler = SlotSampler(config)
        samples = self._samples(config, amplitude=2.0)
        assert sampler.decide(samples, len(SLOTS), threshold=1.0) == SLOTS

    def test_insufficient_samples_rejected(self, config):
        sampler = SlotSampler(config)
        with pytest.raises(ValueError):
            sampler.slot_means(np.zeros(10), 8)

    def test_empty_threshold_rejected(self, config):
        sampler = SlotSampler(config)
        with pytest.raises(ValueError):
            sampler.threshold(np.array([]))

    def test_guard_fraction_validation(self, config):
        with pytest.raises(ValueError):
            SlotSampler(config, guard_fraction=0.0)

    def test_tail_bias_shifts_window_towards_settled_tail(self, config):
        # One slot whose samples ramp up (the LED settling): a biased
        # window must average later — higher — samples than a centred one.
        ramp = np.arange(float(config.oversampling))
        biased = SlotSampler(config, tail_bias=1).slot_means(ramp, 1)
        centred = SlotSampler(config, tail_bias=0).slot_means(ramp, 1)
        assert biased[0] > centred[0]

    def test_tail_bias_clamped_to_slot(self, config):
        # A huge bias cannot push the window past the slot boundary.
        ramp = np.arange(float(config.oversampling))
        huge = SlotSampler(config, tail_bias=1000).slot_means(ramp, 1)
        keep = max(1, round(config.oversampling * 0.5))
        expected = ramp[config.oversampling - keep:].mean()
        assert huge[0] == pytest.approx(expected)

    def test_tail_bias_noop_with_full_window(self, config):
        # guard_fraction=1.0 keeps every sample, so there is nowhere to
        # shift to; bias must be a documented no-op there.
        ramp = np.arange(float(config.oversampling))
        full = SlotSampler(config, guard_fraction=1.0, tail_bias=3)
        assert full.slot_means(ramp, 1)[0] == pytest.approx(ramp.mean())

    def test_tail_bias_validation(self, config):
        with pytest.raises(ValueError):
            SlotSampler(config, tail_bias=-1)


class TestEndToEndConsistency:
    def test_waveform_ser_small_at_short_range(self, config, rng):
        """The waveform pipeline agrees with the analytic model's
        regime: essentially error-free at 2 m, broken at 7 m."""
        channel = calibrated_channel(config)
        synth = WaveformSynthesizer(config)
        sampler = SlotSampler(config)
        slots = [bool((i * 7) % 3) for i in range(400)]

        near = synth.received_samples(slots, channel,
                                      LinkGeometry.on_axis(2.0), 1.0, rng)
        errors_near = sum(a != b for a, b in
                          zip(slots, sampler.decide(near, len(slots))))
        assert errors_near == 0

        far = synth.received_samples(slots, channel,
                                     LinkGeometry.on_axis(7.0), 1.0, rng)
        errors_far = sum(a != b for a, b in
                         zip(slots, sampler.decide(far, len(slots))))
        assert errors_far > 0
