"""Waveform synthesis and slot recovery."""

import numpy as np
import pytest

from repro.core import SystemConfig
from repro.phy import (
    LedModel,
    LinkGeometry,
    SlotSampler,
    WaveformSynthesizer,
    calibrated_channel,
)


SLOTS = [True, False, True, True, False, False, True, False]


class TestSynthesis:
    def test_drive_waveform_oversamples(self, config):
        synth = WaveformSynthesizer(config)
        drive = synth.drive_waveform(SLOTS)
        assert drive.size == len(SLOTS) * config.oversampling
        assert set(np.unique(drive)) <= {0.0, 1.0}

    def test_emitted_waveform_is_filtered(self, config):
        synth = WaveformSynthesizer(config)
        light = synth.emitted_waveform(SLOTS)
        assert light.max() <= 1.0
        assert 0.9 < light.max()  # settles within a slot
        # The first sample of an ON slot is below the settled value.
        assert light[0] < light[config.oversampling - 1]

    def test_received_samples_have_ambient_pedestal(self, config, channel, rng):
        synth = WaveformSynthesizer(config)
        samples = synth.received_samples(
            [False] * 32, channel, LinkGeometry.on_axis(3.0), 0.8, rng)
        pedestal = channel.photodiode.ambient_current(0.8)
        assert samples.mean() == pytest.approx(pedestal, rel=0.05)


class TestSlotSampler:
    def _samples(self, config, amplitude=1.0):
        synth = WaveformSynthesizer(config, led=LedModel(1e-7, 1e-7))
        return amplitude * synth.drive_waveform(SLOTS)

    def test_recovers_clean_slots(self, config):
        sampler = SlotSampler(config)
        samples = self._samples(config)
        assert sampler.decide(samples, len(SLOTS)) == SLOTS

    def test_offset_alignment(self, config):
        sampler = SlotSampler(config)
        samples = np.concatenate([np.zeros(7), self._samples(config)])
        got = sampler.decide(samples, len(SLOTS), offset=7)
        assert got == SLOTS

    def test_survives_moderate_noise(self, config, rng):
        sampler = SlotSampler(config)
        samples = self._samples(config) + rng.normal(0, 0.15,
                                                     len(SLOTS) * 4)
        assert sampler.decide(samples, len(SLOTS)) == SLOTS

    def test_explicit_threshold(self, config):
        sampler = SlotSampler(config)
        samples = self._samples(config, amplitude=2.0)
        assert sampler.decide(samples, len(SLOTS), threshold=1.0) == SLOTS

    def test_insufficient_samples_rejected(self, config):
        sampler = SlotSampler(config)
        with pytest.raises(ValueError):
            sampler.slot_means(np.zeros(10), 8)

    def test_empty_threshold_rejected(self, config):
        sampler = SlotSampler(config)
        with pytest.raises(ValueError):
            sampler.threshold(np.array([]))

    def test_guard_fraction_validation(self, config):
        with pytest.raises(ValueError):
            SlotSampler(config, guard_fraction=0.0)


class TestEndToEndConsistency:
    def test_waveform_ser_small_at_short_range(self, config, rng):
        """The waveform pipeline agrees with the analytic model's
        regime: essentially error-free at 2 m, broken at 7 m."""
        channel = calibrated_channel(config)
        synth = WaveformSynthesizer(config)
        sampler = SlotSampler(config)
        slots = [bool((i * 7) % 3) for i in range(400)]

        near = synth.received_samples(slots, channel,
                                      LinkGeometry.on_axis(2.0), 1.0, rng)
        errors_near = sum(a != b for a, b in
                          zip(slots, sampler.decide(near, len(slots))))
        assert errors_near == 0

        far = synth.received_samples(slots, channel,
                                     LinkGeometry.on_axis(7.0), 1.0, rng)
        errors_far = sum(a != b for a, b in
                         zip(slots, sampler.decide(far, len(slots))))
        assert errors_far > 0
