"""Gilbert-Elliott burst/shadowing channel."""

import numpy as np
import pytest

from repro.core import SlotErrorModel
from repro.phy import GilbertElliottChannel


@pytest.fixture()
def channel(paper_errors):
    return GilbertElliottChannel(good=paper_errors,
                                 p_good_to_bad=1e-3, p_bad_to_good=1e-2)


class TestChain:
    def test_steady_state(self, channel):
        assert channel.steady_state_bad_fraction == pytest.approx(
            1e-3 / (1e-3 + 1e-2))

    def test_mean_burst_length(self, channel):
        assert channel.mean_burst_slots == pytest.approx(100.0)

    def test_state_sequence_statistics(self, channel, rng):
        states = channel.state_sequence(200_000, rng)
        assert states.mean() == pytest.approx(
            channel.steady_state_bad_fraction, rel=0.2)

    def test_states_are_bursty(self, channel, rng):
        states = channel.state_sequence(100_000, rng)
        # Count transitions: a bursty process has far fewer transitions
        # than an i.i.d. process with the same marginal.
        transitions = int(np.sum(states[1:] != states[:-1]))
        marginal = states.mean()
        iid_expected = 2 * marginal * (1 - marginal) * (states.size - 1)
        assert transitions < 0.5 * iid_expected

    def test_start_state_respected(self, channel, rng):
        states = channel.state_sequence(10, rng, start_bad=True)
        assert states[0]

    def test_empty_sequence(self, channel, rng):
        assert channel.state_sequence(0, rng).size == 0

    def test_validation(self, paper_errors):
        with pytest.raises(ValueError):
            GilbertElliottChannel(good=paper_errors, p_good_to_bad=0.0)
        with pytest.raises(ValueError):
            GilbertElliottChannel(good=paper_errors, p_bad_to_good=1.5)


class TestCorruption:
    def test_shadowed_slots_flip_often(self, rng):
        channel = GilbertElliottChannel(
            good=SlotErrorModel.ideal(),
            p_good_to_bad=0.05, p_bad_to_good=0.05)
        slots = [True] * 50_000
        corrupted, shadow = channel.corrupt(slots, rng)
        flipped = np.asarray([a != b for a, b in zip(slots, corrupted)])
        assert flipped[shadow].mean() == pytest.approx(0.5, abs=0.05)
        assert flipped[~shadow].sum() == 0

    def test_average_model_matches_long_run(self, rng):
        channel = GilbertElliottChannel(
            good=SlotErrorModel(1e-4, 1e-4),
            p_good_to_bad=2e-3, p_bad_to_good=2e-2)
        avg = channel.average_error_model()
        slots = [True] * 300_000
        corrupted, _ = channel.corrupt(slots, rng)
        rate = sum(1 for a, b in zip(slots, corrupted) if a != b) / len(slots)
        assert rate == pytest.approx(avg.p_on_error, rel=0.25)


class TestBurstVsIid:
    def test_bursts_lose_fewer_frames_than_iid(self, config, rng):
        """Same long-run slot error rate, fewer corrupted frames: the
        interleaving argument the module docstring makes."""
        from repro.link import Receiver, Transmitter, corrupt_slots
        from repro.schemes import AmppmScheme
        from repro.link.frame import FrameError

        tx, rx = Transmitter(config), Receiver(config)
        design = AmppmScheme(config).design(0.5)
        frame = tx.encode_frame(bytes(64), design)

        channel = GilbertElliottChannel(
            good=SlotErrorModel.ideal(),
            p_good_to_bad=2e-4, p_bad_to_good=5e-3)
        iid = channel.average_error_model()

        def loss_rate(corruptor) -> float:
            losses = 0
            for _ in range(80):
                try:
                    rx.decode_frame(corruptor(frame))
                except FrameError:
                    losses += 1
            return losses / 80

        burst_losses = loss_rate(lambda f: channel.corrupt(list(f), rng)[0])
        iid_losses = loss_rate(lambda f: corrupt_slots(list(f), iid, rng))
        assert burst_losses <= iid_losses
