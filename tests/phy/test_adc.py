"""ADC quantisation and clipping."""

import numpy as np
import pytest

from repro.phy import AdcModel


class TestQuantisation:
    def test_levels(self):
        assert AdcModel(bits=12).levels == 4096
        assert AdcModel(bits=8).levels == 256

    def test_codes_bounded(self):
        adc = AdcModel(bits=8, full_scale=1.0)
        signal = np.linspace(-0.5, 1.5, 100)
        codes = adc.quantize(signal)
        assert codes.min() == 0
        assert codes.max() == 255

    def test_quantisation_error_within_half_lsb(self):
        adc = AdcModel(bits=10, full_scale=1.0)
        signal = np.linspace(0.0, 1.0, 1000)
        recon = adc.convert(signal)
        assert np.abs(recon - signal).max() <= adc.lsb / 2 + 1e-12

    def test_monotone(self):
        adc = AdcModel(bits=6, full_scale=2.0)
        signal = np.linspace(0.0, 2.0, 500)
        codes = adc.quantize(signal)
        assert np.all(np.diff(codes) >= 0)

    def test_to_analog_inverts_scaling(self):
        adc = AdcModel(bits=12, full_scale=1e-5)
        assert adc.to_analog(np.array([adc.levels - 1]))[0] == pytest.approx(1e-5)

    def test_validation(self):
        with pytest.raises(ValueError):
            AdcModel(bits=0)
        with pytest.raises(ValueError):
            AdcModel(full_scale=0.0)
        with pytest.raises(ValueError):
            AdcModel(sample_rate_hz=-1.0)
