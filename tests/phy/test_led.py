"""LED edge dynamics and the 8 us slot-time justification."""

import numpy as np
import pytest

from repro.phy import LedModel


class TestSlotTimeBound:
    def test_paper_slot_time_settles(self):
        # The default time constants justify t_slot = 8 us: an isolated
        # ON slot reaches ~98% of full swing.
        led = LedModel()
        assert led.min_slot_time() <= 8e-6
        assert led.settled_amplitude(8e-6) >= 0.98

    def test_faster_led_allows_shorter_slots(self):
        slow = LedModel(rise_tau_s=2e-6, fall_tau_s=2e-6)
        fast = LedModel(rise_tau_s=0.2e-6, fall_tau_s=0.2e-6)
        assert fast.min_slot_time() < slow.min_slot_time()


class TestFilter:
    def test_step_response_is_exponential(self):
        led = LedModel(rise_tau_s=2e-6, fall_tau_s=2e-6)
        fs = 10e6
        drive = np.ones(200)
        out = led.apply(drive, fs)
        t = (np.arange(200) + 1) / fs
        expected = 1.0 - np.exp(-t / 2e-6)
        assert np.allclose(out, expected, atol=0.01)

    def test_output_bounded_by_drive(self):
        led = LedModel()
        rng = np.random.default_rng(3)
        drive = (rng.random(500) > 0.5).astype(float)
        out = led.apply(drive, 500e3)
        assert np.all(out >= -1e-12)
        assert np.all(out <= 1.0 + 1e-12)

    def test_short_slots_distort(self):
        # At 4x oversampling of 8 us slots the waveform is clean; with
        # 1 us slots the LED never settles (the paper's distortion).
        led = LedModel()
        pattern = np.repeat([1.0, 0.0, 1.0, 0.0, 1.0], 4)
        clean = led.apply(pattern, 500e3)       # 2 us samples, 8 us slots
        fast = led.apply(pattern, 4e6)          # 8x faster slots
        assert clean.max() > 0.95
        assert fast.max() < 0.8

    def test_asymmetric_rise_fall(self):
        led = LedModel(rise_tau_s=4e-6, fall_tau_s=1e-6)
        fs = 500e3
        up = led.apply(np.ones(4), fs)[-1]
        down = 1.0 - led.apply(np.zeros(4), fs, initial=1.0)[-1]
        assert down > up  # faster fall gets further in the same time

    def test_initial_state(self):
        led = LedModel()
        out = led.apply(np.zeros(10), 500e3, initial=1.0)
        assert out[0] < 1.0
        assert out[-1] < out[0]

    def test_validation(self):
        with pytest.raises(ValueError):
            LedModel(rise_tau_s=0.0)
        with pytest.raises(ValueError):
            LedModel().apply(np.ones(4), 0.0)
        with pytest.raises(ValueError):
            LedModel().min_slot_time(1.0)
        with pytest.raises(ValueError):
            LedModel().settled_amplitude(0.0)
