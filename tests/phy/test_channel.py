"""The calibrated link budget: geometry/ambient → slot error model."""

import pytest

from repro.phy import (
    REFERENCE_DISTANCE_M,
    LinkGeometry,
    VlcChannel,
    q_function,
    q_inverse,
)


class TestQFunction:
    def test_known_values(self):
        assert q_function(0.0) == pytest.approx(0.5)
        assert q_function(1.6448536) == pytest.approx(0.05, rel=1e-4)

    def test_inverse(self):
        for p in (0.5, 0.1, 1e-3, 9e-5, 1e-9):
            assert q_function(q_inverse(p)) == pytest.approx(p, rel=1e-6)

    def test_inverse_domain(self):
        with pytest.raises(ValueError):
            q_inverse(0.6)
        with pytest.raises(ValueError):
            q_inverse(0.0)


class TestCalibration:
    def test_reference_point_exact(self, channel, config):
        model = channel.slot_error_model(
            LinkGeometry.on_axis(REFERENCE_DISTANCE_M), 1.0)
        assert model.p_off_error == pytest.approx(config.p_off_error, rel=1e-6)
        assert model.p_on_error == pytest.approx(config.p_on_error, rel=1e-6)

    def test_p1_exceeds_p2(self, channel):
        # The paper measured P1 > P2; the calibrated threshold sits
        # slightly below mid-swing to reproduce that.
        assert channel.threshold_fraction < 0.5
        model = channel.slot_error_model(LinkGeometry.on_axis(3.0), 1.0)
        assert model.p_off_error > model.p_on_error


class TestDistanceBehaviour:
    def test_errors_grow_with_distance(self, channel):
        errors = [channel.slot_error_model(LinkGeometry.on_axis(d), 1.0)
                  .p_off_error for d in (1.0, 2.0, 3.0, 4.0, 5.0)]
        assert errors == sorted(errors)

    def test_cliff_after_reference(self, channel):
        near = channel.slot_error_model(LinkGeometry.on_axis(3.0), 1.0)
        far = channel.slot_error_model(LinkGeometry.on_axis(5.0), 1.0)
        assert near.p_off_error < 1e-6
        assert far.p_off_error > 1e-2

    def test_outside_fov_is_coinflip(self, channel):
        geometry = LinkGeometry(2.0, 0.0, channel.optics.rx_fov_deg + 5.0)
        model = channel.slot_error_model(geometry, 1.0)
        assert model.p_off_error == 0.5
        assert model.p_on_error == 0.5


class TestAmbientBehaviour:
    def test_more_ambient_more_noise(self, channel):
        g = LinkGeometry.on_axis(3.6)
        dark = channel.slot_error_model(g, 0.1)
        bright = channel.slot_error_model(g, 1.0)
        assert dark.p_off_error < bright.p_off_error

    def test_snr_definition(self, channel):
        g = LinkGeometry.on_axis(REFERENCE_DISTANCE_M)
        snr = channel.snr(g, 1.0)
        # Calibration pins the swing at z_off/t + ... ≈ 7.5 sigma.
        assert snr == pytest.approx(7.5, abs=0.2)


class TestValidation:
    def test_threshold_fraction_range(self):
        with pytest.raises(ValueError):
            VlcChannel(threshold_fraction=0.0)
        with pytest.raises(ValueError):
            VlcChannel(threshold_fraction=1.0)
