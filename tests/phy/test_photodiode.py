"""Photodiode responsivity and calibrated noise."""

import numpy as np
import pytest

from repro.phy import PhotodiodeModel


class TestConversion:
    def test_responsivity(self):
        pd = PhotodiodeModel(responsivity_a_per_w=0.62)
        assert pd.signal_current(1e-6) == pytest.approx(0.62e-6)

    def test_ambient_pedestal(self):
        pd = PhotodiodeModel(ambient_full_current_a=5e-6)
        assert pd.ambient_current(0.5) == pytest.approx(2.5e-6)
        assert pd.ambient_current(0.0) == 0.0

    def test_negative_power_rejected(self):
        with pytest.raises(ValueError):
            PhotodiodeModel().signal_current(-1.0)


class TestNoise:
    def test_noise_grows_with_ambient(self):
        pd = PhotodiodeModel(thermal_noise_a=1e-8, ambient_noise_gain=1e-8)
        assert pd.noise_sigma(1.0) > pd.noise_sigma(0.0)

    def test_thermal_floor(self):
        pd = PhotodiodeModel(thermal_noise_a=1e-8, ambient_noise_gain=1e-8)
        assert pd.noise_sigma(0.0) == pytest.approx(1e-8)

    def test_ambient_range_validated(self):
        with pytest.raises(ValueError):
            PhotodiodeModel().noise_sigma(1.5)
        with pytest.raises(ValueError):
            PhotodiodeModel().ambient_current(-0.1)


class TestReceive:
    def test_statistics_match_model(self, rng):
        pd = PhotodiodeModel(thermal_noise_a=1e-8, ambient_noise_gain=0.0,
                             ambient_full_current_a=5e-6)
        waveform = np.full(200_000, 2e-6)
        out = pd.receive(waveform, ambient=0.4, rng=rng)
        expected_mean = 0.62 * 2e-6 + 0.4 * 5e-6
        assert out.mean() == pytest.approx(expected_mean, rel=1e-3)
        assert out.std() == pytest.approx(1e-8, rel=0.02)

    def test_noiseless_is_deterministic(self, rng):
        pd = PhotodiodeModel(thermal_noise_a=0.0, ambient_noise_gain=0.0)
        waveform = np.linspace(0.0, 1e-6, 32)
        out = pd.receive(waveform, ambient=0.0, rng=rng)
        assert np.allclose(out, 0.62 * waveform)

    def test_validation(self):
        with pytest.raises(ValueError):
            PhotodiodeModel(responsivity_a_per_w=0.0)
        with pytest.raises(ValueError):
            PhotodiodeModel(thermal_noise_a=-1.0)
