"""Lambertian propagation geometry."""

import math

import pytest

from repro.phy import LinkGeometry, OpticalFrontEnd


class TestLambertianOrder:
    def test_60_degree_semi_angle_is_order_one(self):
        fe = OpticalFrontEnd(semi_angle_deg=60.0)
        assert fe.lambertian_order == pytest.approx(1.0)

    def test_narrow_beam_high_order(self):
        fe = OpticalFrontEnd(semi_angle_deg=15.0)
        assert fe.lambertian_order == pytest.approx(
            -math.log(2) / math.log(math.cos(math.radians(15))))
        assert fe.lambertian_order > 15


class TestChannelGain:
    def test_inverse_square_law(self):
        fe = OpticalFrontEnd()
        g1 = fe.channel_gain(LinkGeometry.on_axis(1.0))
        g2 = fe.channel_gain(LinkGeometry.on_axis(2.0))
        assert g1 / g2 == pytest.approx(4.0)

    def test_gain_decreases_off_axis(self):
        fe = OpticalFrontEnd()
        on = fe.channel_gain(LinkGeometry.on_arc(2.0, 0.0))
        off = fe.channel_gain(LinkGeometry.on_arc(2.0, 10.0))
        assert off < on

    def test_fov_cutoff(self):
        fe = OpticalFrontEnd(rx_fov_deg=30.0)
        inside = fe.channel_gain(LinkGeometry(2.0, 0.0, 29.0))
        outside = fe.channel_gain(LinkGeometry(2.0, 0.0, 31.0))
        assert inside > 0.0
        assert outside == 0.0

    def test_cosine_receiver_factor(self):
        fe = OpticalFrontEnd(semi_angle_deg=60.0)
        on = fe.channel_gain(LinkGeometry(2.0, 0.0, 0.0))
        tilted = fe.channel_gain(LinkGeometry(2.0, 0.0, 60.0))
        assert tilted / on == pytest.approx(math.cos(math.radians(60.0)),
                                            rel=1e-9)

    def test_received_power_scales_with_tx_power(self):
        geometry = LinkGeometry.on_axis(3.0)
        weak = OpticalFrontEnd(tx_power_w=1.0).received_power_w(geometry)
        strong = OpticalFrontEnd(tx_power_w=4.7).received_power_w(geometry)
        assert strong / weak == pytest.approx(4.7)


class TestGeometry:
    def test_on_arc_couples_angles(self):
        g = LinkGeometry.on_arc(2.3, 12.0)
        assert g.irradiance_angle_deg == g.incidence_angle_deg == 12.0

    def test_validation(self):
        with pytest.raises(ValueError):
            LinkGeometry(0.0)
        with pytest.raises(ValueError):
            LinkGeometry(1.0, 90.0)
        with pytest.raises(ValueError):
            LinkGeometry(1.0, 0.0, -5.0)

    def test_front_end_validation(self):
        with pytest.raises(ValueError):
            OpticalFrontEnd(tx_power_w=0.0)
        with pytest.raises(ValueError):
            OpticalFrontEnd(semi_angle_deg=90.0)
        with pytest.raises(ValueError):
            OpticalFrontEnd(rx_area_m2=-1.0)
