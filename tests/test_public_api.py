"""The package's public surface: exports, docstrings, version."""

import importlib
import inspect

import pytest

import repro

SUBPACKAGES = ("repro.core", "repro.baselines", "repro.phy", "repro.link",
               "repro.lighting", "repro.sim", "repro.des", "repro.net",
               "repro.resilience", "repro.obs", "repro.serve",
               "repro.scenarios", "repro.experiments")


class TestTopLevel:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_symbols_present(self):
        # The README quickstart must keep working.
        assert callable(repro.AmppmScheme)
        assert callable(repro.SystemConfig)
        assert callable(repro.standard_schemes)


class TestSubpackages:
    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_importable(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} lacks a module docstring"

    @pytest.mark.parametrize("module_name", SUBPACKAGES[:-1])
    def test_all_exports_resolve(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module_name}.{name}"

    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_public_classes_documented(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            obj = getattr(module, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                assert obj.__doc__, f"{module_name}.{name} lacks a docstring"


class TestPublicMethodDocstrings:
    @pytest.mark.parametrize("cls_path", [
        "repro.core.AmppmDesigner",
        "repro.core.SuperSymbol",
        "repro.core.SymbolPattern",
        "repro.link.Receiver",
        "repro.link.Transmitter",
        "repro.link.StopAndWaitMac",
        "repro.lighting.SmartLightingController",
        "repro.net.RoomSimulation",
        "repro.net.MulticellSimulation",
        "repro.des.EventScheduler",
        "repro.des.EventJournal",
        "repro.link.LinkSupervisor",
        "repro.link.BackoffPolicy",
        "repro.resilience.ChaosScenario",
        "repro.resilience.FaultSchedule",
        "repro.resilience.ResilienceReport",
    ])
    def test_every_public_method_documented(self, cls_path):
        module_name, cls_name = cls_path.rsplit(".", 1)
        cls = getattr(importlib.import_module(module_name), cls_name)
        for name, member in inspect.getmembers(cls):
            if name.startswith("_"):
                continue
            if inspect.isfunction(member) or isinstance(member, property):
                doc = (member.fget.__doc__ if isinstance(member, property)
                       else member.__doc__)
                assert doc, f"{cls_path}.{name} lacks a docstring"
