"""The chaos harness: determinism, graceful degradation, flicker.

These are the PR's acceptance pins: same seed → bit-identical report
and journal digest; under *every* shipped fault schedule the
supervised link must beat the unsupervised baseline; the Type-II
flicker bound holds through degradation and recovery; and the
multicell simulator is bit-identical through the FaultPlan refactor.
"""

import pytest

from repro.core import SystemConfig
from repro.link import BackoffPolicy
from repro.net import FaultPlan, default_network
from repro.resilience import (ChaosScenario, FaultSchedule, fault_windows,
                              shipped_schedules)

SCHEDULES = shipped_schedules()


def run_pair(name: str, seed: int = 13):
    schedule = SCHEDULES[name]
    supervised = ChaosScenario(schedule=schedule, seed=seed,
                               supervised=True).run()
    baseline = ChaosScenario(schedule=schedule, seed=seed,
                             supervised=False).run()
    return supervised, baseline


class TestDeterminism:
    def test_same_seed_bit_identical(self):
        first = ChaosScenario(schedule=SCHEDULES["mixed"], seed=13).run()
        second = ChaosScenario(schedule=SCHEDULES["mixed"], seed=13).run()
        assert first.report == second.report
        assert first.journal.digest() == second.journal.digest()

    def test_same_instance_reruns_identically(self):
        scenario = ChaosScenario(schedule=SCHEDULES["blinding"], seed=7)
        assert scenario.run().report == scenario.run().report

    def test_seeds_diverge(self):
        first = ChaosScenario(schedule=SCHEDULES["mixed"], seed=1).run()
        second = ChaosScenario(schedule=SCHEDULES["mixed"], seed=2).run()
        assert first.report.digest != second.report.digest

    def test_report_digest_is_the_journal_digest(self):
        result = ChaosScenario(schedule=SCHEDULES["transients"],
                               seed=13).run()
        assert result.report.digest == result.journal.digest()


class TestGracefulDegradation:
    @pytest.mark.parametrize("name", sorted(SCHEDULES))
    def test_supervision_pays_for_itself(self, name):
        """Under every shipped schedule, supervised goodput wins."""
        supervised, baseline = run_pair(name)
        assert supervised.report.goodput_bps > baseline.report.goodput_bps

    @pytest.mark.parametrize("name", sorted(SCHEDULES))
    def test_faults_are_detected_and_recovered(self, name):
        supervised, _ = run_pair(name)
        report = supervised.report
        assert report.n_faults == len(fault_windows(SCHEDULES[name]))
        assert report.mean_time_to_detect_s is not None
        assert report.mean_time_to_detect_s >= 0.0
        assert report.mean_time_to_recover_s is not None
        assert report.mean_time_to_recover_s >= 0.0

    def test_degradation_is_used_when_the_channel_sours(self):
        supervised, _ = run_pair("blinding")
        report = supervised.report
        assert report.time_degraded_s > 0.0
        assert report.degraded_goodput_bps > 0.0
        assert report.transitions >= 2  # down into DEGRADED and back

    def test_baseline_has_no_state_machine(self):
        _, baseline = run_pair("mixed")
        report = baseline.report
        assert not report.supervised
        assert report.transitions == 0
        assert report.probes_sent == 0
        assert report.time_degraded_s == 0.0
        assert report.time_down_s == 0.0

    def test_probing_resumes_data_after_an_outage(self):
        # A full uplink outage (mixed, 13..16 s) must drive the link
        # through DOWN/PROBING and back to carrying data.
        supervised, _ = run_pair("mixed")
        report = supervised.report
        assert report.probes_sent > 0
        assert report.time_down_s > 0.0
        acked = supervised.journal.of_kind("frame-acked")
        assert acked, "link never came back"
        assert max(e.time for e in acked) > 16.0


class TestFlickerGuarantee:
    @pytest.mark.parametrize("name", sorted(SCHEDULES))
    def test_perceived_step_bounded_throughout(self, name):
        """Type-II flicker stays bounded during degradation/recovery."""
        tau = SystemConfig().tau_perceived
        supervised, baseline = run_pair(name)
        assert supervised.report.max_perceived_step <= tau + 1e-12
        assert baseline.report.max_perceived_step <= tau + 1e-12


class TestScenarioValidation:
    def test_guards(self):
        with pytest.raises(ValueError):
            ChaosScenario(duration_s=0.0)
        with pytest.raises(ValueError):
            ChaosScenario(tick_s=0.0)
        with pytest.raises(ValueError):
            ChaosScenario(ack_timeout_s=0.0)
        with pytest.raises(ValueError):
            ChaosScenario(max_retries=-1)
        with pytest.raises(ValueError):
            ChaosScenario(degraded_payload_bytes=0)
        with pytest.raises(ValueError):
            ChaosScenario(probe_interval_s=0.0)
        with pytest.raises(ValueError):
            ChaosScenario(distance_m=0.0)

    def test_explicit_backoff_is_honoured(self):
        policy = BackoffPolicy(base_timeout_s=5e-3, factor=1.5, cap_s=0.05)
        default = ChaosScenario(schedule=SCHEDULES["blinding"], seed=13)
        custom = ChaosScenario(schedule=SCHEDULES["blinding"], seed=13,
                               backoff=policy)
        assert custom.run().report != default.run().report


class TestMulticellRefactorEquivalence:
    PLAN = FaultPlan(node_downtime=(("node-01", 5.0, 12.0),),
                     uplink_outages=((8.0, 15.0),))

    def test_round_tripped_plan_is_bit_identical(self):
        """FaultPlan → FaultSchedule → FaultPlan injects identically."""
        direct = default_network(rows=2, cols=2, n_nodes=4, seed=13,
                                 faults=self.PLAN).run(30.0)
        lifted = FaultSchedule.from_fault_plan(self.PLAN).to_fault_plan()
        bridged = default_network(rows=2, cols=2, n_nodes=4, seed=13,
                                  faults=lifted).run(30.0)
        assert direct.journal.digest() == bridged.journal.digest()
        assert direct.metrics() == bridged.metrics()

    def test_golden_seed_digests(self):
        """Pins the multicell journal across the FaultPlan refactor."""
        plain = default_network(rows=2, cols=2, n_nodes=4, seed=13).run(30.0)
        faulted = default_network(rows=2, cols=2, n_nodes=4, seed=13,
                                  faults=self.PLAN).run(30.0)
        assert plain.journal.digest() == (
            "980ce7357a220787a5fb8a423263a32ba5e1636b50a84c73f6595a0dcf093afb")
        assert faulted.journal.digest() == (
            "65dddb4527a1d412d4fea84658544b94f290fd186c270bb7107deaf5a8412b0c")
