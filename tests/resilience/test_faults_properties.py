"""Property tests for the FaultSchedule composition algebra.

Hypothesis generates arbitrary schedules (overlapping windows included
— overlap is the interesting case) and checks the algebraic laws the
docstrings promise: ``combine`` is commutative and associative *in
effect* (every by-time query folds active windows order-independently),
the overlap semantics are max/any reductions, and ``shifted`` is a
time-translation equivariance with ``shifted(dt).shifted(-dt)`` as the
identity.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errormodel import SlotErrorModel
from repro.resilience import (
    AckLossBurst,
    AdcBlinding,
    AmbientStep,
    FaultSchedule,
    NodeDowntime,
    UplinkOutage,
)

# All times live on a dyadic grid (multiples of 1/1024, bounded by 64):
# sums and differences of such values are exact in binary floating
# point, so shifting by a grid dt and back is the identity and boundary
# comparisons never flip — the properties are about the algebra, not
# about accumulated rounding.
GRID = 1024


def dyadic(lo: float, hi: float):
    return st.integers(int(lo * GRID), int(hi * GRID)).map(
        lambda i: i / GRID)


windows = st.tuples(dyadic(0.0, 30.0), dyadic(0.05, 10.0)).map(
    lambda pair: (pair[0], pair[0] + pair[1]))

outages = windows.map(lambda w: UplinkOutage(*w))
ack_bursts = st.tuples(
    windows, st.floats(min_value=0.0, max_value=1.0)
).map(lambda t: AckLossBurst(*t[0], loss_probability=round(t[1], 3)))
blindings = st.tuples(
    windows, st.floats(min_value=0.01, max_value=1.0)
).map(lambda t: AdcBlinding(*t[0], severity=round(t[1], 3)))
steps = st.tuples(
    dyadic(0.0, 30.0), st.floats(min_value=0.0, max_value=1.0),
).map(lambda t: AmbientStep(t[0], round(t[1], 3)))
downtimes = st.tuples(
    windows, st.sampled_from(["node-00", "node-01"])
).map(lambda t: NodeDowntime(t[1], *t[0]))

faults = st.one_of(outages, ack_bursts, blindings, steps, downtimes)
schedules = st.lists(faults, max_size=6).map(
    lambda fs: FaultSchedule(tuple(fs)))
times = dyadic(0.0, 45.0)
shifts = dyadic(0.0, 20.0)

BASE = SlotErrorModel(0.001, 0.0005)


def queries(schedule: FaultSchedule, t: float) -> tuple:
    """Every by-time observable at one instant, as one comparable value."""
    return (schedule.uplink_outage_at(t),
            schedule.ack_loss_at(t),
            schedule.error_scale_at(t),
            schedule.ambient_at(t, 0.4),
            schedule.ambient_boost_at(t),
            schedule.node_down_at("node-00", t),
            schedule.node_down_at("node-01", t))


class TestCombineAlgebra:
    @given(a=schedules, b=schedules, t=times)
    @settings(max_examples=150, deadline=None)
    def test_commutative_in_effect(self, a, b, t):
        assert queries(a.combine(b), t) == queries(b.combine(a), t)

    @given(a=schedules, b=schedules, c=schedules, t=times)
    @settings(max_examples=100, deadline=None)
    def test_associative(self, a, b, c, t):
        left = a.combine(b).combine(c)
        right = a.combine(b.combine(c))
        assert left.faults == right.faults
        assert queries(left, t) == queries(right, t)

    @given(a=schedules, t=times)
    @settings(max_examples=100, deadline=None)
    def test_empty_schedule_is_the_identity(self, a, t):
        empty = FaultSchedule()
        assert queries(a.combine(empty), t) == queries(a, t)
        assert queries(empty.combine(a), t) == queries(a, t)

    @given(a=schedules, b=schedules, t=times)
    @settings(max_examples=150, deadline=None)
    def test_overlap_takes_the_max(self, a, b, t):
        """Overlapping windows reduce with max / any, never sum."""
        combined = a.combine(b)
        assert combined.ack_loss_at(t) == max(a.ack_loss_at(t),
                                              b.ack_loss_at(t))
        assert combined.error_scale_at(t) == max(a.error_scale_at(t),
                                                 b.error_scale_at(t))
        assert combined.ambient_boost_at(t) == max(a.ambient_boost_at(t),
                                                   b.ambient_boost_at(t))
        assert combined.uplink_outage_at(t) == (a.uplink_outage_at(t)
                                                or b.uplink_outage_at(t))

    @given(a=schedules, b=schedules)
    @settings(max_examples=100, deadline=None)
    def test_combine_preserves_every_fault(self, a, b):
        combined = a.combine(b)
        assert len(combined) == len(a) + len(b)
        assert combined.end_s == max(a.end_s, b.end_s, 0.0)


class TestShifted:
    @given(a=schedules, dt=shifts, t=times)
    @settings(max_examples=150, deadline=None)
    def test_time_translation_equivariance(self, a, dt, t):
        assert queries(a.shifted(dt), t + dt) == queries(a, t)

    @given(a=schedules, dt=shifts)
    @settings(max_examples=100, deadline=None)
    def test_round_trip_is_the_identity(self, a, dt):
        assert a.shifted(dt).shifted(-dt) == a

    @given(a=schedules, dt=shifts)
    @settings(max_examples=50, deadline=None)
    def test_shift_distributes_over_combine(self, a, dt):
        b = a.shifted(dt)
        assert a.combine(a).shifted(dt) == b.combine(b)

    @given(a=schedules, t=times)
    @settings(max_examples=50, deadline=None)
    def test_zero_shift_is_a_no_op(self, a, t):
        assert a.shifted(0.0) == a
