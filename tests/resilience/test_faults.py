"""Fault primitives, schedule queries, and the DES installers."""

import pytest

from repro.core import SlotErrorModel
from repro.des import EventJournal, EventScheduler
from repro.resilience import (AckLossBurst, AdcBlinding, AmbientStep,
                              FaultPlan, FaultSchedule, NodeDowntime,
                              UplinkOutage, install_fault_events,
                              schedule_plan_events, shipped_schedules)


class TestPrimitiveValidation:
    def test_windows_must_be_ordered(self):
        for cls in (UplinkOutage, AckLossBurst, AdcBlinding):
            with pytest.raises(ValueError):
                cls(5.0, 5.0)
            with pytest.raises(ValueError):
                cls(-1.0, 2.0)
        with pytest.raises(ValueError):
            NodeDowntime("n0", 3.0, 2.0)

    def test_ack_loss_probability_range(self):
        with pytest.raises(ValueError):
            AckLossBurst(0.0, 1.0, loss_probability=1.5)

    def test_blinding_severity_range(self):
        with pytest.raises(ValueError):
            AdcBlinding(0.0, 1.0, severity=0.0)
        with pytest.raises(ValueError):
            AdcBlinding(0.0, 1.0, severity=1.1)
        with pytest.raises(ValueError):
            AdcBlinding(0.0, 1.0, max_error_scale=0.5)

    def test_ambient_step_range(self):
        with pytest.raises(ValueError):
            AmbientStep(-1.0, 0.5)
        with pytest.raises(ValueError):
            AmbientStep(1.0, 1.5)

    def test_blinding_derived_scales(self):
        blinding = AdcBlinding(0.0, 1.0, severity=0.5, max_error_scale=100.0)
        assert blinding.error_scale == pytest.approx(50.5)
        assert blinding.ambient_boost == pytest.approx(0.5)

    def test_schedule_rejects_foreign_objects(self):
        with pytest.raises(TypeError):
            FaultSchedule(("not a fault",))


class TestScheduleQueries:
    SCHEDULE = FaultSchedule((
        AdcBlinding(2.0, 4.0, severity=0.3),
        AdcBlinding(3.0, 6.0, severity=0.6),
        AckLossBurst(1.0, 3.0, loss_probability=0.4),
        UplinkOutage(8.0, 9.0),
        AmbientStep(5.0, 0.9),
        AmbientStep(7.0, 0.2),
        NodeDowntime("n1", 2.0, 3.0),
    ))

    def test_ack_loss_is_max_of_active_windows(self):
        assert self.SCHEDULE.ack_loss_at(0.5) == 0.0
        assert self.SCHEDULE.ack_loss_at(2.0) == pytest.approx(0.4)
        assert self.SCHEDULE.ack_loss_at(8.5) == 1.0  # outage dominates

    def test_windows_are_half_open(self):
        assert self.SCHEDULE.ack_loss_at(3.0) == 0.0
        assert not self.SCHEDULE.uplink_outage_at(9.0)
        assert self.SCHEDULE.uplink_outage_at(8.0)

    def test_error_scale_is_max_of_overlaps(self):
        worst = AdcBlinding(0.0, 1.0, severity=0.6).error_scale
        assert self.SCHEDULE.error_scale_at(1.0) == 1.0
        assert self.SCHEDULE.error_scale_at(3.5) == pytest.approx(worst)

    def test_errors_at_scales_the_base_model(self):
        base = SlotErrorModel(1e-4, 1e-4)
        assert self.SCHEDULE.errors_at(1.0, base) is base
        scaled = self.SCHEDULE.errors_at(2.5, base)
        scale = AdcBlinding(0.0, 1.0, severity=0.3).error_scale
        assert scaled.p_on_error == pytest.approx(1e-4 * scale)

    def test_ambient_latest_step_wins_and_clamps(self):
        assert self.SCHEDULE.ambient_at(4.0, 0.5) == 0.5
        assert self.SCHEDULE.ambient_at(6.0, 0.5) == pytest.approx(0.9)
        assert self.SCHEDULE.ambient_at(7.5, 0.5) == pytest.approx(0.2)
        # Blinding never enters the room-ambient query.
        assert self.SCHEDULE.ambient_at(3.5, 0.5) == 0.5

    def test_ambient_boost_only_during_blinding(self):
        assert self.SCHEDULE.ambient_boost_at(1.0) == 0.0
        assert self.SCHEDULE.ambient_boost_at(3.5) == pytest.approx(0.6)

    def test_node_down_at(self):
        assert self.SCHEDULE.node_down_at("n1", 2.5)
        assert not self.SCHEDULE.node_down_at("n1", 3.0)
        assert not self.SCHEDULE.node_down_at("n2", 2.5)

    def test_of_type_and_len_and_end(self):
        assert len(self.SCHEDULE) == 7
        assert len(self.SCHEDULE.of_type(AdcBlinding)) == 2
        assert self.SCHEDULE.end_s == pytest.approx(9.0)
        assert FaultSchedule().end_s == 0.0

    def test_combine_preserves_order(self):
        first = FaultSchedule((AmbientStep(1.0, 0.5),))
        second = FaultSchedule((AmbientStep(2.0, 0.7),))
        combined = first.combine(second)
        assert combined.faults == first.faults + second.faults


class TestCorruptor:
    def test_corruptor_applies_blinding_by_time(self, rng):
        schedule = FaultSchedule((AdcBlinding(1.0, 2.0, severity=1.0),))
        corrupt = schedule.corruptor(SlotErrorModel(5e-3, 5e-3))
        slots = [True, False] * 500
        clean = corrupt(list(slots), rng, 0.5)
        blinded = corrupt(list(slots), rng, 1.5)
        errors_clean = sum(1 for a, b in zip(slots, clean) if a != b)
        errors_blinded = sum(1 for a, b in zip(slots, blinded) if a != b)
        assert errors_blinded > errors_clean


class TestFaultPlanBridge:
    PLAN = FaultPlan(node_downtime=(("node-01", 5.0, 12.0),),
                     uplink_outages=((8.0, 15.0),))

    def test_round_trip(self):
        schedule = FaultSchedule.from_fault_plan(self.PLAN)
        assert schedule.to_fault_plan() == self.PLAN
        assert schedule.node_down_at("node-01", 6.0)
        assert schedule.uplink_outage_at(9.0)

    def test_plan_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(node_downtime=(("n", 2.0, 2.0),))
        with pytest.raises(ValueError):
            FaultPlan(uplink_outages=((-1.0, 3.0),))

    def test_schedule_plan_events_replays_the_multicell_installer(self):
        scheduler = EventScheduler()
        calls = []
        schedule_plan_events(
            self.PLAN, scheduler,
            on_node_change=lambda name, down: calls.append((name, down)),
            on_uplink_change=lambda active: calls.append(("uplink", active)))
        scheduler.run(until_s=20.0)
        assert calls == [("node-01", True), ("uplink", True),
                         ("node-01", False), ("uplink", False)]


class TestRandomSchedules:
    def test_pure_in_its_arguments(self):
        a = FaultSchedule.random(7, 40.0, 0.6, nodes=("n0", "n1"))
        b = FaultSchedule.random(7, 40.0, 0.6, nodes=("n0", "n1"))
        assert a == b

    def test_seeds_diverge(self):
        assert FaultSchedule.random(1, 40.0, 0.6) \
            != FaultSchedule.random(2, 40.0, 0.6)

    def test_zero_intensity_is_empty(self):
        assert len(FaultSchedule.random(3, 40.0, 0.0)) == 0

    def test_windows_fit_the_duration(self):
        schedule = FaultSchedule.random(11, 20.0, 1.0, nodes=("a",))
        assert schedule.end_s <= 20.0

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultSchedule.random(1, 0.0, 0.5)
        with pytest.raises(ValueError):
            FaultSchedule.random(1, 10.0, 1.5)


class TestShippedSchedules:
    def test_the_curated_set(self):
        shipped = shipped_schedules()
        assert set(shipped) == {"blinding", "ack-burst", "transients",
                                "mixed"}
        for schedule in shipped.values():
            assert len(schedule) > 0

    def test_windows_scale_with_duration(self):
        short = shipped_schedules(20.0)["mixed"]
        long = shipped_schedules(40.0)["mixed"]
        assert short.end_s == pytest.approx(long.end_s / 2.0)
        assert short.end_s <= 20.0

    def test_validation(self):
        with pytest.raises(ValueError):
            shipped_schedules(0.0)


class TestInstallFaultEvents:
    def test_boundaries_are_journaled(self):
        schedule = FaultSchedule((AdcBlinding(1.0, 2.0, severity=0.5),
                                  AmbientStep(3.0, 0.7),
                                  UplinkOutage(4.0, 5.0)))
        scheduler = EventScheduler()
        journal = EventJournal()
        install_fault_events(schedule, scheduler, journal)
        scheduler.run(until_s=10.0)
        begins = journal.of_kind("fault-begin")
        ends = journal.of_kind("fault-end")
        steps = journal.of_kind("fault-step")
        assert [e.get("fault") for e in begins] == ["adc-blinding",
                                                    "uplink-outage"]
        assert len(ends) == 2
        assert steps[0].get("level") == pytest.approx(0.7)
        assert steps[0].time == pytest.approx(3.0)
