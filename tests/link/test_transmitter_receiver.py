"""Slot-level frame transmission and reception across all schemes."""

import pytest

from repro.core import SystemConfig
from repro.link import (
    CrcError,
    PreambleNotFoundError,
    Receiver,
    Transmitter,
    descriptor_for_design,
)
from repro.link.frame import FrameError
from repro.schemes import AmppmScheme, Mppm, OokCt, Oppm, Vppm


@pytest.fixture(scope="module")
def stack():
    config = SystemConfig()
    return config, Transmitter(config), Receiver(config)


PAYLOAD = bytes(range(96))


class TestRoundTrip:
    @pytest.mark.parametrize("scheme_cls", [AmppmScheme, Mppm, OokCt, Vppm, Oppm])
    @pytest.mark.parametrize("dimming", [0.2, 0.5, 0.8])
    def test_all_schemes_all_levels(self, stack, scheme_cls, dimming):
        config, tx, rx = stack
        design = scheme_cls(config).design_clamped(dimming)
        slots = tx.encode_frame(PAYLOAD, design)
        frame = rx.decode_frame(slots)
        assert frame.payload == PAYLOAD
        assert frame.header.payload_length == len(PAYLOAD)

    def test_empty_payload(self, stack):
        config, tx, rx = stack
        design = OokCt(config).design(0.5)
        slots = tx.encode_frame(b"", design)
        assert rx.decode_frame(slots).payload == b""

    def test_frame_dimming_tracks_design(self, stack):
        config, tx, _ = stack
        design = AmppmScheme(config).design(0.3)
        slots = tx.encode_frame(PAYLOAD, design)
        duty = sum(slots) / len(slots)
        assert duty == pytest.approx(0.3, abs=0.03)

    def test_leading_noise_tolerated(self, stack):
        config, tx, rx = stack
        design = Mppm(config).design(0.4)
        slots = [True, True, False, True] * 5 + tx.encode_frame(PAYLOAD, design)
        frame = rx.decode_frame(slots)
        assert frame.payload == PAYLOAD
        assert frame.start == 20

    def test_back_to_back_frames(self, stack):
        config, tx, rx = stack
        design = AmppmScheme(config).design(0.5)
        slots = (tx.encode_frame(b"first", design)
                 + tx.encode_frame(b"second", design))
        frames = rx.decode_all(slots)
        assert [f.payload for f in frames] == [b"first", b"second"]


class TestCorruption:
    def test_payload_bit_flip_caught(self, stack):
        config, tx, rx = stack
        design = OokCt(config).design(0.5)
        slots = tx.encode_frame(PAYLOAD, design)
        # Index 120 is safely inside the modulated payload section
        # (preamble 24 + header 48 + a short compensation run + sync).
        slots[120] = not slots[120]
        with pytest.raises(FrameError):
            rx.decode_frame(slots)

    def test_header_corruption_detected(self, stack):
        config, tx, rx = stack
        design = OokCt(config).design(0.5)
        slots = tx.encode_frame(PAYLOAD, design)
        # Flip a header bit: either the descriptor breaks (HeaderError)
        # or the final CRC catches it (CrcError) — never silent success.
        slots[24 + 3] = not slots[24 + 3]
        with pytest.raises(FrameError):
            rx.decode_frame(slots)

    def test_truncated_stream(self, stack):
        config, tx, rx = stack
        design = Mppm(config).design(0.5)
        slots = tx.encode_frame(PAYLOAD, design)
        with pytest.raises(FrameError):
            rx.decode_frame(slots[:len(slots) // 2])

    def test_no_preamble(self, stack):
        _, _, rx = stack
        with pytest.raises(PreambleNotFoundError):
            rx.decode_frame([True, False, False] * 30)

    def test_decode_all_skips_corrupt_frames(self, stack):
        config, tx, rx = stack
        design = AmppmScheme(config).design(0.5)
        good = tx.encode_frame(b"good", design)
        bad = tx.encode_frame(b"bad!", design)
        bad[-10] = not bad[-10]
        frames = rx.decode_all(bad + good)
        assert [f.payload for f in frames] == [b"good"]

    def test_crc_error_type(self, stack):
        config, tx, rx = stack
        design = OokCt(config).design(0.5)
        slots = tx.encode_frame(PAYLOAD, design)
        # Flip one payload data slot (OOK: one bit) -> clean CRC failure.
        slots[130] = not slots[130]
        with pytest.raises(CrcError):
            rx.decode_frame(slots)


class TestDescriptorMapping:
    def test_all_designs_have_descriptors(self, stack):
        config, _, _ = stack
        for scheme in (AmppmScheme(config), Mppm(config), OokCt(config),
                       Vppm(config), Oppm(config)):
            descriptor = descriptor_for_design(scheme.design_clamped(0.4))
            assert 0 <= descriptor.to_int() < (1 << 32)

    def test_unknown_design_rejected(self):
        with pytest.raises(TypeError):
            descriptor_for_design(object())  # type: ignore[arg-type]

    def test_overhead_slots_estimate(self, stack):
        config, tx, _ = stack
        design = AmppmScheme(config).design(0.5)
        overhead = tx.frame_overhead_slots(design)
        actual = len(tx.encode_frame(b"", design))
        # b"" still carries a CRC (2 bytes) in the modulated section.
        assert overhead <= actual
        assert actual - overhead <= design.payload_slots(16) + 8
