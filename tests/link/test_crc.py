"""CRC-16-CCITT correctness and error detection."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.link import append_crc, check_crc, crc16


class TestKnownVectors:
    def test_check_value(self):
        # The classic CRC-16/CCITT-FALSE check value for "123456789".
        assert crc16(b"123456789") == 0x29B1

    def test_empty_input(self):
        assert crc16(b"") == 0xFFFF

    def test_deterministic(self):
        assert crc16(b"smartvlc") == crc16(b"smartvlc")


class TestAppendCheck:
    def test_roundtrip(self):
        framed = append_crc(b"hello world")
        assert check_crc(framed)
        assert framed[:-2] == b"hello world"

    def test_too_short_fails(self):
        assert not check_crc(b"")
        assert not check_crc(b"\x12")

    @given(st.binary(min_size=1, max_size=256))
    @settings(max_examples=60)
    def test_property_roundtrip(self, data):
        assert check_crc(append_crc(data))

    @given(st.binary(min_size=1, max_size=128), st.data())
    @settings(max_examples=60)
    def test_property_single_bit_flip_detected(self, data, draw):
        framed = bytearray(append_crc(data))
        bit = draw.draw(st.integers(0, len(framed) * 8 - 1))
        framed[bit // 8] ^= 1 << (bit % 8)
        assert not check_crc(bytes(framed))

    def test_burst_errors_detected(self):
        framed = bytearray(append_crc(bytes(range(64))))
        framed[10] ^= 0xFF
        framed[11] ^= 0xFF
        assert not check_crc(bytes(framed))

    def test_transposition_detected(self):
        framed = bytearray(append_crc(b"ABCDEF"))
        framed[0], framed[1] = framed[1], framed[0]
        assert not check_crc(bytes(framed))
