"""Byte/bit packing helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.link import bits_to_bytes, bytes_to_bits


class TestConversions:
    def test_msb_first(self):
        assert bytes_to_bits(b"\x80") == [1, 0, 0, 0, 0, 0, 0, 0]
        assert bytes_to_bits(b"\x01") == [0, 0, 0, 0, 0, 0, 0, 1]

    def test_roundtrip(self):
        data = bytes(range(256))
        assert bits_to_bytes(bytes_to_bits(data)) == data

    def test_empty(self):
        assert bytes_to_bits(b"") == []
        assert bits_to_bytes([]) == b""

    def test_misaligned_rejected(self):
        with pytest.raises(ValueError):
            bits_to_bytes([1, 0, 1])

    def test_non_bits_rejected(self):
        with pytest.raises(ValueError):
            bits_to_bytes([0, 1, 2, 0, 0, 0, 0, 0])

    @given(st.binary(max_size=64))
    def test_property_roundtrip(self, data):
        assert bits_to_bytes(bytes_to_bits(data)) == data
