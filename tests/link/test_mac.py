"""Stop-and-wait MAC: delivery, retransmission, throughput accounting."""

import pytest

from repro.core import SlotErrorModel, SystemConfig
from repro.link import StopAndWaitMac, WifiUplink, corrupt_slots
from repro.link.mac import header_success_probability
from repro.schemes import AmppmScheme, OokCt


@pytest.fixture(scope="module")
def mac():
    return StopAndWaitMac(SystemConfig())


@pytest.fixture(scope="module")
def design():
    return AmppmScheme(SystemConfig()).design(0.5)


class TestCorruptSlots:
    def test_noiseless_is_identity(self, rng):
        slots = [True, False] * 50
        assert corrupt_slots(slots, SlotErrorModel.ideal(), rng) == slots

    def test_flip_statistics(self, rng):
        slots = [True] * 20000
        errors = SlotErrorModel(0.0, 0.1)
        flipped = corrupt_slots(slots, errors, rng)
        rate = sum(1 for s in flipped if not s) / len(slots)
        assert rate == pytest.approx(0.1, abs=0.01)

    def test_asymmetric_rates(self, rng):
        on_slots = [True] * 10000
        off_slots = [False] * 10000
        errors = SlotErrorModel(0.2, 0.01)
        on_errs = sum(1 for s in corrupt_slots(on_slots, errors, rng) if not s)
        off_errs = sum(1 for s in corrupt_slots(off_slots, errors, rng) if s)
        assert off_errs > on_errs


class TestRun:
    def test_clean_channel_delivers_everything(self, mac, design, rng):
        payloads = [bytes([i] * 32) for i in range(10)]
        stats = mac.run(payloads, design, SlotErrorModel.ideal(), rng)
        assert stats.frames_delivered == 10
        assert stats.retransmissions == 0
        assert stats.payload_bits_acked == 10 * 32 * 8
        assert stats.throughput_bps > 0

    def test_noisy_channel_retransmits(self, mac, design, rng):
        errors = SlotErrorModel(2e-3, 2e-3)
        payloads = [bytes(64)] * 20
        stats = mac.run(payloads, design, errors, rng)
        assert stats.retransmissions > 0
        assert stats.frames_sent > stats.frames_delivered or \
            stats.retransmissions == stats.frames_sent - stats.frames_delivered

    def test_hopeless_channel_gives_up(self, design, rng):
        mac = StopAndWaitMac(SystemConfig(), max_retries=2)
        errors = SlotErrorModel(0.2, 0.2)
        stats = mac.run([bytes(64)], design, errors, rng)
        assert stats.frames_delivered == 0
        assert stats.frames_sent == 3  # 1 + 2 retries

    def test_exhausted_retries_pin_the_retransmission_count(self, design,
                                                            rng):
        # Regression: the first transmission of a payload is not a
        # retransmission, and the final timeout of an abandoned payload
        # must not count one either — a payload that exhausts
        # ``max_retries`` retries contributes exactly ``max_retries``.
        mac = StopAndWaitMac(SystemConfig(), max_retries=2)
        errors = SlotErrorModel(0.2, 0.2)
        stats = mac.run([bytes(64)], design, errors, rng)
        assert stats.retransmissions == 2
        assert stats.frames_abandoned == 1
        assert stats.frames_sent == stats.retransmissions + 1

    def test_custom_corruptor_burst_channel(self, mac, design, rng):
        from repro.core import SlotErrorModel as Sem
        from repro.phy import GilbertElliottChannel

        channel = GilbertElliottChannel(good=Sem.ideal(),
                                        p_good_to_bad=2e-4,
                                        p_bad_to_good=2e-3)
        stats = mac.run([bytes(64)] * 15, design, Sem.ideal(), rng,
                        corruptor=lambda s, r: channel.corrupt(s, r)[0])
        assert stats.frames_delivered == 15
        assert stats.frames_sent >= 15

    def test_ack_loss_counts_as_retransmission(self, design, rng):
        mac = StopAndWaitMac(SystemConfig(),
                             uplink=WifiUplink(loss_probability=0.5))
        stats = mac.run([bytes(32)] * 20, design, SlotErrorModel.ideal(), rng)
        assert stats.retransmissions > 0
        assert stats.frames_delivered == 20


class TestExpectedThroughput:
    def test_matches_simulation_roughly(self, mac, design, rng):
        errors = SlotErrorModel(9e-5, 8e-5)
        expected = mac.expected_throughput(design, errors, payload_bytes=128)
        stats = mac.run([bytes(range(128))] * 40, design, errors, rng)
        assert stats.throughput_bps == pytest.approx(expected, rel=0.15)

    def test_decreases_with_noise(self, mac, design):
        clean = mac.expected_throughput(design, SlotErrorModel.ideal())
        noisy = mac.expected_throughput(design, SlotErrorModel(1e-3, 1e-3))
        assert noisy < clean

    def test_larger_payload_amortises_overhead(self, mac, design):
        small = mac.expected_throughput(design, SlotErrorModel.ideal(),
                                        payload_bytes=16)
        large = mac.expected_throughput(design, SlotErrorModel.ideal(),
                                        payload_bytes=512)
        assert large > small

    def test_gain_shrinks_with_small_payloads(self, mac):
        # Section 6.1: AMPPM's edge decreases when the payload is small
        # because of the fixed header overhead.
        config = SystemConfig()
        ampem = AmppmScheme(config).design(0.2)
        ook = OokCt(config).design(0.2)
        errors = SlotErrorModel.ideal()
        gain_small = (mac.expected_throughput(ampem, errors, 8)
                      / mac.expected_throughput(ook, errors, 8))
        gain_large = (mac.expected_throughput(ampem, errors, 512)
                      / mac.expected_throughput(ook, errors, 512))
        assert gain_large > gain_small


class TestHeaderSuccess:
    def test_ideal_is_certain(self):
        assert header_success_probability(SlotErrorModel.ideal()) == 1.0

    def test_decreases_with_errors(self):
        low = header_success_probability(SlotErrorModel(1e-5, 1e-5))
        high = header_success_probability(SlotErrorModel(1e-3, 1e-3))
        assert high < low < 1.0


class TestValidation:
    def test_bad_timeout(self):
        with pytest.raises(ValueError):
            StopAndWaitMac(SystemConfig(), ack_timeout_s=0.0)

    def test_bad_retries(self):
        with pytest.raises(ValueError):
            StopAndWaitMac(SystemConfig(), max_retries=-1)
