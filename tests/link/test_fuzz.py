"""Fuzzing the receiver: arbitrary corruption must never crash or lie."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SystemConfig
from repro.link import Receiver, Transmitter
from repro.link.frame import FrameError, PreambleNotFoundError
from repro.schemes import AmppmScheme, OokCt


@pytest.fixture(scope="module")
def stack():
    config = SystemConfig()
    return config, Transmitter(config), Receiver(config)


class TestReceiverRobustness:
    @given(st.lists(st.booleans(), min_size=0, max_size=400))
    @settings(max_examples=60, deadline=None)
    def test_random_slot_soup_never_crashes(self, slots):
        rx = Receiver(SystemConfig())
        try:
            frame = rx.decode_frame(slots)
        except FrameError:
            return  # every structured failure mode is acceptable
        # Decoding random noise succeeds only past a CRC-16: should be
        # essentially impossible at these lengths.
        assert frame.payload is not None  # pragma: no cover

    @given(st.integers(0, 2**32 - 1), st.data())
    @settings(max_examples=80, deadline=None)
    def test_random_bit_flips_never_yield_wrong_payload(self, seed, data):
        config, tx, rx = (SystemConfig(), None, None)
        stack_tx = Transmitter(config)
        stack_rx = Receiver(config)
        design = AmppmScheme(config).design(0.5)
        payload = bytes(range(24))
        slots = list(stack_tx.encode_frame(payload, design))
        rng = np.random.default_rng(seed)
        n_flips = data.draw(st.integers(1, 12))
        for index in rng.integers(0, len(slots), size=n_flips):
            slots[index] = not slots[index]
        try:
            frame = stack_rx.decode_frame(slots)
        except FrameError:
            return
        # If decoding 'succeeds', the CRC must have actually matched —
        # which only happens when the flips cancelled out.
        assert frame.payload == payload

    def test_mass_corruption_of_every_scheme(self, stack, rng):
        config, tx, rx = stack
        payload = bytes(range(32))
        for scheme in (AmppmScheme(config), OokCt(config)):
            design = scheme.design_clamped(0.4)
            slots = list(tx.encode_frame(payload, design))
            for trial in range(20):
                corrupted = list(slots)
                for index in rng.integers(0, len(slots), size=30):
                    corrupted[index] = not corrupted[index]
                try:
                    frame = rx.decode_frame(corrupted)
                except (FrameError, PreambleNotFoundError):
                    continue
                assert frame.payload == payload

    def test_empty_and_tiny_streams(self, stack):
        _, _, rx = stack
        for stream in ([], [True], [False] * 23):
            with pytest.raises(FrameError):
                rx.decode_frame(stream)
