"""The Table 1 frame format: descriptor packing, compensation, headers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SuperSymbol, SymbolPattern
from repro.link import (
    HEADER_SLOTS,
    PREAMBLE_SLOTS,
    Frame,
    FrameHeader,
    PatternDescriptor,
    compensation_run,
    header_overhead_slots,
)
from repro.link.frame import (
    SCHEME_MPPM,
    SCHEME_OOK,
    SCHEME_OPPM,
    SCHEME_VPPM,
    HeaderError,
    header_slots,
    parse_header_slots,
)


class TestPreamble:
    def test_three_bytes(self):
        assert len(PREAMBLE_SLOTS) == 24

    def test_alternating(self):
        assert all(a != b for a, b in zip(PREAMBLE_SLOTS, PREAMBLE_SLOTS[1:]))


class TestPatternDescriptor:
    def test_super_symbol_roundtrip(self):
        s = SuperSymbol(SymbolPattern(21, 11), 3, SymbolPattern(21, 12), 2)
        desc = PatternDescriptor.for_super_symbol(s)
        recovered = PatternDescriptor.from_int(desc.to_int())
        assert recovered == desc
        assert recovered.super_symbol() == s
        assert recovered.scheme == SCHEME_MPPM

    def test_degenerate_super_symbol(self):
        s = SuperSymbol.single(SymbolPattern(20, 4), 2)
        desc = PatternDescriptor.for_super_symbol(s)
        assert PatternDescriptor.from_int(desc.to_int()).super_symbol() == s

    def test_ook_descriptor(self):
        desc = PatternDescriptor.for_ook()
        assert desc.scheme == SCHEME_OOK
        assert PatternDescriptor.from_int(desc.to_int()).scheme == SCHEME_OOK

    def test_pulse_descriptors(self):
        for scheme in (SCHEME_VPPM, SCHEME_OPPM):
            desc = PatternDescriptor.for_pulse(scheme, 16, 5)
            back = PatternDescriptor.from_int(desc.to_int())
            assert back.scheme == scheme
            assert back.n2 == 16
            assert back.k2 == 5

    def test_fits_4_bytes(self):
        s = SuperSymbol(SymbolPattern(63, 62), 15, SymbolPattern(63, 1), 15)
        value = PatternDescriptor.for_super_symbol(s).to_int()
        assert 0 <= value < (1 << 32)

    def test_field_width_validation(self):
        with pytest.raises(ValueError):
            PatternDescriptor(n1=64)
        with pytest.raises(ValueError):
            PatternDescriptor(m1=16)

    def test_malformed_scheme_raises(self):
        desc = PatternDescriptor(n1=0, k1=1)  # k1=1 is not a valid escape
        with pytest.raises(HeaderError):
            _ = desc.scheme

    def test_super_symbol_on_wrong_scheme_raises(self):
        with pytest.raises(HeaderError):
            PatternDescriptor.for_ook().super_symbol()

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=100)
    def test_property_packing_bijective(self, value):
        desc = PatternDescriptor.from_int(value)
        assert desc.to_int() == value


class TestFrameHeader:
    def test_roundtrip_bytes(self):
        header = FrameHeader(513, PatternDescriptor.for_ook())
        assert FrameHeader.from_bytes(header.to_bytes()) == header

    def test_roundtrip_slots(self):
        header = FrameHeader(
            128, PatternDescriptor.for_super_symbol(
                SuperSymbol.single(SymbolPattern(20, 10))))
        slots = header_slots(header)
        assert len(slots) == HEADER_SLOTS
        assert parse_header_slots(slots) == header

    def test_length_field_bounds(self):
        with pytest.raises(ValueError):
            FrameHeader(0x10000, PatternDescriptor.for_ook()).to_bytes()

    def test_wrong_size_rejected(self):
        with pytest.raises(HeaderError):
            FrameHeader.from_bytes(b"\x00" * 5)
        with pytest.raises(HeaderError):
            parse_header_slots([True] * (HEADER_SLOTS - 1))


class TestCompensation:
    def test_darkens_bright_header(self):
        count, on = compensation_run(36, 72, 0.2, 500)
        assert on is False
        assert (36) / (72 + count) == pytest.approx(0.2, abs=0.01)

    def test_brightens_dark_header(self):
        count, on = compensation_run(10, 72, 0.5, 500)
        assert on is True
        assert (10 + count) / (72 + count) == pytest.approx(0.5, abs=0.01)

    def test_always_at_least_one_slot(self):
        count, _ = compensation_run(36, 72, 0.5, 500)
        assert count >= 1

    def test_capped_by_flicker_bound(self):
        count, _ = compensation_run(36, 72, 0.01, 500)
        assert count <= 500

    def test_invalid_dimming(self):
        with pytest.raises(ValueError):
            compensation_run(10, 72, 0.0, 500)


class TestFrame:
    def test_build_and_protect(self):
        frame = Frame.build(b"payload", PatternDescriptor.for_ook())
        protected = frame.protected_bytes()
        assert frame.verify(protected)
        assert protected[:2] == (7).to_bytes(2, "big")

    def test_oversized_payload_rejected(self):
        with pytest.raises(ValueError):
            Frame.build(bytes(0x10001), PatternDescriptor.for_ook())

    def test_header_overhead_grows_at_extreme_dimming(self, config):
        mid = header_overhead_slots(config, 0.5)
        dark = header_overhead_slots(config, 0.05)
        assert dark > mid
