"""Sample-level frame synchronisation (preamble correlation)."""

import numpy as np
import pytest

from repro.core import SystemConfig
from repro.link import PreambleNotFoundError, SampleSynchronizer, Transmitter
from repro.phy import SlotSampler, WaveformSynthesizer
from repro.schemes import AmppmScheme


@pytest.fixture(scope="module")
def pieces():
    config = SystemConfig()
    return (config, SampleSynchronizer(config), WaveformSynthesizer(config),
            SlotSampler(config), Transmitter(config),
            AmppmScheme(config).design(0.5))


class TestTemplate:
    def test_template_shape(self, pieces):
        config, sync, *_ = pieces
        template = sync.preamble_template()
        assert template.size == 24 * config.oversampling
        assert set(np.unique(template)) == {-1.0, 1.0}


class TestFrameStart:
    def test_exact_offset_found(self, pieces, rng):
        config, sync, synth, _, tx, design = pieces
        slots = tx.encode_frame(b"sync me", design)
        for lead in (0, 3, 17, 40):
            padded = [False] * lead + slots
            samples = synth.drive_waveform(padded)
            start = sync.find_frame_start(samples)
            assert start == lead * config.oversampling

    def test_offset_found_under_noise(self, pieces, rng):
        config, sync, synth, _, tx, design = pieces
        slots = tx.encode_frame(b"noisy sync", design)
        padded = [False] * 25 + slots
        samples = synth.drive_waveform(padded)
        samples = samples + rng.normal(0, 0.2, samples.size)
        start = sync.find_frame_start(samples)
        assert start == 25 * config.oversampling

    def test_dc_pedestal_ignored(self, pieces, rng):
        # The correlator centres the signal, so an ambient pedestal
        # must not bias the peak.
        config, sync, synth, _, tx, design = pieces
        slots = tx.encode_frame(b"dc", design)
        samples = synth.drive_waveform([False] * 10 + slots) + 5.0
        assert sync.find_frame_start(samples) == 10 * config.oversampling

    def test_too_short_stream_rejected(self, pieces):
        _, sync, *_ = pieces
        with pytest.raises(PreambleNotFoundError):
            sync.find_frame_start(np.zeros(10))


class TestSyncToDecode:
    def test_full_chain_with_sample_offset(self, pieces, rng):
        """Synchronise, sample, decode — with an odd sample offset."""
        from repro.link import Receiver

        config, sync, synth, sampler, tx, design = pieces
        payload = bytes(range(40))
        slots = tx.encode_frame(payload, design)
        padded = [False] * 9 + slots + [False] * 9
        samples = synth.drive_waveform(padded)
        samples = samples + rng.normal(0, 0.05, samples.size)

        start = sync.find_frame_start(samples)
        n_slots = (samples.size - start) // config.oversampling
        decided = sampler.decide(samples, n_slots, offset=start)
        frame = Receiver(config).decode_frame(decided)
        assert frame.payload == payload
