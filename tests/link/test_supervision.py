"""Backoff schedules and the link-state machine.

The backoff properties are the supervision contract: monotone
schedules, a hard cap (jitter included), exact seed determinism, and
the degenerate flat policy leaving the paper's closed-form throughput
untouched.  The supervisor tests pin the reason-aware semantics: only
channel-quality evidence degrades the design, while failures of any
kind can kill the link.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SlotErrorModel, SystemConfig
from repro.des import EventJournal
from repro.link import (BackoffPolicy, LinkState, LinkSupervisor,
                        StopAndWaitMac)
from repro.schemes import AmppmScheme

policies = st.builds(
    BackoffPolicy,
    base_timeout_s=st.floats(min_value=1e-4, max_value=0.05),
    factor=st.floats(min_value=1.0, max_value=4.0),
    cap_s=st.floats(min_value=0.05, max_value=1.0),
    jitter_frac=st.floats(min_value=0.0, max_value=0.99),
    seed=st.integers(min_value=0, max_value=2 ** 31 - 1),
)


class TestBackoffProperties:
    @settings(max_examples=80, deadline=None)
    @given(policy=policies)
    def test_schedule_monotone_non_decreasing(self, policy):
        schedule = policy.schedule(24)
        assert all(b >= a for a, b in zip(schedule, schedule[1:]))

    @settings(max_examples=80, deadline=None)
    @given(policy=policies)
    def test_cap_enforced_with_jitter(self, policy):
        # The cap binds the *jittered* value, not just the raw exponent.
        assert all(t <= policy.cap_s + 1e-15 for t in policy.schedule(24))

    @settings(max_examples=60, deadline=None)
    @given(policy=policies, attempt=st.integers(min_value=0, max_value=20))
    def test_same_seed_same_schedule(self, policy, attempt):
        twin = BackoffPolicy(base_timeout_s=policy.base_timeout_s,
                             factor=policy.factor, cap_s=policy.cap_s,
                             jitter_frac=policy.jitter_frac,
                             seed=policy.seed)
        assert twin.timeout_for(attempt) == policy.timeout_for(attempt)
        assert twin.schedule(attempt + 1) == policy.schedule(attempt + 1)

    @settings(max_examples=60, deadline=None)
    @given(policy=policies, n=st.integers(min_value=1, max_value=16))
    def test_timeout_for_agrees_with_schedule(self, policy, n):
        assert policy.timeout_for(n - 1) == policy.schedule(n)[-1]

    @settings(max_examples=40, deadline=None)
    @given(base=st.floats(min_value=1e-3, max_value=0.05),
           attempt=st.integers(min_value=0, max_value=12))
    def test_disabled_policy_is_flat(self, base, attempt):
        assert BackoffPolicy.disabled(base).timeout_for(attempt) == base

    def test_first_timeout_is_the_base(self):
        policy = BackoffPolicy(base_timeout_s=5e-3, factor=2.0, cap_s=0.1)
        assert policy.timeout_for(0) == pytest.approx(5e-3)
        assert policy.timeout_for(1) == pytest.approx(10e-3)
        assert policy.timeout_for(6) == pytest.approx(0.1)  # capped

    def test_saturation_attempt(self):
        policy = BackoffPolicy(base_timeout_s=10e-3, factor=2.0, cap_s=0.16)
        assert policy.saturation_attempt == 4  # 10 -> 20 -> 40 -> 80 -> 160
        assert BackoffPolicy.disabled().saturation_attempt == 0


class TestBackoffThroughputParity:
    @settings(max_examples=20, deadline=None)
    @given(base=st.floats(min_value=2e-3, max_value=0.04))
    def test_flat_backoff_matches_legacy_closed_form(self, base):
        """factor=1.0, no jitter: the paper's expression, bit for bit."""
        config = SystemConfig()
        design = AmppmScheme(config).design(0.5)
        errors = SlotErrorModel(2e-4, 2e-4)
        plain = StopAndWaitMac(config, ack_timeout_s=base)
        flat = StopAndWaitMac(config, ack_timeout_s=base,
                              backoff=BackoffPolicy.disabled(base))
        assert flat.expected_throughput(design, errors) \
            == plain.expected_throughput(design, errors)

    def test_escalating_backoff_costs_throughput(self):
        config = SystemConfig()
        design = AmppmScheme(config).design(0.5)
        errors = SlotErrorModel(2e-4, 2e-4)
        plain = StopAndWaitMac(config, ack_timeout_s=10e-3)
        escalating = StopAndWaitMac(
            config, ack_timeout_s=10e-3,
            backoff=BackoffPolicy(base_timeout_s=10e-3, factor=2.0,
                                  cap_s=0.16))
        assert escalating.expected_throughput(design, errors) \
            < plain.expected_throughput(design, errors)


class TestBackoffValidation:
    def test_bad_base(self):
        with pytest.raises(ValueError):
            BackoffPolicy(base_timeout_s=0.0)

    def test_shrinking_factor(self):
        with pytest.raises(ValueError):
            BackoffPolicy(factor=0.5)

    def test_cap_below_base(self):
        with pytest.raises(ValueError):
            BackoffPolicy(base_timeout_s=0.2, cap_s=0.1)

    def test_bad_jitter(self):
        with pytest.raises(ValueError):
            BackoffPolicy(jitter_frac=1.0)

    def test_negative_attempt(self):
        with pytest.raises(ValueError):
            BackoffPolicy().timeout_for(-1)
        with pytest.raises(ValueError):
            BackoffPolicy().schedule(-1)


def supervisor(**kwargs) -> LinkSupervisor:
    defaults = dict(degraded_after=3, down_after=8, recover_after=2)
    defaults.update(kwargs)
    return LinkSupervisor(**defaults)


class TestSupervisorDegradation:
    def test_starts_up(self):
        assert supervisor().state is LinkState.UP

    def test_crc_streak_degrades(self):
        sup = supervisor()
        for i in range(3):
            sup.on_failure(float(i), reason="crc")
        assert sup.state is LinkState.DEGRADED
        assert sup.transitions[0].reason == "crc"

    def test_ack_loss_streak_does_not_degrade(self):
        # Stepping the design down cannot repair a lossy ACK path, so
        # pure ACK loss must never push the link into DEGRADED.
        sup = supervisor()
        for i in range(7):
            sup.on_failure(float(i), reason="ack-loss")
        assert sup.state is LinkState.UP

    def test_success_resets_both_streaks(self):
        sup = supervisor()
        sup.on_failure(0.0, reason="crc")
        sup.on_failure(1.0, reason="crc")
        sup.on_success(2.0)
        assert sup.crc_streak == 0
        assert sup.fail_streak == 0
        sup.on_failure(3.0, reason="crc")
        sup.on_failure(4.0, reason="crc")
        assert sup.state is LinkState.UP

    def test_recovery_needs_consecutive_successes(self):
        sup = supervisor()
        for i in range(3):
            sup.on_failure(float(i), reason="crc")
        sup.on_success(3.0)
        assert sup.state is LinkState.DEGRADED
        sup.on_success(4.0)
        assert sup.state is LinkState.UP
        assert sup.transitions[-1].reason == "recovered"


class TestSupervisorDownAndProbing:
    def test_any_failure_kind_reaches_down(self):
        sup = supervisor()
        for i in range(8):
            sup.on_failure(float(i), reason="ack-loss")
        assert sup.state is LinkState.DOWN

    def test_mixed_streak_reaches_down_via_degraded(self):
        sup = supervisor()
        for i in range(8):
            sup.on_failure(float(i), reason="crc")
        assert sup.state is LinkState.DOWN
        states = [tr.target for tr in sup.transitions]
        assert states == [LinkState.DEGRADED, LinkState.DOWN]

    def test_probe_recovery_after_channel_outage_is_conservative(self):
        # The outage was CRC-caused: probes prove the link breathes, but
        # full-rate frames are still unproven -> re-enter DEGRADED.
        sup = supervisor()
        for i in range(8):
            sup.on_failure(float(i), reason="crc")
        sup.start_probing(9.0)
        assert sup.state is LinkState.PROBING
        sup.on_probe_success(10.0)
        sup.on_probe_success(11.0)
        assert sup.state is LinkState.DEGRADED
        assert sup.transitions[-1].reason == "probe-recovered"

    def test_probe_recovery_after_ack_outage_restores_up(self):
        # There was never channel evidence against full-rate frames:
        # a recovered ACK path re-enters UP directly.
        sup = supervisor()
        for i in range(8):
            sup.on_failure(float(i), reason="ack-loss")
        sup.start_probing(9.0)
        sup.on_probe_success(10.0)
        sup.on_probe_success(11.0)
        assert sup.state is LinkState.UP

    def test_probe_failure_returns_to_down(self):
        sup = supervisor()
        for i in range(8):
            sup.on_failure(float(i), reason="crc")
        sup.start_probing(9.0)
        sup.on_probe_success(10.0)
        sup.on_probe_failure(11.0)
        assert sup.state is LinkState.DOWN
        sup.start_probing(12.0)
        sup.on_probe_success(13.0)
        sup.on_probe_success(14.0)
        assert sup.state is LinkState.DEGRADED  # streak restarted

    def test_start_probing_only_from_down(self):
        sup = supervisor()
        assert sup.start_probing(0.0) is LinkState.UP
        assert not sup.transitions

    def test_data_suspended(self):
        sup = supervisor()
        assert not sup.data_suspended
        for i in range(8):
            sup.on_failure(float(i), reason="crc")
        assert sup.data_suspended
        sup.start_probing(9.0)
        assert sup.data_suspended


class TestSupervisorBookkeeping:
    def test_journal_records_transitions(self):
        journal = EventJournal()
        sup = supervisor(journal=journal, actor="lnk")
        for i in range(3):
            sup.on_failure(float(i), reason="crc")
        events = journal.of_kind("link-state")
        assert len(events) == 1
        assert events[0].actor == "lnk"
        assert events[0].get("source") == "up"
        assert events[0].get("target") == "degraded"

    def test_time_in_state(self):
        sup = supervisor()
        for i in range(3):
            sup.on_failure(2.0 + float(i), reason="crc")  # DEGRADED at 4.0
        sup.on_success(6.0)
        sup.on_success(7.0)                               # UP at 7.0
        assert sup.time_in_state(LinkState.UP, 10.0) \
            == pytest.approx(4.0 + 3.0)
        assert sup.time_in_state(LinkState.DEGRADED, 10.0) \
            == pytest.approx(3.0)
        assert sup.time_in_state(LinkState.DOWN, 10.0) == 0.0

    def test_time_in_state_window_clamps(self):
        sup = supervisor()
        for i in range(3):
            sup.on_failure(float(i), reason="crc")  # DEGRADED at 2.0
        assert sup.time_in_state(LinkState.DEGRADED, 5.0, since_s=3.0) \
            == pytest.approx(2.0)
        with pytest.raises(ValueError):
            sup.time_in_state(LinkState.UP, 1.0, since_s=2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            LinkSupervisor(degraded_after=0)
        with pytest.raises(ValueError):
            LinkSupervisor(degraded_after=3, down_after=3)
        with pytest.raises(ValueError):
            LinkSupervisor(recover_after=0)

    @settings(max_examples=60, deadline=None)
    @given(reasons=st.lists(st.sampled_from(["crc", "ack-loss", "ok"]),
                            min_size=1, max_size=60))
    def test_state_is_always_reachable_and_consistent(self, reasons):
        """Any evidence sequence leaves a valid state and sane streaks."""
        sup = supervisor()
        for i, reason in enumerate(reasons):
            if reason == "ok":
                sup.on_success(float(i))
            else:
                sup.on_failure(float(i), reason=reason)
            if sup.state is LinkState.DOWN:
                sup.start_probing(float(i) + 0.5)
        assert sup.state in LinkState
        assert sup.crc_streak <= sup.fail_streak
        # Transitions never repeat a state and are time-ordered.
        times = [tr.time for tr in sup.transitions]
        assert times == sorted(times)
        for tr in sup.transitions:
            assert tr.source is not tr.target


class TestSnapshot:
    def test_initial_snapshot(self):
        snap = supervisor().snapshot()
        assert snap == {"state": "up", "cause": "", "fail_streak": 0,
                        "crc_streak": 0, "ok_streak": 0, "transitions": 0,
                        "data_suspended": False, "backoff_remaining_s": 0.0}

    def test_snapshot_tracks_evidence_and_cause(self):
        sup = supervisor()
        for i in range(3):
            sup.on_failure(float(i), reason="crc")
        snap = sup.snapshot()
        assert snap["state"] == "degraded"
        assert snap["cause"] == "crc"
        assert snap["fail_streak"] == 3
        assert snap["crc_streak"] == 3
        assert snap["transitions"] == 1
        assert snap["data_suspended"] is False

    def test_backoff_remaining_follows_the_schedule(self):
        sup = supervisor()
        policy = BackoffPolicy(base_timeout_s=0.01, factor=2.0, cap_s=0.16)
        assert sup.snapshot(policy)["backoff_remaining_s"] == 0.0
        sup.on_failure(0.0)
        assert sup.snapshot(policy)["backoff_remaining_s"] \
            == pytest.approx(policy.timeout_for(0))
        sup.on_failure(1.0)
        assert sup.snapshot(policy)["backoff_remaining_s"] \
            == pytest.approx(policy.timeout_for(1))
        sup.on_success(2.0)
        assert sup.snapshot(policy)["backoff_remaining_s"] == 0.0

    def test_snapshot_is_json_serializable(self):
        import json

        sup = supervisor()
        for i in range(9):
            sup.on_failure(float(i), reason="crc")
        sup.start_probing(9.0)
        round_tripped = json.loads(json.dumps(sup.snapshot(BackoffPolicy())))
        assert round_tripped["state"] == "probing"
        assert round_tripped["data_suspended"] is True
