"""The Wi-Fi ACK side channel."""

import pytest

from repro.link import WifiUplink


class TestDelivery:
    def test_latency_applied(self, rng):
        uplink = WifiUplink(latency_s=2e-3, jitter_s=0.0)
        assert uplink.deliver(1.0, rng) == pytest.approx(1.002)

    def test_jitter_bounded(self, rng):
        uplink = WifiUplink(latency_s=2e-3, jitter_s=0.5e-3)
        for _ in range(100):
            arrival = uplink.deliver(0.0, rng)
            assert 1.5e-3 <= arrival <= 2.5e-3

    def test_lossless_by_default(self, rng):
        uplink = WifiUplink()
        assert all(uplink.deliver(0.0, rng) is not None for _ in range(50))

    def test_loss_rate_statistics(self, rng):
        uplink = WifiUplink(loss_probability=0.3)
        losses = sum(uplink.deliver(0.0, rng) is None for _ in range(5000))
        assert losses / 5000 == pytest.approx(0.3, abs=0.03)

    def test_zero_latency_with_jitter_is_a_valid_test_double(self, rng):
        # Regression: __post_init__ used to reject jitter_s > latency_s
        # even at latency zero, outlawing a legitimate configuration.
        uplink = WifiUplink(latency_s=0.0, jitter_s=1e-3)
        for _ in range(200):
            arrival = uplink.deliver(5.0, rng)
            assert arrival >= 5.0  # the delay is clamped at zero

    def test_arrival_never_precedes_sending(self, rng):
        uplink = WifiUplink(latency_s=1e-3, jitter_s=1e-3)
        assert all(uplink.deliver(2.0, rng) >= 2.0 for _ in range(200))


class TestValidation:
    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            WifiUplink(latency_s=-1.0)

    def test_jitter_above_latency_rejected(self):
        with pytest.raises(ValueError):
            WifiUplink(latency_s=1e-3, jitter_s=2e-3)

    def test_loss_probability_range(self):
        with pytest.raises(ValueError):
            WifiUplink(loss_probability=1.0)
