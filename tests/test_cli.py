"""The ``python -m repro`` command-line interface."""

import io
import json

import pytest

from repro.cli import main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestList:
    def test_lists_all_ids(self):
        code, text = run_cli("list")
        assert code == 0
        ids = text.split()
        assert "fig15" in ids
        assert "headline" in ids
        assert len(ids) >= 14


class TestRun:
    def test_single_experiment(self):
        code, text = run_cli("run", "fig04")
        assert code == 0
        assert "PSER" in text

    def test_multiple_experiments(self):
        code, text = run_cli("run", "fig04", "table2-direct")
        assert code == 0
        assert "fig04" in text
        assert "table2-direct" in text

    def test_unknown_id_fails(self, capsys):
        code, _ = run_cli("run", "fig99")
        assert code == 2

    def test_csv_export(self, tmp_path):
        code, text = run_cli("run", "fig04", "--csv", str(tmp_path))
        assert code == 0
        assert (tmp_path / "fig04.csv").exists()
        assert "[csv]" in text

    def test_json_export(self, tmp_path):
        code, _ = run_cli("run", "table2-direct", "--json", str(tmp_path))
        assert code == 0
        payload = json.loads((tmp_path / "table2-direct.json").read_text())
        assert payload["kind"] == "table"

    def test_jobs_flag_matches_serial(self):
        code_serial, text_serial = run_cli("run", "ext-burst")
        code_jobs, text_jobs = run_cli("run", "ext-burst", "--jobs", "2")
        assert code_serial == code_jobs == 0
        # The seeding contract: worker count must not change results.
        assert text_jobs == text_serial

    def test_jobs_accepted_by_non_sweep_experiments(self):
        code, text = run_cli("run", "fig04", "--jobs", "2")
        assert code == 0
        assert "PSER" in text

    def test_jobs_must_be_positive(self):
        code, _ = run_cli("run", "fig04", "--jobs", "0")
        assert code == 2


class TestJournal:
    def test_prints_metrics_and_trace(self):
        code, text = run_cli("journal", "--grid", "1x2", "--nodes", "2",
                             "--duration", "8", "--tail", "4")
        assert code == 0
        assert "aggregate goodput" in text
        assert "journal digest" in text
        assert "event journal:" in text

    def test_jsonl_export(self, tmp_path):
        target = tmp_path / "trace.jsonl"
        code, text = run_cli("journal", "--grid", "1x1", "--nodes", "1",
                             "--duration", "5", "--jsonl", str(target))
        assert code == 0
        assert target.exists()
        rows = [json.loads(line)
                for line in target.read_text().splitlines()]
        assert rows
        assert {"seq", "time", "kind"} <= set(rows[0])

    def test_same_seed_same_digest(self):
        _, first = run_cli("journal", "--grid", "1x2", "--nodes", "2",
                           "--duration", "6", "--seed", "9")
        _, second = run_cli("journal", "--grid", "1x2", "--nodes", "2",
                            "--duration", "6", "--seed", "9")
        assert first == second

    def test_bad_grid_rejected(self):
        code, _ = run_cli("journal", "--grid", "2by2")
        assert code == 2

    def test_non_positive_dimensions_rejected(self):
        code, _ = run_cli("journal", "--grid", "0x2")
        assert code == 2


class TestChaos:
    def test_prints_the_resilience_report(self):
        code, text = run_cli("chaos", "--schedule", "blinding",
                             "--duration", "20", "--seed", "7")
        assert code == 0
        assert "chaos schedule 'blinding'" in text
        assert "resilience report (supervised" in text
        assert "journal digest" in text

    def test_unsupervised_baseline_flag(self):
        code, text = run_cli("chaos", "--schedule", "blinding",
                             "--duration", "20", "--unsupervised")
        assert code == 0
        assert "resilience report (unsupervised" in text

    def test_same_seed_same_output(self):
        args = ("chaos", "--schedule", "mixed", "--duration", "20",
                "--seed", "13")
        _, first = run_cli(*args)
        _, second = run_cli(*args)
        assert first == second

    def test_random_schedule_is_seeded(self):
        args = ("chaos", "--schedule", "random", "--duration", "15",
                "--seed", "5", "--intensity", "0.8")
        code, first = run_cli(*args)
        assert code == 0
        _, second = run_cli(*args)
        assert first == second

    def test_unknown_schedule_rejected(self):
        code, _ = run_cli("chaos", "--schedule", "nope")
        assert code == 2

    def test_bad_duration_rejected(self):
        code, _ = run_cli("chaos", "--duration", "0")
        assert code == 2

    def test_bad_intensity_rejected(self):
        code, _ = run_cli("chaos", "--schedule", "random",
                          "--intensity", "1.5")
        assert code == 2


class TestDesign:
    def test_valid_level(self):
        code, text = run_cli("design", "0.35")
        assert code == 0
        assert "super-symbol" in text
        assert "kbps" in text

    def test_out_of_range(self):
        code, _ = run_cli("design", "0.001")
        assert code == 2


class TestInfo:
    def test_shows_configuration(self):
        code, text = run_cli("info")
        assert code == 0
        assert "125 kHz" in text
        assert "candidates" in text


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
