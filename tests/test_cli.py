"""The ``python -m repro`` command-line interface.

Error contract under test throughout: bad arguments put a message on
stderr and return exit code 2, while stdout stays reserved for results.
"""

import io
import json

import pytest

from repro.cli import main


def run_cli(*argv):
    out, err = io.StringIO(), io.StringIO()
    code = main(list(argv), out=out, err=err)
    return code, out.getvalue(), err.getvalue()


class TestList:
    def test_lists_all_ids(self):
        code, text, _ = run_cli("list")
        assert code == 0
        ids = text.split()
        assert "fig15" in ids
        assert "headline" in ids
        assert len(ids) >= 14


class TestRun:
    def test_single_experiment(self):
        code, text, err = run_cli("run", "fig04")
        assert code == 0
        assert "PSER" in text
        assert err == ""

    def test_multiple_experiments(self):
        code, text, _ = run_cli("run", "fig04", "table2-direct")
        assert code == 0
        assert "fig04" in text
        assert "table2-direct" in text

    def test_unknown_id_fails_on_stderr(self):
        code, text, err = run_cli("run", "fig99")
        assert code == 2
        assert "fig99" in err
        assert text == ""

    def test_csv_export(self, tmp_path):
        code, text, _ = run_cli("run", "fig04", "--csv", str(tmp_path))
        assert code == 0
        assert (tmp_path / "fig04.csv").exists()
        assert "[csv]" in text

    def test_json_export(self, tmp_path):
        code, _, _ = run_cli("run", "table2-direct", "--json", str(tmp_path))
        assert code == 0
        payload = json.loads((tmp_path / "table2-direct.json").read_text())
        assert payload["kind"] == "table"

    def test_export_writes_manifest_sidecar(self, tmp_path):
        code, text, _ = run_cli("run", "fig04", "--csv", str(tmp_path))
        assert code == 0
        sidecar = tmp_path / "fig04.manifest.json"
        assert sidecar.exists()
        assert "[manifest]" in text
        payload = json.loads(sidecar.read_text())
        assert payload["kind"] == "manifest"
        assert payload["experiment_id"] == "fig04"
        assert len(payload["config_digest"]) == 64

    def test_manifest_does_not_perturb_csv(self, tmp_path):
        run_cli("run", "fig04", "--csv", str(tmp_path / "a"))
        run_cli("run", "fig04", "--csv", str(tmp_path / "b"))
        assert ((tmp_path / "a" / "fig04.csv").read_bytes()
                == (tmp_path / "b" / "fig04.csv").read_bytes())

    def test_jobs_flag_matches_serial(self):
        code_serial, text_serial, _ = run_cli("run", "ext-burst")
        code_jobs, text_jobs, _ = run_cli("run", "ext-burst", "--jobs", "2")
        assert code_serial == code_jobs == 0
        # The seeding contract: worker count must not change results.
        assert text_jobs == text_serial

    def test_jobs_accepted_by_non_sweep_experiments(self):
        code, text, _ = run_cli("run", "fig04", "--jobs", "2")
        assert code == 0
        assert "PSER" in text

    def test_jobs_must_be_positive(self):
        code, _, err = run_cli("run", "fig04", "--jobs", "0")
        assert code == 2
        assert "--jobs" in err


class TestTelemetry:
    def test_run_writes_a_jsonl_dump(self, tmp_path):
        target = tmp_path / "telemetry.jsonl"
        code, text, _ = run_cli("run", "fig04", "--telemetry", str(target))
        assert code == 0
        assert "[telemetry]" in text
        rows = [json.loads(line)
                for line in target.read_text().splitlines()]
        kinds = {row["type"] for row in rows}
        assert "span" in kinds
        assert "manifest" in kinds
        (manifest,) = [r for r in rows if r["type"] == "manifest"]
        assert manifest["experiment_id"] == "fig04"

    def test_stats_renders_the_dump(self, tmp_path):
        target = tmp_path / "telemetry.jsonl"
        run_cli("run", "fig04", "--telemetry", str(target))
        code, text, err = run_cli("stats", str(target))
        assert code == 0
        assert err == ""
        assert text.startswith("telemetry:")
        assert "experiment.fig04" in text
        assert "manifests:" in text

    def test_stats_prometheus_format(self, tmp_path):
        target = tmp_path / "telemetry.jsonl"
        run_cli("run", "ext-burst", "--telemetry", str(target))
        code, text, _ = run_cli("stats", str(target), "--prometheus")
        assert code == 0
        assert "# TYPE repro_sweep_points_total counter" in text

    def test_telemetry_does_not_change_results(self, tmp_path):
        _, plain, _ = run_cli("run", "ext-burst")
        _, traced, _ = run_cli("run", "ext-burst", "--telemetry",
                               str(tmp_path / "t.jsonl"))
        # Identical stdout apart from the trailing [telemetry] line.
        assert traced.startswith(plain)
        extra = traced[len(plain):].strip().splitlines()
        assert len(extra) == 1 and extra[0].startswith("[telemetry]")

    def test_stats_missing_file(self, tmp_path):
        code, text, err = run_cli("stats", str(tmp_path / "nope.jsonl"))
        assert code == 2
        assert "no such telemetry file" in err
        assert text == ""

    def test_stats_rejects_non_telemetry_file(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("this is not json\n")
        code, _, err = run_cli("stats", str(bad))
        assert code == 2
        assert "not a telemetry JSONL file" in err


class TestJournal:
    def test_prints_metrics_and_trace(self):
        code, text, _ = run_cli("journal", "--grid", "1x2", "--nodes", "2",
                                "--duration", "8", "--tail", "4")
        assert code == 0
        assert "aggregate goodput" in text
        assert "journal digest" in text
        assert "event journal:" in text

    def test_jsonl_export(self, tmp_path):
        target = tmp_path / "trace.jsonl"
        code, text, _ = run_cli("journal", "--grid", "1x1", "--nodes", "1",
                                "--duration", "5", "--jsonl", str(target))
        assert code == 0
        assert target.exists()
        rows = [json.loads(line)
                for line in target.read_text().splitlines()]
        assert rows
        assert {"seq", "time", "kind"} <= set(rows[0])

    def test_same_seed_same_digest(self):
        _, first, _ = run_cli("journal", "--grid", "1x2", "--nodes", "2",
                              "--duration", "6", "--seed", "9")
        _, second, _ = run_cli("journal", "--grid", "1x2", "--nodes", "2",
                               "--duration", "6", "--seed", "9")
        assert first == second

    def test_bad_grid_rejected(self):
        code, text, err = run_cli("journal", "--grid", "2by2")
        assert code == 2
        assert "--grid" in err
        assert text == ""

    def test_non_positive_dimensions_rejected(self):
        code, _, err = run_cli("journal", "--grid", "0x2")
        assert code == 2
        assert "positive" in err

    def test_negative_tail_rejected(self):
        code, _, err = run_cli("journal", "--grid", "1x1", "--tail", "-1")
        assert code == 2
        assert "--tail" in err


class TestChaos:
    def test_prints_the_resilience_report(self):
        code, text, _ = run_cli("chaos", "--schedule", "blinding",
                                "--duration", "20", "--seed", "7")
        assert code == 0
        assert "chaos schedule 'blinding'" in text
        assert "resilience report (supervised" in text
        assert "journal digest" in text

    def test_unsupervised_baseline_flag(self):
        code, text, _ = run_cli("chaos", "--schedule", "blinding",
                                "--duration", "20", "--unsupervised")
        assert code == 0
        assert "resilience report (unsupervised" in text

    def test_same_seed_same_output(self):
        args = ("chaos", "--schedule", "mixed", "--duration", "20",
                "--seed", "13")
        _, first, _ = run_cli(*args)
        _, second, _ = run_cli(*args)
        assert first == second

    def test_random_schedule_is_seeded(self):
        args = ("chaos", "--schedule", "random", "--duration", "15",
                "--seed", "5", "--intensity", "0.8")
        code, first, _ = run_cli(*args)
        assert code == 0
        _, second, _ = run_cli(*args)
        assert first == second

    def test_unknown_schedule_rejected(self):
        code, text, err = run_cli("chaos", "--schedule", "nope")
        assert code == 2
        assert "'nope'" in err
        assert text == ""

    def test_bad_duration_rejected(self):
        code, _, err = run_cli("chaos", "--duration", "0")
        assert code == 2
        assert "--duration" in err

    def test_bad_intensity_rejected(self):
        code, _, err = run_cli("chaos", "--schedule", "random",
                               "--intensity", "1.5")
        assert code == 2
        assert "--intensity" in err


class TestScenario:
    """The trace-driven scenario engine behind ``repro scenario``."""

    @staticmethod
    def _tiny_doc(**slo):
        return {
            "version": 1,
            "name": "tiny",
            "duration_s": 40.0,
            "tick_s": 2.0,
            "report_window_s": 20.0,
            "rooms": [{
                "id": "a", "rows": 1, "cols": 1,
                "occupancy": {"population": 1, "depart_lo_s": 30.0,
                              "depart_hi_s": 30.0},
            }],
            "slo": slo,
        }

    def test_list_names_the_shipped_set(self):
        code, text, err = run_cli("scenario", "list")
        assert code == 0
        assert err == ""
        assert "huddle-smoke" in text
        assert "occupants" in text

    def test_show_prints_the_versioned_document(self):
        code, text, _ = run_cli("scenario", "show", "huddle-smoke")
        assert code == 0
        payload = json.loads(text)
        assert payload["version"] == 1
        assert payload["name"] == "huddle-smoke"

    def test_show_round_trips_through_a_file(self, tmp_path):
        _, shown, _ = run_cli("scenario", "show", "huddle-smoke")
        path = tmp_path / "day.json"
        path.write_text(shown)
        code, text, _ = run_cli("scenario", "show", str(path), "--file")
        assert code == 0
        assert json.loads(text) == json.loads(shown)

    def test_unknown_name_lists_known_on_stderr(self):
        code, text, err = run_cli("scenario", "run", "nope")
        assert code == 2
        assert text == ""
        assert "nope" in err
        assert "huddle-smoke" in err

    def test_missing_file_rejected(self, tmp_path):
        code, _, err = run_cli("scenario", "run",
                               str(tmp_path / "ghost.json"), "--file")
        assert code == 2
        assert "no such scenario file" in err

    def test_invalid_file_rejected(self, tmp_path):
        bad = tmp_path / "bad.json"
        doc = self._tiny_doc()
        doc["version"] = 99
        bad.write_text(json.dumps(doc))
        code, _, err = run_cli("scenario", "show", str(bad), "--file")
        assert code == 2
        assert "invalid scenario file" in err

    def test_run_reports_passes_and_writes_the_artifact(self, tmp_path):
        target = tmp_path / "report.json"
        code, text, err = run_cli("scenario", "run", "huddle-smoke",
                                  "--report", str(target))
        assert code == 0
        assert err == ""
        assert "journal digest" in text
        assert "SLO: PASS" in text
        payload = json.loads(target.read_text())
        assert payload["kind"] == "scenario-report"
        assert payload["passed"] is True
        assert payload["manifest"]["experiment_id"] == \
            "scenario/huddle-smoke"
        assert payload["journal_digest"] == \
            payload["manifest"]["journal_digest"]

    def test_reruns_print_identical_reports(self, tmp_path):
        doc = self._tiny_doc()
        path = tmp_path / "tiny.json"
        path.write_text(json.dumps(doc))
        _, first, _ = run_cli("scenario", "run", str(path), "--file")
        _, second, _ = run_cli("scenario", "run", str(path), "--file")
        assert first == second

    def test_slo_miss_exits_1(self, tmp_path):
        doc = self._tiny_doc(min_goodput_bps=1e12)
        path = tmp_path / "strict.json"
        path.write_text(json.dumps(doc))
        code, text, _ = run_cli("scenario", "run", str(path), "--file")
        assert code == 1
        assert "SLO: FAIL" in text

    def test_bad_regions_rejected(self):
        for regions in ("0", "99"):
            code, text, err = run_cli("scenario", "run", "huddle-smoke",
                                      "--regions", regions)
            assert code == 2
            assert text == ""
            assert "--regions" in err


class TestServe:
    def test_load_mode_runs_a_fleet_and_reports(self):
        code, text, err = run_cli("serve", "--load", "--clients", "12",
                                  "--requests", "3", "--seed", "5")
        assert code == 0
        assert err == ""
        assert "listening on 127.0.0.1:" in text
        assert "12 sent" not in text          # totals, not per-client
        assert "36 sent, 36 ok, 0 shed, 0 errors, 0 dropped" in text
        assert "coalesce ratio" in text

    def test_load_mode_writes_telemetry(self, tmp_path):
        target = tmp_path / "serve.jsonl"
        code, text, _ = run_cli("serve", "--load", "--clients", "4",
                                "--requests", "2",
                                "--telemetry", str(target))
        assert code == 0
        assert "[telemetry]" in text
        rows = [json.loads(line) for line in target.read_text().splitlines()]
        assert any(r.get("name") == "repro_serve_adapt_requests_total"
                   for r in rows)
        # And repro stats renders the dump.
        code, text, _ = run_cli("stats", str(target))
        assert code == 0
        assert "repro_serve_adapt_requests_total" in text

    def test_zero_window_disables_coalescing(self):
        code, text, _ = run_cli("serve", "--load", "--clients", "4",
                                "--requests", "2",
                                "--coalesce-window", "0")
        assert code == 0
        assert "8 adapt requests, 8 designer calls" in text

    def test_bad_window_rejected(self):
        code, text, err = run_cli("serve", "--coalesce-window", "-1",
                                  "--load")
        assert code == 2
        assert "--coalesce-window" in err
        assert text == ""

    def test_bad_queue_limit_rejected(self):
        code, _, err = run_cli("serve", "--queue-limit", "0", "--load")
        assert code == 2
        assert "queue_limit" in err

    def test_bad_clients_rejected(self):
        code, _, err = run_cli("serve", "--load", "--clients", "0")
        assert code == 2
        assert "clients" in err


class TestDesign:
    def test_valid_level(self):
        code, text, _ = run_cli("design", "0.35")
        assert code == 0
        assert "super-symbol" in text
        assert "kbps" in text

    def test_out_of_range(self):
        code, text, err = run_cli("design", "0.001")
        assert code == 2
        assert "supported range" in err
        assert text == ""


class TestInfo:
    def test_shows_configuration(self):
        code, text, _ = run_cli("info")
        assert code == 0
        assert "125 kHz" in text
        assert "candidates" in text


class TestTraceAndProfile:
    def test_run_trace_exports_valid_chrome_trace(self, tmp_path):
        from repro.obs import validate_trace

        target = tmp_path / "trace.json"
        code, text, _ = run_cli("run", "fig04", "--trace", str(target))
        assert code == 0
        assert "[trace]" in text
        payload = json.loads(target.read_text())
        validate_trace(payload)
        names = {e["name"] for e in payload["traceEvents"]
                 if e["ph"] == "X"}
        assert "experiment.fig04" in names

    def test_parallel_run_trace_carries_shard_pids_and_flows(self, tmp_path):
        target = tmp_path / "trace.json"
        code, _, _ = run_cli("run", "fig15", "--jobs", "2",
                             "--trace", str(target))
        assert code == 0
        payload = json.loads(target.read_text())
        pids = {e["pid"] for e in payload["traceEvents"] if e["ph"] == "X"}
        assert 1 in pids and len(pids) > 1  # parent + sweep shards
        assert any(e["ph"] == "s" for e in payload["traceEvents"])
        assert any(e["ph"] == "f" for e in payload["traceEvents"])

    def test_run_profile_prints_hot_path_table(self):
        code, text, err = run_cli("run", "fig04", "--profile")
        assert code == 0
        assert err == ""
        assert "profile:" in text
        assert "excl %" in text
        assert "experiment.fig04" in text

    def test_profile_does_not_change_results(self):
        _, plain, _ = run_cli("run", "fig04")
        _, profiled, _ = run_cli("run", "fig04", "--profile")
        assert profiled.startswith(plain)

    def test_stats_profile_renders_from_dump(self, tmp_path):
        target = tmp_path / "telemetry.jsonl"
        run_cli("run", "fig04", "--telemetry", str(target))
        code, text, err = run_cli("stats", str(target), "--profile")
        assert code == 0
        assert err == ""
        assert text.startswith("profile:")
        assert "experiment.fig04" in text


class TestBench:
    """The perf harness: run / diff / history against a JSONL store."""

    WORKLOAD = "codec.roundtrip"

    def _run(self, history, *extra):
        return run_cli("bench", "run", self.WORKLOAD, "--repeats", "2",
                       "--warmup", "0", "--history", str(history), *extra)

    def test_first_run_records_without_flags(self, tmp_path):
        history = tmp_path / "hist.jsonl"
        code, text, err = self._run(history)
        assert code == 0
        assert err == ""
        assert self.WORKLOAD in text
        assert "no regressions" in text
        assert history.exists()

    def test_identical_reruns_never_flag(self, tmp_path, monkeypatch):
        # The fake timer makes both runs byte-identical: this pins the
        # run/record/gate plumbing, while the gate's tolerance to real
        # timing noise is covered by the unit and property tests in
        # tests/obs/test_bench.py.
        monkeypatch.setenv("REPRO_BENCH_TIMER", "fake")
        history = tmp_path / "hist.jsonl"
        assert self._run(history)[0] == 0
        code, text, _ = self._run(history)
        assert code == 0
        assert "no regressions" in text

    def test_synthetic_slowdown_is_flagged_but_not_recorded(
            self, tmp_path, monkeypatch):
        from repro.obs.bench import load_history

        monkeypatch.setenv("REPRO_BENCH_TIMER", "fake")
        history = tmp_path / "hist.jsonl"
        assert self._run(history)[0] == 0
        before = len(load_history(history))
        code, text, _ = self._run(history, "--slowdown", "2.0")
        assert code == 1
        assert f"REGRESSION {self.WORKLOAD}:" in text
        assert "not recorded" in text
        assert len(load_history(history)) == before

    def test_unknown_timer_mode_exits_2(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_TIMER", "sundial")
        code, text, err = self._run(tmp_path / "hist.jsonl")
        assert code == 2
        assert "REPRO_BENCH_TIMER" in err

    def test_unknown_workload_lists_known(self, tmp_path):
        code, text, err = run_cli("bench", "run", "nope",
                                  "--history", str(tmp_path / "h.jsonl"))
        assert code == 2
        assert text == ""
        assert "unknown workloads" in err
        assert self.WORKLOAD in err

    def test_bad_arguments_exit_2(self, tmp_path):
        history = str(tmp_path / "h.jsonl")
        for argv in (("bench", "run", "--repeats", "0"),
                     ("bench", "run", "--warmup", "-1"),
                     ("bench", "run", "--slowdown", "0"),
                     ("bench", "run", "--rel-floor", "-0.1"),
                     ("bench", "diff", "--iqr-mult", "-1")):
            code, _, err = run_cli(*argv, "--history", history)
            assert code == 2, argv
            assert err != ""

    def test_diff_needs_two_runs(self, tmp_path):
        history = tmp_path / "hist.jsonl"
        code, _, err = run_cli("bench", "diff", "--history", str(history))
        assert code == 2
        assert "no bench history" in err
        self._run(history)
        code, text, _ = run_cli("bench", "diff", "--history", str(history))
        assert code == 0
        assert "nothing to diff" in text

    def test_diff_rejudges_the_last_run(self, tmp_path):
        from repro.obs.bench import (BenchRecord, append_history,
                                     load_history)

        history = tmp_path / "hist.jsonl"
        self._run(history)
        # Append a genuinely slow later run by hand (the CLI refuses to
        # record synthetic ones), then re-judge it.
        slow = [BenchRecord.from_samples(
            r.name, [3.0 * s for s in r.samples_s], warmup=r.warmup,
            run_id="slow-run", recorded_at_utc=r.recorded_at_utc)
            for r in load_history(history)]
        append_history(slow, history)
        code, text, _ = run_cli("bench", "diff", "--history", str(history))
        assert code == 1
        assert f"REGRESSION {self.WORKLOAD}:" in text

    def test_history_lists_and_filters(self, tmp_path):
        history = tmp_path / "hist.jsonl"
        self._run(history)
        code, text, _ = run_cli("bench", "history",
                                "--history", str(history))
        assert code == 0
        assert self.WORKLOAD in text
        code, _, err = run_cli("bench", "history", "other.workload",
                               "--history", str(history))
        assert code == 2
        assert "no records" in err

    def test_history_missing_file(self, tmp_path):
        code, _, err = run_cli("bench", "history",
                               "--history", str(tmp_path / "none.jsonl"))
        assert code == 2
        assert "no bench history" in err


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
