"""Daylight compilation: seed purity, room independence, night skies."""

from repro.lighting.ambient import DaylightAmbient
from repro.scenarios import (
    DaylightSpec,
    build_daylight,
    clear_sky,
    night_sky,
    overcast_sky,
)
from repro.scenarios.daylight import sky_seed


class TestSkySeed:
    def test_pure_in_its_arguments(self):
        assert sky_seed(7, 0) == sky_seed(7, 0)
        assert sky_seed(7, 3) == sky_seed(7, 3)

    def test_rooms_never_share_a_stream(self):
        seeds = [sky_seed(7, room) for room in range(8)]
        assert len(set(seeds)) == len(seeds)

    def test_scenario_seed_separates_buildings(self):
        assert sky_seed(7, 0) != sky_seed(8, 0)


class TestBuildDaylight:
    SPEC = DaylightSpec(sunrise_s=0.0, sunset_s=600.0, peak_level=0.8,
                        night_level=0.05, cloud_depth=0.5,
                        cloud_time_scale_s=30.0)

    def test_same_room_same_profile(self):
        a = build_daylight(self.SPEC, 11, 2)
        b = build_daylight(self.SPEC, 11, 2)
        assert [a.intensity(float(t)) for t in range(0, 600, 7)] \
            == [b.intensity(float(t)) for t in range(0, 600, 7)]

    def test_adjacent_rooms_see_different_clouds(self):
        a = build_daylight(self.SPEC, 11, 0)
        b = build_daylight(self.SPEC, 11, 1)
        assert any(a.intensity(float(t)) != b.intensity(float(t))
                   for t in range(30, 600, 7))

    def test_window_gain_scales_the_whole_band(self):
        dimmed = build_daylight(
            DaylightSpec(sunrise_s=0.0, sunset_s=600.0, peak_level=0.8,
                         night_level=0.05, window_gain=0.5), 11, 0)
        assert isinstance(dimmed, DaylightAmbient)
        assert dimmed.peak_level == 0.4
        assert dimmed.night_level == 0.025

    def test_levels_stay_inside_the_declared_band(self):
        profile = build_daylight(self.SPEC, 11, 0)
        for t in range(0, 700, 5):
            level = profile.intensity(float(t))
            assert 0.0 <= level <= self.SPEC.peak_level + 1e-12


class TestFactories:
    def test_night_sky_never_sees_the_sun(self):
        duration = 3600.0
        profile = build_daylight(night_sky(duration, night_level=0.03),
                                 5, 0)
        for t in range(0, int(duration) + 1, 60):
            assert profile.intensity(float(t)) == 0.03

    def test_clear_sky_is_calmer_than_overcast(self):
        clear = clear_sky(0.0, 600.0)
        stormy = overcast_sky(0.0, 600.0)
        assert clear.cloud_depth < stormy.cloud_depth
        assert clear.cloud_time_scale_s > stormy.cloud_time_scale_s

    def test_factories_build_valid_specs(self):
        for spec in (clear_sky(0.0, 100.0, window_gain=0.6),
                     overcast_sky(0.0, 100.0, cloud_time_scale_s=15.0),
                     night_sky(100.0)):
            profile = build_daylight(spec, 1, 0)
            assert 0.0 <= profile.intensity(50.0) <= 1.0
