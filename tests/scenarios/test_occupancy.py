"""Occupancy compilation: seeded traces, complements, window algebra."""

import dataclasses

from repro.scenarios import (
    OccupancySpec,
    build_occupants,
    downtime_windows,
    merge_windows,
)

SPEC = OccupancySpec(population=4, arrive_lo_s=0.0, arrive_hi_s=100.0,
                     depart_lo_s=500.0, depart_hi_s=900.0)

BREAKS = OccupancySpec(population=3, arrive_lo_s=0.0, arrive_hi_s=100.0,
                       depart_lo_s=600.0, depart_hi_s=900.0,
                       break_probability=1.0, break_lo_s=150.0,
                       break_hi_s=300.0, break_duration_s=120.0)


class TestBuildOccupants:
    def test_replays_bit_identically(self):
        assert build_occupants(SPEC, "a", 0, 7) \
            == build_occupants(SPEC, "a", 0, 7)

    def test_growing_the_population_disturbs_nobody(self):
        small = build_occupants(SPEC, "a", 0, 7)
        grown = build_occupants(
            dataclasses.replace(SPEC, population=6), "a", 0, 7)
        assert grown[:len(small)] == small

    def test_rooms_and_seeds_separate_streams(self):
        by_room = build_occupants(SPEC, "a", 1, 7)
        by_seed = build_occupants(SPEC, "a", 0, 8)
        base = build_occupants(SPEC, "a", 0, 7)
        assert base[0].presence != by_room[0].presence
        assert base[0].presence != by_seed[0].presence

    def test_draws_land_inside_the_declared_windows(self):
        for trace in build_occupants(SPEC, "a", 0, 21):
            (arrive, depart), = trace.presence
            assert SPEC.arrive_lo_s <= arrive <= SPEC.arrive_hi_s
            assert SPEC.depart_lo_s <= depart <= SPEC.depart_hi_s

    def test_certain_break_splits_presence_in_two(self):
        for trace in build_occupants(BREAKS, "a", 0, 3):
            assert len(trace.presence) == 2
            (_, away), (back, depart) = trace.presence
            assert BREAKS.break_lo_s <= away <= BREAKS.break_hi_s
            assert back == away + BREAKS.break_duration_s
            assert back <= depart

    def test_names_and_gains(self):
        traces = build_occupants(SPEC, "lab", 0, 7)
        assert [t.name for t in traces] == [
            "lab.occ00", "lab.occ01", "lab.occ02", "lab.occ03"]
        assert all(0.75 <= t.daylight_gain <= 1.25 for t in traces)

    def test_present_at_and_present_s(self):
        trace = build_occupants(BREAKS, "a", 0, 3)[0]
        (arrive, away), (back, depart) = trace.presence
        assert trace.present_at((arrive + away) / 2.0)
        assert not trace.present_at(away + 1.0)
        assert trace.present_s == (away - arrive) + (depart - back)


class TestDowntimeWindows:
    def test_complement_partitions_the_run(self):
        duration = 1000.0
        for trace in build_occupants(BREAKS, "a", 0, 9):
            downtime = downtime_windows(trace, duration)
            total = trace.present_s + sum(e - s for s, e in downtime)
            assert abs(total - duration) < 1e-9
            for start, end in downtime:
                mid = (start + end) / 2.0
                assert not trace.present_at(mid)

    def test_presence_up_to_the_end_leaves_no_tail(self):
        trace = build_occupants(SPEC, "a", 0, 7)[0]
        (arrive, depart), = trace.presence
        downtime = downtime_windows(trace, depart)
        assert downtime == ((0.0, arrive),)


class TestMergeWindows:
    def test_overlaps_coalesce(self):
        assert merge_windows(((0.0, 5.0), (3.0, 8.0))) == ((0.0, 8.0),)

    def test_adjacent_windows_join(self):
        assert merge_windows(((0.0, 5.0), (5.0, 8.0))) == ((0.0, 8.0),)

    def test_disjoint_windows_sort(self):
        assert merge_windows(((6.0, 8.0), (0.0, 2.0))) \
            == ((0.0, 2.0), (6.0, 8.0))

    def test_empty_is_empty(self):
        assert merge_windows(()) == ()
