"""The scenario runner and report: replay, parity, SLO verdicts."""

import dataclasses
import math

import pytest

from repro.scenarios import (
    SMOKE_SCENARIO,
    OccupancySpec,
    RoomSpec,
    Scenario,
    ScenarioRunner,
    SloSpec,
    shipped_scenarios,
)

TINY = Scenario(
    name="tiny",
    rooms=(RoomSpec(id="a", rows=1, cols=2, spacing_m=2.0,
                    occupancy=OccupancySpec(population=2,
                                            arrive_lo_s=0.0,
                                            arrive_hi_s=10.0,
                                            depart_lo_s=60.0,
                                            depart_hi_s=75.0)),),
    seed=17, duration_s=80.0, tick_s=2.0, report_window_s=40.0,
)


class TestReplay:
    def test_reruns_journal_and_report_identically(self):
        first = ScenarioRunner(TINY).run()
        second = ScenarioRunner(TINY).run()
        assert first.report.journal_digest == second.report.journal_digest
        assert first.report.as_dict() == second.report.as_dict()
        assert first.manifest.metrics == second.manifest.metrics

    def test_sharded_reruns_are_deterministic_and_conserving(self):
        reference = ScenarioRunner(TINY).run()
        first = ScenarioRunner(TINY, regions=2).run()
        second = ScenarioRunner(TINY, regions=2).run()
        assert first.report.journal_digest == second.report.journal_digest
        assert first.result.total_handovers \
            == reference.result.total_handovers
        r_metrics = first.result.metrics()
        metrics = reference.result.metrics()
        assert r_metrics["reports_delivered"] == metrics["reports_delivered"]
        assert r_metrics["reports_lost"] == metrics["reports_lost"]


class TestRunnerValidation:
    def test_regions_must_be_positive(self):
        with pytest.raises(ValueError, match="regions"):
            ScenarioRunner(TINY, regions=0)

    def test_regions_capped_by_the_luminaire_count(self):
        with pytest.raises(ValueError, match="cannot shard"):
            ScenarioRunner(TINY, regions=3)


class TestManifest:
    def test_provenance_pins_the_run(self):
        run = ScenarioRunner(TINY).run()
        assert run.manifest.experiment_id == "scenario/tiny"
        assert run.manifest.seeds == (17,)
        assert run.manifest.args == "regions=1"
        assert run.manifest.journal_digest == run.report.journal_digest
        assert run.manifest.metrics == run.report.metrics()


class TestReport:
    def test_windows_tile_the_duration_per_room(self):
        report = ScenarioRunner(TINY).run().report
        n_windows = math.ceil(TINY.duration_s / TINY.report_window_s)
        assert len(report.windows) == n_windows * len(report.rooms)
        assert report.windows[0].start_s == 0.0
        assert report.windows[-1].end_s == TINY.duration_s

    def test_room_lookup(self):
        report = ScenarioRunner(TINY).run().report
        assert report.room("a").room == "a"
        with pytest.raises(KeyError):
            report.room("basement")

    def test_flicker_bound_holds(self):
        # The adaptation planner's own guarantee, folded per journal tick.
        report = ScenarioRunner(TINY).run().report
        assert report.metrics()["flicker_violations"] == 0.0

    def test_occupied_windows_carry_goodput(self):
        report = ScenarioRunner(TINY).run().report
        occupied = [w for w in report.windows if w.present_ticks]
        assert occupied
        assert all(w.mean_goodput_bps > 0.0 for w in occupied)

    def test_render_mentions_the_verdict_and_digest(self):
        report = ScenarioRunner(TINY).run().report
        text = report.render()
        assert "journal digest" in text
        assert "SLO:" in text

    def test_impossible_slo_fails_the_run(self):
        strict = dataclasses.replace(
            TINY, slo=SloSpec(min_goodput_bps=1e12))
        report = ScenarioRunner(strict).run().report
        assert not report.passed
        assert report.metrics()["slo_pass"] == 0.0
        assert any("goodput" in v for v in report.violations)
        assert "SLO: FAIL" in report.render()

    def test_as_dict_is_the_ci_artifact(self):
        report = ScenarioRunner(TINY).run().report
        payload = report.as_dict()
        assert payload["kind"] == "scenario-report"
        assert payload["scenario"] == "tiny"
        assert payload["passed"] is True
        assert len(payload["windows"]) == len(report.windows)


class TestShipped:
    def test_names_match_their_keys(self):
        shipped = shipped_scenarios()
        assert len(shipped) >= 4
        for name, scenario in shipped.items():
            assert scenario.name == name
            assert scenario.description

    def test_smoke_scenario_is_shipped_and_smallest(self):
        shipped = shipped_scenarios()
        assert SMOKE_SCENARIO in shipped
        smallest = min(shipped.values(),
                       key=lambda s: s.duration_s * s.n_luminaires)
        assert smallest.name == SMOKE_SCENARIO

    def test_smoke_scenario_passes_its_slo(self):
        run = ScenarioRunner(shipped_scenarios()[SMOKE_SCENARIO]).run()
        assert run.report.passed, run.report.violations
        assert run.report.metrics()["flicker_violations"] == 0.0
