"""The scenario DSL: strict loading, validation, exact round-trips."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scenarios import (
    CHAOS_SCHEDULES,
    ChaosSpec,
    DaylightSpec,
    OccupancySpec,
    RoomSpec,
    Scenario,
    SloSpec,
    load_scenario,
)


def tiny_room(room_id="a", **occupancy):
    defaults = dict(population=1, depart_lo_s=40.0, depart_hi_s=50.0)
    defaults.update(occupancy)
    return RoomSpec(id=room_id, rows=1, cols=1,
                    occupancy=OccupancySpec(**defaults))


def tiny_scenario(**overrides):
    values = dict(name="tiny", rooms=(tiny_room(),), duration_s=60.0,
                  tick_s=2.0, report_window_s=30.0)
    values.update(overrides)
    return Scenario(**values)


class TestValidation:
    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError, match="duration_s"):
            tiny_scenario(duration_s=-5.0)

    def test_zero_duration_rejected(self):
        with pytest.raises(ValueError, match="duration_s"):
            tiny_scenario(duration_s=0.0)

    def test_tick_beyond_duration_rejected(self):
        with pytest.raises(ValueError, match="tick_s"):
            tiny_scenario(tick_s=120.0)

    def test_negative_report_window_rejected(self):
        with pytest.raises(ValueError, match="report_window_s"):
            tiny_scenario(report_window_s=-1.0)

    def test_overlapping_room_ids_rejected(self):
        with pytest.raises(ValueError, match="overlapping room id"):
            tiny_scenario(rooms=(tiny_room("a"), tiny_room("b"),
                                 tiny_room("a")))

    def test_departures_past_the_duration_rejected(self):
        with pytest.raises(ValueError, match="extend past"):
            tiny_scenario(rooms=(tiny_room(depart_hi_s=90.0),))

    def test_room_id_with_separators_rejected(self):
        for bad in ("a.b", "a/b", "a\nb", ""):
            with pytest.raises(ValueError):
                tiny_room(bad)

    def test_empty_room_list_rejected(self):
        with pytest.raises(ValueError, match="at least one room"):
            tiny_scenario(rooms=())

    def test_target_sum_band(self):
        with pytest.raises(ValueError, match="target_sum"):
            tiny_scenario(target_sum=0.0)
        with pytest.raises(ValueError, match="target_sum"):
            tiny_scenario(target_sum=1.6)

    def test_daylight_ordering(self):
        with pytest.raises(ValueError, match="sunrise"):
            DaylightSpec(sunrise_s=100.0, sunset_s=50.0)
        with pytest.raises(ValueError, match="night_level"):
            DaylightSpec(night_level=0.9, peak_level=0.5)
        with pytest.raises(ValueError, match="window_gain"):
            DaylightSpec(window_gain=0.0)

    def test_occupancy_window_ordering(self):
        with pytest.raises(ValueError, match="arrive_lo_s"):
            OccupancySpec(arrive_lo_s=-1.0)
        with pytest.raises(ValueError):
            OccupancySpec(arrive_lo_s=10.0, arrive_hi_s=5.0)
        with pytest.raises(ValueError, match="break"):
            OccupancySpec(break_probability=0.5, break_duration_s=0.0)

    def test_unknown_chaos_schedule_rejected(self):
        with pytest.raises(ValueError, match="unknown chaos schedule"):
            ChaosSpec(schedule="meteor-strike")

    def test_negative_slo_bounds_rejected(self):
        with pytest.raises(ValueError, match="min_goodput_bps"):
            SloSpec(min_goodput_bps=-1.0)
        with pytest.raises(ValueError, match="max_flicker"):
            SloSpec(max_flicker_violations=-1)


class TestLoader:
    def test_unknown_scenario_key_rejected(self):
        row = tiny_scenario().to_dict()
        row["surprise"] = 1
        with pytest.raises(ValueError, match="unknown scenario key"):
            Scenario.from_dict(row)

    def test_unknown_nested_keys_rejected(self):
        row = tiny_scenario().to_dict()
        row["rooms"][0]["colour"] = "teal"
        with pytest.raises(ValueError, match="unknown room key"):
            Scenario.from_dict(row)
        row = tiny_scenario().to_dict()
        row["rooms"][0]["daylight"]["moon_phase"] = 0.5
        with pytest.raises(ValueError, match="unknown daylight key"):
            Scenario.from_dict(row)
        row = tiny_scenario().to_dict()
        row["slo"]["max_latency_s"] = 1.0
        with pytest.raises(ValueError, match="unknown slo key"):
            Scenario.from_dict(row)

    def test_missing_required_keys_rejected(self):
        row = tiny_scenario().to_dict()
        del row["rooms"]
        with pytest.raises(ValueError, match="missing key"):
            Scenario.from_dict(row)

    def test_version_mismatch_rejected(self):
        row = tiny_scenario().to_dict()
        row["version"] = 2
        with pytest.raises(ValueError, match="unsupported scenario schema"):
            Scenario.from_dict(row)

    def test_missing_version_rejected(self):
        row = tiny_scenario().to_dict()
        del row["version"]
        with pytest.raises(ValueError, match="missing key"):
            Scenario.from_dict(row)

    def test_non_mapping_rejected(self):
        with pytest.raises(ValueError, match="must be a mapping"):
            Scenario.from_dict("not a scenario")  # type: ignore[arg-type]

    def test_rooms_must_be_a_list(self):
        row = tiny_scenario().to_dict()
        row["rooms"] = "everywhere"
        with pytest.raises(ValueError, match="rooms must be a list"):
            Scenario.from_dict(row)

    def test_load_scenario_reads_json_files(self, tmp_path):
        scenario = tiny_scenario(chaos=ChaosSpec(schedule="random",
                                                 intensity=0.4))
        path = tmp_path / "tiny.json"
        path.write_text(scenario.to_json())
        assert load_scenario(path) == scenario

    def test_counts(self):
        scenario = tiny_scenario(rooms=(
            RoomSpec(id="a", rows=2, cols=3,
                     occupancy=OccupancySpec(population=4,
                                             depart_lo_s=40.0,
                                             depart_hi_s=50.0)),
            tiny_room("b"),
        ))
        assert scenario.n_luminaires == 7
        assert scenario.population == 5


def _floats(lo, hi):
    return st.floats(min_value=lo, max_value=hi,
                     allow_nan=False, allow_infinity=False)


@st.composite
def daylight_specs(draw):
    sunrise = draw(_floats(0.0, 1000.0))
    peak = draw(_floats(0.05, 1.0))
    return DaylightSpec(
        sunrise_s=sunrise,
        sunset_s=sunrise + draw(_floats(1.0, 50000.0)),
        peak_level=peak,
        night_level=draw(_floats(0.0, peak)),
        cloud_depth=draw(_floats(0.0, 0.99)),
        cloud_time_scale_s=draw(_floats(1.0, 5000.0)),
        window_gain=draw(_floats(0.01, 1.0)),
    )


@st.composite
def occupancy_specs(draw, quarter):
    arrive_lo = draw(_floats(0.0, quarter))
    arrive_hi = arrive_lo + draw(_floats(0.0, quarter))
    gap = draw(_floats(1.0, quarter))
    depart_lo = arrive_hi + gap
    speed_min = draw(_floats(0.1, 1.0))
    values = dict(
        population=draw(st.integers(min_value=1, max_value=4)),
        arrive_lo_s=arrive_lo,
        arrive_hi_s=arrive_hi,
        depart_lo_s=depart_lo,
        depart_hi_s=depart_lo + draw(_floats(0.0, quarter)),
        speed_min_mps=speed_min,
        speed_max_mps=speed_min + draw(_floats(0.0, 1.0)),
        pause_s=draw(_floats(0.0, 60.0)),
    )
    if draw(st.booleans()):
        values.update(
            break_probability=draw(_floats(0.01, 1.0)),
            break_lo_s=arrive_hi,
            break_hi_s=arrive_hi,
            break_duration_s=gap / 2.0,
        )
    return OccupancySpec(**values)


@st.composite
def scenarios(draw):
    duration = draw(_floats(1000.0, 20000.0))
    quarter = duration / 5.0
    rooms = tuple(
        RoomSpec(id=f"room{i}",
                 rows=draw(st.integers(min_value=1, max_value=2)),
                 cols=draw(st.integers(min_value=1, max_value=2)),
                 spacing_m=draw(_floats(0.5, 4.0)),
                 daylight=draw(daylight_specs()),
                 occupancy=draw(occupancy_specs(quarter)))
        for i in range(draw(st.integers(min_value=1, max_value=3))))
    chaos = (ChaosSpec(schedule=draw(st.sampled_from(CHAOS_SCHEDULES)),
                       intensity=draw(_floats(0.0, 1.0)))
             if draw(st.booleans()) else None)
    slo = SloSpec(
        min_goodput_bps=draw(st.none() | _floats(0.0, 1e6)),
        max_illumination_error=draw(st.none() | _floats(0.0, 1.0)),
        max_flicker_violations=draw(
            st.none() | st.integers(min_value=0, max_value=100)),
    )
    return Scenario(
        name=draw(st.sampled_from(("office", "lab", "floor-3"))),
        description=draw(st.text(max_size=40)),
        rooms=rooms,
        seed=draw(st.integers(min_value=0, max_value=2**31 - 1)),
        duration_s=duration,
        tick_s=draw(_floats(0.5, 60.0)),
        report_window_s=draw(_floats(1.0, duration)),
        target_sum=draw(_floats(0.1, 1.5)),
        chaos=chaos,
        slo=slo,
    )


class TestRoundTrip:
    @given(scenarios())
    @settings(max_examples=30, deadline=None)
    def test_from_dict_to_dict_is_the_identity(self, scenario):
        document = scenario.to_dict()
        parsed = Scenario.from_dict(document)
        assert parsed == scenario
        assert parsed.to_dict() == document

    @given(scenarios())
    @settings(max_examples=15, deadline=None)
    def test_json_round_trip_is_exact(self, scenario):
        assert Scenario.from_dict(json.loads(scenario.to_json())) == scenario
