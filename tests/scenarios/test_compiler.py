"""Scenario compilation: walls, churn projection, chaos overlays."""

import pytest

from repro.scenarios import (
    ChaosSpec,
    OccupancySpec,
    RoomSpec,
    Scenario,
    compile_scenario,
)


def room(room_id, rows=1, cols=2, population=1, arrive=0.0, depart=48.0):
    return RoomSpec(id=room_id, rows=rows, cols=cols, spacing_m=2.0,
                    occupancy=OccupancySpec(population=population,
                                            arrive_lo_s=arrive,
                                            arrive_hi_s=arrive,
                                            depart_lo_s=depart,
                                            depart_hi_s=depart))


def scenario(rooms=None, **overrides):
    values = dict(name="test", rooms=rooms or (room("a"),),
                  duration_s=60.0, tick_s=2.0, report_window_s=30.0,
                  seed=9)
    values.update(overrides)
    return Scenario(**values)


class TestLayout:
    def test_rooms_line_up_along_x_with_a_wall_gap(self):
        compiled = compile_scenario(scenario(rooms=(room("a"), room("b"))))
        first, second = compiled.rooms
        assert first.origin_x_m == 0.0
        assert second.origin_x_m == pytest.approx(
            first.width_m + compiled.wall_gap_m)

    def test_walls_out_reach_the_fov_cull_radius(self):
        # The gap is the cull radius plus a margin, so the closest
        # cross-room luminaire pair sits strictly outside each other's
        # field of view: every cross-room gain is exactly zero.
        compiled = compile_scenario(scenario(rooms=(room("a"), room("b"))))
        positions = {lum.name: (lum.x_m, lum.y_m)
                     for lum in compiled.simulation.luminaires}
        a_edge = max(x for name, (x, _) in positions.items()
                     if name.startswith("a."))
        b_edge = min(x for name, (x, _) in positions.items()
                     if name.startswith("b."))
        assert b_edge - a_edge > compiled.wall_gap_m

    def test_luminaire_names_follow_the_grid(self):
        compiled = compile_scenario(scenario(rooms=(room("a", rows=2,
                                                         cols=2),)))
        assert compiled.rooms[0].luminaires == (
            "a.r0c0", "a.r0c1", "a.r1c0", "a.r1c1")

    def test_atlas_maps_are_complete(self):
        compiled = compile_scenario(
            scenario(rooms=(room("a", population=2), room("b"))))
        assert set(compiled.cell_room.values()) == {"a", "b"}
        assert len(compiled.cell_room) == 4
        assert set(compiled.node_room) == {
            "a.occ00", "a.occ01", "b.occ00"}

    def test_occupants_stay_inside_their_room(self):
        compiled = compile_scenario(scenario(rooms=(room("a"), room("b"))))
        layout = {r.id: r for r in compiled.rooms}
        for node in compiled.simulation.nodes:
            home = layout[compiled.node_room[node.name]]
            for t in range(0, 60, 3):
                x, y = node.mobility.position(float(t))
                assert home.origin_x_m <= x <= \
                    home.origin_x_m + home.width_m
                assert home.origin_y_m <= y <= \
                    home.origin_y_m + home.depth_m


class TestStaleness:
    def test_fast_ticks_keep_the_default_window(self):
        compiled = compile_scenario(scenario(tick_s=2.0))
        assert compiled.simulation.staleness_s == 5.0

    def test_slow_ticks_widen_the_window(self):
        # Below tick_s the staleness filter would discard every occupant
        # report and silently pin fusion to the fallback ambient.
        compiled = compile_scenario(scenario(duration_s=300.0, tick_s=60.0))
        assert compiled.simulation.staleness_s == 60.0


class TestChurnProjection:
    def test_late_arrival_compiles_to_leading_downtime(self):
        compiled = compile_scenario(
            scenario(rooms=(room("a", arrive=30.0, depart=50.0),)))
        downtime = {name: (start, end)
                    for name, start, end
                    in compiled.simulation.faults.node_downtime}
        # Down before arriving and again after leaving.
        windows = [(start, end) for name, start, end
                   in compiled.simulation.faults.node_downtime
                   if name == "a.occ00"]
        assert (0.0, 30.0) in windows
        assert (50.0, 60.0) in windows
        assert downtime  # at least one projected window

    def test_simulation_carries_the_scenario_knobs(self):
        compiled = compile_scenario(scenario(target_sum=0.8), regions=2)
        assert compiled.simulation.target_sum == 0.8
        assert compiled.simulation.tick_s == 2.0
        assert compiled.simulation.seed == 9
        assert compiled.simulation.regions == 2


class TestChaosOverlay:
    def test_random_overlay_is_pure_in_the_scenario_seed(self):
        chaotic = scenario(chaos=ChaosSpec(schedule="random",
                                           intensity=0.7))
        a = compile_scenario(chaotic).simulation.faults
        b = compile_scenario(chaotic).simulation.faults
        assert a == b

    def test_unprojected_primitives_are_reported_not_applied(self):
        compiled = compile_scenario(
            scenario(chaos=ChaosSpec(schedule="blinding")))
        assert compiled.unprojected
        assert any("adc-blinding" in note for note in compiled.unprojected)

    def test_no_chaos_means_no_notes(self):
        assert compile_scenario(scenario()).unprojected == ()
