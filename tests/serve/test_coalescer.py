"""The coalescer algebra, pinned with property tests.

The contract: N concurrent same-bucket requests cost exactly one
designer call and every waiter receives the *same* result object (hence
byte-identical once serialized); buckets never mix; designer failures
reach exactly the waiters of the failing bucket.
"""

import asyncio

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import MetricsRegistry
from repro.serve import AdaptCoalescer


def bucket8(dimming: float) -> int:
    return round(dimming * 8)


class CountingDesigner:
    """A fake engine: unique result object per call, full call log."""

    def __init__(self, fail_buckets=()):
        self.calls: list[float] = []
        self.fail_buckets = set(fail_buckets)

    def __call__(self, dimming: float) -> object:
        self.calls.append(dimming)
        if bucket8(dimming) in self.fail_buckets:
            raise RuntimeError(f"bucket {bucket8(dimming)} broken")
        return ("design", bucket8(dimming), len(self.calls))


dimming_lists = st.lists(
    st.floats(min_value=0.05, max_value=0.95, allow_nan=False,
              allow_infinity=False),
    min_size=1, max_size=40)


class TestAlgebra:
    @settings(max_examples=30, deadline=None)
    @given(dimmings=dimming_lists)
    def test_one_call_per_bucket_and_identical_fanout(self, dimmings):
        designer = CountingDesigner()

        async def run():
            coalescer = AdaptCoalescer(designer, bucket8, window_s=0.005,
                                       max_batch=1000)
            return await asyncio.gather(
                *(coalescer.submit(d) for d in dimmings)), coalescer

        results, coalescer = asyncio.run(run())
        buckets = {bucket8(d) for d in dimmings}
        # Exactly one designer call per unique bucket.
        assert len(designer.calls) == len(buckets)
        assert {bucket8(d) for d in designer.calls} == buckets
        # Every waiter of a bucket got the *same* object; no cross-bucket
        # leaks (each call returns a distinct object carrying its bucket).
        by_bucket = {}
        for dimming, result in zip(dimmings, results):
            key = bucket8(dimming)
            assert result[1] == key
            assert by_bucket.setdefault(key, result) is result
        # Lifetime accounting matches.
        assert coalescer.requests == len(dimmings)
        assert coalescer.designer_calls == len(buckets)
        assert coalescer.coalesce_ratio == pytest.approx(
            len(dimmings) / len(buckets))

    @settings(max_examples=20, deadline=None)
    @given(dimmings=dimming_lists)
    def test_failures_stay_in_their_bucket(self, dimmings):
        fail_key = bucket8(dimmings[0])
        designer = CountingDesigner(fail_buckets={fail_key})

        async def run():
            coalescer = AdaptCoalescer(designer, bucket8, window_s=0.005,
                                       max_batch=1000)
            return await asyncio.gather(
                *(coalescer.submit(d) for d in dimmings),
                return_exceptions=True)

        results = asyncio.run(run())
        for dimming, result in zip(dimmings, results):
            if bucket8(dimming) == fail_key:
                assert isinstance(result, RuntimeError)
            else:
                assert not isinstance(result, Exception)
                assert result[1] == bucket8(dimming)


class TestTriggers:
    def test_max_batch_flushes_before_the_deadline(self):
        designer = CountingDesigner()

        async def run():
            loop = asyncio.get_running_loop()
            # A 10 s window would stall the test; the size trigger must
            # fire instead.
            coalescer = AdaptCoalescer(designer, bucket8, window_s=10.0,
                                       max_batch=4)
            started = loop.time()
            await asyncio.gather(*(coalescer.submit(d)
                                   for d in (0.1, 0.3, 0.5, 0.7)))
            assert loop.time() - started < 1.0
            assert coalescer.flushes == 1

        asyncio.run(run())

    def test_zero_window_disables_batching(self):
        designer = CountingDesigner()

        async def run():
            coalescer = AdaptCoalescer(designer, bucket8, window_s=0.0)
            results = [await coalescer.submit(0.5) for _ in range(3)]
            assert coalescer.designer_calls == 3
            assert coalescer.pending == 0
            # Distinct objects: nothing was deduped.
            assert len({id(r) for r in results}) == 3

        asyncio.run(run())

    def test_drain_flushes_the_parked_batch(self):
        designer = CountingDesigner()

        async def run():
            coalescer = AdaptCoalescer(designer, bucket8, window_s=30.0,
                                       max_batch=100)
            waiter = asyncio.ensure_future(coalescer.submit(0.5))
            await asyncio.sleep(0)
            assert coalescer.pending == 1
            await coalescer.drain()
            assert coalescer.pending == 0
            assert (await waiter)[1] == bucket8(0.5)

        asyncio.run(run())

    def test_sequential_submissions_each_flush(self):
        designer = CountingDesigner()

        async def run():
            coalescer = AdaptCoalescer(designer, bucket8, window_s=0.001)
            for _ in range(3):
                await coalescer.submit(0.5)
            assert coalescer.designer_calls == 3
            assert coalescer.flushes == 3

        asyncio.run(run())

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptCoalescer(lambda d: d, bucket8, window_s=-1.0)
        with pytest.raises(ValueError):
            AdaptCoalescer(lambda d: d, bucket8, max_batch=0)


class TestInstrumentation:
    def test_metrics_flow_into_the_registry(self):
        registry = MetricsRegistry()
        designer = CountingDesigner()

        async def run():
            coalescer = AdaptCoalescer(designer, bucket8, window_s=0.005,
                                       max_batch=1000, registry=registry)
            await asyncio.gather(*(coalescer.submit(d)
                                   for d in (0.5, 0.5, 0.5, 0.9)))

        asyncio.run(run())
        assert registry.counter(
            "repro_serve_adapt_requests_total").value() == 4
        assert registry.counter(
            "repro_serve_designer_calls_total").value() == 2
        batch = registry.get("repro_serve_coalesce_batch")
        assert batch.count() == 1
        assert batch.sum() == 4
