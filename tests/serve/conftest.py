"""Serve fixtures: one shared engine (designer tables are expensive)."""

from __future__ import annotations

import pytest

from repro.serve import AdaptEngine


@pytest.fixture(scope="session")
def engine(config, designer) -> AdaptEngine:
    """An engine over the session designer's tables (fresh memo)."""
    return AdaptEngine(config, designer.fork())
