"""The wire protocol: strict validation, stable errors, canonical bytes."""

import json

import pytest

from repro.serve import (
    HTTP_STATUS,
    LINK_OUTCOMES,
    OPS,
    PROTOCOL_VERSION,
    AdaptRequest,
    LinkRequest,
    ProtocolError,
    SimpleRequest,
    adapt_result,
    encode,
    error_response,
    ok_response,
    parse_line,
    parse_request,
)


class TestParseAdapt:
    def test_minimal_request(self):
        request = parse_request({"op": "adapt", "dimming": 0.6})
        assert isinstance(request, AdaptRequest)
        assert request.dimming == 0.6
        assert request.ambient == 1.0
        assert request.distance_m == 3.0
        assert request.angle_deg == 0.0
        assert request.id is None

    def test_full_request(self):
        request = parse_request({"v": PROTOCOL_VERSION, "op": "adapt",
                                 "id": "r1", "dimming": 0.3, "ambient": 0.5,
                                 "distance_m": 2.0, "angle_deg": 30.0})
        assert request == AdaptRequest(0.3, 0.5, 2.0, 30.0, "r1")

    def test_missing_dimming_rejected(self):
        with pytest.raises(ProtocolError) as exc:
            parse_request({"op": "adapt"})
        assert exc.value.code == "bad-request"
        assert "dimming" in exc.value.message

    @pytest.mark.parametrize("dimming", [0.0, 1.0, -0.2, 1.5, "0.5", True,
                                         None])
    def test_bad_dimming_rejected(self, dimming):
        with pytest.raises(ProtocolError):
            parse_request({"op": "adapt", "dimming": dimming})

    @pytest.mark.parametrize("field,value", [
        ("ambient", -0.1), ("distance_m", 0.0), ("distance_m", -1.0),
        ("angle_deg", 90.0), ("angle_deg", -5.0), ("ambient", "bright"),
    ])
    def test_bad_optionals_rejected(self, field, value):
        with pytest.raises(ProtocolError):
            parse_request({"op": "adapt", "dimming": 0.5, field: value})

    def test_unknown_field_rejected(self):
        with pytest.raises(ProtocolError) as exc:
            parse_request({"op": "adapt", "dimming": 0.5, "diming": 0.6})
        assert "diming" in exc.value.message

    def test_integer_id_stringified(self):
        request = parse_request({"op": "adapt", "dimming": 0.5, "id": 7})
        assert request.id == "7"

    def test_bad_id_rejected(self):
        with pytest.raises(ProtocolError):
            parse_request({"op": "adapt", "dimming": 0.5, "id": [1]})


class TestParseEnvelope:
    def test_non_object_rejected(self):
        for bad in ([1, 2], "adapt", 7, None):
            with pytest.raises(ProtocolError) as exc:
                parse_request(bad)
            assert exc.value.code == "bad-request"

    def test_unknown_op(self):
        with pytest.raises(ProtocolError) as exc:
            parse_request({"op": "reboot"})
        assert exc.value.code == "unknown-op"

    def test_bad_version(self):
        with pytest.raises(ProtocolError) as exc:
            parse_request({"v": 99, "op": "health"})
        assert exc.value.code == "bad-version"

    def test_version_optional(self):
        assert parse_request({"op": "health"}) == SimpleRequest("health")

    @pytest.mark.parametrize("op", ["health", "metrics"])
    def test_simple_ops_reject_extras(self, op):
        with pytest.raises(ProtocolError):
            parse_request({"op": op, "dimming": 0.5})

    def test_every_op_is_parseable(self):
        assert set(OPS) == {"adapt", "link", "health", "metrics"}

    def test_every_error_code_maps_to_a_status(self):
        assert set(HTTP_STATUS.values()) <= {400, 500, 503}
        for code in ("bad-request", "unknown-op", "bad-version",
                     "overloaded", "draining", "internal"):
            assert code in HTTP_STATUS


class TestParseLink:
    def test_bare_read(self):
        request = parse_request({"op": "link"})
        assert isinstance(request, LinkRequest)
        assert request.outcome == ""

    @pytest.mark.parametrize("outcome", LINK_OUTCOMES)
    def test_every_outcome_accepted(self, outcome):
        request = parse_request({"op": "link",
                                 "report": {"outcome": outcome}})
        assert request.outcome == outcome

    def test_unknown_outcome_rejected(self):
        with pytest.raises(ProtocolError):
            parse_request({"op": "link", "report": {"outcome": "meh"}})

    def test_report_must_be_object(self):
        with pytest.raises(ProtocolError):
            parse_request({"op": "link", "report": "failure"})

    def test_unknown_report_field_rejected(self):
        with pytest.raises(ProtocolError):
            parse_request({"op": "link", "report": {"outcome": "failure",
                                                    "when": 3}})

    def test_empty_reason_rejected(self):
        with pytest.raises(ProtocolError):
            parse_request({"op": "link", "report": {"outcome": "failure",
                                                    "reason": ""}})


class TestParseLine:
    def test_round_trip(self):
        line = encode({"v": 1, "op": "adapt", "dimming": 0.4})
        assert parse_line(line) == AdaptRequest(0.4)

    def test_not_json_is_a_protocol_error(self):
        with pytest.raises(ProtocolError) as exc:
            parse_line(b"GET / HTTP/1.1\n")
        assert exc.value.code == "bad-request"


class TestResponses:
    def test_ok_envelope(self):
        reply = ok_response("health", {"status": "ok"}, "h1")
        assert reply["ok"] is True
        assert reply["v"] == PROTOCOL_VERSION
        assert reply["id"] == "h1"
        assert reply["result"] == {"status": "ok"}

    def test_error_envelope(self):
        reply = error_response("overloaded", "busy", op="adapt",
                               request_id="a1")
        assert reply["ok"] is False
        assert reply["error"] == {"code": "overloaded", "message": "busy"}
        assert reply["op"] == "adapt"
        assert reply["id"] == "a1"

    def test_id_omitted_when_absent(self):
        assert "id" not in ok_response("health", {})
        assert "id" not in error_response("internal", "boom")

    def test_encode_is_canonical(self):
        a = encode({"b": 1, "a": 2})
        b = encode({"a": 2, "b": 1})
        assert a == b
        assert a.endswith(b"\n")
        json.loads(a)


class TestAdaptResult:
    def test_payload_shape_and_purity(self, engine):
        request = AdaptRequest(0.5, ambient=0.5, distance_m=2.5,
                               angle_deg=15.0)
        design = engine.design(request.dimming)
        errors = engine.errors_for(request)
        one = adapt_result(request, design, errors, engine.config)
        two = adapt_result(request, design, errors, engine.config)
        assert encode(one) == encode(two)
        assert one["dimming"] == 0.5
        assert set(one["super_symbol"]) == {"n1", "k1", "m1", "n2", "k2",
                                            "m2"}
        assert one["data_rate_bps"] > 0
        assert 0 < one["slot_error"]["p_off"] < 1

    def test_performance_tracks_placement(self, engine):
        request_near = AdaptRequest(0.5, distance_m=2.0)
        request_far = AdaptRequest(0.5, distance_m=5.0)
        design = engine.design(0.5)
        near = adapt_result(request_near, design,
                            engine.errors_for(request_near), engine.config)
        far = adapt_result(request_far, design,
                           engine.errors_for(request_far), engine.config)
        assert near["super_symbol"] == far["super_symbol"]
        assert near["data_rate_bps"] > far["data_rate_bps"]
