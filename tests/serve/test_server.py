"""The control plane end to end: both transports over real sockets.

Every test drives a listening :class:`ControlPlane` through
``asyncio.run`` — no event-loop plugins — and asserts the subsystem's
contracts: served designs byte-identical to the direct designer path,
structured shedding that never drops a connection, graceful drain, and
a 200-client synthetic fleet with zero dropped connections.
"""

import asyncio
import contextlib
import json

import pytest

from repro.core import AmppmDesigner
from repro.obs import PROMETHEUS_CONTENT_TYPE, MetricsRegistry
from repro.serve import (
    AdaptEngine,
    ControlPlane,
    LoadProfile,
    ServeConfig,
    encode,
    ok_response,
    parse_request,
    run_loadgen,
)


@contextlib.asynccontextmanager
async def running(engine, registry=None, **knobs):
    """A started plane over the shared engine; always stopped."""
    plane = ControlPlane(ServeConfig(**knobs), config=engine.config,
                         registry=registry, engine=engine)
    await plane.start()
    try:
        yield plane
    finally:
        if not plane.draining:
            await plane.stop()


async def http_exchange(reader, writer, method, path, body=b""):
    """One keep-alive HTTP round trip; returns (status, headers, body)."""
    head = f"{method} {path} HTTP/1.1\r\nHost: t\r\n"
    if body:
        head += f"Content-Length: {len(body)}\r\n"
    head += "\r\n"
    writer.write(head.encode() + body)
    await writer.drain()
    status_line = await reader.readline()
    status = int(status_line.split()[1])
    headers = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode().partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0"))
    data = await reader.readexactly(length) if length else b""
    return status, headers, data


async def connect(plane):
    return await asyncio.open_connection(plane.host, plane.port)


class TestHttp:
    def test_healthz(self, engine):
        async def run():
            async with running(engine) as plane:
                reader, writer = await connect(plane)
                status, headers, body = await http_exchange(
                    reader, writer, "GET", "/healthz")
                writer.close()
                return status, headers, json.loads(body)

        status, headers, reply = asyncio.run(run())
        assert status == 200
        assert headers["content-type"] == "application/json"
        assert reply["ok"] is True
        assert reply["result"]["status"] == "ok"
        assert reply["result"]["connections"] == 1

    def test_metrics_exposition(self, engine):
        async def run():
            async with running(engine, registry=MetricsRegistry()) as plane:
                reader, writer = await connect(plane)
                await http_exchange(reader, writer, "GET", "/healthz")
                status, headers, body = await http_exchange(
                    reader, writer, "GET", "/metrics")
                writer.close()
                return status, headers, body.decode()

        status, headers, text = asyncio.run(run())
        assert status == 200
        assert headers["content-type"] == PROMETHEUS_CONTENT_TYPE
        assert "# TYPE repro_serve_requests_total counter" in text
        assert "# TYPE repro_serve_link_state gauge" in text
        assert 'repro_serve_link_state{state="up"} 1' in text

    def test_adapt_parity_with_the_direct_designer(self, engine, config):
        """A served design is byte-identical to the direct answer."""
        raw = {"dimming": 0.47, "ambient": 0.8, "distance_m": 2.0,
               "angle_deg": 10.0}

        async def run():
            async with running(engine) as plane:
                reader, writer = await connect(plane)
                status, _, body = await http_exchange(
                    reader, writer, "POST", "/v1/adapt",
                    json.dumps(raw).encode())
                writer.close()
                return status, body

        status, served = asyncio.run(run())
        assert status == 200
        # An independent engine over a *fresh* designer must produce the
        # same bytes: the parity contract of the serving path.
        direct_engine = AdaptEngine(config, AmppmDesigner(config))
        request = parse_request({"op": "adapt", **raw})
        direct = encode(ok_response("adapt",
                                    direct_engine.adapt_direct(request)))
        assert served == direct

    def test_keep_alive_serves_many_requests(self, engine):
        async def run():
            async with running(engine) as plane:
                reader, writer = await connect(plane)
                replies = []
                for dimming in (0.4, 0.5, 0.6):
                    status, _, body = await http_exchange(
                        reader, writer, "POST", "/v1/adapt",
                        json.dumps({"dimming": dimming}).encode())
                    replies.append((status, json.loads(body)))
                writer.close()
                return replies, plane.connection_count

        replies, connections = asyncio.run(run())
        assert connections == 1
        for status, reply in replies:
            assert status == 200 and reply["ok"]

    @pytest.mark.parametrize("method,path,body,status,code", [
        ("POST", "/v1/adapt", b"{}", 400, "bad-request"),
        ("POST", "/v1/adapt", b"not json", 400, "bad-request"),
        ("POST", "/v1/adapt", b'{"dimming": 2.0}', 400, "bad-request"),
        ("GET", "/nope", b"", 404, "bad-request"),
        ("DELETE", "/healthz", b"", 405, "bad-request"),
    ])
    def test_structured_http_errors(self, engine, method, path, body,
                                    status, code):
        async def run():
            async with running(engine) as plane:
                reader, writer = await connect(plane)
                got_status, _, got_body = await http_exchange(
                    reader, writer, method, path, body)
                # The connection survives the error.
                ok_status, _, _ = await http_exchange(
                    reader, writer, "GET", "/healthz")
                writer.close()
                return got_status, json.loads(got_body), ok_status

        got_status, reply, ok_status = asyncio.run(run())
        assert got_status == status
        assert reply["error"]["code"] == code
        assert ok_status == 200

    def test_link_endpoint_drives_the_supervisor(self, engine):
        async def run():
            async with running(engine) as plane:
                reader, writer = await connect(plane)
                _, _, body = await http_exchange(
                    reader, writer, "GET", "/v1/link")
                initial = json.loads(body)["result"]
                for _ in range(3):
                    _, _, body = await http_exchange(
                        reader, writer, "POST", "/v1/link",
                        json.dumps({"report": {"outcome": "failure",
                                               "reason": "crc"}}).encode())
                after = json.loads(body)["result"]
                writer.close()
                return initial, after

        initial, after = asyncio.run(run())
        assert initial["state"] == "up"
        assert initial["fail_streak"] == 0
        assert after["state"] == "degraded"
        assert after["fail_streak"] == 3
        assert after["backoff_remaining_s"] > 0
        assert after["recent_transitions"][-1]["target"] == "degraded"


class TestNdjson:
    def test_mixed_session_with_id_echo(self, engine):
        async def run():
            async with running(engine) as plane:
                reader, writer = await connect(plane)
                writer.write(encode({"op": "adapt", "id": "a1",
                                     "dimming": 0.55}))
                writer.write(encode({"op": "health", "id": "h1"}))
                writer.write(b"this is not json\n")
                writer.write(encode({"op": "metrics", "id": "m1"}))
                await writer.drain()
                replies = [json.loads(await reader.readline())
                           for _ in range(4)]
                writer.close()
                return replies

        replies = asyncio.run(run())
        by_id = {r.get("id"): r for r in replies}
        assert by_id["a1"]["ok"] and by_id["h1"]["ok"] and by_id["m1"]["ok"]
        assert "repro_serve" in by_id["m1"]["result"]["prometheus"]
        (bad,) = [r for r in replies if not r["ok"]]
        assert bad["error"]["code"] == "bad-request"

    def test_validation_errors_echo_the_request_id(self, engine):
        # A pipelined client correlates by id, so even a rejected
        # envelope must carry the id back when it is well-typed.
        async def run():
            async with running(engine) as plane:
                reader, writer = await connect(plane)
                writer.write(encode({"v": 99, "op": "adapt", "id": "v9",
                                     "dimming": 0.5}))
                writer.write(encode({"op": "adapt", "id": 7}))
                writer.write(encode({"op": "adapt", "id": ["not-an-id"],
                                     "dimming": 0.5}))
                await writer.drain()
                replies = [json.loads(await reader.readline())
                           for _ in range(3)]
                writer.close()
                return replies

        replies = asyncio.run(run())
        assert all(not r["ok"] for r in replies)
        ids = [r.get("id") for r in replies]
        # Well-typed ids come back (ints stringified like parse_request
        # does); the ill-typed one is dropped, not echoed malformed.
        assert "v9" in ids and "7" in ids
        assert ["not-an-id"] not in ids

    def test_pipelined_adapts_all_answered(self, engine):
        n = 20

        async def run():
            async with running(engine) as plane:
                reader, writer = await connect(plane)
                for i in range(n):
                    writer.write(encode({"op": "adapt", "id": f"r{i}",
                                         "dimming": 0.3 + 0.02 * i}))
                await writer.drain()
                replies = [json.loads(await reader.readline())
                           for _ in range(n)]
                writer.close()
                return replies, plane.coalescer.designer_calls

        replies, designer_calls = asyncio.run(run())
        assert {r["id"] for r in replies} == {f"r{i}" for i in range(n)}
        assert all(r["ok"] for r in replies)
        # Concurrent requests coalesced: far fewer designer calls than
        # requests is not guaranteed per-bucket here, but never more.
        assert designer_calls <= n


class TestOverload:
    def test_connection_queue_sheds_but_keeps_the_connection(self, engine):
        async def run():
            async with running(engine, queue_limit=1,
                               coalesce_window_s=0.2) as plane:
                reader, writer = await connect(plane)
                for i in range(3):
                    writer.write(encode({"op": "adapt", "id": f"q{i}",
                                         "dimming": 0.5}))
                await writer.drain()
                replies = [json.loads(await reader.readline())
                           for _ in range(3)]
                # The connection still serves after shedding.
                writer.write(encode({"op": "health", "id": "h"}))
                await writer.drain()
                health = json.loads(await reader.readline())
                writer.close()
                return replies, health, plane.shed_count

        replies, health, shed = asyncio.run(run())
        ok = [r for r in replies if r["ok"]]
        dropped = [r for r in replies if not r["ok"]]
        assert len(ok) == 1 and len(dropped) == 2
        assert all(r["error"]["code"] == "overloaded" for r in dropped)
        assert health["ok"]
        assert shed == 2

    def test_global_inflight_cap_sheds_across_connections(self, engine):
        async def run():
            async with running(engine, max_inflight=1,
                               coalesce_window_s=0.3) as plane:
                r1, w1 = await connect(plane)
                w1.write(encode({"op": "adapt", "id": "a", "dimming": 0.4}))
                await w1.drain()
                await asyncio.sleep(0.05)    # let the first one be admitted
                r2, w2 = await connect(plane)
                w2.write(encode({"op": "adapt", "id": "b", "dimming": 0.6}))
                await w2.drain()
                reply_b = json.loads(await r2.readline())
                reply_a = json.loads(await r1.readline())
                # The shed connection still works once load clears.
                w2.write(encode({"op": "adapt", "id": "c", "dimming": 0.6}))
                await w2.drain()
                reply_c = json.loads(await r2.readline())
                w1.close()
                w2.close()
                return reply_a, reply_b, reply_c

        reply_a, reply_b, reply_c = asyncio.run(run())
        assert reply_a["ok"]
        assert not reply_b["ok"]
        assert reply_b["error"]["code"] == "overloaded"
        assert reply_c["ok"]

    def test_http_overload_is_a_structured_503(self, engine):
        async def run():
            async with running(engine, max_inflight=1,
                               coalesce_window_s=0.3) as plane:
                r1, w1 = await connect(plane)
                w1.write(encode({"op": "adapt", "id": "a", "dimming": 0.4}))
                await w1.drain()
                await asyncio.sleep(0.05)
                r2, w2 = await connect(plane)
                status, _, body = await http_exchange(
                    r2, w2, "POST", "/v1/adapt", b'{"dimming": 0.6}')
                # Same connection, after load clears: served.
                await r1.readline()
                status_after, _, _ = await http_exchange(
                    r2, w2, "POST", "/v1/adapt", b'{"dimming": 0.6}')
                w1.close()
                w2.close()
                return status, json.loads(body), status_after

        status, reply, status_after = asyncio.run(run())
        assert status == 503
        assert reply["error"]["code"] == "overloaded"
        assert status_after == 200

    def test_connection_cap_refuses_politely(self, engine):
        async def run():
            async with running(engine, max_connections=1) as plane:
                r1, w1 = await connect(plane)
                w1.write(encode({"op": "health"}))
                await w1.drain()
                first = json.loads(await r1.readline())
                r2, w2 = await connect(plane)
                w2.write(encode({"op": "health"}))
                await w2.drain()
                refusal = json.loads(await r2.readline())
                eof = await r2.readline()
                w1.close()
                w2.close()
                return first, refusal, eof, plane.refused_connections

        first, refusal, eof, refused = asyncio.run(run())
        assert first["ok"]
        assert refusal["error"]["code"] == "overloaded"
        assert eof == b""
        assert refused == 1


class TestDrain:
    def test_graceful_drain_finishes_inflight_work(self, engine):
        async def run():
            async with running(engine, coalesce_window_s=0.5) as plane:
                reader, writer = await connect(plane)
                writer.write(encode({"op": "adapt", "id": "last",
                                     "dimming": 0.5}))
                await writer.drain()
                await asyncio.sleep(0.05)    # parked in the window
                assert plane.coalescer.pending == 1
                stopper = asyncio.ensure_future(plane.stop())
                reply = json.loads(await reader.readline())
                await stopper
                # The listener is closed: new connections are refused.
                with pytest.raises(OSError):
                    await asyncio.open_connection(plane.host, plane.port)
                writer.close()
                return reply, plane.draining

        reply, draining = asyncio.run(run())
        assert reply["ok"] and reply["id"] == "last"
        assert draining

    def test_draining_refuses_new_requests_with_a_structured_error(
            self, engine):
        async def run():
            async with running(engine) as plane:
                reader, writer = await connect(plane)
                # Establish the session before the drain begins.
                writer.write(encode({"op": "health"}))
                await writer.drain()
                assert json.loads(await reader.readline())["ok"]
                plane._draining = True
                writer.write(encode({"op": "adapt", "id": "x",
                                     "dimming": 0.5}))
                await writer.drain()
                refused = json.loads(await reader.readline())
                plane._draining = False
                writer.write(encode({"op": "adapt", "id": "y",
                                     "dimming": 0.5}))
                await writer.drain()
                served = json.loads(await reader.readline())
                writer.close()
                return refused, served

        refused, served = asyncio.run(run())
        assert refused["error"]["code"] == "draining"
        assert refused["id"] == "x"
        assert served["ok"] and served["id"] == "y"


class TestFleet:
    def test_200_concurrent_clients_zero_dropped_connections(self, engine):
        """The acceptance bar: a 200-client fleet, nothing dropped."""
        profile = LoadProfile(clients=200, requests_per_client=3, seed=11)

        async def run():
            async with running(engine) as plane:
                report = await run_loadgen(plane.host, plane.port, profile)
                return report, plane.coalescer.coalesce_ratio

        report, ratio = asyncio.run(run())
        assert report.sent == 600
        assert report.dropped_connections == 0
        assert report.ok == 600
        assert report.errors == 0
        assert ratio >= 1.0
        assert report.latency_percentile(50) < 1.0

    def test_overloaded_fleet_sheds_without_dropping(self, engine):
        profile = LoadProfile(clients=30, requests_per_client=10,
                              ndjson_fraction=1.0, arrival_rate_hz=5000.0,
                              seed=5)

        async def run():
            async with running(engine, queue_limit=2,
                               coalesce_window_s=0.05) as plane:
                return await run_loadgen(plane.host, plane.port, profile)

        report = asyncio.run(run())
        assert report.dropped_connections == 0
        assert report.shed > 0
        assert report.ok + report.shed + report.errors == report.sent
        assert report.errors == 0

    def test_loadgen_is_seed_deterministic_in_shape(self, engine):
        profile = LoadProfile(clients=8, requests_per_client=4, seed=3)

        async def run():
            async with running(engine) as plane:
                return await run_loadgen(plane.host, plane.port, profile)

        first = asyncio.run(run())
        second = asyncio.run(run())
        assert first.sent == second.sent == 32
        assert first.ok == second.ok == 32
