"""Fuzzer-shaped input against both transports.

The hardening contract: oversized, truncated, and invalid-UTF-8 NDJSON
frames and garbage HTTP bodies yield a *structured* protocol error on a
surviving connection — or a clean close — and never an unhandled task
exception.  Every test installs a loop exception handler and asserts it
stayed silent; the seeded garbage sprays are the fuzz half, the named
cases pin the specific failure shapes the fuzzer first surfaced.
"""

import asyncio
import contextlib
import json

import numpy as np
import pytest

from repro.serve import ControlPlane, ServeConfig
from repro.serve.protocol import E_BAD_REQUEST


@contextlib.asynccontextmanager
async def running(engine, registry=None, **knobs):
    """A started plane over the shared engine; always stopped."""
    plane = ControlPlane(ServeConfig(**knobs), config=engine.config,
                         registry=registry, engine=engine)
    await plane.start()
    try:
        yield plane
    finally:
        if not plane.draining:
            await plane.stop()


async def http_exchange(reader, writer, method, path, body=b""):
    """One keep-alive HTTP round trip; returns (status, headers, body)."""
    head = f"{method} {path} HTTP/1.1\r\nHost: t\r\n"
    if body:
        head += f"Content-Length: {len(body)}\r\n"
    head += "\r\n"
    writer.write(head.encode() + body)
    await writer.drain()
    status_line = await reader.readline()
    status = int(status_line.split()[1])
    headers = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode().partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0"))
    data = await reader.readexactly(length) if length else b""
    return status, headers, data


@contextlib.asynccontextmanager
async def watched(engine, **knobs):
    """A running plane plus a recorder of unhandled loop exceptions."""
    unhandled: list[str] = []
    loop = asyncio.get_running_loop()

    def record(loop, context):
        if isinstance(context.get("exception"), asyncio.CancelledError):
            return  # teardown cancellation noise, not a task crash
        unhandled.append(context.get("message", str(context)))

    previous = loop.get_exception_handler()
    loop.set_exception_handler(record)
    try:
        async with running(engine, **knobs) as plane:
            yield plane, unhandled
            # Let any stray task finish crashing before we look.
            await asyncio.sleep(0)
    finally:
        loop.set_exception_handler(previous)


async def connect(plane):
    return await asyncio.open_connection(plane.host, plane.port)


async def ndjson_roundtrip(reader, writer, obj) -> dict:
    writer.write(json.dumps(obj).encode() + b"\n")
    await writer.drain()
    return json.loads(await reader.readline())


VALID = {"v": 1, "op": "adapt", "dimming": 0.5, "id": "probe"}


class TestNdjsonMalformed:
    def test_invalid_utf8_gets_structured_error_and_survives(self, engine):
        async def run():
            async with watched(engine) as (plane, unhandled):
                reader, writer = await connect(plane)
                writer.write(b'{"v": 1, "op": "\xff\xfe adapt"}\n')
                await writer.drain()
                error = json.loads(await reader.readline())
                # The connection survived: a valid request still works.
                reply = await ndjson_roundtrip(reader, writer, VALID)
                writer.close()
                return error, reply, unhandled

        error, reply, unhandled = asyncio.run(run())
        assert error["ok"] is False
        assert error["error"]["code"] == E_BAD_REQUEST
        assert "UTF-8" in error["error"]["message"]
        assert reply["ok"] is True and reply["id"] == "probe"
        assert unhandled == []

    def test_oversized_line_gets_error_or_clean_close(self, engine):
        async def run():
            async with watched(engine) as (plane, unhandled):
                reader, writer = await connect(plane)
                # Establish NDJSON transport with a valid frame first,
                # then overrun the stream limit on the next line.  The
                # server replies with a structured error and closes
                # while we are still flushing, so the client may see a
                # reset instead of the error frame — both are fine; an
                # unhandled server-side exception is not.
                reply = await ndjson_roundtrip(reader, writer, VALID)
                error = None
                try:
                    writer.write(b'{"pad": "' + b"x" * (1 << 20))
                    await writer.drain()
                    writer.write_eof()
                    line = await reader.readline()
                    if line:
                        error = json.loads(line)
                except ConnectionError:
                    pass
                writer.close()
                # The plane survived and still serves new connections.
                reader2, writer2 = await connect(plane)
                probe = await ndjson_roundtrip(reader2, writer2, VALID)
                writer2.close()
                return reply, error, probe, unhandled

        reply, error, probe, unhandled = asyncio.run(run())
        assert reply["ok"] is True
        if error is not None:
            assert error["ok"] is False
            assert error["error"]["code"] == E_BAD_REQUEST
            assert "too long" in error["error"]["message"]
        assert probe["ok"] is True
        assert unhandled == []

    def test_oversized_first_line_closes_cleanly(self, engine):
        async def run():
            async with watched(engine) as (plane, unhandled):
                reader, writer = await connect(plane)
                leftover = b""
                try:
                    writer.write(b"{" * (1 << 20))
                    await writer.drain()
                    writer.write_eof()
                    leftover = await reader.read()
                except ConnectionError:
                    pass  # server closed mid-flush: also a clean close
                writer.close()
                reader2, writer2 = await connect(plane)
                probe = await ndjson_roundtrip(reader2, writer2, VALID)
                writer2.close()
                return leftover, probe, unhandled

        leftover, probe, unhandled = asyncio.run(run())
        assert leftover == b""  # clean close, no reply owed
        assert probe["ok"] is True
        assert unhandled == []

    def test_truncated_frame_closes_cleanly(self, engine):
        async def run():
            async with watched(engine) as (plane, unhandled):
                reader, writer = await connect(plane)
                writer.write(b'{"v": 1, "op": "ada')  # no newline, bail
                await writer.drain()
                writer.close()
                await asyncio.sleep(0.01)
                return unhandled

        assert asyncio.run(run()) == []

    def test_seeded_garbage_spray_never_crashes_a_task(self, engine):
        """Random byte frames: every line earns an error or a close."""
        rng = np.random.default_rng(1234)
        frames = [bytes(rng.integers(0, 256, size=int(rng.integers(1, 200)),
                                     dtype=np.uint8).tolist())
                  for _ in range(30)]

        async def run():
            async with watched(engine) as (plane, unhandled):
                for frame in frames:
                    reader, writer = await connect(plane)
                    writer.write(b"{" + frame + b"\n")
                    await writer.drain()
                    line = await reader.readline()
                    if line:  # structured error, never a raw traceback
                        reply = json.loads(line)
                        assert reply["ok"] is False
                    writer.close()
                # The plane still serves after the spray.
                reader, writer = await connect(plane)
                reply = await ndjson_roundtrip(reader, writer, VALID)
                writer.close()
                return reply, unhandled

        reply, unhandled = asyncio.run(run())
        assert reply["ok"] is True
        assert unhandled == []


class TestHttpMalformed:
    @pytest.mark.parametrize("content_length, expected_detail", [
        ("banana", "invalid content-length"),
        ("-5", "invalid content-length"),
        (str((1 << 20) + 1), "request body too large"),
    ])
    def test_bad_content_length_is_a_400(self, engine, content_length,
                                         expected_detail):
        async def run():
            async with watched(engine) as (plane, unhandled):
                reader, writer = await connect(plane)
                writer.write(f"POST /v1/adapt HTTP/1.1\r\nHost: t\r\n"
                             f"Content-Length: {content_length}\r\n\r\n"
                             .encode())
                await writer.drain()
                status_line = await reader.readline()
                writer.close()
                return status_line, unhandled

        status_line, unhandled = asyncio.run(run())
        assert b"400" in status_line
        assert unhandled == []

    def test_invalid_utf8_body_is_a_structured_400(self, engine):
        async def run():
            async with watched(engine) as (plane, unhandled):
                reader, writer = await connect(plane)
                status, _, body = await http_exchange(
                    reader, writer, "POST", "/v1/adapt",
                    b'{"dimming": \xff\xfe}')
                writer.close()
                return status, json.loads(body), unhandled

        status, reply, unhandled = asyncio.run(run())
        assert status == 400
        assert reply["ok"] is False
        assert reply["error"]["code"] == E_BAD_REQUEST
        assert "UTF-8" in reply["error"]["message"]
        assert unhandled == []

    def test_oversized_header_line_is_a_400(self, engine):
        async def run():
            async with watched(engine) as (plane, unhandled):
                reader, writer = await connect(plane)
                status_line = b""
                try:
                    writer.write(b"GET /healthz HTTP/1.1\r\nX-Pad: "
                                 + b"x" * (1 << 20))
                    await writer.drain()
                    writer.write_eof()
                    status_line = await reader.readline()
                except ConnectionError:
                    pass  # 400 sent and closed while we were flushing
                writer.close()
                return status_line, unhandled

        status_line, unhandled = asyncio.run(run())
        assert status_line == b"" or b"400" in status_line
        assert unhandled == []

    def test_garbage_body_then_healthy_request(self, engine):
        """A 400 on a keep-alive connection doesn't poison it."""
        async def run():
            async with watched(engine) as (plane, unhandled):
                reader, writer = await connect(plane)
                status, _, body = await http_exchange(
                    reader, writer, "POST", "/v1/adapt", b"\x00\x01garbage")
                ok_status, _, ok_body = await http_exchange(
                    reader, writer, "GET", "/healthz")
                writer.close()
                return status, ok_status, json.loads(ok_body), unhandled

        status, ok_status, reply, unhandled = asyncio.run(run())
        assert status == 400
        assert ok_status == 200
        assert reply["ok"] is True
        assert unhandled == []
