"""The Fig. 19 dynamic scenario driver."""

import pytest

from repro.core import SystemConfig
from repro.lighting import StaticAmbient
from repro.sim import DynamicScenario


@pytest.fixture(scope="module")
def result():
    return DynamicScenario(config=SystemConfig()).run()


class TestRun:
    def test_tick_count(self, result):
        assert len(result.ticks) == 68  # 0..67 inclusive at 1 s

    def test_sum_constant(self, result):
        assert max(result.sum_trace) - min(result.sum_trace) < 1e-9

    def test_led_mirrors_ambient(self, result):
        # Blind goes up -> ambient rises -> LED dims.
        assert result.ambient_trace[-1] > result.ambient_trace[0]
        assert result.led_trace[-1] < result.led_trace[0]

    def test_throughput_in_paper_band(self, result):
        # Fig. 19(a): roughly 50-110 kbps over the run.
        assert min(result.throughput_bps) > 30e3
        assert 90e3 < max(result.throughput_bps) < 130e3

    def test_throughput_peaks_mid_run(self, result):
        # The dimming level crosses 0.5 mid-ramp where AMPPM peaks.
        series = result.throughput_bps
        n = len(series)
        mid = max(series[n // 3: 2 * n // 3])
        assert mid == max(series)

    def test_adaptation_counts_cumulative(self, result):
        smart = result.cumulative_adjustments_smart
        existing = result.cumulative_adjustments_existing
        assert all(b >= a for a, b in zip(smart, smart[1:]))
        assert all(b >= a for a, b in zip(existing, existing[1:]))

    def test_paper_50pct_reduction(self, result):
        assert 0.40 <= result.adaptation_reduction <= 0.60


class TestStaticProfile:
    def test_static_ambient_is_flat(self):
        scenario = DynamicScenario(config=SystemConfig(),
                                   profile=StaticAmbient(0.5),
                                   duration_s=10.0)
        result = scenario.run()
        assert max(result.throughput_bps) == pytest.approx(
            min(result.throughput_bps))
        assert result.ticks[-1].adjustments_smart == \
            result.ticks[1].adjustments_smart
