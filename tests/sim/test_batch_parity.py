"""Parity between the batch engine and the scalar reference path.

The contract (see :mod:`repro.sim.batch`) is stronger than statistical
agreement: under a shared seed the batch engine consumes the identical
random stream as the scalar loops, so every quantity must match
*bit-for-bit*.  These tests pin both the exact match and — per the
acceptance criterion — the 4-sigma binomial envelope against the
analytic model for all three schemes at two dimming levels.
"""

import numpy as np
import pytest

from repro.core import SlotErrorModel, SymbolPattern
from repro.core.coding import CodewordWeightError, decode_symbol, encode_symbol
from repro.link.mac import corrupt_slots
from repro.schemes import AmppmScheme, Mppm, OokCt
from repro.sim import (
    BatchCodec,
    BatchMonteCarloValidator,
    MonteCarloValidator,
    corrupt_batch,
)

SEED = 0xBA7C4
PATTERNS = [(5, 2), (6, 5), (10, 1), (20, 10), (30, 15), (63, 31)]
SCHEMES = [AmppmScheme, OokCt, Mppm]
LEVELS = (0.3, 0.5)


class TestBatchCodec:
    @pytest.mark.parametrize("n,k", PATTERNS)
    def test_encode_matches_scalar(self, n, k):
        codec = BatchCodec(n, k)
        rng = np.random.default_rng(SEED)
        values = rng.integers(0, codec.capacity,
                              size=min(codec.capacity, 300))
        batch = codec.encode_batch(values)
        for value, row in zip(values, batch):
            assert tuple(row) == encode_symbol(int(value), n, k)

    @pytest.mark.parametrize("n,k", PATTERNS)
    def test_round_trip(self, n, k):
        codec = BatchCodec(n, k)
        rng = np.random.default_rng(SEED + 1)
        values = rng.integers(0, codec.capacity,
                              size=min(codec.capacity, 300))
        decoded, weight_ok = codec.decode_batch(codec.encode_batch(values))
        assert weight_ok.all()
        np.testing.assert_array_equal(decoded, values)

    def test_weight_check_matches_scalar(self):
        # Arbitrary-weight rows: weight_ok must be False exactly where
        # the scalar decoder raises, and the ranks must agree elsewhere.
        n, k = 12, 4
        codec = BatchCodec(n, k)
        rng = np.random.default_rng(SEED + 2)
        rows = rng.random((400, n)) < 0.33
        values, weight_ok = codec.decode_batch(rows)
        assert not weight_ok.all()  # the sample surely has bad weights
        for row, value, ok in zip(rows, values, weight_ok):
            if ok:
                assert decode_symbol(list(row), k) == value
            else:
                with pytest.raises(CodewordWeightError):
                    decode_symbol(list(row), k)

    def test_validation(self):
        codec = BatchCodec(10, 5)
        with pytest.raises(ValueError):
            codec.encode_batch(np.array([codec.capacity]))
        with pytest.raises(ValueError):
            codec.encode_batch(np.array([-1]))
        with pytest.raises(ValueError):
            codec.decode_batch(np.zeros((4, 9), dtype=bool))
        with pytest.raises(ValueError):
            BatchCodec(10, 11)

    def test_int64_overflow_reported_unsupported(self):
        # C(70, 35) > int64: the codec must refuse rather than wrap.
        codec = BatchCodec(70, 35)
        assert not codec.supported
        with pytest.raises(ValueError):
            codec.encode_batch(np.array([0]))
        # Everything the frame header can express stays supported.
        assert BatchCodec(63, 31).supported


class TestCorruptBatchParity:
    def test_matches_scalar_stream(self):
        errors = SlotErrorModel(p_off_error=0.05, p_on_error=0.11)
        rng = np.random.default_rng(SEED + 3)
        rows = rng.random((50, 40)) < 0.5
        batch = corrupt_batch(rows, errors,
                              np.random.default_rng(SEED + 4))
        scalar_rng = np.random.default_rng(SEED + 4)
        for row, got in zip(rows, batch):
            assert list(got) == corrupt_slots(list(row), errors, scalar_rng)

    def test_ideal_channel_consumes_no_draws(self):
        # corrupt_slots short-circuits on a noiseless link; the batch
        # path must leave the generator in the same state.
        rows = np.ones((3, 8), dtype=bool)
        rng = np.random.default_rng(SEED + 5)
        out = corrupt_batch(rows, SlotErrorModel.ideal(), rng)
        np.testing.assert_array_equal(out, rows)
        assert rng.random() == np.random.default_rng(SEED + 5).random()


class TestValidatorParity:
    @pytest.mark.parametrize("n,k", [(30, 15), (20, 10), (12, 3)])
    def test_ser_bit_identical(self, config, n, k):
        errors = SlotErrorModel(3e-3, 3e-3)
        scalar = MonteCarloValidator(config).symbol_error_rate(
            SymbolPattern(n, k), errors,
            np.random.default_rng(SEED), n_symbols=2000)
        batch = BatchMonteCarloValidator(config).symbol_error_rate(
            SymbolPattern(n, k), errors,
            np.random.default_rng(SEED), n_symbols=2000)
        assert batch == scalar

    @pytest.mark.parametrize("scheme_cls", [AmppmScheme, Mppm])
    @pytest.mark.parametrize("level", LEVELS)
    def test_ser_within_binomial_envelope(self, config, scheme_cls, level):
        # The combinadic patterns the designers actually pick (OOK-CT
        # carries no such pattern; its parity is pinned through the
        # frame path below).
        design = scheme_cls(config).design(level)
        pattern = (design.pattern if hasattr(design, "pattern")
                   else design.super_symbol.first)
        errors = SlotErrorModel(2e-3, 2e-3)
        estimate = BatchMonteCarloValidator(config).symbol_error_rate(
            pattern, errors, np.random.default_rng(SEED), n_symbols=4000)
        assert estimate.consistent_with_analytic(sigmas=4.0)

    @pytest.mark.parametrize("scheme_cls", SCHEMES)
    @pytest.mark.parametrize("level", LEVELS)
    def test_frame_loss_bit_identical(self, config, scheme_cls, level):
        design = scheme_cls(config).design(level)
        errors = SlotErrorModel(8e-4, 8e-4)
        scalar = MonteCarloValidator(config).frame_loss_rate(
            design, errors, np.random.default_rng(SEED), n_frames=60)
        batch = BatchMonteCarloValidator(config).frame_loss_rate(
            design, errors, np.random.default_rng(SEED), n_frames=60)
        assert batch == scalar
        measured, analytic = batch
        std = (analytic * (1.0 - analytic) / 60) ** 0.5
        assert abs(measured - analytic) <= 4.0 * std + 0.05

    def test_unsupported_pattern_falls_back_to_scalar(self, config):
        # Table overflows (C(70, 35) > int64) but the capacity C(70, 60)
        # still fits, so the scalar reference handles it.
        pattern = SymbolPattern(70, 60)
        errors = SlotErrorModel(1e-3, 1e-3)
        batch = BatchMonteCarloValidator(config).symbol_error_rate(
            pattern, errors, np.random.default_rng(SEED), n_symbols=50)
        scalar = MonteCarloValidator(config).symbol_error_rate(
            pattern, errors, np.random.default_rng(SEED), n_symbols=50)
        assert batch == scalar

    def test_args_validated(self, config):
        validator = BatchMonteCarloValidator(config)
        with pytest.raises(ValueError):
            validator.symbol_error_rate(SymbolPattern(10, 5),
                                        SlotErrorModel.ideal(),
                                        np.random.default_rng(0),
                                        n_symbols=0)
        design = AmppmScheme(config).design(0.3)
        with pytest.raises(ValueError):
            validator.frame_loss_rate(design, SlotErrorModel.ideal(),
                                      np.random.default_rng(0), n_frames=0)
