"""Monte-Carlo validation of the analytic error models."""

import numpy as np
import pytest

from repro.core import SlotErrorModel, SymbolPattern, SystemConfig
from repro.schemes import AmppmScheme
from repro.sim.montecarlo import MonteCarloValidator, default_payload


@pytest.fixture(scope="module")
def validator():
    return MonteCarloValidator(SystemConfig())


class TestDefaultPayload:
    def test_ramp_restarts_after_256(self):
        payload = default_payload(300)
        assert len(payload) == 300
        assert payload[:256] == bytes(range(256))
        assert payload[256:] == bytes(range(44))

    def test_multiple_of_256_regression(self):
        # The old expression, bytes(range(n % 256)), collapsed to an
        # *empty* payload whenever n was a multiple of 256.
        payload = default_payload(256)
        assert len(payload) == 256
        assert payload == bytes(range(256))

    def test_short_and_empty(self):
        assert default_payload(0) == b""
        assert default_payload(3) == b"\x00\x01\x02"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            default_payload(-1)

    def test_frame_loss_usable_at_256_byte_payloads(self, validator):
        # End-to-end guard: a 256-byte config must exercise a real
        # payload, not silently validate empty frames.
        config = SystemConfig(payload_bytes=256)
        design = AmppmScheme(config).design(0.5)
        measured, analytic = MonteCarloValidator(config).frame_loss_rate(
            design, SlotErrorModel.ideal(), np.random.default_rng(8),
            n_frames=3)
        assert measured == 0.0
        assert analytic == 0.0


class TestEq3Validation:
    def test_measured_ser_matches_analytic(self, validator):
        # A deliberately noisy channel so the estimate converges fast.
        errors = SlotErrorModel(2e-3, 2e-3)
        rng = np.random.default_rng(1)
        estimate = validator.symbol_error_rate(
            SymbolPattern(30, 15), errors, rng, n_symbols=4000)
        assert estimate.consistent_with_analytic()
        assert estimate.measured_ser > 0

    def test_clean_channel_no_errors(self, validator):
        rng = np.random.default_rng(2)
        estimate = validator.symbol_error_rate(
            SymbolPattern(20, 10), SlotErrorModel.ideal(), rng,
            n_symbols=200)
        assert estimate.n_errors == 0
        assert estimate.measured_ser == 0.0

    def test_most_errors_are_detected(self, validator):
        # Single flips break the codeword weight, so the overwhelming
        # majority of symbol errors are detectable without the CRC.
        errors = SlotErrorModel(3e-3, 3e-3)
        rng = np.random.default_rng(3)
        estimate = validator.symbol_error_rate(
            SymbolPattern(30, 15), errors, rng, n_symbols=4000)
        assert estimate.n_undetected <= 0.2 * max(estimate.n_errors, 1)

    def test_aliasing_exists_under_heavy_noise(self, validator):
        # With brutal noise, compensating flips do alias — the reason
        # frames still need a CRC.
        errors = SlotErrorModel(0.08, 0.08)
        rng = np.random.default_rng(4)
        estimate = validator.symbol_error_rate(
            SymbolPattern(20, 10), errors, rng, n_symbols=1500)
        assert estimate.n_undetected > 0

    def test_validation_args(self, validator):
        rng = np.random.default_rng(5)
        with pytest.raises(ValueError):
            validator.symbol_error_rate(SymbolPattern(10, 5),
                                        SlotErrorModel.ideal(), rng,
                                        n_symbols=0)


class TestFrameLossValidation:
    def test_measured_matches_analytic(self, validator):
        config = SystemConfig()
        design = AmppmScheme(config).design(0.5)
        errors = SlotErrorModel(2e-4, 2e-4)
        rng = np.random.default_rng(6)
        measured, analytic = validator.frame_loss_rate(
            design, errors, rng, n_frames=300)
        std = (analytic * (1 - analytic) / 300) ** 0.5
        assert abs(measured - analytic) <= 4 * std + 0.02

    def test_clean_channel_lossless(self, validator):
        config = SystemConfig()
        design = AmppmScheme(config).design(0.3)
        rng = np.random.default_rng(7)
        measured, analytic = validator.frame_loss_rate(
            design, SlotErrorModel.ideal(), rng, n_frames=10)
        assert measured == 0.0
        assert analytic == 0.0

    def test_args_validated(self, validator):
        config = SystemConfig()
        design = AmppmScheme(config).design(0.3)
        with pytest.raises(ValueError):
            validator.frame_loss_rate(design, SlotErrorModel.ideal(),
                                      np.random.default_rng(0), n_frames=0)
