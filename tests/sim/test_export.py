"""CSV/JSON export of experiment results."""

import csv
import json

import pytest

from repro.sim import FigureResult, Series, TableResult
from repro.sim.export import (
    figure_to_rows,
    result_to_json,
    write_figure_csv,
    write_json,
    write_table_csv,
)


@pytest.fixture()
def figure():
    return FigureResult(
        figure_id="figX", title="t", x_label="x", y_label="y",
        series=(Series("a", (0.0, 1.0), (2.0, 3.0)),
                Series("b", (0.0,), (5.0,))),
        notes="n")


@pytest.fixture()
def table():
    return TableResult("tabX", "t", ("c1", "c2"), (("1", "2"), ("3", "4")))


class TestCsv:
    def test_figure_long_form(self, figure, tmp_path):
        path = write_figure_csv(figure, tmp_path / "fig.csv")
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 3
        assert rows[0] == {"figure": "figX", "series": "a",
                           "x": "0.0", "y": "2.0"}
        assert rows[2]["series"] == "b"

    def test_table_csv(self, table, tmp_path):
        path = write_table_csv(table, tmp_path / "tab.csv")
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows == [["c1", "c2"], ["1", "2"], ["3", "4"]]

    def test_rows_helper(self, figure):
        rows = figure_to_rows(figure)
        assert all(set(r) == {"figure", "series", "x", "y"} for r in rows)


class TestJson:
    def test_figure_roundtrip(self, figure):
        payload = json.loads(result_to_json(figure))
        assert payload["kind"] == "figure"
        assert payload["series"][0]["y"] == [2.0, 3.0]
        assert payload["x_label"] == "x"

    def test_table_roundtrip(self, table):
        payload = json.loads(result_to_json(table))
        assert payload["kind"] == "table"
        assert payload["rows"] == [["1", "2"], ["3", "4"]]

    def test_write_json(self, figure, tmp_path):
        path = write_json(figure, tmp_path / "fig.json")
        assert json.loads(path.read_text())["id"] == "figX"

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            result_to_json(object())  # type: ignore[arg-type]


class TestRealExperiments:
    def test_every_experiment_exports(self, tmp_path):
        from repro.experiments import run_experiment

        for experiment_id in ("fig04", "table2-direct"):
            result = run_experiment(experiment_id)
            path = write_json(result, tmp_path / f"{experiment_id}.json")
            payload = json.loads(path.read_text())
            assert payload["id"].startswith(experiment_id.split("-")[0])
