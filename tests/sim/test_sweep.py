"""SweepRunner: grid fan-out, process parallelism, seeding contract."""

import pytest

from repro.sim.sweep import SweepRunner


def _square(point):
    return point * point


def _draw(point, rng):
    # A stochastic worker: the result depends only on the point's own
    # spawned stream, never on scheduling.
    return (point, float(rng.random()))


class TestSerial:
    def test_maps_in_order(self):
        assert SweepRunner().map(_square, [1, 2, 3]) == [1, 4, 9]

    def test_empty_grid(self):
        assert SweepRunner().map(_square, []) == []

    def test_jobs_one_is_serial(self):
        runner = SweepRunner(jobs=1)
        assert not runner.parallel
        assert runner.map(_square, [4, 5]) == [16, 25]

    def test_jobs_validated(self):
        with pytest.raises(ValueError):
            SweepRunner(jobs=0)
        with pytest.raises(ValueError):
            SweepRunner(jobs=-3)


class TestParallel:
    def test_matches_serial(self):
        points = list(range(20))
        assert (SweepRunner(jobs=4).map(_square, points)
                == SweepRunner().map(_square, points))

    def test_preserves_point_order(self):
        points = [7, 1, 9, 3]
        assert SweepRunner(jobs=2).map(_square, points) == [49, 1, 81, 9]


class TestSeeding:
    def test_worker_receives_per_point_generator(self):
        results = SweepRunner().map(_draw, [10, 20], seed=123)
        assert [p for p, _ in results] == [10, 20]
        # Distinct spawned streams, not a shared generator.
        assert results[0][1] != results[1][1]

    def test_same_seed_reproduces(self):
        a = SweepRunner().map(_draw, [1, 2, 3], seed=42)
        b = SweepRunner().map(_draw, [1, 2, 3], seed=42)
        assert a == b

    def test_seeded_results_independent_of_job_count(self):
        points = list(range(6))
        serial = SweepRunner().map(_draw, points, seed=99)
        parallel = SweepRunner(jobs=3).map(_draw, points, seed=99)
        assert serial == parallel

    def test_different_seeds_differ(self):
        a = SweepRunner().map(_draw, [0], seed=1)
        b = SweepRunner().map(_draw, [0], seed=2)
        assert a != b
