"""Result containers and text rendering."""

import pytest

from repro.sim import (
    ExperimentRegistry,
    FigureResult,
    Series,
    TableResult,
    ascii_plot,
    format_table,
)


def _figure():
    return FigureResult(
        figure_id="figX",
        title="demo",
        x_label="x",
        y_label="y",
        series=(Series("a", (0.0, 1.0), (1.0, 2.0)),
                Series("b", (0.0, 1.0), (2.0, 1.0))),
        notes="a note",
    )


class TestSeries:
    def test_value_at(self):
        s = Series("a", (0.1, 0.2), (5.0, 6.0))
        assert s.value_at(0.2) == 6.0
        with pytest.raises(KeyError):
            s.value_at(0.3)

    def test_value_at_miss_names_the_nearest_points(self):
        # A typo'd grid point must be diagnosable from the message alone.
        s = Series("ser", (0.1, 0.2, 0.5, 0.9), (1.0, 2.0, 3.0, 4.0))
        with pytest.raises(KeyError) as excinfo:
            s.value_at(0.25)
        message = str(excinfo.value)
        assert "x=0.25" in message
        assert "'ser'" in message
        # The three nearest available x values, in ascending order.
        assert "0.1, 0.2, 0.5" in message
        assert "0.9" not in message

    def test_extremes(self):
        s = Series("a", (0.0, 1.0, 2.0), (3.0, -1.0, 2.0))
        assert s.y_max == 3.0
        assert s.y_min == -1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Series("a", (1.0,), (1.0, 2.0))
        with pytest.raises(ValueError):
            Series("a", (), ())


class TestFigureResult:
    def test_get_by_name(self):
        fig = _figure()
        assert fig.get("b").y_max == 2.0
        with pytest.raises(KeyError):
            fig.get("missing")

    def test_render_contains_everything(self):
        text = _figure().render(width=30, height=6)
        assert "figX" in text
        assert "legend" in text
        assert "a note" in text
        assert "demo" in text


class TestTableResult:
    def test_render(self):
        table = TableResult("t1", "title", ("a", "b"),
                            (("1", "2"), ("3", "4")), notes="n")
        text = table.render()
        assert "t1" in text
        assert "3" in text
        assert "n" in text


class TestFormatting:
    def test_format_table_aligns(self):
        text = format_table(["col", "x"], [["1", "22"], ["333", "4"]])
        lines = text.splitlines()
        assert len({len(line) for line in lines}) == 1

    def test_ascii_plot_flat_series(self):
        # A constant series must not divide by zero.
        text = ascii_plot([Series("flat", (0.0, 1.0), (5.0, 5.0))],
                          width=20, height=5)
        assert "flat" in text


class TestRegistry:
    def test_register_and_run(self):
        registry = ExperimentRegistry()
        registry.register("demo", lambda scale=1: scale * 2)
        assert registry.run("demo", scale=3) == 6
        assert registry.ids() == ["demo"]

    def test_duplicate_rejected(self):
        registry = ExperimentRegistry()
        registry.register("demo", lambda: None)
        with pytest.raises(ValueError):
            registry.register("demo", lambda: None)

    def test_unknown_id(self):
        with pytest.raises(KeyError):
            ExperimentRegistry().run("nope")
