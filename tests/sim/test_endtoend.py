"""Waveform-level integration: the full TX → optics → RX chain."""

import numpy as np
import pytest

from repro.core import SystemConfig
from repro.phy import LinkGeometry
from repro.schemes import AmppmScheme, Mppm, OokCt
from repro.sim import EndToEndLink


@pytest.fixture(scope="module")
def config():
    return SystemConfig()


class TestDelivery:
    @pytest.mark.parametrize("scheme_cls", [AmppmScheme, Mppm, OokCt])
    def test_short_range_delivers(self, config, scheme_cls, rng):
        link = EndToEndLink(config=config,
                            geometry=LinkGeometry.on_axis(2.0))
        design = scheme_cls(config).design_clamped(0.4)
        report = link.send_frame(bytes(range(48)), design, rng)
        assert report.delivered
        assert report.slot_errors == 0

    def test_various_dimming_levels(self, config, rng):
        link = EndToEndLink(config=config,
                            geometry=LinkGeometry.on_axis(2.5))
        scheme = AmppmScheme(config)
        for level in (0.15, 0.5, 0.85):
            report = link.send_frame(b"dimming sweep", scheme.design(level), rng)
            assert report.delivered, level

    def test_far_range_fails(self, config, rng):
        link = EndToEndLink(config=config,
                            geometry=LinkGeometry.on_axis(7.0))
        design = AmppmScheme(config).design(0.5)
        failures = sum(
            not link.send_frame(bytes(16), design, rng).delivered
            for _ in range(5))
        assert failures >= 4

    def test_off_axis_fails_at_distance(self, config, rng):
        link = EndToEndLink(config=config,
                            geometry=LinkGeometry.on_arc(3.3, 14.0))
        design = AmppmScheme(config).design(0.5)
        report = link.send_frame(bytes(24), design, rng)
        near = EndToEndLink(config=config,
                            geometry=LinkGeometry.on_arc(1.3, 14.0))
        report_near = near.send_frame(bytes(24), design, rng)
        assert report_near.delivered
        assert report_near.slot_errors <= report.slot_errors

    def test_ambient_noise_costs_margin(self, config):
        # Same noise draws on both links (same seed): only the ambient
        # noise term differs, so the dark link cannot do worse.
        design = AmppmScheme(config).design(0.5)
        dark = EndToEndLink(config=config, ambient=0.05,
                            geometry=LinkGeometry.on_axis(4.8))
        bright = EndToEndLink(config=config, ambient=1.0,
                              geometry=LinkGeometry.on_axis(4.8))
        dark_errs = dark.measure_slot_error_rate(
            design, bytes(64), 10, np.random.default_rng(99))
        bright_errs = bright.measure_slot_error_rate(
            design, bytes(64), 10, np.random.default_rng(99))
        assert dark_errs <= bright_errs


class TestBatchParity:
    def test_measured_ser_bit_identical_to_scalar(self, config):
        # Both paths consume the identical random stream, so the rates
        # must match exactly — not just statistically.
        design = AmppmScheme(config).design(0.5)
        link = EndToEndLink(config=config,
                            geometry=LinkGeometry.on_axis(4.8))
        batched = link.measure_slot_error_rate(
            design, bytes(48), 8, np.random.default_rng(1234), batch=True)
        scalar = link.measure_slot_error_rate(
            design, bytes(48), 8, np.random.default_rng(1234), batch=False)
        assert batched == scalar
        assert batched > 0  # 4.8 m is noisy enough to exercise errors

    def test_zero_frames(self, config):
        link = EndToEndLink(config=config)
        design = AmppmScheme(config).design(0.5)
        assert link.measure_slot_error_rate(
            design, bytes(8), 0, np.random.default_rng(0)) == 0.0


class TestReport:
    def test_slot_error_rate_field(self, config, rng):
        link = EndToEndLink(config=config,
                            geometry=LinkGeometry.on_axis(1.0))
        report = link.send_frame(bytes(8), AmppmScheme(config).design(0.5), rng)
        assert report.slot_error_rate == 0.0
        assert report.frame is not None
        assert report.failure == ""

    def test_failure_reported(self, config, rng):
        link = EndToEndLink(config=config,
                            geometry=LinkGeometry.on_axis(8.0))
        report = link.send_frame(bytes(8), AmppmScheme(config).design(0.5), rng)
        if not report.delivered:
            assert report.failure != ""
