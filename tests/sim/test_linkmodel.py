"""The analytic link model used by the figure harnesses."""

import pytest

from repro.core import SlotErrorModel
from repro.link import Transmitter
from repro.phy import LinkGeometry
from repro.schemes import AmppmScheme, OokCt
from repro.sim import (
    LinkEvaluator,
    expected_goodput,
    frame_slot_count,
    frame_success_probability,
    stop_and_wait_goodput,
)


class TestFrameAccounting:
    def test_slot_count_matches_real_frame(self, config):
        # The analytic count must match an actual encoded frame for a
        # deterministic-length scheme (AMPPM).
        design = AmppmScheme(config).design(0.5)
        tx = Transmitter(config)
        actual = len(tx.encode_frame(bytes(config.payload_bytes), design))
        predicted = frame_slot_count(design, config)
        assert predicted == actual

    def test_success_probability_bounds(self, config, paper_errors):
        design = AmppmScheme(config).design(0.3)
        p = frame_success_probability(design, paper_errors, config)
        assert 0.0 < p < 1.0
        assert frame_success_probability(
            design, SlotErrorModel.ideal(), config) == 1.0


class TestGoodput:
    def test_ideal_goodput_is_rate_times_payload_fraction(self, config):
        design = AmppmScheme(config).design(0.5)
        goodput = expected_goodput(design, SlotErrorModel.ideal(), config)
        slots = frame_slot_count(design, config)
        assert goodput == pytest.approx(
            8 * config.payload_bytes / (slots * config.t_slot))

    def test_stop_and_wait_is_slower(self, config, paper_errors):
        design = AmppmScheme(config).design(0.5)
        assert stop_and_wait_goodput(design, paper_errors, config) < \
            expected_goodput(design, paper_errors, config)

    def test_goodput_monotone_in_errors(self, config):
        design = AmppmScheme(config).design(0.5)
        clean = expected_goodput(design, SlotErrorModel(1e-6, 1e-6), config)
        dirty = expected_goodput(design, SlotErrorModel(1e-3, 1e-3), config)
        assert dirty < clean


class TestLinkEvaluator:
    def test_errors_from_geometry(self, config):
        near = LinkEvaluator(config=config, geometry=LinkGeometry.on_axis(1.0))
        far = LinkEvaluator(config=config, geometry=LinkGeometry.on_axis(4.5))
        assert near.errors.p_off_error < far.errors.p_off_error

    def test_at_rebinds_geometry(self, config):
        base = LinkEvaluator(config=config)
        moved = base.at(LinkGeometry.on_axis(4.8))
        assert moved.errors.p_off_error > base.errors.p_off_error
        assert moved.channel is base.channel

    def test_throughput_positive_in_range(self, config):
        evaluator = LinkEvaluator(config=config)
        scheme = AmppmScheme(config)
        for level in (0.1, 0.5, 0.9):
            assert evaluator.throughput_bps(scheme, level) > 0

    def test_throughput_dies_out_of_range(self, config):
        evaluator = LinkEvaluator(config=config,
                                  geometry=LinkGeometry.on_axis(6.0))
        scheme = OokCt(config)
        mid = LinkEvaluator(config=config).throughput_bps(scheme, 0.5)
        assert evaluator.throughput_bps(scheme, 0.5) < 0.05 * mid

    def test_paper_scale_at_3m(self, config):
        # Fig. 15's absolute scale: AMPPM ≈ 100 kbps at l = 0.5.
        evaluator = LinkEvaluator(config=config)
        kbps = evaluator.throughput_bps(AmppmScheme(config), 0.5) / 1e3
        assert 85 <= kbps <= 120
