"""The perception map Ip = 100·sqrt(Im/100) and flicker predicates."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    is_type1_flicker_free,
    is_type2_flicker_free,
    measured_step_for,
    perceived_step,
    to_measured,
    to_measured_percent,
    to_perceived,
    to_perceived_percent,
)


class TestPerceptionMap:
    def test_paper_formula_percent(self):
        assert to_perceived_percent(25.0) == pytest.approx(50.0)
        assert to_perceived_percent(100.0) == pytest.approx(100.0)
        assert to_perceived_percent(0.0) == 0.0

    def test_normalized_equivalent(self):
        assert to_perceived(0.25) == pytest.approx(0.5)

    def test_inverse(self):
        for v in (0.0, 0.1, 0.33, 0.5, 0.99, 1.0):
            assert to_measured(to_perceived(v)) == pytest.approx(v)
            assert to_measured_percent(to_perceived_percent(100 * v)) == \
                pytest.approx(100 * v)

    @given(st.floats(0.0, 1.0))
    def test_monotone(self, x):
        y = min(x + 0.01, 1.0)
        assert to_perceived(y) >= to_perceived(x)

    def test_concave_boosts_dark_changes(self):
        # The same measured step is far more visible near darkness.
        assert perceived_step(0.01, 0.02) > perceived_step(0.90, 0.91)

    def test_domain_validation(self):
        with pytest.raises(ValueError):
            to_perceived(1.5)
        with pytest.raises(ValueError):
            to_perceived(-0.1)
        with pytest.raises(ValueError):
            to_measured(2.0)


class TestMeasuredStepFor:
    def test_produces_exact_perceived_delta(self):
        for start in (0.0, 0.1, 0.5, 0.9):
            tau = measured_step_for(start, 0.003)
            assert perceived_step(start, start + tau) == pytest.approx(
                0.003, abs=1e-12)

    def test_step_grows_with_intensity(self):
        # Fig. 10(b): the variable tau is larger when the LED is bright.
        steps = [measured_step_for(x, 0.003) for x in (0.05, 0.2, 0.5, 0.9)]
        assert steps == sorted(steps)

    def test_clips_at_full_scale(self):
        step = measured_step_for(0.9999, 0.1)
        assert 0.9999 + step <= 1.0 + 1e-12

    def test_negative_delta_rejected(self):
        with pytest.raises(ValueError):
            measured_step_for(0.5, -0.1)


class TestFlickerPredicates:
    def test_type2_threshold(self):
        assert is_type2_flicker_free(0.5, 0.5 + 1e-4, 0.003)
        assert not is_type2_flicker_free(0.04, 0.09, 0.003)

    def test_type2_symmetric(self):
        assert is_type2_flicker_free(0.51, 0.50, 0.01) == \
            is_type2_flicker_free(0.50, 0.51, 0.01)

    def test_type1_threshold(self):
        assert is_type1_flicker_free(250.0, 250.0)
        assert is_type1_flicker_free(1000.0, 250.0)
        assert not is_type1_flicker_free(120.0, 250.0)
