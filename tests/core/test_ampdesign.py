"""The AMPPM designer: Steps 1-3 end to end."""

import numpy as np
import pytest

from repro.core import (
    AmppmDesigner,
    SlotErrorModel,
    SystemConfig,
    UnreachableDimmingError,
)


class TestDesign:
    def test_dimming_error_bounded_everywhere(self, designer, config):
        for level in np.arange(0.05, 0.951, 0.005):
            design = designer.design(float(level))
            assert design.dimming_error <= config.tau_perceived + 1e-12

    def test_flicker_bound_always_respected(self, designer, config):
        for level in np.arange(0.05, 0.951, 0.01):
            design = designer.design(float(level))
            assert design.super_symbol.n_slots <= config.n_max_super

    def test_at_most_two_patterns(self, designer):
        # The paper: "at most two different symbol patterns are required".
        for level in (0.1, 0.15, 0.33, 0.5, 0.77, 0.9):
            s = designer.design(level).super_symbol
            kinds = {p for p in s.symbols()}
            assert len(kinds) <= 2

    def test_exact_vertex_uses_single_pattern(self, designer):
        vertex = designer.envelope.points[len(designer.envelope.points) // 2]
        design = designer.design(vertex.dimming)
        assert design.super_symbol.m2 == 0

    def test_rate_tracks_envelope(self, designer):
        # Between vertices the design's rate is close to the chord.
        for level in (0.3, 0.45, 0.62, 0.8):
            design = designer.design(level)
            envelope_rate = designer.envelope.rate_at(level)
            achieved = design.normalized_rate(designer.errors)
            assert achieved >= 0.93 * envelope_rate

    def test_rate_peaks_at_half(self, designer):
        mid = designer.design(0.5).normalized_rate()
        lo = designer.design(0.1).normalized_rate()
        hi = designer.design(0.9).normalized_rate()
        assert mid > lo
        assert mid > hi

    def test_roughly_symmetric(self, designer):
        for level in (0.1, 0.2, 0.3, 0.4):
            low = designer.design(level).normalized_rate()
            high = designer.design(1.0 - level).normalized_rate()
            assert low == pytest.approx(high, rel=0.15)

    def test_out_of_range_raises(self, designer):
        lo, hi = designer.supported_range
        with pytest.raises(UnreachableDimmingError):
            designer.design(lo / 2)
        with pytest.raises(UnreachableDimmingError):
            designer.design((1 + hi) / 2)

    def test_clamped_design(self, designer):
        lo, hi = designer.supported_range
        assert designer.design_clamped(0.001).achieved_dimming == pytest.approx(
            lo, abs=designer.config.tau_perceived)

    def test_cache_returns_same_object(self, designer):
        assert designer.design(0.42) is designer.design(0.42)

    def test_candidates_are_copies(self, designer):
        candidates = designer.candidates
        candidates.clear()
        assert designer.candidates


class TestMemoKey:
    def test_matches_the_memo_bucket(self, designer, config):
        # Two requests share a design exactly when their keys agree.
        a, b = 0.5, 0.5 + config.tau_perceived / 4
        assert designer.memo_key(a) == designer.memo_key(b)
        assert designer.design(a) is designer.design(b)

    def test_distinct_buckets_get_distinct_designs(self, designer, config):
        a = 0.5
        b = 0.5 + 2 * config.tau_perceived
        assert designer.memo_key(a) != designer.memo_key(b)

    def test_clamps_like_design_clamped(self, designer):
        lo, hi = designer.supported_range
        assert designer.memo_key(-1.0) == designer.memo_key(lo)
        assert designer.memo_key(2.0) == designer.memo_key(hi)


class TestDesignMany:
    def test_matches_individual_designs(self, designer):
        levels = [0.2, 0.5, 0.2, 0.81, 0.5]
        batch = designer.design_many(levels)
        assert [d.target_dimming for d in batch] == \
            [designer.design(lv).target_dimming for lv in levels]

    def test_same_bucket_shares_the_same_object(self, config):
        fork = AmppmDesigner(config).fork()
        tau = config.tau_perceived
        center = fork.memo_key(0.5) * tau    # an exact bucket center
        batch = fork.design_many([center, center + tau / 4, 0.7,
                                  center - tau / 4])
        assert batch[0] is batch[1] is batch[3]
        assert batch[2] is not batch[0]

    def test_one_core_call_per_unique_bucket(self, designer):
        fork = designer.fork()
        levels = [0.3, 0.3, 0.6, 0.6, 0.6, 0.9]
        fork.design_many(levels)
        assert len(fork._cache) == len({fork.memo_key(lv) for lv in levels})

    def test_rejects_out_of_range_before_designing(self, designer):
        fork = designer.fork()
        with pytest.raises(UnreachableDimmingError):
            fork.design_many([0.5, 0.001])
        assert not fork._cache

    def test_empty_batch_is_rejected(self, designer):
        """An empty batch is a caller bug, not a no-op."""
        with pytest.raises(ValueError, match="at least one dimming"):
            designer.design_many([])

    def test_duplicate_requests_share_one_object(self, config):
        """Byte-for-byte duplicates collapse to a single design object."""
        fork = AmppmDesigner(config).fork()
        batch = fork.design_many([0.47, 0.47, 0.47])
        assert batch[0] is batch[1] is batch[2]
        assert len(fork._cache) == 1


class TestConfigurationEffects:
    def test_too_noisy_channel_rejected(self):
        noisy = SlotErrorModel(0.4, 0.4)
        with pytest.raises(ValueError):
            AmppmDesigner(SystemConfig(), noisy)

    def test_smaller_cap_narrows_range(self):
        wide = AmppmDesigner(SystemConfig(n_cap=50))
        narrow = AmppmDesigner(SystemConfig(n_cap=10))
        assert narrow.supported_range[0] > wide.supported_range[0]
        assert narrow.supported_range[1] < wide.supported_range[1]

    def test_ideal_channel_designer(self):
        designer = AmppmDesigner(SystemConfig(), SlotErrorModel.ideal())
        design = designer.design(0.5)
        assert design.normalized_rate() > 0.9

    def test_designs_reproducible_across_instances(self, config):
        a = AmppmDesigner(config)
        b = AmppmDesigner(config)
        for level in (0.13, 0.5, 0.87):
            assert a.design(level).super_symbol == b.design(level).super_symbol
