"""The AMPPM designer: Steps 1-3 end to end."""

import numpy as np
import pytest

from repro.core import (
    AmppmDesigner,
    SlotErrorModel,
    SystemConfig,
    UnreachableDimmingError,
)


class TestDesign:
    def test_dimming_error_bounded_everywhere(self, designer, config):
        for level in np.arange(0.05, 0.951, 0.005):
            design = designer.design(float(level))
            assert design.dimming_error <= config.tau_perceived + 1e-12

    def test_flicker_bound_always_respected(self, designer, config):
        for level in np.arange(0.05, 0.951, 0.01):
            design = designer.design(float(level))
            assert design.super_symbol.n_slots <= config.n_max_super

    def test_at_most_two_patterns(self, designer):
        # The paper: "at most two different symbol patterns are required".
        for level in (0.1, 0.15, 0.33, 0.5, 0.77, 0.9):
            s = designer.design(level).super_symbol
            kinds = {p for p in s.symbols()}
            assert len(kinds) <= 2

    def test_exact_vertex_uses_single_pattern(self, designer):
        vertex = designer.envelope.points[len(designer.envelope.points) // 2]
        design = designer.design(vertex.dimming)
        assert design.super_symbol.m2 == 0

    def test_rate_tracks_envelope(self, designer):
        # Between vertices the design's rate is close to the chord.
        for level in (0.3, 0.45, 0.62, 0.8):
            design = designer.design(level)
            envelope_rate = designer.envelope.rate_at(level)
            achieved = design.normalized_rate(designer.errors)
            assert achieved >= 0.93 * envelope_rate

    def test_rate_peaks_at_half(self, designer):
        mid = designer.design(0.5).normalized_rate()
        lo = designer.design(0.1).normalized_rate()
        hi = designer.design(0.9).normalized_rate()
        assert mid > lo
        assert mid > hi

    def test_roughly_symmetric(self, designer):
        for level in (0.1, 0.2, 0.3, 0.4):
            low = designer.design(level).normalized_rate()
            high = designer.design(1.0 - level).normalized_rate()
            assert low == pytest.approx(high, rel=0.15)

    def test_out_of_range_raises(self, designer):
        lo, hi = designer.supported_range
        with pytest.raises(UnreachableDimmingError):
            designer.design(lo / 2)
        with pytest.raises(UnreachableDimmingError):
            designer.design((1 + hi) / 2)

    def test_clamped_design(self, designer):
        lo, hi = designer.supported_range
        assert designer.design_clamped(0.001).achieved_dimming == pytest.approx(
            lo, abs=designer.config.tau_perceived)

    def test_cache_returns_same_object(self, designer):
        assert designer.design(0.42) is designer.design(0.42)

    def test_candidates_are_copies(self, designer):
        candidates = designer.candidates
        candidates.clear()
        assert designer.candidates


class TestConfigurationEffects:
    def test_too_noisy_channel_rejected(self):
        noisy = SlotErrorModel(0.4, 0.4)
        with pytest.raises(ValueError):
            AmppmDesigner(SystemConfig(), noisy)

    def test_smaller_cap_narrows_range(self):
        wide = AmppmDesigner(SystemConfig(n_cap=50))
        narrow = AmppmDesigner(SystemConfig(n_cap=10))
        assert narrow.supported_range[0] > wide.supported_range[0]
        assert narrow.supported_range[1] < wide.supported_range[1]

    def test_ideal_channel_designer(self):
        designer = AmppmDesigner(SystemConfig(), SlotErrorModel.ideal())
        design = designer.design(0.5)
        assert design.normalized_rate() > 0.9

    def test_designs_reproducible_across_instances(self, config):
        a = AmppmDesigner(config)
        b = AmppmDesigner(config)
        for level in (0.13, 0.5, 0.87):
            assert a.design(level).super_symbol == b.design(level).super_symbol
