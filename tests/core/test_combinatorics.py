"""Combinadic helpers: exactness, ordering, bit capacities."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.combinatorics import (
    binomial,
    bits_per_symbol,
    bits_to_int,
    int_to_bits,
    iter_weighted_codewords,
    rank_of_codeword,
    symbol_capacity,
)


class TestBinomial:
    def test_matches_math_comb(self):
        for n in range(0, 30):
            for k in range(0, n + 1):
                assert binomial(n, k) == math.comb(n, k)

    @pytest.mark.parametrize("n,k", [(-1, 0), (5, -1), (3, 4)])
    def test_outside_triangle_is_zero(self, n, k):
        assert binomial(n, k) == 0

    def test_large_exact(self):
        # The paper's 126 TB example: C(50, 25).
        assert binomial(50, 25) == 126410606437752


class TestBitsPerSymbol:
    def test_paper_eq2_examples(self):
        # S(10, 5): C=252 -> 7 bits; S(20, 2): C=190 -> 7 bits.
        assert bits_per_symbol(10, 5) == 7
        assert bits_per_symbol(20, 2) == 7

    def test_degenerate_symbols_carry_nothing(self):
        assert bits_per_symbol(10, 0) == 0
        assert bits_per_symbol(10, 10) == 0
        assert bits_per_symbol(1, 1) == 0

    def test_exact_power_of_two(self):
        # C(4, 2) = 6 -> 2 bits; C(5, 1) = 5 -> 2 bits; C(4, 1) = 4 -> 2.
        assert bits_per_symbol(4, 2) == 2
        assert bits_per_symbol(5, 1) == 2
        assert bits_per_symbol(4, 1) == 2

    @given(st.integers(2, 40), st.integers(1, 39))
    def test_capacity_is_power_of_two_below_count(self, n, k):
        if k >= n:
            k = n - 1
        cap = symbol_capacity(n, k)
        count = binomial(n, k)
        assert cap <= count
        assert cap & (cap - 1) == 0  # power of two
        if count >= 2:
            assert 2 * cap > count


class TestCombinadicOrder:
    def test_enumeration_matches_rank(self):
        for n, k in [(5, 2), (6, 3), (7, 1), (8, 7)]:
            for expected_rank, codeword in enumerate(iter_weighted_codewords(n, k)):
                assert rank_of_codeword(codeword) == expected_rank

    def test_enumeration_count(self):
        assert sum(1 for _ in iter_weighted_codewords(6, 3)) == binomial(6, 3)

    def test_all_codewords_distinct(self):
        seen = set(iter_weighted_codewords(7, 3))
        assert len(seen) == binomial(7, 3)

    def test_rank_zero_is_leading_ones(self):
        first = next(iter_weighted_codewords(6, 2))
        assert first == (True, True, False, False, False, False)


class TestBitConversions:
    def test_roundtrip(self):
        for value in (0, 1, 5, 127, 128, 2**20 - 1):
            width = max(1, value.bit_length())
            assert bits_to_int(int_to_bits(value, width)) == value

    def test_msb_first(self):
        assert int_to_bits(6, 3) == [1, 1, 0]
        assert bits_to_int([1, 1, 0]) == 6

    def test_width_validation(self):
        with pytest.raises(ValueError):
            int_to_bits(4, 2)
        with pytest.raises(ValueError):
            int_to_bits(-1, 4)

    def test_zero_width(self):
        assert int_to_bits(0, 0) == []
        with pytest.raises(ValueError):
            int_to_bits(1, 0)

    def test_rejects_non_bits(self):
        with pytest.raises(ValueError):
            bits_to_int([0, 2, 1])

    @given(st.lists(st.integers(0, 1), min_size=1, max_size=64))
    @settings(max_examples=50)
    def test_property_roundtrip(self, bits):
        assert int_to_bits(bits_to_int(bits), len(bits)) == bits
