"""Flicker-free adaptation planners (Section 4.3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Adapter,
    perceived_step,
    plan_measured_steps,
    plan_perceived_steps,
    safe_measured_tau,
)


class TestPerceivedPlanner:
    def test_reaches_target_exactly(self):
        plan = plan_perceived_steps(0.2, 0.73, 0.003)
        assert plan.levels[-1] == pytest.approx(0.73)

    def test_never_exceeds_tau(self):
        plan = plan_perceived_steps(0.05, 0.95, 0.003)
        assert plan.max_perceived_step <= 0.003 + 1e-12

    def test_downward_moves(self):
        plan = plan_perceived_steps(0.9, 0.1, 0.003)
        assert plan.levels[-1] == pytest.approx(0.1)
        assert plan.max_perceived_step <= 0.003 + 1e-12
        assert all(b < a for a, b in zip((0.9,) + plan.levels, plan.levels))

    def test_no_move_no_steps(self):
        assert plan_perceived_steps(0.4, 0.4, 0.003).n_steps == 0

    def test_step_count_matches_perceived_distance(self):
        plan = plan_perceived_steps(0.1, 0.9, 0.003)
        import math
        expected = math.ceil(perceived_step(0.1, 0.9) / 0.003)
        assert plan.n_steps == expected

    def test_measured_steps_grow_with_intensity(self):
        # The variable-tau behaviour of Fig. 10(b).
        plan = plan_perceived_steps(0.05, 0.95, 0.01)
        diffs = [b - a for a, b in zip((0.05,) + plan.levels, plan.levels)]
        assert diffs[-1] > 2 * diffs[0]

    def test_validation(self):
        with pytest.raises(ValueError):
            plan_perceived_steps(-0.1, 0.5, 0.003)
        with pytest.raises(ValueError):
            plan_perceived_steps(0.1, 0.5, 0.0)

    @given(st.floats(0.0, 1.0), st.floats(0.0, 1.0))
    @settings(max_examples=60)
    def test_property_flicker_free_and_complete(self, start, target):
        plan = plan_perceived_steps(start, target, 0.003)
        assert plan.max_perceived_step <= 0.003 + 1e-9
        if start != target:
            assert plan.levels[-1] == pytest.approx(target, abs=1e-12)


class TestMeasuredPlanner:
    def test_uniform_steps(self):
        plan = plan_measured_steps(0.1, 0.5, 0.01)
        diffs = [b - a for a, b in zip((0.1,) + plan.levels, plan.levels)]
        assert all(d == pytest.approx(diffs[0]) for d in diffs)

    def test_reaches_target(self):
        plan = plan_measured_steps(0.8, 0.2, 0.01)
        assert plan.levels[-1] == pytest.approx(0.2)

    def test_can_flicker_in_the_dark(self):
        # A fixed measured step safe at mid brightness is visible near
        # darkness — the existing method's fundamental problem.
        tau_mid = safe_measured_tau(0.5, 0.003)
        plan = plan_measured_steps(0.01, 0.2, tau_mid)
        assert plan.max_perceived_step > 0.003


class TestSafeTau:
    def test_sized_at_range_minimum(self):
        tau = safe_measured_tau(0.1, 0.003)
        assert perceived_step(0.1, 0.1 + tau) == pytest.approx(0.003)

    def test_smaller_when_darker(self):
        assert safe_measured_tau(0.05, 0.003) < safe_measured_tau(0.5, 0.003)

    def test_validation(self):
        with pytest.raises(ValueError):
            safe_measured_tau(1.0, 0.003)


class TestAdapter:
    def test_counts_accumulate(self):
        adapter = Adapter(tau_perceived=0.003, intensity=0.5)
        adapter.retarget(0.6)
        first = adapter.adjustments
        adapter.retarget(0.4)
        assert adapter.adjustments > first
        assert adapter.intensity == pytest.approx(0.4)

    def test_perception_domain_needs_fewer_steps(self):
        smart = Adapter(tau_perceived=0.003, intensity=0.9,
                        use_perception_domain=True)
        legacy = Adapter(tau_perceived=0.003, intensity=0.9,
                         use_perception_domain=False, range_min=0.1)
        smart.retarget(0.1)
        legacy.retarget(0.1)
        # The paper's ~2x reduction over a 0.1..0.9 operating range.
        ratio = legacy.adjustments / smart.adjustments
        assert 1.7 <= ratio <= 2.3

    def test_every_emitted_plan_is_flicker_free(self):
        adapter = Adapter(tau_perceived=0.003, intensity=0.3)
        for target in (0.5, 0.2, 0.9, 0.05):
            plan = adapter.retarget(target)
            assert plan.max_perceived_step <= 0.003 + 1e-12
