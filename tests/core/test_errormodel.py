"""Eq. (3) symbol error rates and the Poisson detection model."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import SlotErrorModel, SystemConfig


class TestEq3:
    def test_paper_formula(self, paper_errors):
        # PSER = 1 - (1-P1)^(N-K) (1-P2)^K
        n, k = 20, 8
        expected = 1.0 - (1 - 9e-5) ** 12 * (1 - 8e-5) ** 8
        assert paper_errors.symbol_error_rate(n, k) == pytest.approx(expected)

    def test_ideal_channel_never_errs(self):
        ideal = SlotErrorModel.ideal()
        assert ideal.symbol_error_rate(120, 60) == 0.0

    def test_ser_grows_with_n_at_fixed_dimming(self, paper_errors):
        # The Fig. 4 trend: same dimming level, larger N -> larger SER.
        sers = [paper_errors.symbol_error_rate(n, n // 2)
                for n in (10, 30, 50, 80, 120)]
        assert sers == sorted(sers)
        assert sers[-1] > 5 * sers[0]

    def test_p1_dominant_makes_off_heavy_symbols_worse(self, paper_errors):
        # P1 > P2, so at fixed N a lower dimming level errs more.
        low = paper_errors.symbol_error_rate(50, 5)
        high = paper_errors.symbol_error_rate(50, 45)
        assert low > high

    @given(st.integers(2, 100), st.data())
    def test_ser_bounds(self, n, data):
        k = data.draw(st.integers(0, n))
        model = SlotErrorModel(1e-4, 2e-4)
        ser = model.symbol_error_rate(n, k)
        assert 0.0 <= ser <= 1.0

    def test_invalid_k_rejected(self, paper_errors):
        with pytest.raises(ValueError):
            paper_errors.symbol_error_rate(10, 11)


class TestConstructors:
    def test_from_config_uses_measured_constants(self):
        cfg = SystemConfig()
        model = SlotErrorModel.from_config(cfg)
        assert model.p_off_error == cfg.p_off_error
        assert model.p_on_error == cfg.p_on_error

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            SlotErrorModel(-0.1, 0.0)
        with pytest.raises(ValueError):
            SlotErrorModel(0.0, 1.1)

    def test_scaled(self):
        model = SlotErrorModel(1e-4, 2e-4)
        scaled = model.scaled(10.0)
        assert scaled.p_off_error == pytest.approx(1e-3)
        assert scaled.p_on_error == pytest.approx(2e-3)

    def test_scaled_clips_at_one(self):
        model = SlotErrorModel(0.4, 0.4)
        assert model.scaled(10.0).p_off_error == 1.0

    def test_scaled_rejects_negative(self):
        with pytest.raises(ValueError):
            SlotErrorModel(0.1, 0.1).scaled(-1.0)


class TestPoissonModel:
    def test_separated_levels_give_small_errors(self):
        model = SlotErrorModel.from_poisson_counts(
            lambda_off=5.0, lambda_on=80.0, threshold=30.0)
        assert model.p_off_error < 1e-6
        assert model.p_on_error < 1e-6

    def test_threshold_position_trades_errors(self):
        low_thresh = SlotErrorModel.from_poisson_counts(10.0, 60.0, 20.0)
        high_thresh = SlotErrorModel.from_poisson_counts(10.0, 60.0, 45.0)
        assert low_thresh.p_off_error > high_thresh.p_off_error
        assert low_thresh.p_on_error < high_thresh.p_on_error

    def test_overlapping_levels_err_often(self):
        model = SlotErrorModel.from_poisson_counts(20.0, 25.0, 22.0)
        assert model.p_off_error > 0.1
        assert model.p_on_error > 0.1

    def test_rejects_inverted_rates(self):
        with pytest.raises(ValueError):
            SlotErrorModel.from_poisson_counts(50.0, 10.0, 30.0)

    def test_rejects_negative_rates(self):
        with pytest.raises(ValueError):
            SlotErrorModel.from_poisson_counts(-1.0, 10.0, 5.0)

    def test_zero_ambient_never_false_alarms(self):
        model = SlotErrorModel.from_poisson_counts(0.0, 50.0, 5.0)
        assert model.p_off_error == 0.0

    def test_large_lambda_uses_normal_approx(self):
        model = SlotErrorModel.from_poisson_counts(1000.0, 4000.0, 2000.0)
        assert 0.0 <= model.p_off_error < 1e-3
        assert 0.0 <= model.p_on_error < 1e-3
        assert math.isfinite(model.p_off_error)
