"""The slope-walk envelope vs the reference upper hull."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    SlotErrorModel,
    SymbolPattern,
    slope_walk_envelope,
    upper_concave_envelope,
)
from repro.core.envelope import score_points


def _patterns(n_values):
    return [SymbolPattern(n, k) for n in n_values for k in range(1, n)]


class TestScorePoints:
    def test_deduplicates_equal_dimming(self):
        pts = score_points(_patterns([10, 20]))
        dims = [p.dimming for p in pts]
        assert len(dims) == len(set(round(d, 12) for d in dims))

    def test_keeps_best_rate_per_level(self):
        pts = score_points(_patterns([10, 20]))
        # At l=0.5, S(20,10) (17/20=0.85) must beat S(10,5) (0.7).
        at_half = [p for p in pts if abs(p.dimming - 0.5) < 1e-9]
        assert len(at_half) == 1
        assert at_half[0].pattern == SymbolPattern(20, 10)

    def test_sorted_by_dimming(self):
        pts = score_points(_patterns([7, 11]))
        dims = [p.dimming for p in pts]
        assert dims == sorted(dims)


class TestSlopeWalk:
    def test_matches_reference_hull(self, paper_errors):
        patterns = _patterns(range(2, 22))
        walk = slope_walk_envelope(patterns, paper_errors)
        hull = upper_concave_envelope(patterns, paper_errors)
        assert [p.pattern for p in walk.points] == [p.pattern for p in hull.points]

    def test_matches_reference_hull_ideal(self):
        # Collinear flat tops may keep different (equivalent) vertex
        # sets, so compare the envelopes as functions.
        patterns = _patterns(range(2, 30))
        walk = slope_walk_envelope(patterns)
        hull = upper_concave_envelope(patterns)
        lo = max(walk.dimming_range[0], hull.dimming_range[0])
        hi = min(walk.dimming_range[1], hull.dimming_range[1])
        for i in range(101):
            x = lo + (hi - lo) * i / 100
            assert walk.rate_at(x) == pytest.approx(hull.rate_at(x), abs=1e-9)

    def test_envelope_dominates_every_point(self):
        patterns = _patterns(range(2, 25))
        env = slope_walk_envelope(patterns)
        for point in score_points(patterns):
            assert env.rate_at(point.dimming) >= point.rate - 1e-12

    def test_envelope_is_concave(self):
        env = slope_walk_envelope(_patterns(range(2, 25)))
        slopes = []
        for a, b in zip(env.points, env.points[1:]):
            slopes.append((b.rate - a.rate) / (b.dimming - a.dimming))
        assert all(s2 <= s1 + 1e-12 for s1, s2 in zip(slopes, slopes[1:]))

    def test_anchor_near_half(self):
        # The best pattern sits around l = 0.5 (the paper's footnote 1).
        env = slope_walk_envelope(_patterns(range(2, 25)))
        best = max(env.points, key=lambda p: p.rate)
        assert abs(best.dimming - 0.5) < 0.1

    def test_fig9_vertices(self, config):
        # With N <= 21 (the Fig. 9 window), the top of the envelope is
        # the paper's 0.857 bits/slot plateau of N=21 patterns
        # (S(21, 0.524) in Fig. 9; several K share the rate).
        env = slope_walk_envelope(_patterns(range(2, 22)))
        best = max(env.points, key=lambda p: p.rate)
        assert best.pattern.n_slots == 21
        assert best.rate == pytest.approx(18 / 21, abs=1e-9)
        assert 0.4 <= best.dimming <= 0.6

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            slope_walk_envelope([])

    def test_single_pattern(self):
        env = slope_walk_envelope([SymbolPattern(10, 5)])
        assert len(env.points) == 1
        assert env.rate_at(0.5) == pytest.approx(0.7)

    @given(st.lists(st.tuples(st.integers(4, 30), st.integers(1, 29)),
                    min_size=2, max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_property_walk_equals_hull(self, pairs):
        patterns = []
        for n, k in pairs:
            if k < n and SymbolPattern(n, k).bits > 0:
                patterns.append(SymbolPattern(n, k))
        if not patterns:
            return
        errors = SlotErrorModel(1e-4, 5e-5)
        walk = slope_walk_envelope(patterns, errors)
        hull = upper_concave_envelope(patterns, errors)
        assert walk.points == hull.points


class TestEnvelopeQueries:
    def test_rate_at_vertex_is_exact(self):
        env = slope_walk_envelope(_patterns([10]))
        assert env.rate_at(0.5) == pytest.approx(0.7)

    def test_rate_at_interpolates(self):
        env = slope_walk_envelope(_patterns([10]))
        left = env.rate_at(0.4)
        right = env.rate_at(0.5)
        mid = env.rate_at(0.45)
        assert mid == pytest.approx((left + right) / 2)

    def test_out_of_range_rejected(self):
        env = slope_walk_envelope(_patterns([10]))
        with pytest.raises(ValueError):
            env.rate_at(0.05)

    def test_bracket_returns_adjacent_vertices(self):
        env = slope_walk_envelope(_patterns([10]))
        left, right = env.bracket(0.45)
        assert left.dimming <= 0.45 <= right.dimming
