"""Super-symbols: multiplexing arithmetic, flicker bound, composition."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    SuperSymbol,
    SymbolPattern,
    SystemConfig,
    compose,
    reachable_dimming_levels,
)


class TestSuperSymbol:
    def test_paper_example_dimming(self):
        # Appending S(10, 0.2) to S(10, 0.1) gives dimming 0.15 (Fig. 5).
        s = SuperSymbol(SymbolPattern(10, 1), 1, SymbolPattern(10, 2), 1)
        assert s.dimming == pytest.approx(0.15)
        assert s.n_slots == 20

    def test_paper_example_finer_resolution(self):
        # Three S(10, 0.2) after one S(10, 0.1): dimming 0.175.
        s = SuperSymbol(SymbolPattern(10, 1), 1, SymbolPattern(10, 2), 3)
        assert s.dimming == pytest.approx(0.175)

    def test_bits_sum(self):
        # C(10,5)=252 -> 7 bits; C(10,2)=45 -> 5 bits.
        s = SuperSymbol(SymbolPattern(10, 5), 2, SymbolPattern(10, 2), 1)
        assert s.bits == 2 * 7 + 5

    def test_symbols_order(self):
        s = SuperSymbol(SymbolPattern(10, 1), 2, SymbolPattern(10, 2), 1)
        seq = list(s.symbols())
        assert seq == [SymbolPattern(10, 1)] * 2 + [SymbolPattern(10, 2)]

    def test_multiplexing_does_not_raise_ser(self, paper_errors):
        # Each constituent decodes separately: the per-symbol SER of a
        # super-symbol's parts equals the standalone SER.
        p1, p2 = SymbolPattern(10, 1), SymbolPattern(10, 2)
        s = SuperSymbol(p1, 1, p2, 1)
        rate = s.normalized_rate(paper_errors)
        expected = (p1.bits * (1 - p1.symbol_error_rate(paper_errors))
                    + p2.bits * (1 - p2.symbol_error_rate(paper_errors))) / 20
        assert rate == pytest.approx(expected)

    def test_error_free_probability(self, paper_errors):
        p = SymbolPattern(10, 5)
        s = SuperSymbol.single(p, 3)
        assert s.error_free_probability(paper_errors) == pytest.approx(
            (1 - p.symbol_error_rate(paper_errors)) ** 3)

    def test_flicker_bound(self, config):
        p = SymbolPattern(50, 25)
        assert SuperSymbol.single(p, 10).flicker_free(config)       # 500 slots
        assert not SuperSymbol.single(p, 11).flicker_free(config)   # 550 slots

    def test_degenerate_requires_same_pattern(self):
        with pytest.raises(ValueError):
            SuperSymbol(SymbolPattern(10, 1), 1, SymbolPattern(10, 2), 0)

    def test_m1_must_be_positive(self):
        with pytest.raises(ValueError):
            SuperSymbol(SymbolPattern(10, 1), 0, SymbolPattern(10, 1), 0)

    def test_duration(self, config):
        s = SuperSymbol(SymbolPattern(10, 1), 1, SymbolPattern(10, 2), 1)
        assert s.duration(config) == pytest.approx(20 * 8e-6)


class TestCompose:
    def test_hits_exact_midpoint(self, config):
        s = compose(SymbolPattern(10, 1), SymbolPattern(10, 2), 0.15, config)
        assert s.dimming == pytest.approx(0.15)

    def test_within_tolerance(self, config):
        p1, p2 = SymbolPattern(10, 1), SymbolPattern(10, 2)
        for target in (0.11, 0.125, 0.17, 0.19):
            s = compose(p1, p2, target, config)
            assert abs(s.dimming - target) <= config.tau_perceived

    def test_endpoint_uses_single_pattern(self, config):
        p1, p2 = SymbolPattern(10, 1), SymbolPattern(10, 2)
        s = compose(p1, p2, 0.2, config)
        assert s.dimming == pytest.approx(0.2)

    def test_respects_flicker_bound(self, config):
        p1, p2 = SymbolPattern(50, 5), SymbolPattern(50, 8)
        s = compose(p1, p2, 0.13, config)
        assert s.n_slots <= config.n_max_super

    def test_prefers_higher_rate_on_ties(self, config):
        # Both endpoints reach 0.5 exactly; the better-rate one must win.
        good = SymbolPattern(20, 10)   # 17 bits / 20 slots
        bad = SymbolPattern(4, 2)      # 2 bits / 4 slots
        s = compose(bad, good, 0.5, config)
        assert s.normalized_rate() == pytest.approx(good.normalized_rate())

    def test_out_of_span_rejected(self, config):
        with pytest.raises(ValueError):
            compose(SymbolPattern(10, 1), SymbolPattern(10, 2), 0.5, config)

    def test_invalid_target_rejected(self, config):
        with pytest.raises(ValueError):
            compose(SymbolPattern(10, 1), SymbolPattern(10, 2), 0.0, config)

    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_property_dimming_within_tolerance(self, data):
        config = SystemConfig()
        n1 = data.draw(st.integers(5, 25))
        n2 = data.draw(st.integers(5, 25))
        k1 = data.draw(st.integers(1, n1 - 1))
        k2 = data.draw(st.integers(1, n2 - 1))
        p1, p2 = SymbolPattern(n1, k1), SymbolPattern(n2, k2)
        lo, hi = sorted((p1.dimming, p2.dimming))
        if hi - lo < 1e-9:
            return
        target = data.draw(st.floats(lo, hi))
        if not 0.0 < target < 1.0:
            return
        # Worst-case hole in the reachable set sits next to an endpoint:
        # the step from a pure pattern to the most lopsided mix.
        gap = hi - lo
        hole = gap * max(n1 / (n1 + config.m_cap * n2),
                         n2 / (n2 + config.m_cap * n1))
        tolerance = max(config.tau_perceived, hole)
        s = compose(p1, p2, target, config, tolerance=tolerance)
        assert abs(s.dimming - target) <= tolerance
        assert s.n_slots <= config.n_max_super


class TestReachableLevels:
    def test_includes_both_endpoints(self, config):
        p1, p2 = SymbolPattern(10, 1), SymbolPattern(10, 2)
        levels = reachable_dimming_levels(p1, p2, config)
        assert p1.dimming in levels
        assert p2.dimming in levels

    def test_fig6_densification(self, config):
        # Multiplexing two N=10 patterns yields many more levels than 2.
        p1, p2 = SymbolPattern(10, 1), SymbolPattern(10, 2)
        levels = reachable_dimming_levels(p1, p2, config)
        assert len(levels) > 10
        assert levels == sorted(levels)

    def test_all_levels_within_span(self, config):
        p1, p2 = SymbolPattern(10, 3), SymbolPattern(10, 7)
        for level in reachable_dimming_levels(p1, p2, config):
            assert p1.dimming - 1e-12 <= level <= p2.dimming + 1e-12
