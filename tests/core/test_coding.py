"""Algorithms 1-2: the combinatorial-dichotomy codec."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CodewordWeightError,
    SuperSymbol,
    SuperSymbolCodec,
    SymbolCodec,
    SymbolPattern,
    decode_symbol,
    encode_symbol,
    symbol_capacity,
)
from repro.core.combinatorics import iter_weighted_codewords, rank_of_codeword


class TestEncodeSymbol:
    def test_weight_is_always_k(self):
        for n, k in [(10, 3), (20, 10), (50, 25)]:
            for value in (0, 1, symbol_capacity(n, k) - 1):
                cw = encode_symbol(value, n, k)
                assert len(cw) == n
                assert sum(cw) == k

    def test_exhaustive_roundtrip_small(self):
        for n, k in [(5, 2), (8, 3), (10, 5), (12, 1), (12, 11)]:
            for value in range(symbol_capacity(n, k)):
                assert decode_symbol(encode_symbol(value, n, k), k) == value

    def test_injective(self):
        n, k = 9, 4
        seen = {encode_symbol(v, n, k) for v in range(symbol_capacity(n, k))}
        assert len(seen) == symbol_capacity(n, k)

    def test_combinadic_order(self):
        # encode(value) must be the value-th codeword in Algorithm 1's order.
        n, k = 7, 3
        ordered = list(iter_weighted_codewords(n, k))
        for value in range(symbol_capacity(n, k)):
            assert encode_symbol(value, n, k) == ordered[value]
            assert rank_of_codeword(ordered[value]) == value

    def test_large_symbol_roundtrip(self):
        # N=50, K=25 would need a 126 TB lookup table (Section 4.4);
        # the arithmetic codec handles it directly.
        n, k = 50, 25
        for value in (0, 1, 10**9, symbol_capacity(n, k) - 1):
            assert decode_symbol(encode_symbol(value, n, k), k) == value

    def test_out_of_range_value_rejected(self):
        with pytest.raises(ValueError):
            encode_symbol(symbol_capacity(10, 5), 10, 5)
        with pytest.raises(ValueError):
            encode_symbol(-1, 10, 5)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            encode_symbol(0, 5, 0)

    @given(st.integers(2, 63), st.data())
    @settings(max_examples=200, deadline=None)
    def test_property_roundtrip(self, n, data):
        k = data.draw(st.integers(1, n - 1))
        cap = symbol_capacity(n, k)
        if cap < 2:
            return
        value = data.draw(st.integers(0, cap - 1))
        cw = encode_symbol(value, n, k)
        assert sum(cw) == k
        assert decode_symbol(cw, k) == value


class TestDecodeSymbol:
    def test_wrong_weight_detected(self):
        cw = list(encode_symbol(3, 10, 4))
        cw[0] = not cw[0]
        with pytest.raises(CodewordWeightError) as exc:
            decode_symbol(cw, 4)
        assert exc.value.expected_k == 4

    def test_weight_preserving_corruption_aliases(self):
        # A swap of an ON and an OFF keeps the weight: decoding succeeds
        # but yields a different value — this is why frames carry a CRC.
        cw = list(encode_symbol(5, 10, 4))
        on = cw.index(True)
        off = cw.index(False)
        cw[on], cw[off] = cw[off], cw[on]
        assert decode_symbol(cw, 4) != 5


class TestSymbolCodec:
    def test_rejects_zero_bit_patterns(self):
        with pytest.raises(ValueError):
            SymbolCodec(SymbolPattern(3, 3))

    def test_length_check(self):
        codec = SymbolCodec(SymbolPattern(10, 5))
        with pytest.raises(ValueError):
            codec.decode([True] * 9)


class TestSuperSymbolCodec:
    def _codec(self) -> SuperSymbolCodec:
        s = SuperSymbol(SymbolPattern(10, 2), 2, SymbolPattern(10, 3), 1)
        return SuperSymbolCodec(s)

    def test_bits_and_slots(self):
        codec = self._codec()
        assert codec.bits == 2 * 5 + 6  # C(10,2)=45->5 bits, C(10,3)=120->6
        assert codec.n_slots == 30

    def test_unit_roundtrip(self):
        codec = self._codec()
        bits = [(i * 5 + 1) % 2 for i in range(codec.bits)]
        slots = codec.encode(bits)
        assert len(slots) == codec.n_slots
        assert codec.decode(slots) == bits

    def test_stream_roundtrip_with_partial_unit(self):
        codec = self._codec()
        # 50 bits: 2 full units (44) plus a partial one.
        bits = [(i * 7 + 3) % 2 for i in range(50)]
        slots, padding = codec.encode_stream(bits)
        assert padding < max(c.bits for c in codec.symbol_plan(50))
        assert codec.decode_stream(slots, 50) == bits

    def test_partial_unit_saves_slots(self):
        codec = self._codec()
        # One bit should cost one symbol, not one super-symbol.
        assert codec.slots_for_bits(1) == 10
        assert codec.slots_for_bits(codec.bits) == codec.n_slots

    def test_symbol_plan_walk_order(self):
        codec = self._codec()
        plan = codec.symbol_plan(codec.bits + 1)
        kinds = [c.pattern for c in plan]
        assert kinds[:3] == [SymbolPattern(10, 2)] * 2 + [SymbolPattern(10, 3)]
        assert kinds[3] == SymbolPattern(10, 2)  # the walk wraps around

    def test_stream_length_validation(self):
        codec = self._codec()
        with pytest.raises(ValueError):
            codec.decode_stream([True] * 7)

    def test_whole_unit_decode_without_bit_count(self):
        codec = self._codec()
        bits = [1, 0] * (codec.bits // 2) + [1] * (codec.bits % 2)
        slots, _ = codec.encode_stream(bits)
        assert codec.decode_stream(slots)[:len(bits)] == bits

    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_property_stream_roundtrip(self, data):
        n1 = data.draw(st.integers(4, 16))
        k1 = data.draw(st.integers(1, n1 - 1))
        n2 = data.draw(st.integers(4, 16))
        k2 = data.draw(st.integers(1, n2 - 1))
        p1, p2 = SymbolPattern(n1, k1), SymbolPattern(n2, k2)
        if p1.bits == 0 or p2.bits == 0:
            return
        codec = SuperSymbolCodec(SuperSymbol(p1, 2, p2, 2))
        n_bits = data.draw(st.integers(1, 200))
        bits = data.draw(st.lists(st.integers(0, 1), min_size=n_bits,
                                  max_size=n_bits))
        slots, _ = codec.encode_stream(bits)
        assert len(slots) == codec.slots_for_bits(n_bits)
        assert codec.decode_stream(slots, n_bits) == bits
