"""Symbol patterns: Eq. (1)-(2) and candidate pruning."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    SlotErrorModel,
    SymbolPattern,
    SystemConfig,
    candidate_patterns,
    enumerate_patterns,
)


class TestPattern:
    def test_eq1_dimming(self):
        assert SymbolPattern(10, 2).dimming == pytest.approx(0.2)

    def test_eq2_rate(self, config):
        # R = floor(log2 C(N,K)) / (N * t_slot) * (1 - PSER)
        pattern = SymbolPattern(10, 5)
        ideal_rate = pattern.data_rate(config)
        assert ideal_rate == pytest.approx(7 / (10 * 8e-6))

    def test_eq2_rate_with_errors(self, config, paper_errors):
        pattern = SymbolPattern(10, 5)
        ser = pattern.symbol_error_rate(paper_errors)
        assert pattern.data_rate(config, paper_errors) == pytest.approx(
            7 / (10 * 8e-6) * (1 - ser))

    def test_duration(self, config):
        assert SymbolPattern(20, 4).duration(config) == pytest.approx(160e-6)

    def test_ordering_deterministic(self):
        assert SymbolPattern(10, 2) < SymbolPattern(10, 3) < SymbolPattern(11, 1)

    def test_validation(self):
        with pytest.raises(ValueError):
            SymbolPattern(0, 0)
        with pytest.raises(ValueError):
            SymbolPattern(5, 6)
        with pytest.raises(ValueError):
            SymbolPattern(5, -1)

    def test_half_on_maximises_rate(self):
        # The footnote the envelope anchor relies on: S(N, N//2) has the
        # highest ideal rate among symbols of the same duration.
        for n in (10, 15, 20, 21):
            rates = {k: SymbolPattern(n, k).normalized_rate()
                     for k in range(1, n)}
            assert rates[n // 2] == max(rates.values())

    @given(st.integers(2, 63), st.data())
    def test_normalized_rate_bounds(self, n, data):
        k = data.draw(st.integers(1, n - 1))
        rate = SymbolPattern(n, k).normalized_rate()
        assert 0.0 <= rate < 1.0  # floor(log2 C(N,K)) < N always


class TestEnumeration:
    def test_excludes_degenerate(self):
        patterns = list(enumerate_patterns([5]))
        assert all(0 < p.n_on < p.n_slots for p in patterns)
        assert len(patterns) == 4

    def test_skips_tiny_n(self):
        assert list(enumerate_patterns([0, 1])) == []


class TestCandidatePruning:
    def test_all_survivors_satisfy_both_bounds(self, config, paper_errors):
        for pattern in candidate_patterns(config, paper_errors):
            assert pattern.n_slots <= min(config.n_cap, config.n_max_super)
            assert pattern.symbol_error_rate(paper_errors) <= config.ser_bound
            assert pattern.bits > 0

    def test_tighter_bound_prunes_more(self, paper_errors):
        loose = SystemConfig(ser_bound=6e-3)
        tight = SystemConfig(ser_bound=1e-3)
        assert len(candidate_patterns(tight, paper_errors)) < len(
            candidate_patterns(loose, paper_errors))

    def test_fig8_examples_pruned(self, paper_errors):
        # With the paper's nominal 1e-3 bound, large-N patterns like
        # S(50, 0.3) are abandoned while small-N ones survive.
        config = SystemConfig(ser_bound=1e-3)
        survivors = set(candidate_patterns(config, paper_errors))
        assert SymbolPattern(50, 15) not in survivors
        assert SymbolPattern(10, 5) in survivors

    def test_ideal_channel_keeps_everything(self, config):
        ideal = SlotErrorModel.ideal()
        survivors = candidate_patterns(config, ideal)
        n_hi = min(config.n_cap, config.n_max_super)
        expected = sum(
            1 for n in range(config.n_min, n_hi + 1)
            for k in range(1, n)
            if SymbolPattern(n, k).bits > 0
        )
        assert len(survivors) == expected
