"""SystemConfig invariants and derived quantities."""

import math

import pytest

from repro.core import DEFAULT_CONFIG, SystemConfig


class TestDefaults:
    def test_paper_slot_time(self):
        assert DEFAULT_CONFIG.t_slot == pytest.approx(8e-6)

    def test_paper_tx_rate(self):
        assert DEFAULT_CONFIG.f_tx == pytest.approx(125e3)

    def test_paper_flicker_threshold(self):
        assert DEFAULT_CONFIG.f_flicker == 250.0

    def test_eq4_n_max_super(self):
        # N_max = f_tx / f_th = 125000 / 250 = 500
        assert DEFAULT_CONFIG.n_max_super == 500

    def test_paper_error_constants(self):
        assert DEFAULT_CONFIG.p_off_error == pytest.approx(9e-5)
        assert DEFAULT_CONFIG.p_on_error == pytest.approx(8e-5)

    def test_paper_payload(self):
        assert DEFAULT_CONFIG.payload_bytes == 128

    def test_sampling_rate_is_4x(self):
        assert DEFAULT_CONFIG.sample_rate == pytest.approx(500e3)

    def test_tau_perceived_from_user_study(self):
        assert DEFAULT_CONFIG.tau_perceived == pytest.approx(0.003)


class TestDerived:
    def test_n_max_super_floors(self):
        cfg = SystemConfig(t_slot=9e-6)  # f_tx ≈ 111.1 kHz
        assert cfg.n_max_super == math.floor(cfg.f_tx / cfg.f_flicker)

    def test_with_overrides_returns_new_instance(self):
        cfg = SystemConfig()
        other = cfg.with_overrides(n_cap=30)
        assert other.n_cap == 30
        assert cfg.n_cap != 30
        assert other is not cfg

    def test_with_overrides_validates(self):
        with pytest.raises(ValueError):
            SystemConfig().with_overrides(n_cap=1)


class TestValidation:
    @pytest.mark.parametrize("field,value", [
        ("t_slot", 0.0),
        ("t_slot", -1e-6),
        ("f_flicker", 0.0),
        ("p_off_error", -0.1),
        ("p_off_error", 1.0),
        ("p_on_error", 1.5),
        ("ser_bound", 0.0),
        ("ser_bound", 1.5),
        ("n_min", 1),
        ("n_cap", 64),
        ("m_cap", 0),
        ("m_cap", 16),
        ("tau_perceived", 0.0),
        ("tau_perceived", 1.0),
        ("payload_bytes", -1),
        ("oversampling", 0),
        ("adc_bits", 0),
    ])
    def test_rejects_bad_values(self, field, value):
        with pytest.raises(ValueError):
            SystemConfig(**{field: value})

    def test_n_cap_below_n_min_rejected(self):
        with pytest.raises(ValueError):
            SystemConfig(n_min=10, n_cap=5)

    def test_frozen(self):
        cfg = SystemConfig()
        with pytest.raises(Exception):
            cfg.t_slot = 1.0  # type: ignore[misc]
