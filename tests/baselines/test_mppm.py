"""Fixed-N MPPM: the compensation-free baseline (N = 20)."""

import pytest

from repro.baselines import Mppm


class TestDimmingQuantisation:
    def test_paper_default_n(self, config):
        assert Mppm(config).n_slots == 20

    def test_coarse_levels(self, config):
        # The step-wise dimming function the paper criticises.
        levels = Mppm(config).supported_levels
        assert len(levels) == 19
        assert levels[0] == pytest.approx(0.05)
        assert levels[-1] == pytest.approx(0.95)

    def test_snaps_to_nearest_k(self, config):
        design = Mppm(config).design(0.52)
        assert design.pattern.n_on == 10
        assert design.quantisation_error == pytest.approx(0.02)

    def test_never_degenerate(self, config):
        scheme = Mppm(config)
        assert scheme.design(0.001).pattern.n_on == 1
        assert scheme.design(0.999).pattern.n_on == 19


class TestRates:
    def test_paper_rate_at_01(self, config):
        # S(20, 2): 7 bits / 20 slots = 0.35 -> 43.75 kbps at 125 kHz.
        design = Mppm(config).design(0.1)
        assert design.data_rate(config) == pytest.approx(43750.0)

    def test_beats_ookct_in_the_mid_range_not_everywhere(self, config):
        from repro.baselines import OokCt
        mppm, ook = Mppm(config), OokCt(config)
        # Mid range: OOK-CT wins at 0.5; extremes: MPPM wins.
        assert ook.design(0.5).normalized_rate() > \
            mppm.design(0.5).normalized_rate()
        assert mppm.design(0.1).normalized_rate() > \
            ook.design(0.1).normalized_rate()

    def test_error_model_discounts_rate(self, config, paper_errors):
        design = Mppm(config).design(0.5)
        assert design.normalized_rate(paper_errors) < design.normalized_rate()


class TestPayloadCodec:
    def test_roundtrip(self, config):
        design = Mppm(config).design(0.4)
        bits = [(i * 3 + 1) % 2 for i in range(300)]
        slots = design.encode_payload(bits)
        assert len(slots) == design.payload_slots(len(bits))
        assert design.decode_payload(slots, len(bits)) == bits

    def test_slot_stream_has_constant_dimming(self, config):
        design = Mppm(config).design(0.3)
        bits = [(i * 5) % 2 for i in range(340)]
        slots = design.encode_payload(bits)
        # Every symbol has exactly K ONs: dimming is data-independent.
        n = design.pattern.n_slots
        for start in range(0, len(slots), n):
            assert sum(slots[start:start + n]) == design.pattern.n_on

    def test_corrupted_weight_raises(self, config):
        design = Mppm(config).design(0.4)
        slots = design.encode_payload([1, 0] * 20)
        slots[0] = not slots[0]
        with pytest.raises(ValueError):
            design.decode_payload(slots, 40)

    def test_misaligned_stream_rejected(self, config):
        design = Mppm(config).design(0.4)
        with pytest.raises(ValueError):
            design.decode_payload([True] * 19, 8)


class TestConstruction:
    def test_custom_n(self, config):
        scheme = Mppm(config, n_slots=10)
        assert scheme.supported_range == (pytest.approx(0.1),
                                          pytest.approx(0.9))

    def test_rejects_tiny_n(self, config):
        with pytest.raises(ValueError):
            Mppm(config, n_slots=1)

    def test_invalid_dimming_rejected(self, config):
        with pytest.raises(ValueError):
            Mppm(config).design(0.0)
