"""OOK-CT: compensation arithmetic and the 2l / 2(1-l) rate law."""

import pytest

from repro.baselines import OokCt
from repro.core import SlotErrorModel


class TestRateLaw:
    def test_data_fraction_below_half(self, config):
        assert OokCt(config).design(0.2).data_fraction == pytest.approx(0.4)

    def test_data_fraction_above_half(self, config):
        assert OokCt(config).design(0.8).data_fraction == pytest.approx(0.4)

    def test_peak_at_half(self, config):
        assert OokCt(config).design(0.5).data_fraction == pytest.approx(1.0)

    def test_rate_symmetry(self, config):
        scheme = OokCt(config)
        for level in (0.1, 0.25, 0.4):
            assert scheme.design(level).normalized_rate() == pytest.approx(
                scheme.design(1.0 - level).normalized_rate())

    def test_throughput_collapses_at_extremes(self, config):
        # The paper's core criticism of compensation-based schemes.
        scheme = OokCt(config)
        assert scheme.design(0.1).normalized_rate() < \
            0.25 * scheme.design(0.5).normalized_rate()


class TestCompensation:
    def test_polarity_below_target(self, config):
        design = OokCt(config).design(0.8)
        count, on = design.compensation_slots(100, 50)
        assert on is True
        assert count > 0

    def test_polarity_above_target(self, config):
        design = OokCt(config).design(0.2)
        count, on = design.compensation_slots(100, 50)
        assert on is False
        assert count > 0

    def test_achieves_target_within_one_slot(self, config):
        design = OokCt(config).design(0.3)
        for ones in (10, 33, 50, 77):
            count, on = design.compensation_slots(100, ones)
            total_on = ones + (count if on else 0)
            achieved = total_on / (100 + count)
            assert achieved == pytest.approx(0.3, abs=1.0 / (100 + count))

    def test_no_compensation_when_exact(self, config):
        design = OokCt(config).design(0.5)
        count, _ = design.compensation_slots(100, 50)
        assert count == 0


class TestPayloadCodec:
    def test_roundtrip(self, config):
        design = OokCt(config).design(0.35)
        bits = [1, 0, 1, 1, 0, 0, 0, 1] * 16
        slots = design.encode_payload(bits)
        assert design.decode_payload(slots, len(bits)) == bits

    def test_encoded_dimming_matches_target(self, config):
        design = OokCt(config).design(0.25)
        bits = [1, 0] * 64  # 50% duty data
        slots = design.encode_payload(bits)
        assert sum(slots) / len(slots) == pytest.approx(0.25, abs=0.01)

    def test_rejects_bad_bits(self, config):
        with pytest.raises(ValueError):
            OokCt(config).design(0.5).encode_payload([0, 1, 2])

    def test_decode_needs_enough_slots(self, config):
        design = OokCt(config).design(0.5)
        with pytest.raises(ValueError):
            design.decode_payload([True] * 4, 8)


class TestInterface:
    def test_supports_nearly_everything(self, config):
        lo, hi = OokCt(config).supported_range
        assert lo < 0.01
        assert hi > 0.99

    def test_achieved_equals_target(self, config):
        # OOK-CT's selling point: any dimming level, exactly.
        for level in (0.13, 0.5, 0.871):
            assert OokCt(config).design(level).achieved_dimming == level

    def test_invalid_dimming_rejected(self, config):
        with pytest.raises(ValueError):
            OokCt(config).design(0.0)
        with pytest.raises(ValueError):
            OokCt(config).design(1.0)

    def test_success_probability_decreases_with_size(self, config):
        design = OokCt(config).design(0.5)
        errors = SlotErrorModel(1e-3, 1e-3)
        assert design.success_probability(100, errors) > \
            design.success_probability(1000, errors)
