"""Cross-scheme properties every ModulationScheme must satisfy."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SlotErrorModel, SystemConfig
from repro.schemes import AmppmScheme, Mppm, OokCt, Oppm, Vppm, standard_schemes


def all_schemes(config):
    return [AmppmScheme(config), OokCt(config), Mppm(config),
            Vppm(config), Oppm(config)]


@pytest.fixture(scope="module")
def schemes():
    return all_schemes(SystemConfig())


class TestSchemeContracts:
    def test_standard_set_matches_paper(self, config):
        names = [s.name for s in standard_schemes(config)]
        assert names == ["AMPPM", "OOK-CT", "MPPM"]

    def test_achieved_dimming_close_to_target(self, schemes):
        for scheme in schemes:
            design = scheme.design_clamped(0.4)
            # Worst quantiser here is VPPM/OPPM at 1/N resolution.
            assert abs(design.achieved_dimming - 0.4) <= 0.06, scheme.name

    def test_payload_slots_positive_and_monotone(self, schemes):
        for scheme in schemes:
            design = scheme.design_clamped(0.5)
            small = design.payload_slots(64)
            large = design.payload_slots(1024)
            assert 0 < small <= large, scheme.name

    def test_success_probability_in_unit_interval(self, schemes, paper_errors):
        for scheme in schemes:
            design = scheme.design_clamped(0.3)
            p = design.success_probability(1040, paper_errors)
            assert 0.0 < p <= 1.0, scheme.name

    def test_ideal_channel_is_certain(self, schemes):
        ideal = SlotErrorModel.ideal()
        for scheme in schemes:
            design = scheme.design_clamped(0.6)
            assert design.success_probability(1040, ideal) == pytest.approx(1.0)

    def test_data_rate_consistent_with_normalized(self, schemes, config):
        for scheme in schemes:
            design = scheme.design_clamped(0.5)
            assert design.data_rate(config) == pytest.approx(
                design.normalized_rate() / config.t_slot)

    def test_clamping(self, schemes):
        for scheme in schemes:
            lo, hi = scheme.supported_range
            design = scheme.design_clamped(0.0001)
            assert lo <= design.target_dimming <= hi, scheme.name

    @given(st.floats(0.1, 0.9))
    @settings(max_examples=20, deadline=None)
    def test_property_encode_dimming_near_target(self, level):
        config = SystemConfig()
        bits = [(i * 11 + 2) % 2 for i in range(256)]
        for scheme in all_schemes(config):
            design = scheme.design_clamped(level)
            slots = design.encode_payload(bits)
            duty = sum(slots) / len(slots)
            # OOK-CT compensates exactly; PPM schemes are quantised but
            # must track the level within their own resolution.
            assert abs(duty - design.achieved_dimming) <= 0.05, scheme.name


class TestRoundTripAcrossSchemes:
    @pytest.mark.parametrize("level", [0.15, 0.4, 0.5, 0.72, 0.88])
    def test_payload_roundtrip(self, schemes, level):
        bits = [(i * 7 + 5) % 2 for i in range(512)]
        for scheme in schemes:
            design = scheme.design_clamped(level)
            recovered = design.decode_payload(design.encode_payload(bits),
                                              len(bits))
            assert recovered == bits, scheme.name
