"""VPPM: one bit per symbol, pulse position + width dimming."""

import pytest

from repro.baselines import Vppm
from repro.core import SlotErrorModel


class TestDesign:
    def test_flat_rate(self, config):
        scheme = Vppm(config)
        # VPPM always carries 1 bit per N slots, whatever the dimming.
        assert scheme.design(0.2).normalized_rate() == pytest.approx(0.1)
        assert scheme.design(0.7).normalized_rate() == pytest.approx(0.1)

    def test_below_mppm_in_theory(self, config):
        # Why the paper omits VPPM from the comparison (footnote 5).
        from repro.baselines import Mppm
        for level in (0.2, 0.5, 0.8):
            assert Vppm(config).design(level).normalized_rate() < \
                Mppm(config).design(level).normalized_rate()

    def test_width_quantisation(self, config):
        design = Vppm(config).design(0.34)
        assert design.width == 3
        assert design.achieved_dimming == pytest.approx(0.3)


class TestCodec:
    def test_roundtrip(self, config):
        design = Vppm(config).design(0.4)
        bits = [1, 0, 0, 1, 1, 0, 1, 0]
        slots = design.encode_payload(bits)
        assert len(slots) == len(bits) * design.n_slots
        assert design.decode_payload(slots, len(bits)) == bits

    def test_lead_trail_shapes(self, config):
        design = Vppm(config).design(0.3)
        zero = design.encode_payload([0])
        one = design.encode_payload([1])
        assert zero[:design.width] == [True] * design.width
        assert one[-design.width:] == [True] * design.width

    def test_constant_duty(self, config):
        design = Vppm(config).design(0.3)
        slots = design.encode_payload([0, 1, 1, 0, 1])
        n = design.n_slots
        for start in range(0, len(slots), n):
            assert sum(slots[start:start + n]) == design.width

    def test_hamming_decision_tolerates_one_flip(self, config):
        design = Vppm(config).design(0.5)
        slots = design.encode_payload([1])
        slots[0] = not slots[0]  # single corrupted slot
        assert design.decode_payload(slots, 1) == [1]

    def test_rejects_bad_bits(self, config):
        with pytest.raises(ValueError):
            Vppm(config).design(0.5).encode_payload([2])


class TestValidation:
    def test_success_probability(self, config):
        design = Vppm(config).design(0.5)
        errors = SlotErrorModel(1e-3, 1e-3)
        assert 0.0 < design.success_probability(100, errors) < 1.0

    def test_rejects_tiny_n(self, config):
        with pytest.raises(ValueError):
            Vppm(config, n_slots=1)

    def test_invalid_dimming(self, config):
        with pytest.raises(ValueError):
            Vppm(config).design(1.0)
