"""DarkLight: imperceptible single-pulse night mode."""

import pytest

from repro.baselines import DarkLight
from repro.baselines.darklight import MAX_DARKLIGHT_N, DarkLightDesign
from repro.core import SlotErrorModel


class TestDarkness:
    def test_duty_cycle_is_one_over_n(self, config):
        design = DarkLightDesign(512, config)
        assert design.achieved_dimming == pytest.approx(1 / 512)

    def test_appears_dark(self, config):
        # The default darkness is far below the direct-viewing
        # perception threshold for a *step from zero* (0.003).
        design = DarkLight(config).darkest_design()
        assert design.achieved_dimming < 0.003

    def test_encoded_stream_is_sparse(self, config):
        design = DarkLightDesign(256, config)
        bits = [(i * 3 + 1) % 2 for i in range(64)]
        slots = design.encode_payload(bits)
        assert sum(slots) / len(slots) == pytest.approx(1 / 256)


class TestCapacity:
    def test_bits_per_symbol(self, config):
        assert DarkLightDesign(512, config).bits == 9
        assert DarkLightDesign(500, config).bits == 8
        assert DarkLightDesign(2, config).bits == 1

    def test_low_rate_by_design(self, config):
        # DarkLight trades throughput for darkness: ~2 kbps at N=512.
        design = DarkLightDesign(512, config)
        assert design.data_rate(config) == pytest.approx(
            9 / 512 / config.t_slot)
        assert design.data_rate(config) < 3e3


class TestCodec:
    def test_roundtrip(self, config):
        design = DarkLightDesign(128, config)
        bits = [(i * 5 + 2) % 2 for i in range(70)]
        slots = design.encode_payload(bits)
        assert design.decode_payload(slots, len(bits)) == bits

    def test_corruption_detected(self, config):
        design = DarkLightDesign(128, config)
        slots = design.encode_payload([1, 0, 1, 1, 0, 1, 0])
        slots[3] = not slots[3]
        with pytest.raises(ValueError):
            design.decode_payload(slots, 7)

    def test_frame_roundtrip(self, config):
        from repro.link import Receiver, Transmitter
        design = DarkLight(config).darkest_design()
        tx, rx = Transmitter(config), Receiver(config)
        payload = b"goodnight"
        slots = tx.encode_frame(payload, design)
        frame = rx.decode_frame(slots)
        assert frame.payload == payload

    def test_descriptor_roundtrip(self, config):
        from repro.link import PatternDescriptor
        desc = PatternDescriptor.for_darklight(1234)
        back = PatternDescriptor.from_int(desc.to_int())
        assert back.darklight_n == 1234


class TestScheme:
    def test_design_picks_nearest_n(self, config):
        scheme = DarkLight(config)
        assert scheme.design(0.01).n_slots == 100
        assert scheme.design(0.5).n_slots == 2

    def test_design_clips_to_max(self, config):
        assert DarkLight(config).design(1e-9).n_slots == MAX_DARKLIGHT_N

    def test_rejects_bright_requests(self, config):
        with pytest.raises(ValueError):
            DarkLight(config).design(0.7)

    def test_success_probability(self, config):
        design = DarkLightDesign(512, config)
        errors = SlotErrorModel(1e-5, 1e-5)
        assert 0.0 < design.success_probability(72, errors) < 1.0

    def test_validation(self, config):
        with pytest.raises(ValueError):
            DarkLightDesign(1, config)
        with pytest.raises(ValueError):
            DarkLightDesign(MAX_DARKLIGHT_N + 1, config)
        with pytest.raises(ValueError):
            DarkLight(config, n_slots=1)
