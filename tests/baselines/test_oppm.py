"""OPPM: contiguous-pulse overlapping position modulation."""

import pytest

from repro.baselines import Oppm, Vppm, Mppm


class TestCapacity:
    def test_bits_from_positions(self, config):
        design = Oppm(config, n_slots=16).design(0.25)
        # width 4 -> 13 start positions -> floor(log2 13) = 3 bits.
        assert design.width == 4
        assert design.positions == 13
        assert design.bits == 3

    def test_between_vppm_and_mppm(self, config):
        for level in (0.25, 0.5):
            v = Vppm(config, n_slots=16).design(level).normalized_rate()
            o = Oppm(config, n_slots=16).design(level).normalized_rate()
            m = Mppm(config, n_slots=16).design(level).normalized_rate()
            assert v < o < m

    def test_wide_pulse_kills_capacity(self, config):
        design = Oppm(config, n_slots=16).design(15 / 16)
        assert design.positions == 2
        assert design.bits == 1


class TestCodec:
    def test_roundtrip(self, config):
        design = Oppm(config).design(0.375)
        bits = [(i * 3) % 2 for i in range(30)]
        slots = design.encode_payload(bits)
        assert len(slots) == design.payload_slots(len(bits))
        assert design.decode_payload(slots, len(bits)) == bits

    def test_pulse_is_contiguous(self, config):
        design = Oppm(config).design(0.25)
        slots = design.encode_payload([1, 0, 1])
        n = design.n_slots
        for start in range(0, len(slots), n):
            symbol = slots[start:start + n]
            ons = [i for i, s in enumerate(symbol) if s]
            assert ons == list(range(ons[0], ons[0] + design.width))

    def test_correlation_decision_tolerates_one_flip(self, config):
        design = Oppm(config).design(0.375)
        bits = [1, 0, 1]
        slots = design.encode_payload(bits)
        slots[2] = not slots[2]
        assert design.decode_payload(slots, len(bits)) == bits

    def test_misaligned_rejected(self, config):
        design = Oppm(config).design(0.25)
        with pytest.raises(ValueError):
            design.decode_payload([True] * 15, 3)


class TestValidation:
    def test_invalid_dimming(self, config):
        with pytest.raises(ValueError):
            Oppm(config).design(0.0)

    def test_rejects_tiny_n(self, config):
        with pytest.raises(ValueError):
            Oppm(config, n_slots=1)
