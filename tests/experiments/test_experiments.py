"""Every experiment harness must reproduce its paper-shape expectations.

These are the calibration tests of DESIGN.md §3: who wins, where the
curves peak and cross, where the cliffs fall.
"""

import numpy as np
import pytest

from repro.core import SystemConfig
from repro.experiments import experiment_ids, run_experiment
from repro.experiments.headline import compute as compute_headline


@pytest.fixture(scope="module")
def fig15():
    return run_experiment("fig15")


class TestRegistry:
    def test_all_artefacts_registered(self):
        expected = {"fig04", "fig06", "fig08", "fig09", "fig10", "fig15",
                    "fig16", "fig17", "fig19a", "fig19b", "fig19c",
                    "headline", "table2-direct", "table2-indirect"}
        assert expected <= set(experiment_ids())

    def test_every_experiment_renders(self):
        for experiment_id in experiment_ids():
            result = run_experiment(experiment_id)
            text = result.render()
            assert experiment_id.split("-")[0] in text or result.title in text


class TestFig04:
    def test_ser_grows_with_n(self):
        fig = run_experiment("fig04")
        at_half = {}
        for series in fig.series:
            n = int(series.name.split("=")[1])
            idx = min(range(len(series.x)),
                      key=lambda i: abs(series.x[i] - 0.5))
            at_half[n] = series.y[idx]
        ns = sorted(at_half)
        assert [at_half[n] for n in ns] == sorted(at_half.values())

    def test_paper_magnitudes(self):
        # Fig. 4's y-axis reaches the 1e-3 decade at large N.
        fig = run_experiment("fig04")
        n120 = fig.get("N=120")
        assert 5e-3 < max(n120.y) < 2e-2
        n10 = fig.get("N=10")
        assert max(n10.y) < 1e-3


class TestFig06:
    def test_nine_levels_before(self):
        fig = run_experiment("fig06")
        assert len(fig.get("before").x) == 9

    def test_semi_continuous_after(self):
        fig = run_experiment("fig06")
        after = fig.get("after")
        assert len(after.x) > 50
        # Largest gap between consecutive levels shrinks dramatically.
        gaps = np.diff(sorted(after.x))
        assert gaps.max() < 0.05

    def test_after_contains_before(self):
        fig = run_experiment("fig06")
        before_x = set(round(x, 6) for x in fig.get("before").x)
        after_x = set(round(x, 6) for x in fig.get("after").x)
        assert before_x <= after_x


class TestFig08:
    def test_bound_separates_patterns(self, config):
        fig = run_experiment("fig08")
        bound = fig.get("upper bound").y[0]
        n10 = fig.get("N=10")
        n63 = fig.get("N=63")
        assert max(n10.y) < bound       # small N fully below
        # The longest symbols are partially pruned: the curve crosses
        # the bound (Fig. 8's S(50, 0.3)-style abandonment).
        assert max(n63.y) > bound
        assert min(n63.y) < bound


class TestFig09:
    def test_envelope_dominates_staircase(self):
        fig = run_experiment("fig09")
        env = fig.get("AMPPM (envelope)")
        stairs = fig.get("without multiplexing")
        assert all(e >= s - 0.02 for e, s in zip(env.y, stairs.y))
        assert sum(e > s + 1e-6 for e, s in zip(env.y, stairs.y)) > 5

    def test_envelope_rate_band(self):
        # Fig. 9's y-range over [0.5, 0.7] sits around 0.8-0.95 bits/slot.
        fig = run_experiment("fig09")
        env = fig.get("AMPPM (envelope)")
        assert 0.75 < min(env.y) < max(env.y) < 1.0


class TestFig10:
    def test_fewer_perceived_steps(self):
        fig = run_experiment("fig10")
        note = fig.notes
        measured = int(note.split("measured-domain ")[1].split(",")[0])
        perceived = int(note.split("perceived-domain ")[1].split(" ")[0])
        assert perceived < measured / 1.5

    def test_markers_on_the_curve(self):
        fig = run_experiment("fig10")
        for name in ("measured-domain steps", "perceived-domain steps"):
            series = fig.get(name)
            for x, y in zip(series.x, series.y):
                assert y == pytest.approx(100 * np.sqrt(x / 100), abs=1e-6)


class TestFig15:
    def test_amppm_beats_mppm_everywhere(self, fig15):
        ampem, mppm = fig15.get("AMPPM"), fig15.get("MPPM")
        assert all(a >= m - 1e-9 for a, m in zip(ampem.y, mppm.y))

    def test_ookct_wins_only_near_half(self, fig15):
        ampem, ook = fig15.get("AMPPM"), fig15.get("OOK-CT")
        losing = [x for x, a, o in zip(ampem.x, ampem.y, ook.y) if o > a]
        assert all(0.45 <= x <= 0.55 for x in losing)
        assert losing  # the paper's narrow OOK-CT window exists

    def test_curves_peak_at_half(self, fig15):
        for series in fig15.series:
            peak_x = series.x[int(np.argmax(series.y))]
            assert 0.4 <= peak_x <= 0.6, series.name

    def test_rough_symmetry(self, fig15):
        ampem = fig15.get("AMPPM")
        assert ampem.value_at(0.1) == pytest.approx(ampem.value_at(0.9),
                                                    rel=0.2)

    def test_paper_absolute_band(self, fig15):
        # Fig. 15's y-axis: ~20 to ~115 kbps.
        all_y = [y for s in fig15.series for y in s.y]
        assert 15 < min(all_y) < 30
        assert 95 < max(all_y) < 125

    def test_extreme_dimming_gains(self, fig15):
        ampem, ook, mppm = (fig15.get(n) for n in ("AMPPM", "OOK-CT", "MPPM"))
        # Paper: AMPPM ~55.6, OOK-CT ~21.7, MPPM ~44.3 at l=0.1/0.9.
        assert ampem.value_at(0.1) / ook.value_at(0.1) > 1.8
        assert ampem.value_at(0.9) / mppm.value_at(0.9) > 1.1


class TestFig16:
    def test_flat_then_cliff(self):
        fig = run_experiment("fig16")
        mid = fig.get("dimming=0.5")
        peak = mid.y_max
        # Flat at 3 m (>=95% of peak), collapsed at 5 m (<20%).
        assert mid.value_at(3.0) > 0.95 * peak
        assert mid.value_at(5.0) < 0.2 * peak

    def test_knee_near_paper_value(self):
        fig = run_experiment("fig16")
        knee = float(fig.notes.split(": ")[1].split(" m")[0])
        assert 3.2 <= knee <= 3.8

    def test_dimming_does_not_change_cutoff(self):
        # Digital dimming varies duty cycle, not amplitude.
        fig = run_experiment("fig16")
        knees = []
        for series in fig.series:
            peak = series.y_max
            knees.append(max(x for x, y in zip(series.x, series.y)
                             if y >= 0.5 * peak))
        assert max(knees) - min(knees) <= 0.5


class TestFig17:
    def test_longer_distance_shorter_cutoff(self):
        fig = run_experiment("fig17")
        cutoffs = {}
        for series in fig.series:
            d = float(series.name.split("=")[1].rstrip("m"))
            peak = series.y_max
            cutoffs[d] = max((a for a, r in zip(series.x, series.y)
                              if r >= 0.9 * peak), default=0.0)
        assert cutoffs[1.3] >= cutoffs[2.3] >= cutoffs[3.3]
        assert cutoffs[3.3] < 16.0

    def test_short_distance_holds_throughout(self):
        fig = run_experiment("fig17")
        near = fig.get("distance=1.3m")
        assert min(near.y) > 0.9 * near.y_max


class TestFig19:
    @pytest.fixture(scope="class")
    def scenario(self):
        from repro.experiments.fig19_dynamic import run_scenario
        return run_scenario()

    def test_throughput_band(self, scenario):
        fig = run_experiment("fig19a", result=scenario)
        series = fig.get("AMPPM")
        assert 30 < min(series.y) < 60
        assert 90 < max(series.y) < 125

    def test_sum_flat(self, scenario):
        fig = run_experiment("fig19b", result=scenario)
        total = fig.get("sum")
        assert total.y_max - total.y_min < 1e-6

    def test_adaptation_halved(self, scenario):
        fig = run_experiment("fig19c", result=scenario)
        existing = fig.get("existing method")
        smart = fig.get("SmartVLC")
        ratio = existing.y[-1] / smart.y[-1]
        assert 1.6 <= ratio <= 2.4


class TestTable2:
    def test_direct_table_shape(self):
        table = run_experiment("table2-direct")
        assert table.header == ("Res.", "L1", "L2", "L3")
        assert len(table.rows) == 5
        assert table.rows[0][1:] == ("0%", "0%", "0%")
        assert table.rows[-1][1:] == ("100%", "100%", "100%")

    def test_indirect_table_shape(self):
        table = run_experiment("table2-indirect")
        assert table.rows[0][1:] == ("0%", "0%", "0%")
        assert table.rows[-1][1:] == ("100%", "100%", "100%")


class TestHeadline:
    def test_numbers_in_paper_ballpark(self):
        numbers = compute_headline()
        assert 0.30 <= numbers.mean_gain_over_ookct <= 0.55
        assert 0.05 <= numbers.mean_gain_over_mppm <= 0.20
        assert numbers.max_gain_over_ookct >= 0.9
        assert numbers.max_gain_over_mppm >= 0.15
        assert 3.2 <= numbers.knee_distance_m <= 3.8
        assert numbers.safe_resolution_direct >= 0.003
        assert 0.4 <= numbers.adaptation_reduction <= 0.6

    def test_custom_config_threads_through(self):
        table = run_experiment("headline", config=SystemConfig(n_cap=40))
        assert table.rows
