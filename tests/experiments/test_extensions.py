"""Extension experiments: energy, multi-receiver room, bursts."""

import pytest

from repro.experiments import experiment_ids, run_experiment


class TestRegistry:
    def test_extensions_registered(self):
        assert {"ext-energy", "ext-room", "ext-burst", "ext-payload",
                "ext-multicell", "ext-chaos"} <= set(experiment_ids())


class TestExtSerBound:
    @pytest.fixture(scope="class")
    def table(self):
        return run_experiment("ext-serbound")

    def test_winner_robust_across_consistent_settings(self, table):
        # Settings where the bound admits the MPPM(N=20) baseline
        # itself: AMPPM must win both comparisons.
        consistent = [r for r in table.rows if "[inconsistent]" not in r[0]]
        assert consistent
        for _, gain_ook, gain_mppm in consistent:
            assert gain_ook.startswith("+")
            assert gain_mppm.startswith("+")

    def test_paper_literal_bound_is_flagged(self, table):
        # The paper's quoted 1e-3 bound excludes its own baseline: the
        # harness must mark that row rather than hide it.
        flagged = [r for r in table.rows if "[inconsistent]" in r[0]]
        assert flagged
        assert any(r[0].startswith("0.001") for r in flagged)

    def test_default_marked_and_near_paper(self, table):
        default_rows = [r for r in table.rows if "(default)" in r[0]]
        assert len(default_rows) == 1
        gain_ook = int(default_rows[0][1].rstrip("%"))
        gain_mppm = int(default_rows[0][2].rstrip("%"))
        assert 35 <= gain_ook <= 45      # paper: +40%
        assert 8 <= gain_mppm <= 16      # paper: +12%


class TestExtPayload:
    @pytest.fixture(scope="class")
    def fig(self):
        return run_experiment("ext-payload")

    def test_throughput_grows_with_payload(self, fig):
        for series in fig.series:
            assert series.y[-1] > series.y[0]

    def test_gain_grows_with_payload(self, fig):
        # The Section 6.1 remark: small payloads dilute AMPPM's edge.
        ampem = fig.get("AMPPM")
        ookct = fig.get("OOK-CT")
        gain_small = ampem.y[0] / ookct.y[0]
        gain_large = ampem.y[-1] / ookct.y[-1]
        assert gain_large > gain_small

    def test_amppm_wins_at_low_dimming(self, fig):
        ampem = fig.get("AMPPM")
        ookct = fig.get("OOK-CT")
        # dimming 0.2: AMPPM should win once overhead is amortised.
        assert ampem.y[-1] > ookct.y[-1]


class TestExtEnergy:
    def test_saving_positive(self):
        table = run_experiment("ext-energy")
        values = dict(table.rows)
        saving = int(values["saving fraction"].rstrip("%"))
        assert 20 <= saving <= 80

    def test_energy_arithmetic_consistent(self):
        table = run_experiment("ext-energy")
        values = dict(table.rows)
        smart = float(values["smart LED energy"].split()[0])
        baseline = float(values["always-full baseline"].split()[0])
        saved = float(values["energy saved"].split()[0])
        assert smart + saved == pytest.approx(baseline, abs=0.2)


class TestExtRoom:
    @pytest.fixture(scope="class")
    def fig(self):
        return run_experiment("ext-room", duration_s=30.0)

    def test_three_desks(self, fig):
        assert len(fig.series) == 3

    def test_all_desks_in_paper_band(self, fig):
        for series in fig.series:
            assert min(series.y) > 20
            assert max(series.y) < 130

    def test_near_desk_dominates(self, fig):
        near = fig.get("desk-under-lamp")
        far = fig.get("desk-corner")
        assert all(a >= b - 1e-9 for a, b in zip(near.y, far.y))


class TestExtMulticell:
    GRIDS = ((1, 1), (2, 2))

    @pytest.fixture(scope="class")
    def fig(self):
        return run_experiment("ext-multicell", grids=self.GRIDS,
                              n_nodes=3, duration_s=15.0)

    def test_one_point_per_grid(self, fig):
        for series in fig.series:
            assert series.x == (1.0, 4.0)

    def test_goodput_positive_everywhere(self, fig):
        goodput = fig.get("aggregate goodput (Kbps)")
        assert all(y > 0.0 for y in goodput.y)

    def test_counts_are_non_negative(self, fig):
        assert all(y >= 0.0 for y in fig.get("handovers").y)
        assert all(y >= 0.0
                   for y in fig.get("adaptations per cell per min").y)

    def test_same_seed_rerun_is_identical(self, fig):
        again = run_experiment("ext-multicell", grids=self.GRIDS,
                               n_nodes=3, duration_s=15.0)
        assert again.series == fig.series

    def test_jobs_do_not_change_results(self, fig):
        parallel = run_experiment("ext-multicell", grids=self.GRIDS,
                                  n_nodes=3, duration_s=15.0, jobs=2)
        assert parallel.series == fig.series


class TestExtChaos:
    @pytest.fixture(scope="class")
    def fig(self):
        return run_experiment("ext-chaos", duration_s=25.0)

    def test_one_point_per_shipped_schedule(self, fig):
        assert len(fig.series) == 8
        for series in fig.series[:6]:
            assert len(series.x) == 4  # blinding, ack-burst, transients, mixed

    def test_intensity_sweep_rides_along(self, fig):
        ramp = fig.get("supervised goodput vs intensity (Kbps)")
        assert ramp.x[0] < ramp.x[-1] <= 1.0
        assert all(y > 0.0 for y in ramp.y)

    def test_supervised_wins_every_schedule(self, fig):
        supervised = fig.get("supervised goodput (Kbps)")
        baseline = fig.get("unsupervised goodput (Kbps)")
        assert all(s > u for s, u in zip(supervised.y, baseline.y))

    def test_detection_and_recovery_measured(self, fig):
        assert all(y >= 0.0 for y in fig.get("time to detect (s)").y)
        assert all(y >= 0.0 for y in fig.get("time to recover (s)").y)

    def test_flicker_note_respects_the_bound(self, fig):
        # The notes carry the worst perceived step across all runs; it
        # must respect the Type-II bound printed next to it.
        worst = float(fig.notes.split(":")[1].split("(")[0])
        assert worst <= 0.003 + 1e-12

    def test_jobs_do_not_change_results(self, fig):
        parallel = run_experiment("ext-chaos", duration_s=25.0, jobs=2)
        assert parallel.series == fig.series


class TestExtBurst:
    @pytest.fixture(scope="class")
    def fig(self):
        return run_experiment("ext-burst", trials=40)

    def test_bursty_never_worse(self, fig):
        bursty = fig.get("bursty (Gilbert-Elliott)")
        iid = fig.get("iid, same avg error rate")
        assert all(b <= i + 1e-9 for b, i in zip(bursty.y, iid.y))

    def test_loss_grows_with_shadowing(self, fig):
        iid = fig.get("iid, same avg error rate")
        assert iid.y[-1] >= iid.y[0]
        assert iid.y[-1] > 0.5  # heavy shadowing kills iid frames
