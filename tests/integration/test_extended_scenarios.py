"""Integration of the extension substrates with the core loop."""

import pytest

from repro.lighting import (
    CloudyDayAmbient,
    DayNightManager,
    LinkMode,
    SmartLightingController,
    energy_report,
)
from repro.link import Receiver, Transmitter, WifiUplink
from repro.net import Aggregation, FeedbackCollector, RoomSimulation
from repro.lighting import StaticAmbient


class TestDayNightLoop:
    """Controller + mode manager over a full simulated day."""

    def test_link_never_goes_silent(self, config):
        manager = DayNightManager(config=config)
        controller = SmartLightingController(target_sum=0.8, config=config)
        day = CloudyDayAmbient(day_length_s=600.0, peak_level=1.0,
                               cloud_depth=0.2, seed=21)
        tx, rx = Transmitter(config), Receiver(config)

        saw_night = False
        saw_day = False
        for t in range(0, 601, 30):
            sample = controller.tick(float(t), day.intensity(float(t)))
            decision = manager.select(sample.led)
            saw_night |= decision.mode is LinkMode.DARKLIGHT
            saw_day |= decision.mode is LinkMode.SMARTVLC
            slots = tx.encode_frame(b"around the clock", decision.design)
            assert rx.decode_frame(slots).payload == b"around the clock"
        assert saw_day
        assert saw_night  # midday sun pushes the LED to zero

    def test_energy_ledger_over_the_day(self, config):
        controller = SmartLightingController(target_sum=0.8, config=config)
        day = CloudyDayAmbient(day_length_s=600.0, peak_level=1.0,
                               cloud_depth=0.2, seed=21)
        samples = controller.run(day, 600.0, tick_s=10.0)
        report = energy_report([s.led for s in samples], tick_s=10.0)
        # Midday sun should save a substantial share of the energy.
        assert report.saving_fraction > 0.3
        assert report.smart_average_w < 4.7


class TestRoomUnderDegradedWifi:
    def test_total_wifi_loss_falls_back_to_local_sensor(self):
        room = RoomSimulation(
            profile=StaticAmbient(0.4),
            collector=FeedbackCollector(
                uplink=WifiUplink(loss_probability=0.999999)),
        )
        sample = room.step(0.0)
        # No reports arrive; the transmitter's own reading (the room
        # ambient) drives the controller.
        assert sample.fused_ambient == pytest.approx(0.4)
        assert all(n.link_ok for n in sample.nodes)

    def test_min_aggregation_protects_darkest_desk(self):
        room = RoomSimulation(
            profile=StaticAmbient(0.5),
            collector=FeedbackCollector(
                uplink=WifiUplink(latency_s=1e-3, jitter_s=0.0),
                aggregation=Aggregation.MIN),
        )
        room.step(0.0)          # prime the feedback plane
        sample = room.step(1.0)
        darkest = min(p.local_ambient(0.5) for p in room.placements)
        assert sample.fused_ambient == pytest.approx(darkest, abs=1e-6)
        # MIN fusion over-lights relative to MEAN: LED runs brighter.
        mean_room = RoomSimulation(profile=StaticAmbient(0.5))
        mean_room.step(0.0)
        mean_sample = mean_room.step(1.0)
        assert sample.led >= mean_sample.led

    def test_lossy_wifi_room_still_converges(self):
        rng_independent_runs = []
        for seed in (1, 2):
            room = RoomSimulation(
                profile=StaticAmbient(0.3),
                collector=FeedbackCollector(
                    uplink=WifiUplink(loss_probability=0.5)),
                seed=seed,
            )
            history = room.run(10.0)
            rng_independent_runs.append(history[-1].led)
            assert history[-1].led == pytest.approx(0.7, abs=0.1)
        # Different loss realisations, same steady state.
        assert rng_independent_runs[0] == pytest.approx(
            rng_independent_runs[1], abs=0.05)
