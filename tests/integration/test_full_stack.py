"""Cross-module integration: the whole system working together."""

import pytest

from repro.core import AmppmDesigner, SystemConfig
from repro.lighting import (
    BlindRampAmbient,
    SmartLightingController,
    type1_structural_ok,
    type2_analyze,
)
from repro.link import Receiver, StopAndWaitMac, Transmitter
from repro.phy import LinkGeometry, calibrated_channel
from repro.schemes import AmppmScheme, AmppmSchemeDesign
from repro.sim import EndToEndLink, expected_goodput


class TestControllerToAir:
    """Ambient change → controller → designer → frames on the air."""

    def test_full_chain_delivers_while_adapting(self, config, rng):
        designer = AmppmDesigner(config)
        controller = SmartLightingController(target_sum=1.0, config=config,
                                             designer=designer)
        tx = Transmitter(config)
        rx = Receiver(config)
        profile = BlindRampAmbient()

        led_levels = []
        for t in range(0, 60, 10):
            sample = controller.tick(float(t), profile.intensity(float(t)))
            led_levels.append(sample.led)
            design = AmppmSchemeDesign(sample.design, config)
            payload = f"tick {t}".encode()
            slots = tx.encode_frame(payload, design)
            # The frame's duty cycle is the commanded dimming level...
            assert sum(slots) / len(slots) == pytest.approx(sample.led,
                                                            abs=0.04)
            # ...the stream never flickers...
            assert type1_structural_ok(slots, config)
            # ...and the receiver recovers the payload with no prior
            # knowledge of the chosen super-symbol.
            assert rx.decode_frame(slots).payload == payload

        # The LED intensity trace itself stays Type-II clean per design
        # step (each retarget is internally micro-stepped).
        assert type2_analyze(led_levels, config).n_moves == len(led_levels) - 1

    def test_mac_session_during_ambient_change(self, config, rng):
        designer = AmppmDesigner(config)
        controller = SmartLightingController(target_sum=1.0, config=config,
                                             designer=designer)
        channel = calibrated_channel(config)
        geometry = LinkGeometry.on_axis(3.0)
        mac = StopAndWaitMac(config)

        delivered = 0
        for t, ambient in enumerate((0.2, 0.4, 0.6, 0.8)):
            sample = controller.tick(float(t), ambient)
            design = AmppmSchemeDesign(sample.design, config)
            errors = channel.slot_error_model(geometry, ambient)
            stats = mac.run([bytes(range(64))] * 3, design, errors, rng)
            delivered += stats.frames_delivered
        assert delivered == 12


class TestAnalyticVsWaveform:
    """The analytic link model and the waveform pipeline must agree."""

    def test_goodput_realised_by_waveform_path(self, config, rng):
        scheme = AmppmScheme(config)
        design = scheme.design(0.5)
        channel = calibrated_channel(config)
        geometry = LinkGeometry.on_axis(3.0)
        errors = channel.slot_error_model(geometry, 1.0)

        predicted = expected_goodput(design, errors, config, payload_bytes=64)
        link = EndToEndLink(config=config, channel=channel, geometry=geometry)
        airtime_slots = 0
        bits = 0
        for _ in range(4):
            report = link.send_frame(bytes(range(64)), design, rng)
            assert report.delivered
            airtime_slots += report.n_slots
            bits += 64 * 8
        realised = bits / (airtime_slots * config.t_slot)
        # The waveform path has no losses at 3 m, so realised goodput
        # matches the analytic expectation (which is also lossless here).
        assert realised == pytest.approx(predicted, rel=0.02)

    def test_distance_cliff_consistent(self, config, rng):
        scheme = AmppmScheme(config)
        design = scheme.design(0.5)
        ok_near = EndToEndLink(config=config,
                               geometry=LinkGeometry.on_axis(3.0))
        ok = sum(ok_near.send_frame(bytes(32), design, rng).delivered
                 for _ in range(3))
        assert ok == 3
        dead_far = EndToEndLink(config=config,
                                geometry=LinkGeometry.on_axis(7.5))
        dead = sum(dead_far.send_frame(bytes(32), design, rng).delivered
                   for _ in range(3))
        assert dead == 0


class TestDesignTimeVsRunTime:
    """The designer budgets errors conservatively (3.6 m worst case);
    the runtime channel at 3 m must then comfortably meet the bound."""

    def test_worst_case_design_works_at_nominal_range(self, config):
        designer = AmppmDesigner(config)  # prunes with P1/P2 at 3.6 m
        channel = calibrated_channel(config)
        nominal = channel.slot_error_model(LinkGeometry.on_axis(3.0), 1.0)
        for level in (0.1, 0.5, 0.9):
            design = designer.design(level)
            for pattern in {design.super_symbol.first,
                            design.super_symbol.second}:
                assert pattern.symbol_error_rate(nominal) < config.ser_bound

    def test_reconfigured_slot_time_scales_rates(self):
        # A faster LED (micro-LED future work, Section 6.1 footnote)
        # scales throughput linearly without touching the design logic.
        slow = SystemConfig()
        fast = SystemConfig(t_slot=1e-6, f_flicker=250.0)
        slow_rate = AmppmScheme(slow).design(0.5).data_rate(slow)
        fast_rate = AmppmScheme(fast).design(0.5).data_rate(fast)
        assert fast_rate > 5 * slow_rate
