"""Bench records, the runner, the history store, the regression gate."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import (
    BenchRecord,
    BenchRunner,
    RegressionPolicy,
    append_history,
    detect_regressions,
    group_by_name,
    last_run,
    load_history,
    regression_threshold,
)


class FakeTimer:
    """A deterministic timer: returns pre-scripted instants in order."""

    def __init__(self, *instants):
        self.instants = list(instants)

    def __call__(self):
        return self.instants.pop(0)


class TestBenchRecord:
    def test_order_statistics_from_samples(self):
        record = BenchRecord.from_samples("w", [4.0, 1.0, 3.0, 2.0])
        assert record.min_s == 1.0
        assert record.q1_s == 1.75
        assert record.median_s == 2.5
        assert record.q3_s == 3.25
        assert record.iqr_s == pytest.approx(1.5)
        assert record.samples_s == (4.0, 1.0, 3.0, 2.0)  # raw order kept

    def test_single_sample_collapses_the_quartiles(self):
        record = BenchRecord.from_samples("w", [0.5])
        assert record.min_s == record.median_s == record.q3_s == 0.5
        assert record.iqr_s == 0.0

    def test_empty_samples_rejected(self):
        with pytest.raises(ValueError):
            BenchRecord.from_samples("w", [])

    def test_dict_round_trip(self):
        record = BenchRecord.from_samples(
            "w", [2.0, 1.0], warmup=1, run_id="r1",
            recorded_at_utc="2026-08-06T00:00:00+00:00")
        row = record.as_dict()
        assert row["kind"] == "bench"
        assert BenchRecord.from_dict(row) == record

    def test_dict_round_trip_is_json_safe(self):
        record = BenchRecord.from_samples("w", [1.0, 2.0, 3.0])
        rebuilt = BenchRecord.from_dict(json.loads(
            json.dumps(record.as_dict())))
        assert rebuilt == record


class TestBenchRunner:
    def test_deterministic_timing_with_injected_timer(self):
        # Three repeats: (1.0, 1.5), (2.0, 2.25), (3.0, 3.125).
        timer = FakeTimer(1.0, 1.5, 2.0, 2.25, 3.0, 3.125)
        runner = BenchRunner(repeats=3, warmup=0, timer=timer)
        record, result = runner.run("w", lambda: 42)
        assert result == 42
        assert record.samples_s == (0.5, 0.25, 0.125)
        assert record.min_s == 0.125
        assert record.median_s == 0.25

    def test_warmup_calls_are_untimed(self):
        calls = []
        timer = FakeTimer(1.0, 2.0)
        runner = BenchRunner(repeats=1, warmup=2, timer=timer)
        record, _ = runner.run("w", calls.append, None)
        assert len(calls) == 3  # 2 warmups + 1 timed
        assert record.samples_s == (1.0,)
        assert record.warmup == 2

    def test_scale_inflates_samples(self):
        timer = FakeTimer(0.0, 1.0)
        runner = BenchRunner(repeats=1, warmup=0, scale=2.5, timer=timer)
        record, _ = runner.run("w", lambda: None)
        assert record.samples_s == (2.5,)

    def test_records_share_the_run_id(self):
        runner = BenchRunner(repeats=1, warmup=0)
        a, _ = runner.run("a", lambda: None)
        b, _ = runner.run("b", lambda: None)
        assert a.run_id == b.run_id == runner.run_id
        assert [r.name for r in runner.records] == ["a", "b"]

    def test_measure_does_not_record(self):
        runner = BenchRunner(repeats=1, warmup=0)
        runner.measure("w", lambda: None)
        assert runner.records == []

    def test_manifest_pins_provenance(self):
        runner = BenchRunner(repeats=2, warmup=0)
        record, _ = runner.run("w", lambda: None)
        assert record.manifest is not None
        assert record.manifest.experiment_id == "bench.w"
        assert record.manifest.config_digest
        assert record.manifest.wall_time_s == pytest.approx(
            sum(record.samples_s))

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            BenchRunner(repeats=0)
        with pytest.raises(ValueError):
            BenchRunner(warmup=-1)
        with pytest.raises(ValueError):
            BenchRunner(scale=0.0)
        with pytest.raises(ValueError):
            BenchRunner().run("w", lambda: None, repeats=0)


class TestHistoryStore:
    def test_missing_file_is_empty_history(self, tmp_path):
        assert load_history(tmp_path / "absent.jsonl") == []

    def test_append_and_load_round_trip(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        first = [BenchRecord.from_samples("a", [1.0], run_id="r1")]
        second = [BenchRecord.from_samples("a", [2.0], run_id="r2"),
                  BenchRecord.from_samples("b", [3.0], run_id="r2")]
        append_history(first, path)
        append_history(second, path)
        loaded = load_history(path)
        assert loaded == first + second

    def test_malformed_line_names_file_and_line(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        record = BenchRecord.from_samples("a", [1.0])
        append_history([record], path)
        with path.open("a") as handle:
            handle.write("not json\n")
        with pytest.raises(ValueError, match=r"hist\.jsonl:2"):
            load_history(path)

    def test_non_bench_record_rejected(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        path.write_text('{"kind": "other"}\n')
        with pytest.raises(ValueError, match="not a bench record"):
            load_history(path)

    def test_group_by_name_preserves_order(self):
        records = [BenchRecord.from_samples("a", [1.0], run_id="r1"),
                   BenchRecord.from_samples("b", [1.0], run_id="r1"),
                   BenchRecord.from_samples("a", [2.0], run_id="r2")]
        grouped = group_by_name(records)
        assert list(grouped) == ["a", "b"]
        assert [r.run_id for r in grouped["a"]] == ["r1", "r2"]

    def test_last_run_splits_on_final_run_id(self):
        records = [BenchRecord.from_samples("a", [1.0], run_id="r1"),
                   BenchRecord.from_samples("a", [2.0], run_id="r2"),
                   BenchRecord.from_samples("b", [3.0], run_id="r2")]
        current, earlier = last_run(records)
        assert [r.run_id for r in current] == ["r2", "r2"]
        assert [r.run_id for r in earlier] == ["r1"]
        assert last_run([]) == ([], [])


class TestRegressionGate:
    def test_policy_validation(self):
        with pytest.raises(ValueError):
            RegressionPolicy(rel_floor=-0.1)
        with pytest.raises(ValueError):
            RegressionPolicy(iqr_mult=-1.0)

    def test_threshold_needs_history(self):
        with pytest.raises(ValueError):
            regression_threshold([])

    def test_threshold_floor_dominates_for_tight_history(self):
        baseline = [BenchRecord.from_samples("w", [1.0, 1.0, 1.0])]
        policy = RegressionPolicy(rel_floor=0.10, iqr_mult=2.0)
        assert regression_threshold(baseline, policy) == pytest.approx(1.1)

    def test_threshold_widens_with_noisy_history(self):
        baseline = [BenchRecord.from_samples("w", [1.0, 1.5, 2.0])]
        policy = RegressionPolicy(rel_floor=0.10, iqr_mult=2.0)
        # q3 = 1.75, iqr = 0.5 -> band = (1.75 - 1.0) + 2 * 0.5 = 1.75.
        assert regression_threshold(baseline, policy) == pytest.approx(2.75)

    def test_no_history_passes_silently(self):
        current = [BenchRecord.from_samples("w", [10.0])]
        assert detect_regressions(current, []) == []

    def test_identical_run_never_flags(self):
        samples = [1.0, 1.02, 1.05]
        history = [BenchRecord.from_samples("w", samples, run_id="r1")]
        current = [BenchRecord.from_samples("w", samples, run_id="r2")]
        assert detect_regressions(current, history) == []

    def test_preempted_middle_samples_never_flag_when_the_min_holds(self):
        # One-sided scheduler noise: the rerun's min sits on the floor
        # but the other samples were preempted.  A median gate flags
        # this (median 1.5 > threshold ~1.1); the min gate must not.
        history = [BenchRecord.from_samples("w", [1.0, 1.01, 1.02],
                                            run_id="r1")]
        current = [BenchRecord.from_samples("w", [1.0, 1.5, 1.8],
                                            run_id="r2")]
        assert detect_regressions(current, history) == []

    def test_double_slowdown_flags_with_describe(self):
        history = [BenchRecord.from_samples("w", [1.0, 1.02, 1.05],
                                            run_id="r1")]
        current = [BenchRecord.from_samples("w", [2.0, 2.04, 2.1],
                                            run_id="r2")]
        (flag,) = detect_regressions(current, history)
        assert flag.name == "w"
        assert flag.slowdown == pytest.approx(2.04)
        text = flag.describe()
        assert text.startswith("REGRESSION w:")
        assert "threshold" in text and "baseline min" in text

    def test_gate_is_per_workload(self):
        history = [BenchRecord.from_samples("a", [1.0], run_id="r1"),
                   BenchRecord.from_samples("b", [1.0], run_id="r1")]
        current = [BenchRecord.from_samples("a", [1.0], run_id="r2"),
                   BenchRecord.from_samples("b", [5.0], run_id="r2")]
        flags = detect_regressions(current, history)
        assert [f.name for f in flags] == ["b"]


class TestRegressionGateProperties:
    """The satellite property: no false positives inside the tolerated
    noise band, no false negatives at a 2x slowdown."""

    @staticmethod
    def _samples(base, noise, fractions):
        # Deterministic samples spread across [base, base * (1 + noise)].
        return [base * (1.0 + noise * f) for f in fractions]

    @given(
        base=st.floats(min_value=1e-4, max_value=10.0),
        noise=st.floats(min_value=0.0, max_value=0.2),
        rel_floor=st.floats(min_value=0.05, max_value=0.2),
        baseline_fracs=st.lists(
            st.tuples(st.floats(0.0, 1.0), st.floats(0.0, 1.0),
                      st.floats(0.0, 1.0)),
            min_size=1, max_size=4),
        current_fracs=st.tuples(st.floats(0.0, 1.0), st.floats(0.0, 1.0),
                                st.floats(0.0, 1.0)),
    )
    @settings(max_examples=200, deadline=None)
    def test_no_false_positive_inside_band_and_2x_always_flags(
            self, base, noise, rel_floor, baseline_fracs, current_fracs):
        # Clamp the drawn noise strictly inside the policy's tolerated
        # band (95% of it): samples then live within the spread the
        # gate promises to tolerate, with margin against the ulp-level
        # rounding of the threshold arithmetic itself.
        noise = min(noise, 0.95 * rel_floor)
        policy = RegressionPolicy(rel_floor=rel_floor, iqr_mult=2.0)
        history = [
            BenchRecord.from_samples("w", self._samples(base, noise, fracs),
                                     run_id=f"r{i}")
            for i, fracs in enumerate(baseline_fracs)
        ]
        same = [BenchRecord.from_samples(
            "w", self._samples(base, noise, current_fracs), run_id="cur")]
        assert detect_regressions(same, history, policy) == []

        slow = [BenchRecord.from_samples(
            "w", [2.0 * s for s in self._samples(base, noise, current_fracs)],
            run_id="cur")]
        assert len(detect_regressions(slow, history, policy)) == 1
