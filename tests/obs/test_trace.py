"""Chrome trace export: schema, shard pids, flow arrows, validation."""

import json

import pytest

from repro.obs import (
    SpanRecorder,
    Telemetry,
    chrome_trace,
    read_telemetry_jsonl,
    span,
    telemetry_session,
    trace_events,
    validate_trace,
    write_chrome_trace,
    write_telemetry_jsonl,
)
from repro.obs.trace import MAIN_PID


def _session_with(recorder):
    session = Telemetry()
    session.spans._finished.extend(recorder.records)
    return session


class TestTraceEvents:
    def test_parent_spans_land_on_main_pid(self):
        recorder = SpanRecorder()
        with recorder.span("work", n=3):
            pass
        events = trace_events(recorder.records)
        meta = [e for e in events if e["ph"] == "M"]
        assert [m["args"]["name"] for m in meta] == ["repro main"]
        (x,) = [e for e in events if e["ph"] == "X"]
        assert x["pid"] == MAIN_PID
        assert x["name"] == "work"
        assert x["args"]["n"] == 3
        assert "span_id" in x["args"]
        assert x["dur"] >= 0

    def test_timestamps_are_microseconds(self):
        recorder = SpanRecorder()
        with recorder.span("work"):
            pass
        (record,) = recorder.records
        (x,) = [e for e in trace_events(recorder.records) if e["ph"] == "X"]
        assert x["ts"] == pytest.approx(record.start_s * 1e6, abs=1e-3)
        assert x["dur"] == pytest.approx(record.duration_s * 1e6, abs=1e-3)

    def test_zero_duration_span_renders_zero_width(self):
        recorder = SpanRecorder()
        with recorder.span("instant"):
            pass
        record = recorder.records[0]
        zero = record.__class__(
            span_id=record.span_id, parent_id=None, name="instant",
            depth=0, start_s=record.start_s, duration_s=0.0)
        (x,) = [e for e in trace_events([zero]) if e["ph"] == "X"]
        assert x["dur"] == 0.0

    def test_absorbed_shards_get_own_pids_and_flows(self):
        parent = SpanRecorder()
        with parent.span("sweep.map"):
            pass
        anchor = parent.records[0]

        payloads = []
        for _ in range(2):
            child = SpanRecorder()
            with child.span("sweep.point"):
                with child.span("work"):
                    pass
            payloads.append(child.payload())
        for shard, payload in enumerate(payloads):
            parent.absorb(payload, shard=shard,
                          parent_id=anchor.span_id, base_depth=1)

        events = trace_events(parent.records)
        meta_names = [e["args"]["name"] for e in events if e["ph"] == "M"]
        assert meta_names == ["repro main", "sweep shard 0", "sweep shard 1"]
        pids = {e["pid"] for e in events if e["ph"] == "X"}
        assert MAIN_PID in pids and len(pids) == 3

        starts = [e for e in events if e["ph"] == "s"]
        finishes = [e for e in events if e["ph"] == "f"]
        # One arrow per shard root, from the main timeline to the shard.
        assert len(starts) == len(finishes) == 2
        for s, f in zip(starts, finishes):
            assert s["id"] == f["id"]
            assert s["pid"] == MAIN_PID
            assert f["pid"] != MAIN_PID
            assert f["bp"] == "e"
        # Nested shard spans do not get their own arrows.
        shard_x = [e for e in events
                   if e["ph"] == "X" and e["pid"] != MAIN_PID]
        assert len(shard_x) == 4  # 2 shards x (sweep.point + work)


class TestValidateTrace:
    def _valid(self):
        recorder = SpanRecorder()
        with recorder.span("work"):
            pass
        return chrome_trace(_session_with(recorder))

    def test_valid_payload_passes(self):
        validate_trace(self._valid())

    def test_rejects_non_object(self):
        with pytest.raises(ValueError, match="traceEvents"):
            validate_trace([])

    def test_rejects_missing_keys(self):
        payload = self._valid()
        del payload["traceEvents"][0]["pid"]
        with pytest.raises(ValueError, match="missing 'pid'"):
            validate_trace(payload)

    def test_rejects_unknown_phase(self):
        payload = self._valid()
        payload["traceEvents"][0]["ph"] = "Z"
        with pytest.raises(ValueError, match="unknown phase"):
            validate_trace(payload)

    def test_rejects_negative_ts(self):
        payload = self._valid()
        payload["traceEvents"][-1]["ts"] = -1.0
        with pytest.raises(ValueError, match="non-negative"):
            validate_trace(payload)

    def test_rejects_complete_event_without_dur(self):
        payload = self._valid()
        for event in payload["traceEvents"]:
            if event["ph"] == "X":
                del event["dur"]
        with pytest.raises(ValueError, match="dur"):
            validate_trace(payload)

    def test_rejects_flow_without_id(self):
        payload = self._valid()
        payload["traceEvents"].append(
            {"ph": "s", "name": "flow", "pid": 1, "tid": 0, "ts": 0.0})
        with pytest.raises(ValueError, match="flow event needs an id"):
            validate_trace(payload)


class TestWriteChromeTrace:
    def test_written_file_is_valid_json_trace(self, tmp_path):
        with telemetry_session() as session:
            with span("outer"):
                with span("inner"):
                    pass
        path = write_chrome_trace(session, tmp_path / "trace.json")
        payload = json.loads(path.read_text())
        validate_trace(payload)
        assert payload["displayTimeUnit"] == "ms"
        names = {e["name"] for e in payload["traceEvents"]
                 if e["ph"] == "X"}
        assert names == {"outer", "inner"}

    def test_shard_tree_round_trips_through_jsonl(self, tmp_path):
        # Absorb a shard, dump the session as telemetry JSONL, rebuild
        # it, and export the rebuilt session: the shard structure
        # (extra pid + flow arrows) must survive the round trip.
        with telemetry_session() as session:
            with span("sweep.map"):
                child = SpanRecorder()
                with child.span("sweep.point"):
                    pass
                session.spans.absorb(child.payload(), shard=0,
                                     parent_id=None, base_depth=1)

        dump = write_telemetry_jsonl(session, tmp_path / "telemetry.jsonl")
        rebuilt = read_telemetry_jsonl(dump)
        path = write_chrome_trace(rebuilt, tmp_path / "trace.json")
        payload = json.loads(path.read_text())
        validate_trace(payload)
        pids = {e["pid"] for e in payload["traceEvents"] if e["ph"] == "X"}
        assert len(pids) == 2
        assert any(e["ph"] == "s" for e in payload["traceEvents"])
        assert any(e["ph"] == "f" for e in payload["traceEvents"])

    def test_empty_session_still_validates(self, tmp_path):
        session = Telemetry()
        path = write_chrome_trace(session, tmp_path / "trace.json")
        payload = json.loads(path.read_text())
        validate_trace(payload)
        assert [e["ph"] for e in payload["traceEvents"]] == ["M"]
