"""Profiles: inclusive/exclusive aggregation and the hot-path table."""

import pytest

from repro.obs import (
    ProfileSession,
    SpanRecorder,
    aggregate_spans,
    span,
    telemetry_session,
)
from repro.obs.spans import SpanRecord


def _span(span_id, parent_id, name, start, duration, depth=0):
    return SpanRecord(span_id=span_id, parent_id=parent_id, name=name,
                      depth=depth, start_s=start, duration_s=duration)


class TestAggregateSpans:
    def test_exclusive_subtracts_recorded_children(self):
        records = [_span(0, None, "outer", 0.0, 1.0),
                   _span(1, 0, "inner", 0.1, 0.3, depth=1),
                   _span(2, 0, "inner", 0.5, 0.2, depth=1)]
        entries = {e.name: e for e in aggregate_spans(records)}
        assert entries["outer"].inclusive_s == pytest.approx(1.0)
        assert entries["outer"].exclusive_s == pytest.approx(0.5)
        assert entries["inner"].count == 2
        assert entries["inner"].inclusive_s == pytest.approx(0.5)
        assert entries["inner"].exclusive_s == pytest.approx(0.5)
        assert entries["inner"].min_s == pytest.approx(0.2)
        assert entries["inner"].max_s == pytest.approx(0.3)
        assert entries["inner"].mean_s == pytest.approx(0.25)

    def test_self_time_clamped_at_zero(self):
        # Child jitter can sum past the parent's own duration; the
        # parent's self-time must clamp at zero, not go negative.
        records = [_span(0, None, "outer", 0.0, 1.0),
                   _span(1, 0, "inner", 0.0, 1.2, depth=1)]
        entries = {e.name: e for e in aggregate_spans(records)}
        assert entries["outer"].exclusive_s == 0.0

    def test_orphan_parent_treated_as_root(self):
        # Parent id 99 was never recorded (unclosed at export time).
        records = [_span(0, 99, "work", 0.0, 0.4, depth=1)]
        (entry,) = aggregate_spans(records)
        assert entry.name == "work"
        assert entry.exclusive_s == pytest.approx(0.4)

    def test_zero_duration_span_aggregates(self):
        records = [_span(0, None, "instant", 0.0, 0.0)]
        (entry,) = aggregate_spans(records)
        assert entry.inclusive_s == 0.0
        assert entry.exclusive_s == 0.0
        assert entry.mean_s == 0.0

    def test_sorted_by_exclusive_then_name(self):
        records = [_span(0, None, "b", 0.0, 0.5),
                   _span(1, None, "a", 1.0, 0.5),
                   _span(2, None, "c", 2.0, 0.9)]
        names = [e.name for e in aggregate_spans(records)]
        assert names == ["c", "a", "b"]

    def test_empty_records(self):
        assert aggregate_spans([]) == []


class TestProfileSession:
    def test_total_is_sum_of_roots(self):
        records = [_span(0, None, "outer", 0.0, 1.0),
                   _span(1, 0, "inner", 0.1, 0.3, depth=1),
                   _span(2, None, "other", 2.0, 0.5)]
        profile = ProfileSession.from_records(records)
        assert profile.total_s == pytest.approx(1.5)
        assert profile.n_spans == 3

    def test_orphans_count_toward_total(self):
        records = [_span(0, 99, "work", 0.0, 0.4, depth=1)]
        profile = ProfileSession.from_records(records)
        assert profile.total_s == pytest.approx(0.4)

    def test_from_session_uses_recorded_spans(self):
        with telemetry_session() as session:
            with span("outer"):
                with span("inner"):
                    pass
        profile = ProfileSession.from_session(session)
        assert profile.n_spans == 2
        assert {e.name for e in profile.entries} == {"outer", "inner"}

    def test_hot_limits_and_clamps(self):
        records = [_span(i, None, f"w{i}", float(i), 0.1) for i in range(5)]
        profile = ProfileSession.from_records(records)
        assert len(profile.hot(3)) == 3
        assert profile.hot(-1) == []

    def test_render_table_shape(self):
        records = [_span(0, None, "outer", 0.0, 1.0),
                   _span(1, 0, "inner", 0.1, 0.3, depth=1)]
        text = ProfileSession.from_records(records).render()
        lines = text.splitlines()
        assert lines[0] == "profile: 2 labels, 2 spans, total 1.000 s"
        assert "excl %" in lines[1]
        assert any(line.lstrip().startswith("outer") for line in lines)

    def test_render_truncates_past_top(self):
        records = [_span(i, None, f"w{i}", float(i), 0.1) for i in range(4)]
        text = ProfileSession.from_records(records).render(top=2)
        assert "... 2 more labels" in text

    def test_render_empty_session(self):
        text = ProfileSession.from_records([]).render()
        assert text == "profile: 0 labels, 0 spans, total 0.000 s"

    def test_shares_sum_to_total_when_leaves_cover(self):
        recorder = SpanRecorder()
        with recorder.span("outer"):
            with recorder.span("inner"):
                pass
        profile = ProfileSession.from_records(recorder.records)
        excl = sum(e.exclusive_s for e in profile.entries)
        assert excl == pytest.approx(profile.total_s, rel=1e-6)
