"""Span tracing: nesting, timing, the null path, span_tree."""

from repro.obs import NULL_SPAN, SpanRecorder, span, span_tree
from repro.obs import telemetry_session


class TestSpanRecorder:
    def test_records_name_and_positive_duration(self):
        rec = SpanRecorder()
        with rec.span("work"):
            pass
        (record,) = rec.records
        assert record.name == "work"
        assert record.duration_s >= 0.0
        assert record.start_s >= 0.0
        assert record.parent_id is None
        assert record.depth == 0

    def test_nesting_sets_parent_and_depth(self):
        rec = SpanRecorder()
        with rec.span("outer"):
            with rec.span("inner"):
                pass
        inner, outer = rec.records  # completion order: inner finishes first
        assert inner.name == "inner"
        assert inner.parent_id == outer.span_id
        assert inner.depth == 1
        assert outer.depth == 0

    def test_siblings_share_a_parent(self):
        rec = SpanRecorder()
        with rec.span("outer"):
            with rec.span("first"):
                pass
            with rec.span("second"):
                pass
        first, second, outer = rec.records
        assert first.parent_id == second.parent_id == outer.span_id

    def test_attrs_are_sorted_and_readable(self):
        rec = SpanRecorder()
        with rec.span("work", n=5, mode="batch"):
            pass
        (record,) = rec.records
        assert record.attrs == (("mode", "batch"), ("n", 5))
        assert record.get("n") == 5
        assert record.get("missing", 0) == 0

    def test_exception_still_closes_the_span(self):
        rec = SpanRecorder()
        try:
            with rec.span("doomed"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert len(rec) == 1
        assert rec.records[0].name == "doomed"

    def test_as_dict_round_trip_keys(self):
        rec = SpanRecorder()
        with rec.span("work", n=1):
            pass
        row = rec.records[0].as_dict()
        assert {"span_id", "parent_id", "name", "depth",
                "start_s", "duration_s", "attrs"} <= set(row)


class TestModuleLevelSpan:
    def test_disabled_returns_the_shared_null_span(self):
        assert span("anything") is NULL_SPAN
        with span("anything"):  # must be freely re-enterable
            with span("nested"):
                pass

    def test_enabled_records_into_the_session(self):
        with telemetry_session() as session:
            with span("experiment", run=1):
                with span("sweep"):
                    pass
        sweep, experiment = session.spans.records
        assert sweep.parent_id == experiment.span_id
        assert session.spans.records  # readable after the block
        assert span("after") is NULL_SPAN  # session restored

    def test_sessions_nest_and_restore(self):
        with telemetry_session() as outer:
            with span("outer-span"):
                pass
            with telemetry_session() as inner:
                with span("inner-span"):
                    pass
            with span("outer-again"):
                pass
        assert [r.name for r in outer.spans.records] == ["outer-span",
                                                         "outer-again"]
        assert [r.name for r in inner.spans.records] == ["inner-span"]


class TestSpanTree:
    def test_builds_a_forest_ordered_by_start(self):
        rec = SpanRecorder()
        with rec.span("root-a"):
            with rec.span("child"):
                pass
        with rec.span("root-b"):
            pass
        forest = span_tree(rec.records)
        assert [node[0].name for node in forest] == ["root-a", "root-b"]
        ((_, children), _) = forest
        assert [c[0].name for c in children] == ["child"]

    def test_orphan_becomes_a_root(self):
        rec = SpanRecorder()
        with rec.span("outer"):
            with rec.span("inner"):
                pass
        inner_only = [r for r in rec.records if r.name == "inner"]
        forest = span_tree(inner_only)
        assert [node[0].name for node in forest] == ["inner"]
