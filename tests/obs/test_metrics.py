"""Metrics registry: counters, gauges, histograms, snapshots, merge."""

import pickle
from functools import reduce

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import (
    DEFAULT_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("hits")
        assert c.value() == 0.0
        c.inc()
        c.inc(4)
        assert c.value() == 5.0

    def test_labels_split_series(self):
        c = Counter("hits")
        c.inc(2, scheme="amppm")
        c.inc(3, scheme="vpwm")
        c.inc(1, scheme="amppm")
        assert c.value(scheme="amppm") == 3.0
        assert c.value(scheme="vpwm") == 3.0
        assert c.value() == 0.0

    def test_label_order_is_irrelevant(self):
        c = Counter("hits")
        c.inc(1, a=1, b=2)
        c.inc(1, b=2, a=1)
        assert c.value(a=1, b=2) == 2.0
        assert len(c.series()) == 1

    def test_negative_increment_rejected(self):
        c = Counter("hits")
        with pytest.raises(ValueError, match="cannot decrease"):
            c.inc(-1)


class TestGauge:
    def test_set_last_write_wins(self):
        g = Gauge("depth")
        g.set(3)
        g.set(1)
        assert g.value() == 1.0

    def test_set_max_keeps_the_peak(self):
        g = Gauge("depth")
        g.set_max(3)
        g.set_max(1)
        g.set_max(7)
        assert g.value() == 7.0


class TestHistogram:
    def test_observations_land_in_the_right_buckets(self):
        h = Histogram("lat", buckets=(1.0, 10.0))
        for value in (0.5, 0.9, 5.0, 100.0):
            h.observe(value)
        assert h.bucket_counts() == (2, 1, 1)  # last is +Inf overflow
        assert h.count() == 4
        assert h.sum() == pytest.approx(106.4)

    def test_boundary_is_inclusive(self):
        h = Histogram("lat", buckets=(1.0, 10.0))
        h.observe(1.0)
        assert h.bucket_counts() == (1, 0, 0)

    def test_observe_many(self):
        h = Histogram("lat")
        h.observe_many([0.002, 0.002, 30.0])
        assert h.count() == 3

    def test_default_buckets_are_increasing(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("lat", buckets=(1.0, 0.5))

    def test_empty_buckets_rejected(self):
        with pytest.raises(ValueError, match="at least one bucket"):
            Histogram("lat", buckets=())


class TestRegistry:
    def test_get_or_create_returns_the_same_object(self):
        r = MetricsRegistry()
        assert r.counter("a") is r.counter("a")
        assert r.names() == ["a"]

    def test_kind_conflict_rejected(self):
        r = MetricsRegistry()
        r.counter("a")
        with pytest.raises(ValueError, match="already registered"):
            r.gauge("a")

    def test_bucket_conflict_rejected(self):
        r = MetricsRegistry()
        r.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(ValueError, match="buckets"):
            r.histogram("h", buckets=(1.0, 3.0))

    def test_empty_registry_is_truthy(self):
        # `registry = metrics()` followed by `if registry:` must not
        # silently skip recording on a fresh session.
        assert bool(MetricsRegistry())
        assert len(MetricsRegistry()) == 0

    def test_snapshot_round_trip(self):
        r = MetricsRegistry()
        r.counter("c", help="a counter").inc(5, scheme="amppm")
        r.gauge("g").set(2.5)
        r.histogram("h", buckets=(1.0,)).observe(0.5)
        clone = MetricsRegistry.from_snapshot(r.snapshot())
        assert clone.snapshot() == r.snapshot()
        assert clone.counter("c").value(scheme="amppm") == 5.0
        assert clone.get("c").help == "a counter"

    def test_snapshot_is_picklable(self):
        r = MetricsRegistry()
        r.counter("c").inc(3)
        r.histogram("h").observe(0.1)
        snapshot = pickle.loads(pickle.dumps(r.snapshot()))
        assert MetricsRegistry.from_snapshot(snapshot).counter("c").value() == 3.0

    def test_absorb_adds_counters_and_maxes_gauges(self):
        a = MetricsRegistry()
        a.counter("c").inc(2)
        a.gauge("g").set(5)
        b = MetricsRegistry()
        b.counter("c").inc(3)
        b.gauge("g").set(1)
        a.absorb(b.snapshot())
        assert a.counter("c").value() == 5.0
        assert a.gauge("g").value() == 5.0

    def test_absorb_adds_histogram_cells(self):
        a = MetricsRegistry()
        a.histogram("h", buckets=(1.0,)).observe(0.5)
        b = MetricsRegistry()
        b.histogram("h", buckets=(1.0,)).observe(2.0)
        a.absorb(b.snapshot())
        assert a.histogram("h", buckets=(1.0,)).bucket_counts() == (1, 1)
        assert a.histogram("h", buckets=(1.0,)).count() == 2


class TestNullRegistry:
    def test_recording_is_a_no_op(self):
        NULL_REGISTRY.counter("c").inc(5)
        NULL_REGISTRY.gauge("g").set_max(1)
        NULL_REGISTRY.histogram("h").observe(0.1)
        assert NULL_REGISTRY.names() == []
        assert NULL_REGISTRY.get("c") is None
        assert len(NULL_REGISTRY) == 0

    def test_shared_metric_object(self):
        # One shared no-op instance: no allocation on the disabled path.
        assert NULL_REGISTRY.counter("a") is NULL_REGISTRY.counter("b")
        assert NULL_REGISTRY.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {}}


def _registries(shards):
    """Materialize hypothesis shard specs into registries."""
    out = []
    for shard in shards:
        r = MetricsRegistry()
        for name, label, value in shard["counters"]:
            r.counter(name).inc(value, worker=label)
        for name, label, value in shard["gauges"]:
            r.gauge(name).set_max(value, worker=label)
        for name, label, value in shard["observations"]:
            r.histogram(name, buckets=(2.0, 8.0)).observe(value, worker=label)
        out.append(r)
    return out


# Integer values keep every fold exact (no float-rounding noise), which
# is the regime the sweep shards live in: counts of symbols and errors.
# Name pools are disjoint per kind — a name can only ever be one kind.
def _entries(names):
    return st.lists(st.tuples(st.sampled_from(names),
                              st.sampled_from(["a", "b"]),
                              st.integers(min_value=0, max_value=1000)),
                    max_size=6)


_SHARD = st.fixed_dictionaries({
    "counters": _entries(["c0", "c1"]),
    "gauges": _entries(["g0", "g1"]),
    "observations": _entries(["h0", "h1"]),
})


class TestMergeAlgebra:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(_SHARD, min_size=2, max_size=4))
    def test_merge_is_commutative(self, shards):
        registries = _registries(shards)
        forward = reduce(merge, registries).snapshot()
        backward = reduce(merge, list(reversed(registries))).snapshot()
        assert forward == backward

    @settings(max_examples=60, deadline=None)
    @given(st.lists(_SHARD, min_size=3, max_size=3))
    def test_merge_is_associative(self, shards):
        a, b, c = _registries(shards)
        left = merge(merge(a, b), c).snapshot()
        right = merge(a, merge(b, c)).snapshot()
        assert left == right

    def test_merge_is_pure(self):
        a = MetricsRegistry()
        a.counter("c").inc(1)
        b = MetricsRegistry()
        b.counter("c").inc(2)
        merged = merge(a, b)
        assert merged.counter("c").value() == 3.0
        assert a.counter("c").value() == 1.0
        assert b.counter("c").value() == 2.0


class TestHistogramPercentile:
    def test_interpolates_within_a_bucket(self):
        h = Histogram("lat", buckets=(1.0, 2.0, 4.0))
        for _ in range(10):
            h.observe(0.5)
        assert h.percentile(50) == pytest.approx(0.5)
        assert h.percentile(0) == pytest.approx(0.0)
        assert h.percentile(100) == pytest.approx(1.0)

    def test_crosses_buckets_at_the_rank(self):
        h = Histogram("lat", buckets=(1.0, 2.0, 4.0))
        h.observe(0.5)
        h.observe(1.5)
        h.observe(2.5)
        h.observe(3.5)
        assert h.percentile(50) == pytest.approx(2.0)
        assert h.percentile(75) == pytest.approx(3.0)

    def test_overflow_resolves_to_highest_finite_bound(self):
        h = Histogram("lat", buckets=(1.0, 2.0, 4.0))
        h.observe(100.0)
        assert h.percentile(99) == pytest.approx(4.0)

    def test_negative_first_bucket_uses_its_own_edge(self):
        h = Histogram("delta", buckets=(-2.0, 1.0))
        h.observe(-2.5)  # lands in the (-inf, -2] bucket
        assert h.percentile(50) == pytest.approx(-2.0)

    def test_empty_series_is_nan(self):
        h = Histogram("lat", buckets=(1.0,))
        assert h.percentile(50) != h.percentile(50)  # NaN

    def test_labels_split_estimates(self):
        h = Histogram("lat", buckets=(1.0, 2.0))
        h.observe(0.5, scheme="amppm")
        h.observe(1.5, scheme="vpwm")
        assert h.percentile(50, scheme="amppm") < 1.0
        assert h.percentile(50, scheme="vpwm") > 1.0

    def test_out_of_range_rejected(self):
        h = Histogram("lat", buckets=(1.0,))
        with pytest.raises(ValueError, match=r"\[0, 100\]"):
            h.percentile(101)
        with pytest.raises(ValueError):
            h.percentile(-1)
