"""Telemetry exporters: JSONL round-trip, Prometheus text, aligned text."""

import json

import pytest

from repro.obs import (
    RunManifest,
    Telemetry,
    read_telemetry_jsonl,
    render_prometheus,
    render_text,
    telemetry_rows,
    write_telemetry_jsonl,
)


def _session() -> Telemetry:
    session = Telemetry()
    session.registry.counter("repro_symbols_total",
                             help="symbols pushed").inc(100, scheme="amppm")
    session.registry.counter("repro_symbols_total").inc(40, scheme="vpwm")
    session.registry.gauge("repro_clock_seconds").set(12.5)
    session.registry.histogram("repro_batch_size",
                               buckets=(10.0, 100.0)).observe(50)
    with session.spans.span("experiment.fig04"):
        with session.spans.span("sweep.map", points=3):
            pass
    session.manifests.append(RunManifest(
        experiment_id="fig04", config_digest="ab" * 32, version="1.0.0"))
    return session


class TestJsonl:
    def test_rows_are_self_describing(self):
        rows = telemetry_rows(_session())
        kinds = {row["type"] for row in rows}
        assert kinds == {"counter", "gauge", "histogram", "span", "manifest"}

    def test_write_then_read_round_trips(self, tmp_path):
        session = _session()
        path = write_telemetry_jsonl(session, tmp_path / "t.jsonl")
        clone = read_telemetry_jsonl(path)
        assert clone.registry.snapshot() == session.registry.snapshot()
        assert ([r.name for r in clone.spans.records]
                == [r.name for r in session.spans.records])
        assert clone.manifests == session.manifests
        # Idempotent: re-exporting the clone gives byte-identical JSONL.
        again = write_telemetry_jsonl(clone, tmp_path / "t2.jsonl")
        assert again.read_text() == path.read_text()

    def test_every_line_is_json(self, tmp_path):
        path = write_telemetry_jsonl(_session(), tmp_path / "t.jsonl")
        for line in path.read_text().splitlines():
            assert json.loads(line)

    def test_malformed_line_raises_with_location(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "counter", "name": "c", "value": 1}\nnope\n')
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            read_telemetry_jsonl(path)

    def test_unknown_record_type_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "mystery"}\n')
        with pytest.raises(ValueError, match="unknown record type"):
            read_telemetry_jsonl(path)

    def test_non_record_line_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('[1, 2, 3]\n')
        with pytest.raises(ValueError, match="not a telemetry record"):
            read_telemetry_jsonl(path)


class TestPrometheus:
    def test_counter_and_gauge_lines(self):
        text = render_prometheus(_session().registry)
        assert "# TYPE repro_symbols_total counter" in text
        assert 'repro_symbols_total{scheme="amppm"} 100' in text
        assert "# TYPE repro_clock_seconds gauge" in text
        assert "repro_clock_seconds 12.5" in text
        assert "# HELP repro_symbols_total symbols pushed" in text

    def test_histogram_is_cumulative_with_inf(self):
        text = render_prometheus(_session().registry)
        assert 'repro_batch_size_bucket{le="10"} 0' in text
        assert 'repro_batch_size_bucket{le="100"} 1' in text
        assert 'repro_batch_size_bucket{le="+Inf"} 1' in text
        assert "repro_batch_size_sum 50" in text
        assert "repro_batch_size_count 1" in text

    def test_bad_metric_name_characters_sanitized(self):
        session = Telemetry()
        session.registry.counter("weird.name-x").inc(1)
        text = render_prometheus(session.registry)
        assert "weird_name_x 1" in text

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(Telemetry().registry) == ""


class TestPrometheusEscaping:
    def test_label_values_escape_specials(self):
        session = Telemetry()
        session.registry.counter("repro_paths_total").inc(
            1, path='C:\\tmp\n"quoted"')
        text = render_prometheus(session.registry)
        assert ('repro_paths_total{path="C:\\\\tmp\\n\\"quoted\\""} 1'
                in text)
        # Exactly one physical line carries the series: the newline in
        # the label value must not split the exposition.
        (line,) = [ln for ln in text.splitlines()
                   if ln.startswith("repro_paths_total{")]
        assert line.endswith(" 1")

    def test_help_escapes_backslash_and_newline(self):
        session = Telemetry()
        session.registry.counter("repro_x_total",
                                 help="first\nsecond \\ third").inc(1)
        text = render_prometheus(session.registry)
        assert "# HELP repro_x_total first\\nsecond \\\\ third" in text
        assert "\nsecond" not in text

    def test_plain_values_stay_untouched(self):
        text = render_prometheus(_session().registry)
        assert 'repro_symbols_total{scheme="amppm"} 100' in text

    def test_content_type_constant(self):
        from repro.obs import PROMETHEUS_CONTENT_TYPE
        assert PROMETHEUS_CONTENT_TYPE == \
            "text/plain; version=0.0.4; charset=utf-8"


class TestRenderText:
    def test_header_and_sections(self):
        text = render_text(_session())
        # One counter *name* (with two label series), one gauge, etc.
        assert text.startswith("telemetry: 1 counters, 1 gauges, "
                               "1 histograms, 2 spans, 1 manifests")
        assert "counters:" in text
        assert "spans:" in text
        assert "manifests:" in text
        assert "fig04" in text

    def test_span_tree_is_indented(self):
        lines = render_text(_session()).splitlines()
        (sweep_line,) = [ln for ln in lines if "sweep.map" in ln]
        (experiment_line,) = [ln for ln in lines if "experiment.fig04" in ln]
        indent = len(sweep_line) - len(sweep_line.lstrip())
        assert indent > len(experiment_line) - len(experiment_line.lstrip())
        assert "[points=3]" in sweep_line

    def test_span_overflow_is_reported(self):
        session = Telemetry()
        for i in range(5):
            with session.spans.span(f"s{i}"):
                pass
        text = render_text(session, max_spans=2)
        assert "... 3 more spans" in text

    def test_empty_session_renders_the_zero_header(self):
        assert render_text(Telemetry()) == ("telemetry: 0 counters, 0 gauges, "
                                            "0 histograms, 0 spans, 0 manifests")


class TestRenderTextPercentiles:
    def test_histogram_line_carries_p50_p95_p99(self):
        text = render_text(_session())
        (line,) = [ln for ln in text.splitlines()
                   if ln.lstrip().startswith("repro_batch_size")]
        assert "p50" in line and "p95" in line and "p99" in line

    def test_empty_histogram_omits_percentiles(self):
        session = Telemetry()
        session.registry.histogram("repro_empty", buckets=(1.0,))
        text = render_text(session)
        assert "p50" not in text
