"""Run manifests: config digests, serialization, experiment attachment."""

import dataclasses
import json

from repro.core.params import DEFAULT_CONFIG, SystemConfig
from repro.experiments import run_experiment
from repro.obs import RunManifest, config_digest, telemetry_session, write_manifest


class TestConfigDigest:
    def test_deterministic(self):
        assert config_digest(DEFAULT_CONFIG) == config_digest(SystemConfig())

    def test_sensitive_to_any_field(self):
        changed = dataclasses.replace(DEFAULT_CONFIG,
                                      payload_bytes=DEFAULT_CONFIG.payload_bytes + 1)
        assert config_digest(changed) != config_digest(DEFAULT_CONFIG)

    def test_is_hex_sha256(self):
        digest = config_digest(DEFAULT_CONFIG)
        assert len(digest) == 64
        int(digest, 16)  # raises if not hex


class TestRunManifest:
    def _manifest(self, **overrides):
        base = dict(experiment_id="fig04",
                    config_digest=config_digest(DEFAULT_CONFIG),
                    version="1.0.0", seeds=(7, 9), args="{'n': 5}",
                    started_at_utc="2026-08-06T00:00:00+00:00",
                    wall_time_s=1.25,
                    metrics={"counters": {}, "gauges": {}, "histograms": {}},
                    journal_digest="ab" * 32)
        base.update(overrides)
        return RunManifest(**base)

    def test_dict_round_trip(self):
        manifest = self._manifest()
        clone = RunManifest.from_dict(manifest.as_dict())
        assert clone == manifest
        assert manifest.as_dict()["kind"] == "manifest"

    def test_to_json_is_valid_and_sorted(self):
        payload = json.loads(self._manifest().to_json())
        assert payload["experiment_id"] == "fig04"
        assert payload["seeds"] == [7, 9]

    def test_summary_mentions_the_essentials(self):
        text = self._manifest().summary()
        assert "fig04" in text
        assert "v1.0.0" in text
        assert "seeds 7,9" in text
        assert "journal" in text

    def test_write_manifest_sidecar(self, tmp_path):
        target = tmp_path / "fig04.manifest.json"
        written = write_manifest(self._manifest(), target)
        assert written == target
        assert json.loads(target.read_text())["kind"] == "manifest"


class TestExperimentAttachment:
    def test_result_carries_a_manifest(self):
        result = run_experiment("table2-direct")
        manifest = result.manifest
        assert manifest is not None
        assert manifest.experiment_id == "table2-direct"
        assert manifest.config_digest == config_digest(DEFAULT_CONFIG)
        assert manifest.wall_time_s > 0.0

    def test_manifest_excluded_from_equality_and_render(self):
        first = run_experiment("table2-direct")
        second = run_experiment("table2-direct")
        # wall times differ, results must still compare equal...
        assert first.manifest.wall_time_s != second.manifest.wall_time_s \
            or first.manifest.started_at_utc == second.manifest.started_at_utc
        assert first == second
        # ...and no wall-clock value leaks into the rendering.
        assert f"{first.manifest.wall_time_s:.3f}" not in first.render() \
            or first.manifest.wall_time_s == 0.0

    def test_session_collects_manifests_and_metrics(self):
        with telemetry_session() as session:
            run_experiment("table2-direct")
        (manifest,) = session.manifests
        assert manifest.experiment_id == "table2-direct"
        # The snapshot embedded in the manifest mirrors the session's.
        assert manifest.metrics == session.registry.snapshot()
