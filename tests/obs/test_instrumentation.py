"""End-to-end telemetry: instrumented hot paths feed one session.

These tests exercise the permanent instrumentation sites — the batched
Monte-Carlo engine, the DES kernel, the MAC and the sweep runner —
under an active session, and pin the two contracts that make it safe
to leave them in: counter totals are identical whether a sweep runs
serially or across processes, and enabling telemetry never changes a
result value.
"""

import numpy as np

from repro.core.errormodel import SlotErrorModel
from repro.core.symbols import SymbolPattern
from repro.des.kernel import EventScheduler
from repro.sim.batch import BatchMonteCarloValidator
from repro.sim.sweep import SweepRunner
from repro.obs import telemetry_session

PATTERN = SymbolPattern(20, 10)
ERRORS = SlotErrorModel(0.01, 0.01)


def _count_errors(n_symbols, rng):
    """Module-level sweep worker (must be picklable for process pools)."""
    estimate = BatchMonteCarloValidator().symbol_error_rate(
        PATTERN, ERRORS, rng, n_symbols=int(n_symbols))
    return estimate.n_errors


class TestBatchEngine:
    def test_ser_records_symbol_counters(self):
        with telemetry_session() as session:
            estimate = BatchMonteCarloValidator().symbol_error_rate(
                PATTERN, ERRORS, np.random.default_rng(3), n_symbols=2000)
        registry = session.registry
        assert registry.counter("repro_batch_symbols_total").value() == 2000
        assert (registry.counter("repro_batch_symbol_errors_total").value()
                == estimate.n_errors)
        names = [r.name for r in session.spans.records]
        assert "batch.symbol_error_rate" in names

    def test_off_by_default_and_result_unchanged(self):
        baseline = BatchMonteCarloValidator().symbol_error_rate(
            PATTERN, ERRORS, np.random.default_rng(3), n_symbols=2000)
        with telemetry_session():
            observed = BatchMonteCarloValidator().symbol_error_rate(
                PATTERN, ERRORS, np.random.default_rng(3), n_symbols=2000)
        # Telemetry observes; it must never perturb the random stream.
        assert observed == baseline


class TestDesKernel:
    def test_run_records_dispatch_counter_and_clock(self):
        scheduler = EventScheduler()
        for delay in (1.0, 2.0, 3.0):
            scheduler.schedule(delay, "tick")
        with telemetry_session() as session:
            scheduler.run()
        registry = session.registry
        assert registry.counter("repro_des_events_dispatched_total").value() == 3
        assert registry.gauge("repro_des_clock_seconds").value() == 3.0
        assert any(r.name == "des.run" for r in session.spans.records)


class TestSweepAggregation:
    def test_parallel_counters_match_serial(self):
        points = [500, 700, 900]
        with telemetry_session() as serial_session:
            serial = SweepRunner().map(_count_errors, points, seed=11)
        with telemetry_session() as parallel_session:
            parallel = SweepRunner(jobs=2).map(_count_errors, points, seed=11)
        assert parallel == serial
        a, b = serial_session.registry, parallel_session.registry
        # Worker shards are absorbed into the parent: same totals as the
        # in-process run, however the pool scheduled the points.
        assert (a.counter("repro_batch_symbols_total").value()
                == b.counter("repro_batch_symbols_total").value()
                == sum(points))
        assert (a.counter("repro_batch_symbol_errors_total").value()
                == b.counter("repro_batch_symbol_errors_total").value()
                == sum(serial))

    def test_sweep_span_and_point_counter(self):
        with telemetry_session() as session:
            SweepRunner().map(_count_errors, [300, 300], seed=5)
        assert (session.registry.counter("repro_sweep_points_total").value()
                == 2)
        (sweep_span,) = [r for r in session.spans.records
                         if r.name == "sweep.map"]
        assert sweep_span.get("points") == 2
        assert sweep_span.get("seeded") is True

    def test_parallel_without_session_still_works(self):
        points = [400, 600]
        assert (SweepRunner(jobs=2).map(_count_errors, points, seed=7)
                == SweepRunner().map(_count_errors, points, seed=7))


class TestSweepShardSpans:
    def test_parallel_shards_ship_spans_stitched_under_sweep_map(self):
        points = [300, 400, 500]
        with telemetry_session() as session:
            SweepRunner(jobs=2).map(_count_errors, points, seed=3)
        records = session.spans.records
        (sweep_span,) = [r for r in records if r.name == "sweep.map"]
        shard_points = [r for r in records if r.name == "sweep.point"]
        # One per grid point, each stamped with its shard index and
        # stitched directly under the sweep.map span.
        assert len(shard_points) == len(points)
        assert sorted(r.get("shard") for r in shard_points) == [0, 1, 2]
        assert {r.get("point") for r in shard_points} == {0, 1, 2}
        for record in shard_points:
            assert record.parent_id == sweep_span.span_id
            assert record.depth == sweep_span.depth + 1
            # Rebasing puts every shard inside the parent's timeline.
            assert record.start_s >= 0.0
            assert (record.start_s + record.duration_s
                    <= sweep_span.start_s + sweep_span.duration_s + 0.5)

    def test_serial_sweep_has_no_shard_attrs(self):
        with telemetry_session() as session:
            SweepRunner().map(_count_errors, [300], seed=3)
        assert all(r.get("shard") is None for r in session.spans.records)
