"""Shared fixtures: configurations, designers and channels are expensive
to build, so the paper-default instances are session-scoped."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import AmppmDesigner, SlotErrorModel, SystemConfig
from repro.phy import calibrated_channel


@pytest.fixture(scope="session")
def config() -> SystemConfig:
    """The paper's operating parameters."""
    return SystemConfig()


@pytest.fixture(scope="session")
def small_config() -> SystemConfig:
    """A reduced configuration for tests that enumerate exhaustively."""
    return SystemConfig(n_cap=21)


@pytest.fixture(scope="session")
def paper_errors(config) -> SlotErrorModel:
    """The measured worst-case slot error constants."""
    return SlotErrorModel.from_config(config)


@pytest.fixture(scope="session")
def designer(config) -> AmppmDesigner:
    """Paper-default AMPPM designer (candidates + envelope prebuilt)."""
    return AmppmDesigner(config)


@pytest.fixture(scope="session")
def small_designer(small_config) -> AmppmDesigner:
    """Designer over the reduced candidate set."""
    return AmppmDesigner(small_config)


@pytest.fixture(scope="session")
def channel(config):
    """The calibrated optical channel."""
    return calibrated_channel(config)


@pytest.fixture()
def rng() -> np.random.Generator:
    """A fresh, fixed-seed generator per test."""
    return np.random.default_rng(0xC0FFEE)
