"""Co-channel interference: monotonicity and consistency contracts."""

import math

import pytest

from repro.core import SystemConfig
from repro.net import Interferer, effective_slot_errors, \
    interference_sigma, sinr
from repro.phy import LinkGeometry, calibrated_channel
from repro.sim.linkmodel import expected_goodput
from repro.schemes import AmppmScheme


@pytest.fixture(scope="module")
def channel():
    return calibrated_channel(SystemConfig())


@pytest.fixture(scope="module")
def serving_geometry():
    return LinkGeometry.from_offsets(0.5, 2.0)


@pytest.fixture(scope="module")
def neighbour_geometry():
    return LinkGeometry.from_offsets(2.0, 2.0)


class TestInterferenceSigma:
    def test_no_interferers_is_zero(self, channel):
        assert interference_sigma(channel, []) == 0.0

    def test_pinned_duty_contributes_nothing(self, channel,
                                             neighbour_geometry):
        for duty in (0.0, 1.0):
            sigma = interference_sigma(
                channel, [Interferer(neighbour_geometry, duty)])
            assert sigma == 0.0

    def test_half_duty_maximises_fluctuation(self, channel,
                                             neighbour_geometry):
        half = interference_sigma(
            channel, [Interferer(neighbour_geometry, 0.5)])
        skew = interference_sigma(
            channel, [Interferer(neighbour_geometry, 0.1)])
        assert half > skew > 0.0

    def test_interferers_add_in_quadrature(self, channel,
                                           neighbour_geometry):
        one = interference_sigma(
            channel, [Interferer(neighbour_geometry, 0.5)])
        two = interference_sigma(
            channel, [Interferer(neighbour_geometry, 0.5)] * 2)
        assert two == pytest.approx(one * math.sqrt(2.0))

    def test_duty_validation(self, neighbour_geometry):
        with pytest.raises(ValueError):
            Interferer(neighbour_geometry, 1.5)


class TestEffectiveSlotErrors:
    def test_no_interferers_matches_channel_model(self, channel,
                                                  serving_geometry):
        direct = channel.slot_error_model(serving_geometry, 0.4)
        via = effective_slot_errors(channel, serving_geometry, 0.4)
        assert via == direct

    def test_interference_raises_error_probabilities(self, channel,
                                                     serving_geometry,
                                                     neighbour_geometry):
        clean = effective_slot_errors(channel, serving_geometry, 0.4)
        noisy = effective_slot_errors(
            channel, serving_geometry, 0.4,
            [Interferer(neighbour_geometry, 0.5)])
        assert noisy.p_off_error > clean.p_off_error
        assert noisy.p_on_error > clean.p_on_error

    def test_neighbour_never_increases_goodput(self, channel,
                                               serving_geometry,
                                               neighbour_geometry):
        # The acceptance-criterion monotonicity pin: adding an
        # interfering luminaire must never help the serving link,
        # whatever its duty cycle or distance.
        config = SystemConfig()
        design = AmppmScheme(config).design(0.5)
        alone = expected_goodput(
            design,
            effective_slot_errors(channel, serving_geometry, 0.4),
            config)
        for duty in (0.0, 0.25, 0.5, 0.75, 1.0):
            for horizontal in (1.0, 2.0, 4.0):
                neighbour = Interferer(
                    LinkGeometry.from_offsets(horizontal, 2.0), duty)
                with_neighbour = expected_goodput(
                    design,
                    effective_slot_errors(channel, serving_geometry, 0.4,
                                          [neighbour]),
                    config)
                assert with_neighbour <= alone + 1e-12

    def test_closer_neighbour_hurts_more(self, channel, serving_geometry):
        config = SystemConfig()
        design = AmppmScheme(config).design(0.5)

        def goodput(horizontal):
            neighbour = Interferer(
                LinkGeometry.from_offsets(horizontal, 2.0), 0.5)
            return expected_goodput(
                design,
                effective_slot_errors(channel, serving_geometry, 0.4,
                                      [neighbour]),
                config)

        assert goodput(1.0) < goodput(2.0) < goodput(4.0)


class TestSinr:
    def test_decreases_with_interference(self, channel, serving_geometry,
                                         neighbour_geometry):
        clean = sinr(channel, serving_geometry, 0.4)
        dirty = sinr(channel, serving_geometry, 0.4,
                     [Interferer(neighbour_geometry, 0.5)])
        assert 0.0 < dirty < clean

    def test_decreases_with_ambient(self, channel, serving_geometry):
        assert sinr(channel, serving_geometry, 0.8) \
            < sinr(channel, serving_geometry, 0.1)
