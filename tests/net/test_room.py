"""The multi-receiver room simulation."""

import math

import pytest

from repro.lighting import BlindRampAmbient, StaticAmbient
from repro.net import ReceiverPlacement, RoomSimulation
from repro.phy import LinkGeometry


class TestPlacement:
    def test_geometry_from_offsets(self):
        p = ReceiverPlacement("x", 1.0, vertical_drop_m=1.0)
        assert p.geometry.distance_m == pytest.approx(math.sqrt(2))
        assert p.geometry.incidence_angle_deg == pytest.approx(45.0)

    def test_under_lamp_is_on_axis(self):
        p = ReceiverPlacement("x", 0.0)
        assert p.geometry.incidence_angle_deg == 0.0

    def test_daylight_gain(self):
        p = ReceiverPlacement("x", 0.0, daylight_gain=1.2)
        assert p.local_ambient(0.5) == pytest.approx(0.6)
        assert p.local_ambient(0.9) == 1.0  # clipped

    def test_validation(self):
        with pytest.raises(ValueError):
            ReceiverPlacement("x", -1.0)
        with pytest.raises(ValueError):
            ReceiverPlacement("x", 0.0, vertical_drop_m=0.0)


class TestFromOffsets:
    """Geometry edge cases of the shared from_offsets constructor."""

    def test_zero_horizontal_offset_is_the_boresight(self):
        g = LinkGeometry.from_offsets(0.0, 2.0)
        assert g.distance_m == pytest.approx(2.0)
        assert g.irradiance_angle_deg == 0.0
        assert g.incidence_angle_deg == 0.0

    def test_symmetric_angles(self):
        g = LinkGeometry.from_offsets(3.0, 2.0)
        assert g.irradiance_angle_deg == pytest.approx(
            g.incidence_angle_deg)
        assert g.distance_m == pytest.approx(math.hypot(3.0, 2.0))

    def test_grazing_offsets_clamp_below_ninety(self):
        g = LinkGeometry.from_offsets(1e6, 1e-3)
        assert g.incidence_angle_deg <= 89.0

    def test_validation(self):
        with pytest.raises(ValueError):
            LinkGeometry.from_offsets(-0.1, 2.0)
        with pytest.raises(ValueError):
            LinkGeometry.from_offsets(1.0, 0.0)


class TestRoom:
    @pytest.fixture(scope="class")
    def samples(self):
        room = RoomSimulation(profile=BlindRampAmbient())
        return room.run(30.0), room

    def test_all_default_desks_linked(self, samples):
        history, _ = samples
        for sample in history:
            for node in sample.nodes:
                assert node.link_ok, node.name

    def test_near_desk_fastest(self, samples):
        history, _ = samples
        for sample in history:
            near = sample.node("desk-under-lamp")
            far = sample.node("desk-corner")
            assert near.throughput_bps >= far.throughput_bps

    def test_led_tracks_fused_ambient(self, samples):
        history, room = samples
        first, last = history[0], history[-1]
        assert last.fused_ambient > first.fused_ambient
        assert last.led < first.led

    def test_controller_keeps_sum(self, samples):
        history, room = samples
        for sample in history:
            assert sample.led + sample.fused_ambient == pytest.approx(
                room.target_sum, abs=0.02)

    def test_aggregate_sums_nodes(self, samples):
        history, _ = samples
        sample = history[0]
        assert sample.aggregate_throughput_bps == pytest.approx(
            sum(n.throughput_bps for n in sample.nodes))

    def test_unknown_node_lookup(self, samples):
        history, _ = samples
        with pytest.raises(KeyError):
            history[0].node("nope")

    def test_deterministic_per_seed(self):
        a = RoomSimulation(seed=5, profile=StaticAmbient(0.4)).run(5.0)
        b = RoomSimulation(seed=5, profile=StaticAmbient(0.4)).run(5.0)
        assert [s.led for s in a] == [s.led for s in b]

    def test_far_desk_outside_beam_is_down(self):
        room = RoomSimulation(
            placements=(ReceiverPlacement("far-desk", 3.0),),
            profile=StaticAmbient(0.4))
        sample = room.step(0.0)
        assert not sample.nodes[0].link_ok

    def test_outside_fov_desk_has_zero_throughput(self):
        # Incidence beyond the photodiode FoV: zero gain, zero goodput,
        # but sensing (and hence lighting control) still works.
        room = RoomSimulation(
            placements=(ReceiverPlacement("hallway", 20.0),),
            profile=StaticAmbient(0.4))
        sample = room.step(0.0)
        node = sample.nodes[0]
        assert not node.link_ok
        assert node.throughput_bps == 0.0
        assert sample.fused_ambient is not None

    def test_desk_under_lamp_beats_offset_desk(self):
        room = RoomSimulation(
            placements=(ReceiverPlacement("under", 0.0),
                        ReceiverPlacement("offset", 1.0)),
            profile=StaticAmbient(0.4))
        sample = room.step(0.0)
        assert sample.node("under").throughput_bps > \
            sample.node("offset").throughput_bps

    def test_window_desk_senses_more_daylight(self):
        room = RoomSimulation(profile=StaticAmbient(0.5))
        sample = room.step(0.0)
        assert sample.node("desk-window").ambient > \
            sample.node("desk-corner").ambient

    def test_needs_receivers(self):
        with pytest.raises(ValueError):
            RoomSimulation(placements=())

    def test_tick_validation(self):
        with pytest.raises(ValueError):
            RoomSimulation().run(1.0, tick_s=0.0)
