"""The multi-receiver room simulation."""

import math

import pytest

from repro.lighting import BlindRampAmbient, StaticAmbient
from repro.net import ReceiverPlacement, RoomSimulation


class TestPlacement:
    def test_geometry_from_offsets(self):
        p = ReceiverPlacement("x", 1.0, vertical_drop_m=1.0)
        assert p.geometry.distance_m == pytest.approx(math.sqrt(2))
        assert p.geometry.incidence_angle_deg == pytest.approx(45.0)

    def test_under_lamp_is_on_axis(self):
        p = ReceiverPlacement("x", 0.0)
        assert p.geometry.incidence_angle_deg == 0.0

    def test_daylight_gain(self):
        p = ReceiverPlacement("x", 0.0, daylight_gain=1.2)
        assert p.local_ambient(0.5) == pytest.approx(0.6)
        assert p.local_ambient(0.9) == 1.0  # clipped

    def test_validation(self):
        with pytest.raises(ValueError):
            ReceiverPlacement("x", -1.0)
        with pytest.raises(ValueError):
            ReceiverPlacement("x", 0.0, vertical_drop_m=0.0)


class TestRoom:
    @pytest.fixture(scope="class")
    def samples(self):
        room = RoomSimulation(profile=BlindRampAmbient())
        return room.run(30.0), room

    def test_all_default_desks_linked(self, samples):
        history, _ = samples
        for sample in history:
            for node in sample.nodes:
                assert node.link_ok, node.name

    def test_near_desk_fastest(self, samples):
        history, _ = samples
        for sample in history:
            near = sample.node("desk-under-lamp")
            far = sample.node("desk-corner")
            assert near.throughput_bps >= far.throughput_bps

    def test_led_tracks_fused_ambient(self, samples):
        history, room = samples
        first, last = history[0], history[-1]
        assert last.fused_ambient > first.fused_ambient
        assert last.led < first.led

    def test_controller_keeps_sum(self, samples):
        history, room = samples
        for sample in history:
            assert sample.led + sample.fused_ambient == pytest.approx(
                room.target_sum, abs=0.02)

    def test_aggregate_sums_nodes(self, samples):
        history, _ = samples
        sample = history[0]
        assert sample.aggregate_throughput_bps == pytest.approx(
            sum(n.throughput_bps for n in sample.nodes))

    def test_unknown_node_lookup(self, samples):
        history, _ = samples
        with pytest.raises(KeyError):
            history[0].node("nope")

    def test_deterministic_per_seed(self):
        a = RoomSimulation(seed=5, profile=StaticAmbient(0.4)).run(5.0)
        b = RoomSimulation(seed=5, profile=StaticAmbient(0.4)).run(5.0)
        assert [s.led for s in a] == [s.led for s in b]

    def test_far_desk_outside_beam_is_down(self):
        room = RoomSimulation(
            placements=(ReceiverPlacement("far-desk", 3.0),),
            profile=StaticAmbient(0.4))
        sample = room.step(0.0)
        assert not sample.nodes[0].link_ok

    def test_window_desk_senses_more_daylight(self):
        room = RoomSimulation(profile=StaticAmbient(0.5))
        sample = room.step(0.0)
        assert sample.node("desk-window").ambient > \
            sample.node("desk-corner").ambient

    def test_needs_receivers(self):
        with pytest.raises(ValueError):
            RoomSimulation(placements=())

    def test_tick_validation(self):
        with pytest.raises(ValueError):
            RoomSimulation().run(1.0, tick_s=0.0)
