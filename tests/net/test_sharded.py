"""Sharded multicell kernel: degeneracy parity, determinism, faults."""

import pytest

from repro.des import journals_equal
from repro.net import FaultPlan, default_network, merge_journals
from repro.net.sharded import run_sharded


def network(**kwargs):
    return default_network(rows=2, cols=2, n_nodes=4, seed=29, **kwargs)


def fleet(**kwargs):
    return default_network(rows=4, cols=4, n_nodes=8, seed=7, **kwargs)


class TestDegeneracy:
    def test_regions_1_matches_unsharded_bit_for_bit(self):
        unsharded = network().run(30.0)
        sharded = run_sharded(network(), 30.0)
        assert journals_equal(unsharded.journal, sharded.journal)
        assert unsharded.journal.digest() == sharded.journal.digest()
        assert unsharded.metrics() == sharded.metrics()
        assert len(sharded.shards) == 1

    def test_indexed_path_matches_the_all_pairs_baseline(self):
        indexed = network().run(30.0)
        allpairs = network(use_spatial_index=False).run(30.0)
        assert journals_equal(indexed.journal, allpairs.journal)
        assert indexed.metrics() == allpairs.metrics()

    def test_parity_holds_under_a_time_varying_ambient(self):
        # Regression guard: with a ramping ambient the per-cell dimming
        # requests diverge, which is exactly where a designer whose
        # memo were shared across cells would leak one cell's design
        # into another's (the memo key quantizes the request).
        from repro.lighting.ambient import BlindRampAmbient

        kw = dict(profile=BlindRampAmbient(duration_s=30.0))
        indexed = default_network(rows=2, cols=2, n_nodes=4, seed=2018,
                                  **kw).run(30.0)
        allpairs = default_network(rows=2, cols=2, n_nodes=4, seed=2018,
                                   use_spatial_index=False, **kw).run(30.0)
        assert indexed.journal.digest() == allpairs.journal.digest()
        assert indexed.metrics() == allpairs.metrics()

    def test_merge_of_a_single_shard_is_the_identity(self):
        result = run_sharded(network(), 10.0)
        merged = merge_journals(result.shards)
        assert journals_equal(merged, result.journal)
        assert merged.digest() == result.journal.digest()


class TestShardedFleet:
    def test_same_seed_same_journals_and_metrics(self):
        first = fleet(regions=4).run(20.0)
        second = fleet(regions=4).run(20.0)
        assert journals_equal(first.journal, second.journal)
        assert first.metrics() == second.metrics()
        assert len(first.shards) == 4
        assert sum(len(s) for s in first.shards) == len(first.journal)
        for a, b in zip(first.shards, second.shards):
            assert a.digest() == b.digest()

    def test_aggregates_track_the_unsharded_run(self):
        sharded = fleet(regions=4).run(20.0)
        unsharded = fleet().run(20.0)
        assert sharded.total_handovers == unsharded.total_handovers
        sharded_m, unsharded_m = sharded.metrics(), unsharded.metrics()
        assert (sharded_m["reports_delivered"]
                == unsharded_m["reports_delivered"])
        assert (sharded_m["reports_lost"] == unsharded_m["reports_lost"])
        # Cross-region interference is folded in as a pre-summed
        # variance instead of per-interferer terms, so goodput agrees
        # closely but not bit-for-bit.
        assert sharded_m["aggregate_throughput_bps"] == pytest.approx(
            unsharded_m["aggregate_throughput_bps"], rel=1e-3)

    def test_faults_propagate_into_regions(self):
        faults = FaultPlan(node_downtime=(("node-00", 2.0, 6.0),),
                           uplink_outages=((3.0, 5.0),))
        sharded = fleet(regions=4, faults=faults).run(10.0)
        unsharded = fleet(faults=faults).run(10.0)
        sharded_m, unsharded_m = sharded.metrics(), unsharded.metrics()
        assert sharded_m["reports_lost"] > 0
        assert sharded_m["reports_lost"] == unsharded_m["reports_lost"]
        down = [e for e in sharded.journal.entries
                if e.kind == "sense" and e.actor == "node-00"
                and 2.0 < e.time < 6.0]
        assert down == []


class TestValidation:
    def test_regions_must_fit_the_grid(self):
        with pytest.raises(ValueError):
            network(regions=5)
        with pytest.raises(ValueError):
            network(regions=0)

    def test_sharding_requires_the_spatial_index(self):
        with pytest.raises(ValueError):
            fleet(regions=2, use_spatial_index=False)

    def test_sharding_requires_a_finite_cull_radius(self):
        from repro.phy import OpticalFrontEnd, calibrated_channel

        wide = calibrated_channel(optics=OpticalFrontEnd(rx_fov_deg=90.0))
        sim = fleet(regions=2, channel=wide)
        with pytest.raises(ValueError, match="FoV"):
            sim.run(5.0)
