"""The Wi-Fi ambient-report feedback plane."""

import numpy as np
import pytest

from repro.link import WifiUplink
from repro.net import Aggregation, AmbientReport, FeedbackCollector


def collector(**kwargs) -> FeedbackCollector:
    defaults = dict(uplink=WifiUplink(latency_s=1e-3, jitter_s=0.0))
    defaults.update(kwargs)
    return FeedbackCollector(**defaults)


class TestDelivery:
    def test_report_arrives_after_latency(self, rng):
        c = collector()
        c.submit(AmbientReport("a", 0.4, sensed_at=0.0), rng)
        assert c.ambient_estimate(0.0005) is None  # still in flight
        assert c.ambient_estimate(0.002) == pytest.approx(0.4)

    def test_lost_report_never_arrives(self, rng):
        c = collector(uplink=WifiUplink(loss_probability=0.999999))
        c.submit(AmbientReport("a", 0.4, sensed_at=0.0), rng)
        assert c.ambient_estimate(10.0) is None

    def test_fallback_used_when_empty(self, rng):
        c = collector()
        assert c.ambient_estimate(1.0, fallback=0.7) == 0.7

    def test_stale_reports_dropped(self, rng):
        c = collector(staleness_s=2.0)
        c.submit(AmbientReport("a", 0.4, sensed_at=0.0), rng)
        assert c.ambient_estimate(1.0) == pytest.approx(0.4)
        assert c.ambient_estimate(5.0, fallback=0.9) == 0.9

    def test_fresher_sensing_wins_per_node(self, rng):
        c = collector()
        c.submit(AmbientReport("a", 0.2, sensed_at=0.0), rng)
        c.submit(AmbientReport("a", 0.6, sensed_at=1.0), rng)
        assert c.ambient_estimate(2.0) == pytest.approx(0.6)

    def test_known_nodes(self, rng):
        c = collector()
        c.submit(AmbientReport("a", 0.2, sensed_at=0.0), rng)
        c.submit(AmbientReport("b", 0.4, sensed_at=0.0), rng)
        c.fresh_reports(1.0)
        assert set(c.known_nodes()) == {"a", "b"}


class TestAggregation:
    def _loaded(self, rng, policy) -> FeedbackCollector:
        c = collector(aggregation=policy)
        c.submit(AmbientReport("a", 0.2, sensed_at=0.0), rng)
        c.submit(AmbientReport("b", 0.6, sensed_at=0.5), rng)
        return c

    def test_mean(self, rng):
        c = self._loaded(rng, Aggregation.MEAN)
        assert c.ambient_estimate(1.0) == pytest.approx(0.4)

    def test_min(self, rng):
        c = self._loaded(rng, Aggregation.MIN)
        assert c.ambient_estimate(1.0) == pytest.approx(0.2)

    def test_max(self, rng):
        c = self._loaded(rng, Aggregation.MAX)
        assert c.ambient_estimate(1.0) == pytest.approx(0.6)

    def test_latest(self, rng):
        c = self._loaded(rng, Aggregation.LATEST)
        assert c.ambient_estimate(1.0) == pytest.approx(0.6)


class TestValidation:
    def test_report_value_range(self):
        with pytest.raises(ValueError):
            AmbientReport("a", 1.4, 0.0)

    def test_staleness_positive(self):
        with pytest.raises(ValueError):
            FeedbackCollector(staleness_s=0.0)
