"""The Wi-Fi ambient-report feedback plane."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.link import WifiUplink
from repro.net import Aggregation, AmbientReport, FeedbackCollector


def collector(**kwargs) -> FeedbackCollector:
    defaults = dict(uplink=WifiUplink(latency_s=1e-3, jitter_s=0.0))
    defaults.update(kwargs)
    return FeedbackCollector(**defaults)


class TestDelivery:
    def test_report_arrives_after_latency(self, rng):
        c = collector()
        c.submit(AmbientReport("a", 0.4, sensed_at=0.0), rng)
        assert c.ambient_estimate(0.0005) is None  # still in flight
        assert c.ambient_estimate(0.002) == pytest.approx(0.4)

    def test_lost_report_never_arrives(self, rng):
        c = collector(uplink=WifiUplink(loss_probability=0.999999))
        c.submit(AmbientReport("a", 0.4, sensed_at=0.0), rng)
        assert c.ambient_estimate(10.0) is None

    def test_fallback_used_when_empty(self, rng):
        c = collector()
        assert c.ambient_estimate(1.0, fallback=0.7) == 0.7

    def test_stale_reports_dropped(self, rng):
        c = collector(staleness_s=2.0)
        c.submit(AmbientReport("a", 0.4, sensed_at=0.0), rng)
        assert c.ambient_estimate(1.0) == pytest.approx(0.4)
        assert c.ambient_estimate(5.0, fallback=0.9) == 0.9

    def test_fresher_sensing_wins_per_node(self, rng):
        c = collector()
        c.submit(AmbientReport("a", 0.2, sensed_at=0.0), rng)
        c.submit(AmbientReport("a", 0.6, sensed_at=1.0), rng)
        assert c.ambient_estimate(2.0) == pytest.approx(0.6)

    def test_known_nodes(self, rng):
        c = collector()
        c.submit(AmbientReport("a", 0.2, sensed_at=0.0), rng)
        c.submit(AmbientReport("b", 0.4, sensed_at=0.0), rng)
        c.fresh_reports(1.0)
        assert set(c.known_nodes()) == {"a", "b"}

    def test_report_aged_exactly_staleness_is_still_fresh(self, rng):
        # The cut-off is inclusive: age == staleness_s keeps the report.
        c = collector(staleness_s=2.0)
        c.submit(AmbientReport("a", 0.4, sensed_at=0.0), rng)
        assert c.ambient_estimate(2.0) == pytest.approx(0.4)
        assert c.ambient_estimate(2.0 + 1e-9, fallback=0.9) == 0.9

    def test_out_of_order_delivery_keeps_freshest_sensing(self, rng):
        c = collector()
        # The older sensing arrives *after* the newer one.
        c.deliver(AmbientReport("a", 0.8, sensed_at=1.0), arrival=1.001)
        c.deliver(AmbientReport("a", 0.2, sensed_at=0.0), arrival=1.5)
        assert c.ambient_estimate(2.0) == pytest.approx(0.8)

    def test_in_flight_reports_drain_in_arrival_order(self, rng):
        c = collector(uplink=WifiUplink(latency_s=5e-3, jitter_s=4e-3))
        c.submit(AmbientReport("a", 0.3, sensed_at=0.0), rng)
        c.submit(AmbientReport("a", 0.7, sensed_at=0.5), rng)
        # Whatever order the jittered arrivals land in, the freshest
        # sensing wins once both are down.
        assert c.ambient_estimate(1.0) == pytest.approx(0.7)


class TestDeliveryProperties:
    @settings(max_examples=60, deadline=None)
    @given(latencies=st.lists(
        st.floats(min_value=0.0, max_value=0.5,
                  allow_nan=False, allow_infinity=False),
        min_size=1, max_size=12))
    def test_freshest_sensing_wins_under_any_latency_pattern(
            self, latencies):
        """However Wi-Fi delays and reorders reports, the estimate after
        everything has landed is the freshest-sensed value."""
        c = FeedbackCollector(uplink=WifiUplink(latency_s=0.0, jitter_s=0.0),
                              staleness_s=1e6)
        reports = [AmbientReport("n", (i % 10) / 10.0, sensed_at=float(i))
                   for i in range(len(latencies))]
        for report, latency in zip(reports, latencies):
            c.deliver(report, arrival=report.sensed_at + latency)
        horizon = max(r.sensed_at for r in reports) + max(latencies) + 1.0
        freshest = max(reports, key=lambda r: r.sensed_at)
        assert c.ambient_estimate(horizon) == pytest.approx(freshest.value)

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2 ** 31 - 1))
    def test_estimate_stays_in_unit_interval(self, seed):
        rng = np.random.default_rng(seed)
        c = FeedbackCollector(uplink=WifiUplink(latency_s=2e-3,
                                                jitter_s=2e-3))
        for i in range(20):
            c.submit(AmbientReport(f"n{i % 4}", float(rng.random()),
                                   sensed_at=0.1 * i), rng)
        estimate = c.ambient_estimate(5.0)
        assert estimate is None or 0.0 <= estimate <= 1.0


class TestAggregation:
    def _loaded(self, rng, policy) -> FeedbackCollector:
        c = collector(aggregation=policy)
        c.submit(AmbientReport("a", 0.2, sensed_at=0.0), rng)
        c.submit(AmbientReport("b", 0.6, sensed_at=0.5), rng)
        return c

    def test_mean(self, rng):
        c = self._loaded(rng, Aggregation.MEAN)
        assert c.ambient_estimate(1.0) == pytest.approx(0.4)

    def test_min(self, rng):
        c = self._loaded(rng, Aggregation.MIN)
        assert c.ambient_estimate(1.0) == pytest.approx(0.2)

    def test_max(self, rng):
        c = self._loaded(rng, Aggregation.MAX)
        assert c.ambient_estimate(1.0) == pytest.approx(0.6)

    def test_latest(self, rng):
        c = self._loaded(rng, Aggregation.LATEST)
        assert c.ambient_estimate(1.0) == pytest.approx(0.6)


class TestChurn:
    def test_forget_drops_delivered_state(self, rng):
        c = collector(aggregation=Aggregation.MAX)
        c.submit(AmbientReport("a", 0.2, sensed_at=0.0), rng)
        c.submit(AmbientReport("b", 0.9, sensed_at=0.0), rng)
        assert c.ambient_estimate(1.0) == pytest.approx(0.9)
        assert c.forget("b")
        assert c.ambient_estimate(1.0) == pytest.approx(0.2)
        assert set(c.known_nodes()) == {"a"}

    def test_forget_discards_in_flight_reports(self, rng):
        c = collector()
        c.submit(AmbientReport("a", 0.4, sensed_at=0.0), rng)
        assert c.forget("a")  # still in flight — must not land later
        assert c.ambient_estimate(1.0) is None

    def test_forget_unknown_node_is_a_noop(self, rng):
        c = collector()
        assert not c.forget("ghost")

    def test_max_nodes_purges_stale_entries_first(self, rng):
        c = collector(max_nodes=2, staleness_s=2.0)
        c.submit(AmbientReport("old", 0.1, sensed_at=0.0), rng)
        c.submit(AmbientReport("b", 0.5, sensed_at=5.0), rng)
        c.submit(AmbientReport("c", 0.7, sensed_at=5.1), rng)
        c.fresh_reports(6.0)  # "old" is stale: purged, b and c kept
        assert set(c.known_nodes()) == {"b", "c"}

    def test_max_nodes_evicts_oldest_sensed(self, rng):
        c = collector(max_nodes=2, staleness_s=100.0)
        for i, node in enumerate(("a", "b", "c")):
            c.submit(AmbientReport(node, 0.5, sensed_at=float(i)), rng)
        c.fresh_reports(4.0)  # nothing stale: the oldest sensing goes
        assert set(c.known_nodes()) == {"b", "c"}

    def test_unbounded_collector_never_evicts(self, rng):
        c = collector(staleness_s=100.0)
        for i in range(50):
            c.submit(AmbientReport(f"n{i}", 0.5, sensed_at=float(i)), rng)
        assert len(list(c.fresh_reports(60.0))) == 50


class TestValidation:
    def test_report_value_range(self):
        with pytest.raises(ValueError):
            AmbientReport("a", 1.4, 0.0)

    def test_staleness_positive(self):
        with pytest.raises(ValueError):
            FeedbackCollector(staleness_s=0.0)

    def test_max_nodes_positive_when_set(self):
        with pytest.raises(ValueError):
            FeedbackCollector(max_nodes=0)
