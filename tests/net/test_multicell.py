"""The multi-luminaire network simulator: the PR's acceptance pins.

Determinism (same seed → bit-identical journal, identical metrics),
handover physics (static nodes never hand over, a boundary-crossing
trace does), interference monotonicity at network level, and fault
injection all get pinned here.
"""

import pytest

from repro.lighting import BlindRampAmbient, StaticAmbient
from repro.net import AmbientField, FaultPlan, LinearTrace, MobileNode, \
    MulticellSimulation, StaticPosition, default_network, luminaire_grid, \
    strongest_cell
from repro.net.mobility import RandomWaypoint


class TestLuminaireGrid:
    def test_layout_and_names(self):
        grid = luminaire_grid(2, 3, spacing_m=2.0)
        assert len(grid) == 6
        assert grid[0].name == "cell-r0c0"
        assert (grid[0].x_m, grid[0].y_m) == (1.0, 1.0)
        assert grid[-1].name == "cell-r1c2"
        assert (grid[-1].x_m, grid[-1].y_m) == (5.0, 3.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            luminaire_grid(0, 2)
        with pytest.raises(ValueError):
            luminaire_grid(1, 1, spacing_m=0.0)


class TestStrongestCell:
    def test_picks_the_strongest(self):
        gains = {"a": 1.0, "b": 3.0, "c": 2.0}
        assert strongest_cell(gains, serving=None) == "b"

    def test_ties_break_by_name(self):
        assert strongest_cell({"b": 1.0, "a": 1.0}, serving=None) == "a"

    def test_hysteresis_suppresses_ping_pong(self):
        gains = {"a": 1.0, "b": 1.2}
        # b is stronger, but not by 2 dB (x1.585) — stay on a.
        assert strongest_cell(gains, serving="a", hysteresis_db=2.0) == "a"
        assert strongest_cell({"a": 1.0, "b": 1.7}, serving="a",
                              hysteresis_db=2.0) == "b"

    def test_exact_hysteresis_boundary_stays_put(self):
        # A challenger at *exactly* the hysteresis margin does not win:
        # the comparison is strict, so flapping needs a real advantage.
        margin = 10.0 ** (2.0 / 10.0)
        assert strongest_cell({"a": 1.0, "b": margin}, serving="a",
                              hysteresis_db=2.0) == "a"
        nudged = margin * (1.0 + 1e-12)
        assert strongest_cell({"a": 1.0, "b": nudged}, serving="a",
                              hysteresis_db=2.0) == "b"

    def test_out_of_coverage_returns_none(self):
        assert strongest_cell({"a": 0.0}, serving="a") is None
        assert strongest_cell({}, serving=None) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            strongest_cell({"a": 1.0}, None, hysteresis_db=-1.0)


def small_network(**kwargs):
    defaults = dict(
        luminaires=luminaire_grid(1, 2, spacing_m=2.5),
        nodes=(MobileNode("n0", StaticPosition(1.25, 1.25)),),
        seed=5,
    )
    defaults.update(kwargs)
    return MulticellSimulation(**defaults)


class TestDeterminism:
    def test_same_instance_reruns_identically(self):
        sim = small_network()
        first = sim.run(12.0)
        second = sim.run(12.0)
        assert first.journal == second.journal
        assert first.journal.digest() == second.journal.digest()
        assert first.metrics() == second.metrics()

    def test_equal_scenarios_agree(self):
        first = default_network(rows=2, cols=2, n_nodes=3, seed=77).run(10.0)
        second = default_network(rows=2, cols=2, n_nodes=3, seed=77).run(10.0)
        assert first.journal == second.journal
        assert first.metrics() == second.metrics()

    def test_different_seeds_diverge(self):
        first = default_network(n_nodes=3, seed=1).run(10.0)
        second = default_network(n_nodes=3, seed=2).run(10.0)
        assert first.journal != second.journal


class TestHandover:
    def test_static_receiver_never_hands_over(self):
        result = small_network().run(20.0)
        assert result.total_handovers == 0
        assert result.journal.count("handover") == 0
        assert result.journal.count("associate") == 1

    def test_boundary_crossing_trace_hands_over(self):
        # Walk from under cell-r0c0 (x=1.25) to under cell-r0c1
        # (x=3.75) at 0.2 m/s; the midline is crossed around t=6.25 s.
        walker = MobileNode("walker", LinearTrace(
            1.25, 1.25, velocity_x_mps=0.2, end_t_s=15.0))
        result = small_network(nodes=(walker,)).run(25.0)
        assert result.total_handovers > 0
        handover = result.journal.of_kind("handover")[0]
        assert handover.get("source") == "cell-r0c0"
        assert handover.get("target") == "cell-r0c1"
        assert result.node("walker").handovers == result.total_handovers

    def test_mobile_fleet_reports_positive_goodput(self):
        result = default_network(rows=2, cols=2, n_nodes=4, seed=3).run(15.0)
        assert result.aggregate_throughput_bps > 0.0
        for node in result.nodes:
            assert node.samples > 0


class TestInterferenceAtNetworkLevel:
    def test_neighbour_cell_never_helps_a_static_node(self):
        node = MobileNode("n0", StaticPosition(1.25, 1.25))
        alone = MulticellSimulation(
            luminaires=luminaire_grid(1, 1, spacing_m=2.5),
            nodes=(node,), seed=5).run(15.0)
        crowded = small_network(nodes=(node,)).run(15.0)
        assert crowded.node("n0").mean_goodput_bps \
            <= alone.node("n0").mean_goodput_bps + 1e-9


class TestFaultInjection:
    def test_node_downtime_shows_as_down_samples(self):
        sim = small_network(
            faults=FaultPlan(node_downtime=(("n0", 5.0, 10.0),)))
        result = sim.run(20.0)
        report = result.node("n0")
        assert report.down_samples == 5
        assert result.journal.count("node-down") == 1
        assert result.journal.count("node-up") == 1
        assert result.journal.count("link-down") == 5
        # The node re-associates after coming back.
        assert result.journal.count("associate") == 2

    def test_uplink_outage_loses_reports(self):
        sim = small_network(
            faults=FaultPlan(uplink_outages=((2.0, 8.0),)))
        result = sim.run(15.0)
        lost = result.journal.of_kind("report-lost")
        assert lost
        assert all(e.get("reason") == "outage" for e in lost)
        assert all(2.0 <= e.time < 8.0 for e in lost)
        assert result.journal.count("report-arrival") > 0

    def test_zone_override_only_affects_its_zone(self):
        ambient = AmbientField(
            base=StaticAmbient(0.2),
            zone_overrides=(("cell-r0c1", StaticAmbient(0.9)),))
        nodes = (MobileNode("left", StaticPosition(1.25, 1.25)),
                 MobileNode("right", StaticPosition(3.75, 1.25)))
        result = small_network(nodes=nodes, ambient=ambient).run(10.0)
        left = result.journal.of_kind("sense", actor="left")
        right = result.journal.of_kind("sense", actor="right")
        assert all(e.get("ambient") == pytest.approx(0.2) for e in left)
        assert all(e.get("ambient") == pytest.approx(0.9) for e in right)

    def test_fault_plan_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(node_downtime=(("n0", 5.0, 5.0),))
        with pytest.raises(ValueError):
            FaultPlan(uplink_outages=((-1.0, 2.0),))
        with pytest.raises(ValueError):
            small_network(faults=FaultPlan(
                node_downtime=(("ghost", 1.0, 2.0),)))


class TestAdaptation:
    def test_blind_ramp_drives_per_cell_adaptation(self):
        ambient = AmbientField(base=BlindRampAmbient(duration_s=30.0))
        result = small_network(ambient=ambient).run(30.0)
        assert result.total_adjustments > 0
        for cell in result.cells:
            assert 0.0 <= cell.final_led <= 1.0
            assert cell.adaptation_rate_hz == pytest.approx(
                cell.adjustments / 30.0)

    def test_metrics_dict_is_complete(self):
        result = small_network().run(5.0)
        metrics = result.metrics()
        assert set(metrics) == {
            "aggregate_throughput_bps", "total_handovers",
            "total_adjustments", "reports_delivered", "reports_lost"}
        with pytest.raises(KeyError):
            result.node("ghost")
        with pytest.raises(KeyError):
            result.cell("ghost")


class TestValidation:
    def test_constructor_guards(self):
        with pytest.raises(ValueError):
            MulticellSimulation(luminaires=())
        with pytest.raises(ValueError):
            MulticellSimulation(nodes=())
        with pytest.raises(ValueError):
            small_network(drop_m=0.0)
        with pytest.raises(ValueError):
            small_network(tick_s=0.0)
        with pytest.raises(ValueError):
            small_network(hysteresis_db=-1.0)
        dup = (MobileNode("n0", StaticPosition(1.0, 1.0)),
               MobileNode("n0", StaticPosition(2.0, 1.0)))
        with pytest.raises(ValueError):
            small_network(nodes=dup)
        with pytest.raises(ValueError):
            small_network().run(0.0)
        with pytest.raises(ValueError):
            default_network(n_nodes=0)

    def test_default_network_scales_the_floor(self):
        sim = default_network(rows=3, cols=2, spacing_m=2.0, n_nodes=2)
        assert len(sim.luminaires) == 6
        walker = sim.nodes[0].mobility
        assert isinstance(walker, RandomWaypoint)
        assert walker.width_m == pytest.approx(4.0)
        assert walker.depth_m == pytest.approx(6.0)
