"""Spatial index: brute-force parity, exact culling, order preservation."""

import math

import pytest

from repro.net import LuminaireIndex, luminaire_grid
from repro.net.spatial import _fov_radius
from repro.phy import LinkGeometry, OpticalFrontEnd

OPTICS = OpticalFrontEnd()  # 60 degree FoV: finite cull radius
DROP = 2.1


def brute_within(luminaires, position, radius):
    x, y = position
    return [lum for lum in luminaires
            if math.hypot(x - lum.x_m, y - lum.y_m) <= radius]


def brute_nearest(luminaires, position):
    x, y = position
    return min(luminaires,
               key=lambda lum: (math.hypot(x - lum.x_m, y - lum.y_m),
                                lum.name))


def probe_points(rows, cols, spacing):
    for ix in range(2 * cols + 2):
        for iy in range(2 * rows + 2):
            yield (ix * spacing / 2.0 - spacing / 2.0,
                   iy * spacing / 2.0 - spacing / 2.0)


class TestWithin:
    def test_matches_brute_force_on_a_grid(self):
        luminaires = luminaire_grid(5, 7, 2.5)
        index = LuminaireIndex(luminaires, DROP, OPTICS)
        for point in probe_points(5, 7, 2.5):
            assert index.within(point) == brute_within(
                luminaires, point, index.radius)

    def test_preserves_original_order(self):
        luminaires = luminaire_grid(4, 4, 1.0)
        index = LuminaireIndex(luminaires, DROP, OPTICS)
        order = {lum.name: i for i, lum in enumerate(luminaires)}
        nearby = index.within((2.0, 2.0))
        assert len(nearby) > 2
        assert [order[lum.name] for lum in nearby] == sorted(
            order[lum.name] for lum in nearby)

    def test_everything_outside_the_radius_has_zero_gain(self):
        luminaires = luminaire_grid(6, 6, 3.0)
        index = LuminaireIndex(luminaires, DROP, OPTICS)
        for point in probe_points(6, 6, 3.0):
            kept = {lum.name for lum in index.within(point)}
            for lum in luminaires:
                if lum.name in kept:
                    continue
                offset = math.hypot(point[0] - lum.x_m, point[1] - lum.y_m)
                gain = OPTICS.channel_gain(
                    LinkGeometry.from_offsets(offset, DROP))
                assert gain == 0.0

    def test_wide_fov_disables_culling(self):
        luminaires = luminaire_grid(3, 3, 2.0)
        wide = OpticalFrontEnd(rx_fov_deg=90.0)
        index = LuminaireIndex(luminaires, DROP, wide)
        assert math.isinf(index.radius)
        assert index.within((100.0, 100.0)) == list(luminaires)


class TestNearest:
    def test_matches_brute_force_on_a_grid(self):
        luminaires = luminaire_grid(5, 7, 2.5)
        index = LuminaireIndex(luminaires, DROP, OPTICS)
        for point in probe_points(5, 7, 2.5):
            assert index.nearest(point) is brute_nearest(luminaires, point)

    def test_equidistant_ties_break_by_name(self):
        luminaires = luminaire_grid(2, 2, 2.0)
        index = LuminaireIndex(luminaires, DROP, OPTICS)
        # The grid centre is equidistant from all four luminaires.
        assert index.nearest((1.0, 1.0)) is brute_nearest(luminaires,
                                                          (1.0, 1.0))

    def test_far_outside_the_grid(self):
        luminaires = luminaire_grid(3, 3, 2.0)
        index = LuminaireIndex(luminaires, DROP, OPTICS)
        for point in ((-50.0, -50.0), (80.0, 3.0), (3.0, 80.0)):
            assert index.nearest(point) is brute_nearest(luminaires, point)


class TestRadii:
    def test_fov_radius_is_the_zero_gain_boundary(self):
        radius = _fov_radius(DROP, OPTICS)
        just_inside = radius / (1.0 + 2e-9)
        gain_inside = OPTICS.channel_gain(
            LinkGeometry.from_offsets(just_inside, DROP))
        gain_outside = OPTICS.channel_gain(
            LinkGeometry.from_offsets(radius * 1.01, DROP))
        assert gain_inside > 0.0
        assert gain_outside == 0.0

    def test_gain_floor_shrinks_the_radius(self):
        luminaires = luminaire_grid(3, 3, 2.0)
        exact = LuminaireIndex(luminaires, DROP, OPTICS)
        floored = LuminaireIndex(luminaires, DROP, OPTICS, gain_floor=1e-7)
        assert floored.radius < exact.radius
        # The boundary gain straddles the floor.
        below = OPTICS.channel_gain(
            LinkGeometry.from_offsets(floored.radius * 1.01, DROP))
        assert below < 1e-7

    def test_validation(self):
        luminaires = luminaire_grid(2, 2, 2.0)
        with pytest.raises(ValueError):
            LuminaireIndex((), DROP, OPTICS)
        with pytest.raises(ValueError):
            LuminaireIndex(luminaires, 0.0, OPTICS)
        with pytest.raises(ValueError):
            LuminaireIndex(luminaires, DROP, OPTICS, gain_floor=-1.0)
