"""Mobility traces: bounds, determinism, query-order independence."""

import math

import pytest

from repro.net import LinearTrace, RandomWaypoint, StaticPosition


class TestStaticPosition:
    def test_never_moves(self):
        node = StaticPosition(1.5, 2.5)
        assert node.position(0.0) == (1.5, 2.5)
        assert node.position(1e6) == (1.5, 2.5)
        assert node.speed(10.0) == pytest.approx(0.0)


class TestLinearTrace:
    def test_constant_velocity(self):
        trace = LinearTrace(0.0, 1.0, velocity_x_mps=0.5,
                            velocity_y_mps=-0.25)
        assert trace.position(0.0) == (0.0, 1.0)
        assert trace.position(4.0) == pytest.approx((2.0, 0.0))
        assert trace.speed(2.0) == pytest.approx(math.hypot(0.5, 0.25),
                                                 rel=1e-6)

    def test_freezes_after_end_time(self):
        trace = LinearTrace(0.0, 0.0, velocity_x_mps=1.0, end_t_s=3.0)
        assert trace.position(3.0) == (3.0, 0.0)
        assert trace.position(100.0) == (3.0, 0.0)

    def test_negative_time_clamps_to_start(self):
        trace = LinearTrace(1.0, 2.0, velocity_x_mps=1.0)
        assert trace.position(-5.0) == (1.0, 2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            LinearTrace(0.0, 0.0, end_t_s=-1.0)


class TestRandomWaypoint:
    def test_stays_inside_the_floor(self):
        walker = RandomWaypoint(5.0, 4.0, seed=11)
        for t in range(0, 600, 3):
            x, y = walker.position(float(t))
            assert 0.0 <= x <= 5.0
            assert 0.0 <= y <= 4.0

    def test_same_seed_same_trace(self):
        a = RandomWaypoint(5.0, 5.0, seed=42)
        b = RandomWaypoint(5.0, 5.0, seed=42)
        for t in (0.0, 1.5, 10.0, 99.9):
            assert a.position(t) == b.position(t)

    def test_different_seeds_diverge(self):
        a = RandomWaypoint(5.0, 5.0, seed=1)
        b = RandomWaypoint(5.0, 5.0, seed=2)
        assert any(a.position(float(t)) != b.position(float(t))
                   for t in range(20))

    def test_query_order_does_not_matter(self):
        forward = RandomWaypoint(6.0, 6.0, seed=7)
        ordered = [forward.position(float(t)) for t in range(0, 40)]
        backward = RandomWaypoint(6.0, 6.0, seed=7)
        reverse = [backward.position(float(t))
                   for t in reversed(range(0, 40))]
        assert ordered == list(reversed(reverse))

    def test_speed_respects_the_configured_range(self):
        walker = RandomWaypoint(50.0, 50.0, speed_min_mps=0.5,
                                speed_max_mps=0.5, pause_s=0.0, seed=3)
        # With a degenerate speed range and no pauses every mid-leg
        # finite-difference speed is exactly 0.5 m/s, except across a
        # waypoint corner, where the chord is shorter.
        speeds = [walker.speed(float(t)) for t in range(5, 100)]
        assert max(speeds) <= 0.5 + 1e-9
        assert any(s > 0.4 for s in speeds)

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomWaypoint(0.0, 5.0)
        with pytest.raises(ValueError):
            RandomWaypoint(5.0, 5.0, speed_min_mps=0.0)
        with pytest.raises(ValueError):
            RandomWaypoint(5.0, 5.0, speed_min_mps=2.0, speed_max_mps=1.0)
        with pytest.raises(ValueError):
            RandomWaypoint(5.0, 5.0, pause_s=-1.0)


class TestForgetBefore:
    def test_trimming_preserves_future_positions(self):
        pristine = RandomWaypoint(6.0, 6.0, seed=7)
        reference = [pristine.position(float(t)) for t in range(0, 300, 2)]
        trimmed = RandomWaypoint(6.0, 6.0, seed=7)
        got = []
        for t in range(0, 300, 2):
            got.append(trimmed.position(float(t)))
            trimmed.forget_before(float(t))
        assert got == reference

    def test_legs_stay_bounded_on_long_monotone_runs(self):
        walker = RandomWaypoint(4.0, 4.0, pause_s=0.5, seed=5)
        peak = 0
        for t in range(0, 5000, 1):
            walker.position(float(t))
            walker.forget_before(float(t))
            peak = max(peak, len(walker._legs))
        untrimmed = RandomWaypoint(4.0, 4.0, pause_s=0.5, seed=5)
        untrimmed.position(5000.0)
        # The trimmed trace holds a handful of live legs; the untrimmed
        # one accumulates the whole history.
        assert peak < 10
        assert len(untrimmed._legs) > 10 * peak

    def test_queries_behind_the_mark_raise(self):
        walker = RandomWaypoint(5.0, 5.0, seed=9)
        walker.position(50.0)
        walker.forget_before(40.0)
        with pytest.raises(ValueError, match="predates forget_before"):
            walker.position(39.9)
        # At or after the mark stays answerable.
        walker.position(40.0)

    def test_mark_is_monotone(self):
        walker = RandomWaypoint(5.0, 5.0, seed=9)
        walker.position(30.0)
        walker.forget_before(20.0)
        walker.forget_before(5.0)  # moving backwards is a no-op
        with pytest.raises(ValueError):
            walker.position(10.0)

    def test_reset_rewinds_and_replays_identically(self):
        walker = RandomWaypoint(6.0, 6.0, seed=13)
        reference = [walker.position(float(t)) for t in range(0, 80)]
        walker.forget_before(60.0)
        walker.reset()
        assert [walker.position(float(t)) for t in range(0, 80)] == reference

    def test_base_model_hooks_are_noops(self):
        desk = StaticPosition(1.0, 1.0)
        desk.forget_before(100.0)
        desk.reset()
        assert desk.position(0.0) == (1.0, 1.0)


class TestRetire:
    """The churn contract: leave a room, rejoin, walk the same floor."""

    def test_retire_is_reset_plus_forget(self):
        retired = RandomWaypoint(6.0, 6.0, seed=21)
        manual = RandomWaypoint(6.0, 6.0, seed=21)
        retired.position(120.0)
        retired.retire(80.0)
        manual.position(120.0)
        manual.reset()
        manual.forget_before(80.0)
        for t in range(80, 160, 4):
            assert retired.position(float(t)) == manual.position(float(t))

    def test_rejoining_node_matches_a_node_that_never_left(self):
        fresh = RandomWaypoint(5.0, 4.0, seed=33)
        reference = [fresh.position(float(t)) for t in range(200, 400, 5)]
        churned = RandomWaypoint(5.0, 4.0, seed=33)
        churned.position(150.0)          # walked a while...
        churned.retire(200.0)            # ...then left the room
        assert [churned.position(float(t))
                for t in range(200, 400, 5)] == reference

    def test_churn_cannot_resurrect_trimmed_legs(self):
        # Regenerating the covered prefix after a retire must not
        # re-buffer it: the rejoined trace holds only live legs.
        walker = RandomWaypoint(4.0, 4.0, pause_s=0.5, seed=5)
        walker.position(2000.0)
        walker.retire(2000.0)
        walker.position(2100.0)
        untrimmed = RandomWaypoint(4.0, 4.0, pause_s=0.5, seed=5)
        untrimmed.position(2100.0)
        assert 4 * len(walker._legs) < len(untrimmed._legs)

    def test_queries_before_the_departure_raise(self):
        walker = RandomWaypoint(5.0, 5.0, seed=9)
        walker.position(50.0)
        walker.retire(60.0)
        with pytest.raises(ValueError, match="predates forget_before"):
            walker.position(59.9)
        walker.position(60.0)  # the rejoin instant stays answerable

    def test_repeated_churn_cycles_stay_consistent(self):
        fresh = RandomWaypoint(6.0, 3.0, seed=17)
        churned = RandomWaypoint(6.0, 3.0, seed=17)
        for rejoin in (50.0, 130.0, 400.0):
            churned.retire(rejoin)
            for dt in (0.0, 3.0, 9.5):
                assert churned.position(rejoin + dt) \
                    == fresh.position(rejoin + dt)
