"""Campaigns end to end: determinism, isolation, shrinking, self-test.

The defect-armed tests run small parallel campaigns whose workers
genuinely die (``os._exit``) or stall (sleep loop) — the crash
isolation under test is the real mechanism, not a mock.
"""

import json

import pytest

from repro.fuzz import (
    CampaignConfig,
    replay_params,
    run_campaign,
    self_test,
)
from repro.fuzz.oracles import DEFECT_ENV
from repro.sim.sweep import SweepRunner


class TestCampaignDeterminism:
    def test_clean_tree_zero_findings(self):
        report = run_campaign(CampaignConfig(seed=0, budget=24))
        assert report.clean
        assert report.executed == 24
        assert report.by_status == {"ok": 24}
        assert sum(report.by_oracle.values()) == 24

    def test_digest_is_jobs_invariant(self):
        serial = run_campaign(CampaignConfig(seed=1, budget=16,
                                             oracles=("codec", "design",
                                                      "roundtrip")))
        parallel = run_campaign(CampaignConfig(seed=1, budget=16, jobs=2,
                                               chunk=4,
                                               oracles=("codec", "design",
                                                        "roundtrip")))
        assert serial.digest == parallel.digest

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CampaignConfig(budget=-1)
        with pytest.raises(ValueError):
            CampaignConfig(oracles=("bogus",))
        with pytest.raises(ValueError):
            CampaignConfig(oracles=())
        with pytest.raises(ValueError):
            CampaignConfig(timeout_s=0.0)


class TestFindingsPipeline:
    def test_fail_finding_is_shrunk_and_journaled(self, monkeypatch,
                                                  tmp_path):
        monkeypatch.setenv(DEFECT_ENV, "codec-misdecode")
        journal = tmp_path / "findings.jsonl"
        report = run_campaign(CampaignConfig(
            seed=0, budget=40, oracles=("codec",),
            findings_path=str(journal)))
        assert not report.clean
        finding = report.findings[0]
        assert finding.status == "fail"
        assert finding.shrunk is not None
        assert finding.minimal_params["n"] == 12
        assert finding.minimal_params["n_symbols"] == 24
        lines = [json.loads(line)
                 for line in journal.read_text().splitlines()]
        assert len(lines) == len(report.findings)
        assert lines[0]["case"]["oracle"] == "codec"
        assert lines[0]["shrunk"]["params"] == finding.minimal_params

    def test_crash_is_isolated_not_fatal(self, monkeypatch):
        monkeypatch.setenv(DEFECT_ENV, "crash")
        report = run_campaign(CampaignConfig(
            seed=0, budget=10, jobs=2, chunk=5, oracles=("codec",),
            timeout_s=10.0))
        assert report.executed == 10
        assert report.by_status.get("crash", 0) >= 1
        assert report.by_status.get("ok", 0) >= 1  # survivors completed
        crash = next(f for f in report.findings if f.status == "crash")
        # Isolated shrinking still reduced toward the n >= 12 trigger.
        assert crash.minimal_params["n"] >= 12

    def test_hang_is_deadlined_not_fatal(self, monkeypatch):
        monkeypatch.setenv(DEFECT_ENV, "hang")
        report = run_campaign(CampaignConfig(
            seed=0, budget=4, jobs=2, chunk=2, oracles=("codec",),
            timeout_s=1.0))
        assert report.executed == 4
        assert report.by_status.get("hang", 0) >= 1

    def test_replay_of_a_minimal_repro_is_bit_identical(self, monkeypatch):
        monkeypatch.setenv(DEFECT_ENV, "codec-misdecode")
        report = run_campaign(CampaignConfig(seed=0, budget=40,
                                             oracles=("codec",)))
        minimal = report.findings[0].minimal_params
        first, digest_a = replay_params("codec", minimal)
        second, digest_b = replay_params("codec", minimal)
        assert first.status == "fail"
        assert first.as_dict() == second.as_dict()
        assert digest_a == digest_b


class TestSelfTest:
    def test_passes_on_the_shipped_tree(self):
        report = self_test(budget=48)
        assert report.passed, report.detail
        assert report.minimal_params["n"] == 12
        assert report.minimal_params["n_symbols"] == 24

    def test_restores_the_environment(self, monkeypatch):
        import os
        monkeypatch.delenv(DEFECT_ENV, raising=False)
        self_test(budget=40)
        assert DEFECT_ENV not in os.environ


def _identity(point):
    return point


def _die_on_negative(point):
    import os
    if point < 0:
        os._exit(13)
    return point * 2


class TestMapGuarded:
    def test_serial_passthrough(self):
        runner = SweepRunner(jobs=None)
        assert runner.map_guarded(_identity, [1, 2, 3]) == \
            [("ok", 1), ("ok", 2), ("ok", 3)]

    def test_healthy_parallel_batch(self):
        runner = SweepRunner(jobs=2)
        assert runner.map_guarded(_die_on_negative, [1, 2, 3, 4]) == \
            [("ok", 2), ("ok", 4), ("ok", 6), ("ok", 8)]

    def test_worker_death_names_the_culprit(self):
        runner = SweepRunner(jobs=2)
        guarded = runner.map_guarded(_die_on_negative, [1, -1, 3])
        assert guarded[0] == ("ok", 2)
        assert guarded[1][0] == "crash"
        assert guarded[2] == ("ok", 6)
