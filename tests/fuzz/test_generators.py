"""Case generation: pure in (seed, index), validated, canonical."""

import json

import pytest

from repro.fuzz import (
    DEFAULT_WEIGHTS,
    ORACLES,
    FuzzCase,
    case_rng,
    generate_case,
    generate_cases,
)


class TestDerivation:
    def test_pure_in_seed_and_index(self):
        assert generate_case(7, 3) == generate_case(7, 3)

    def test_independent_of_budget(self):
        """Case i is the same whether generated alone or in a batch."""
        batch = generate_cases(5, 20)
        assert batch[13] == generate_case(5, 13)

    def test_different_indices_differ(self):
        cases = generate_cases(0, 30)
        assert len({case.canonical() for case in cases}) == 30

    def test_different_seeds_differ(self):
        assert generate_case(0, 4) != generate_case(1, 4)

    def test_params_are_json_roundtrippable(self):
        for case in generate_cases(3, 25):
            assert json.loads(case.canonical()) == case.as_dict()

    def test_case_rng_rejects_negative_index(self):
        with pytest.raises(ValueError):
            case_rng(0, -1)


class TestOracleMix:
    def test_every_oracle_appears_in_a_long_run(self):
        names = {case.oracle for case in generate_cases(0, 200)}
        assert names == set(DEFAULT_WEIGHTS)

    def test_weights_cover_the_registry(self):
        assert set(DEFAULT_WEIGHTS) == set(ORACLES)

    def test_subset_restricts_the_mix(self):
        cases = generate_cases(0, 30, oracles=("codec", "design"))
        assert {case.oracle for case in cases} <= {"codec", "design"}

    def test_unknown_oracle_rejected(self):
        with pytest.raises(ValueError, match="unknown oracle"):
            generate_case(0, 0, oracles=("codec", "nope"))

    def test_empty_oracle_set_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            generate_case(0, 0, oracles=())


class TestFuzzCaseDict:
    def test_round_trip(self):
        case = generate_case(11, 2)
        assert FuzzCase.from_dict(case.as_dict()) == case

    @pytest.mark.parametrize("missing", ["seed", "index", "oracle",
                                         "params"])
    def test_missing_field_rejected(self, missing):
        obj = generate_case(0, 0).as_dict()
        del obj[missing]
        with pytest.raises(ValueError, match=missing):
            FuzzCase.from_dict(obj)

    def test_unknown_oracle_in_dict_rejected(self):
        obj = generate_case(0, 0).as_dict()
        obj["oracle"] = "bogus"
        with pytest.raises(ValueError, match="unknown oracle"):
            FuzzCase.from_dict(obj)

    def test_non_mapping_params_rejected(self):
        obj = generate_case(0, 0).as_dict()
        obj["params"] = [1, 2]
        with pytest.raises(ValueError, match="params"):
            FuzzCase.from_dict(obj)
