"""The oracles themselves: determinism, clean passes, armed defects."""

import pytest

from repro.fuzz import ORACLES, execute_params, generate_cases, result_digest
from repro.fuzz.oracles import (
    DEFECT_ENV,
    DEFECT_N_THRESHOLD,
    DEFECT_SYMBOLS_THRESHOLD,
)


# Zero corruption keeps every frame weight-valid, so the decode-parity
# comparison (where the injected defect lives) runs on row 0.
DEFECT_PARAMS = {"n": DEFECT_N_THRESHOLD, "k": 4,
                 "n_symbols": DEFECT_SYMBOLS_THRESHOLD,
                 "p_off": 0.0, "p_on": 0.0, "rngseed": 3}


class TestDeterminism:
    @pytest.mark.parametrize("oracle", sorted(set(ORACLES) - {"journal"}))
    def test_repeat_executions_are_bit_identical(self, oracle):
        case = next(c for c in generate_cases(2, 60, oracles=(oracle,)))
        first = execute_params(oracle, case.params)
        second = execute_params(oracle, case.params)
        assert first.as_dict() == second.as_dict()
        assert result_digest(oracle, case.params, first) == \
            result_digest(oracle, case.params, second)

    def test_digest_depends_on_params(self):
        a, b = generate_cases(0, 20, oracles=("design",))[:2]
        ra = execute_params("design", a.params)
        rb = execute_params("design", b.params)
        assert result_digest("design", a.params, ra) != \
            result_digest("design", b.params, rb)


class TestCleanTree:
    """A healthy tree passes every oracle on a seeded sample."""

    @pytest.mark.parametrize("oracle", ["codec", "roundtrip", "design",
                                        "serve"])
    def test_cheap_oracles_pass(self, oracle):
        for case in generate_cases(4, 6, oracles=(oracle,)):
            result = execute_params(oracle, case.params)
            assert result.status == "ok", (case.params, result.detail)

    def test_journal_oracle_passes(self):
        case = generate_cases(4, 1, oracles=("journal",))[0]
        result = execute_params("journal", case.params)
        assert result.status == "ok", (case.params, result.detail)


class TestShrinkCandidates:
    @pytest.mark.parametrize("oracle", sorted(ORACLES))
    def test_candidates_are_valid_reductions(self, oracle):
        case = generate_cases(6, 40, oracles=(oracle,))[0]
        candidates = list(ORACLES[oracle].shrink_candidates(case.params))
        assert candidates, "every oracle must offer reductions"
        for candidate in candidates[:8]:
            assert candidate != case.params
            result = execute_params(oracle, candidate)
            assert result.status in ("ok", "fail")


class TestInjectedDefect:
    def test_misdecode_fires_at_the_thresholds(self, monkeypatch):
        monkeypatch.setenv(DEFECT_ENV, "codec-misdecode")
        result = execute_params("codec", DEFECT_PARAMS)
        assert result.status == "fail"
        assert "decode parity" in result.detail

    @pytest.mark.parametrize("field, value", [
        ("n", DEFECT_N_THRESHOLD - 1),
        ("n_symbols", DEFECT_SYMBOLS_THRESHOLD - 1),
    ])
    def test_misdecode_silent_below_either_threshold(self, monkeypatch,
                                                     field, value):
        monkeypatch.setenv(DEFECT_ENV, "codec-misdecode")
        params = {**DEFECT_PARAMS, field: value}
        assert execute_params("codec", params).status == "ok"

    def test_disarmed_by_default(self):
        assert execute_params("codec", DEFECT_PARAMS).status == "ok"


class TestScenarioOracle:
    """The scenario-engine differential: tiny buildings, full contract."""

    def test_generated_cases_execute_clean(self):
        for case in generate_cases(11, 3, oracles=("scenario",)):
            result = execute_params("scenario", case.params)
            assert result.status == "ok", (case.params, result.detail)
            assert result.observation["rooms"] >= 1

    def test_a_sharded_case_executes_clean(self):
        case = next(
            c for c in generate_cases(2, 40, oracles=("scenario",))
            if sum(r["rows"] * r["cols"]
                   for r in c.params["scenario"]["rooms"]) >= 2)
        params = {**case.params, "regions": 2}
        result = execute_params("scenario", params)
        assert result.status == "ok", (params, result.detail)
        assert "sharded_digest" in result.observation

    def test_params_carry_a_loadable_document(self):
        from repro.scenarios import Scenario

        case = generate_cases(5, 1, oracles=("scenario",))[0]
        scenario = Scenario.from_dict(case.params["scenario"])
        assert scenario.to_dict() == case.params["scenario"]


class TestErrorPaths:
    def test_unknown_oracle(self):
        with pytest.raises(ValueError, match="unknown oracle"):
            execute_params("bogus", {})

    def test_empty_serve_request_list_is_a_fail_result(self):
        result = execute_params("serve", {"requests": []})
        assert result.status == "fail"

    def test_unexpected_exception_propagates(self):
        """Broken params raise: the runner journals them as errors."""
        with pytest.raises(Exception):
            execute_params("codec", {"n": "wat"})
