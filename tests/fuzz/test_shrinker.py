"""The delta-debugging reducer: building blocks, greedy loop, laws.

The hypothesis classes pin the two properties the fuzzing pipeline
depends on: *threshold recovery* (a defect guarded by ``value >= T``
shrinks to exactly ``T``) and *idempotence* (shrinking a minimal repro
is a fixed point — zero further steps).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fuzz import (
    ShrinkStats,
    shrink,
    shrink_float,
    shrink_int,
    shrink_list,
)


class TestShrinkInt:
    def test_candidates_move_strictly_down_toward_the_floor(self):
        candidates = list(shrink_int(40, 3))
        assert candidates[0] == 3
        assert all(3 <= c < 40 for c in candidates)
        assert len(candidates) == len(set(candidates))
        assert 39 in candidates  # the single decrement is always tried

    def test_at_the_floor_yields_nothing(self):
        assert list(shrink_int(3, 3)) == []
        assert list(shrink_int(2, 3)) == []

    @given(value=st.integers(1, 10_000), lo=st.integers(0, 100))
    @settings(max_examples=200, deadline=None)
    def test_ladder_invariants(self, value, lo):
        candidates = list(shrink_int(value, lo))
        if value <= lo:
            assert candidates == []
        else:
            assert all(lo <= c < value for c in candidates)
            assert len(candidates) == len(set(candidates))


class TestShrinkFloat:
    def test_target_first_then_roundings(self):
        candidates = list(shrink_float(0.123456, 0.0))
        assert candidates[0] == 0.0
        assert 0.1 in candidates and 0.123 in candidates

    def test_exact_target_yields_nothing(self):
        assert list(shrink_float(0.5, 0.5)) == [] or \
            all(c != 0.5 for c in shrink_float(0.5, 0.5))


class TestShrinkList:
    def test_coarse_to_fine(self):
        candidates = list(shrink_list([1, 2, 3, 4]))
        assert candidates[0] == []
        assert [3, 4] in candidates and [1, 2] in candidates
        assert [2, 3, 4] in candidates  # single deletions
        assert all(len(c) < 4 for c in candidates)

    def test_empty_yields_nothing(self):
        assert list(shrink_list([])) == []


def _threshold_candidates(params):
    for x in shrink_int(params["x"], 0):
        yield {**params, "x": x}
    for y in shrink_int(params["y"], 0):
        yield {**params, "y": y}


class TestGreedyShrink:
    def test_threshold_defect_shrinks_to_the_exact_threshold(self):
        outcome = shrink({"x": 977, "y": 450},
                         lambda p: p["x"] >= 12 and p["y"] >= 24,
                         _threshold_candidates)
        assert outcome.params == {"x": 12, "y": 24}
        assert not outcome.exhausted

    def test_budget_exhaustion_keeps_a_failing_repro(self):
        outcome = shrink({"x": 10_000, "y": 10_000},
                         lambda p: p["x"] >= 9_000 and p["y"] >= 9_000,
                         _threshold_candidates, max_attempts=3)
        assert outcome.exhausted
        assert outcome.params["x"] >= 9_000 and outcome.params["y"] >= 9_000

    def test_never_evaluates_the_starting_params(self):
        calls = []

        def predicate(p):
            calls.append(dict(p))
            return False

        shrink({"x": 5, "y": 5}, predicate, _threshold_candidates)
        assert {"x": 5, "y": 5} not in calls

    def test_rejects_negative_budget(self):
        with pytest.raises(ValueError):
            shrink({"x": 1, "y": 1}, lambda p: True,
                   _threshold_candidates, max_attempts=-1)

    @given(x0=st.integers(0, 400), y0=st.integers(0, 400),
           x=st.integers(0, 2_000), y=st.integers(0, 2_000))
    @settings(max_examples=100, deadline=None)
    def test_idempotence_shrinking_a_minimum_is_a_fixed_point(
            self, x0, y0, x, y):
        """The satellite law: shrink(shrink(p)) adopts zero candidates."""
        if not (x >= x0 and y >= y0):
            return  # the starting case must fail

        def fails(p):
            return p["x"] >= x0 and p["y"] >= y0

        first = shrink({"x": x, "y": y}, fails, _threshold_candidates,
                       max_attempts=10_000)
        assert first.params == {"x": x0, "y": y0}
        second = shrink(first.params, fails, _threshold_candidates,
                        max_attempts=10_000)
        assert second.steps == 0
        assert second.params == first.params


class TestShrinkStats:
    def test_tally(self):
        stats = ShrinkStats()
        outcome = shrink({"x": 100, "y": 100},
                         lambda p: p["x"] >= 10 and p["y"] >= 10,
                         _threshold_candidates)
        stats.add("codec", outcome)
        stats.add("codec", outcome)
        assert stats.findings == 2
        assert stats.by_oracle == {"codec": 2}
        assert stats.steps == 2 * outcome.steps
