"""Corpus artifacts: pin, persist, replay, detect drift.

The shipped-corpus test is the same check CI's ``fuzz-smoke`` job runs:
every committed artifact replays onto its pinned digest, bit for bit.
"""

import json
from pathlib import Path

import pytest

from repro.fuzz import (
    DEFAULT_CORPUS_DIR,
    Artifact,
    iter_corpus,
    load_artifact,
    pin_artifact,
    replay_artifact,
    replay_corpus,
    write_artifact,
)

REPO_ROOT = Path(__file__).resolve().parents[2]

DESIGN_PARAMS = {"dimming": 0.42}


class TestPinAndPersist:
    def test_round_trip(self, tmp_path):
        artifact = pin_artifact("design", DESIGN_PARAMS, note="mid-range")
        path = tmp_path / "design-x.json"
        write_artifact(path, artifact)
        assert load_artifact(path) == artifact

    def test_pin_records_the_live_digest(self):
        artifact = pin_artifact("design", DESIGN_PARAMS)
        assert artifact.expect_status == "ok"
        assert len(artifact.expect_digest) == 64

    def test_replay_matches_a_fresh_pin(self, tmp_path):
        path = tmp_path / "a.json"
        write_artifact(path, pin_artifact("design", DESIGN_PARAMS))
        outcome = replay_artifact(path)
        assert outcome.matched
        assert outcome.oracle == "design"

    def test_drift_is_detected(self, tmp_path):
        artifact = pin_artifact("design", DESIGN_PARAMS)
        tampered = Artifact(oracle=artifact.oracle, params=artifact.params,
                            expect_status=artifact.expect_status,
                            expect_digest="0" * 64, note="tampered")
        path = tmp_path / "drift.json"
        write_artifact(path, tampered)
        outcome = replay_artifact(path)
        assert not outcome.matched
        assert "DRIFT" in outcome.describe()


class TestArtifactValidation:
    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"v": 99}))
        with pytest.raises(ValueError, match="version"):
            load_artifact(path)

    def test_unknown_oracle_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(
            {"v": 1, "oracle": "bogus", "case": {},
             "expect": {"status": "ok", "digest": "x"}}))
        with pytest.raises(ValueError, match="unknown oracle"):
            load_artifact(path)

    def test_garbage_json_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(ValueError, match="unreadable"):
            load_artifact(path)

    def test_missing_expectation_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"v": 1, "oracle": "design",
                                    "case": {}}))
        with pytest.raises(ValueError, match="expect"):
            load_artifact(path)


class TestShippedCorpus:
    def test_corpus_is_nonempty_and_well_formed(self):
        paths = list(iter_corpus(REPO_ROOT / DEFAULT_CORPUS_DIR))
        assert len(paths) >= 8
        oracles = {load_artifact(path).oracle for path in paths}
        assert oracles == {"codec", "roundtrip", "design", "serve",
                           "journal"}

    def test_every_artifact_replays_bit_identically(self):
        outcomes = replay_corpus(REPO_ROOT / DEFAULT_CORPUS_DIR)
        drifted = [outcome.describe() for outcome in outcomes
                   if not outcome.matched]
        assert not drifted, "\n".join(drifted)
