"""The ``repro fuzz`` surface: run, replay, corpus, exit codes."""

import io
import json
from pathlib import Path

from repro.cli import main
from repro.fuzz import DEFAULT_CORPUS_DIR
from repro.fuzz.oracles import DEFECT_ENV

REPO_ROOT = Path(__file__).resolve().parents[2]
CORPUS = str(REPO_ROOT / DEFAULT_CORPUS_DIR)


def invoke(*argv):
    out, err = io.StringIO(), io.StringIO()
    code = main(list(argv), out=out, err=err)
    return code, out.getvalue(), err.getvalue()


class TestFuzzRun:
    def test_clean_campaign_exits_zero(self):
        code, out, err = invoke("fuzz", "run", "--budget", "12",
                                "--seed", "0", "--oracles",
                                "codec,design,roundtrip")
        assert code == 0, err
        assert "no findings" in out
        assert "campaign digest:" in out

    def test_digest_is_printed_and_jobs_invariant(self):
        args = ("fuzz", "run", "--budget", "10", "--seed", "3",
                "--oracles", "codec")
        _, serial, _ = invoke(*args)
        _, parallel, _ = invoke(*args, "--jobs", "2", "--chunk", "5")
        digest = [line for line in serial.splitlines()
                  if line.startswith("campaign digest:")]
        assert digest
        assert digest == [line for line in parallel.splitlines()
                          if line.startswith("campaign digest:")]

    def test_findings_exit_one_and_journal(self, monkeypatch, tmp_path):
        monkeypatch.setenv(DEFECT_ENV, "codec-misdecode")
        journal = tmp_path / "findings.jsonl"
        code, out, err = invoke("fuzz", "run", "--budget", "30",
                                "--oracles", "codec",
                                "--findings", str(journal))
        assert code == 1
        assert "minimal repro" in out
        assert journal.is_file()
        assert json.loads(journal.read_text().splitlines()[0])

    def test_self_test_passes(self):
        code, out, err = invoke("fuzz", "run", "--self-test")
        assert code == 0, out + err
        assert "self-test: PASS" in out

    def test_bad_arguments_exit_two(self):
        code, _, err = invoke("fuzz", "run", "--oracles", "bogus")
        assert code == 2
        assert "unknown oracle" in err
        code, _, _ = invoke("fuzz", "run", "--jobs", "0")
        assert code == 2
        code, _, _ = invoke("fuzz", "run", "--budget", "-3")
        assert code == 2


class TestFuzzReplay:
    def test_replays_the_shipped_corpus(self):
        code, out, err = invoke("fuzz", "replay", CORPUS)
        assert code == 0, err
        assert "0 drifted" in out

    def test_single_artifact(self):
        artifact = sorted(Path(CORPUS).glob("design-*.json"))[0]
        code, out, _ = invoke("fuzz", "replay", str(artifact))
        assert code == 0
        assert "replayed 1 artifacts" in out

    def test_drift_exits_one(self, tmp_path):
        artifact = sorted(Path(CORPUS).glob("design-*.json"))[0]
        obj = json.loads(artifact.read_text())
        obj["expect"]["digest"] = "0" * 64
        bad = tmp_path / "drifted.json"
        bad.write_text(json.dumps(obj))
        code, out, _ = invoke("fuzz", "replay", str(bad))
        assert code == 1
        assert "DRIFT" in out

    def test_missing_path_exits_two(self):
        code, _, err = invoke("fuzz", "replay", "/no/such/file.json")
        assert code == 2
        assert "no such artifact" in err


class TestFuzzCorpus:
    def test_lists_the_shipped_corpus(self):
        code, out, _ = invoke("fuzz", "corpus", "--dir", CORPUS)
        assert code == 0
        assert "artifacts in" in out
        assert "codec" in out and "journal" in out

    def test_add_pins_findings(self, monkeypatch, tmp_path):
        monkeypatch.setenv(DEFECT_ENV, "codec-misdecode")
        journal = tmp_path / "findings.jsonl"
        code, _, _ = invoke("fuzz", "run", "--budget", "30",
                            "--oracles", "codec",
                            "--findings", str(journal))
        assert code == 1
        monkeypatch.delenv(DEFECT_ENV)
        target = tmp_path / "corpus"
        code, out, err = invoke("fuzz", "corpus", "--dir", str(target),
                                "--add", str(journal))
        assert code == 0, err
        added = list(target.glob("codec-*.json"))
        assert added
        # The defect is disarmed now, so the pinned expectation is the
        # healthy digest — the shrunk trigger guards the fixed path.
        assert "status ok" in out

    def test_missing_dir_exits_two(self, tmp_path):
        code, _, err = invoke("fuzz", "corpus", "--dir",
                              str(tmp_path / "nope"))
        assert code == 2
        assert "no corpus directory" in err
