"""The AMPPM scheme adapter and the scheme factory module."""

import pytest

from repro.core import SlotErrorModel, SystemConfig
from repro.schemes import AmppmScheme, standard_schemes


class TestAmppmScheme:
    def test_shares_designer_across_designs(self, config):
        scheme = AmppmScheme(config)
        a = scheme.design(0.3)
        b = scheme.design(0.3)
        # Designs are memoised inside the designer.
        assert a.design is b.design

    def test_custom_error_model(self, config):
        clean = AmppmScheme(config, SlotErrorModel.ideal())
        # With an ideal channel nothing is pruned: the supported range
        # is at least as wide as the default designer's.
        default = AmppmScheme(config)
        assert clean.supported_range[0] <= default.supported_range[0]
        assert clean.supported_range[1] >= default.supported_range[1]

    def test_design_exposes_super_symbol(self, config):
        design = AmppmScheme(config).design(0.4)
        assert design.super_symbol.n_slots <= config.n_max_super
        assert design.super_symbol.bits > 0

    def test_partial_unit_slot_economy(self, config):
        # payload_slots must be symbol-granular, not super-symbol-
        # granular (the fix that smoothed Fig. 15).
        design = AmppmScheme(config).design(0.15)
        one_bit = design.payload_slots(1)
        assert one_bit < design.super_symbol.n_slots or \
            design.super_symbol.n_symbols == 1

    def test_success_probability_uses_plan(self, config, paper_errors):
        design = AmppmScheme(config).design(0.15)
        # More bits -> more symbols -> lower success probability.
        assert design.success_probability(8, paper_errors) > \
            design.success_probability(2048, paper_errors)


class TestStandardSchemes:
    def test_order_and_names(self, config):
        schemes = standard_schemes(config)
        assert [s.name for s in schemes] == ["AMPPM", "OOK-CT", "MPPM"]

    def test_default_config(self):
        schemes = standard_schemes()
        assert schemes[0].config == SystemConfig()

    def test_shared_error_model(self, config):
        errors = SlotErrorModel(1e-6, 1e-6)
        ampem = standard_schemes(config, errors)[0]
        assert ampem.designer.errors == errors


class TestDesignProperties:
    @pytest.mark.parametrize("level", [0.05, 0.25, 0.5, 0.75, 0.95])
    def test_achieved_within_resolution(self, config, level):
        design = AmppmScheme(config).design(level)
        assert abs(design.achieved_dimming - level) <= config.tau_perceived

    def test_encode_matches_payload_slots(self, config):
        design = AmppmScheme(config).design(0.33)
        bits = [(i * 3) % 2 for i in range(500)]
        slots = design.encode_payload(bits)
        assert len(slots) == design.payload_slots(len(bits))
