"""The smart-lighting control loop (Goals 1 and 2)."""

import pytest

from repro.lighting import (
    BlindRampAmbient,
    SmartLightingController,
    StaticAmbient,
    StepAmbient,
    type2_analyze,
)


class TestGoal1ConstantSum:
    def test_sum_constant_over_ramp(self, config, designer):
        controller = SmartLightingController(target_sum=1.0, config=config,
                                             designer=designer)
        samples = controller.run(BlindRampAmbient(), 67.0)
        for sample in samples:
            assert sample.total == pytest.approx(1.0, abs=1e-9)

    def test_eq5_delta(self, config):
        # △I_led = I1_amb − I2_amb.
        controller = SmartLightingController(target_sum=1.0, config=config)
        controller.tick(0.0, 0.3)
        led_before = controller.led_intensity
        controller.tick(1.0, 0.5)
        assert led_before - controller.led_intensity == pytest.approx(0.2)

    def test_led_clipped_when_ambient_exceeds_target(self, config):
        controller = SmartLightingController(target_sum=0.5, config=config)
        sample = controller.tick(0.0, 0.9)
        assert sample.led == 0.0

    def test_led_clipped_at_full_power(self, config):
        controller = SmartLightingController(target_sum=1.8, config=config)
        sample = controller.tick(0.0, 0.1)
        assert sample.led == 1.0


class TestGoal2FlickerFree:
    def test_internal_steps_respect_tau(self, config):
        controller = SmartLightingController(target_sum=1.0, config=config)
        controller.tick(0.0, 0.2)
        plan = controller._adapter.retarget(0.1)
        assert plan.max_perceived_step <= config.tau_perceived + 1e-12

    def test_trace_type2_clean(self, config, designer):
        controller = SmartLightingController(target_sum=1.0, config=config,
                                             designer=designer)
        # Collect *all* intermediate levels by stepping with a fine tick.
        samples = controller.run(BlindRampAmbient(), 67.0, tick_s=0.5)
        report = type2_analyze([s.led for s in samples], config)
        # Per-tick ambient moves are slow, so even the tick-to-tick
        # deltas stay near the bound.
        assert report.max_perceived_step <= 5 * config.tau_perceived

    def test_perception_mode_halves_adjustments(self, config):
        smart = SmartLightingController(target_sum=1.0, config=config,
                                        use_perception_domain=True)
        legacy = SmartLightingController(target_sum=1.0, config=config,
                                         use_perception_domain=False)
        profile = BlindRampAmbient()
        smart_samples = smart.run(profile, 67.0)
        legacy_samples = legacy.run(profile, 67.0)
        ratio = legacy_samples[-1].adjustments / smart_samples[-1].adjustments
        assert 1.6 <= ratio <= 2.4  # the paper's ~50% reduction


class TestDesignerIntegration:
    def test_designs_follow_dimming(self, config, designer):
        controller = SmartLightingController(target_sum=1.0, config=config,
                                             designer=designer)
        sample = controller.tick(0.0, 0.6)
        assert sample.design is not None
        assert sample.design.achieved_dimming == pytest.approx(
            0.4, abs=config.tau_perceived)

    def test_design_cached_when_static(self, config, designer):
        controller = SmartLightingController(target_sum=1.0, config=config,
                                             designer=designer)
        a = controller.tick(0.0, 0.5).design
        b = controller.tick(1.0, 0.5).design
        assert a is b

    def test_design_changes_with_ambient(self, config, designer):
        controller = SmartLightingController(target_sum=1.0, config=config,
                                             designer=designer)
        a = controller.tick(0.0, 0.3).design
        b = controller.tick(1.0, 0.7).design
        assert a.achieved_dimming != b.achieved_dimming

    def test_lighting_only_mode(self, config):
        controller = SmartLightingController(target_sum=1.0, config=config)
        assert controller.tick(0.0, 0.5).design is None

    def test_clamps_extreme_dimming(self, config, designer):
        controller = SmartLightingController(target_sum=1.0, config=config,
                                             designer=designer)
        sample = controller.tick(0.0, 0.999)
        lo, _ = designer.supported_range
        assert sample.design.achieved_dimming >= lo - 1e-9


class TestDeadband:
    def test_deadband_suppresses_micromoves(self, config):
        controller = SmartLightingController(target_sum=1.0, config=config,
                                             deadband=0.01)
        controller.tick(0.0, 0.5)
        before = controller.adjustments
        controller.tick(1.0, 0.5001)  # sub-deadband wiggle
        assert controller.adjustments == before

    def test_static_ambient_costs_nothing(self, config):
        controller = SmartLightingController(target_sum=1.0, config=config,
                                             initial_led=0.5)
        samples = controller.run(StaticAmbient(0.5), 10.0)
        assert samples[-1].adjustments == 0

    def test_step_ambient_single_burst(self, config):
        controller = SmartLightingController(target_sum=1.0, config=config,
                                             initial_led=0.8)
        profile = StepAmbient(steps=((0.0, 0.2), (5.0, 0.4)))
        samples = controller.run(profile, 10.0)
        counts = [s.adjustments for s in samples]
        assert counts[-1] == counts[6]  # no further moves after the step
        assert counts[6] > counts[4]


class TestValidation:
    def test_target_sum_range(self, config):
        with pytest.raises(ValueError):
            SmartLightingController(target_sum=0.0, config=config)

    def test_tick_rate(self, config):
        controller = SmartLightingController(target_sum=1.0, config=config)
        with pytest.raises(ValueError):
            controller.run(StaticAmbient(0.5), 1.0, tick_s=0.0)
