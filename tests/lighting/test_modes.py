"""Day/night scheme hand-over (paper Section 7)."""

import pytest

from repro.lighting import DayNightManager, LinkMode


class TestSelection:
    def test_daytime_uses_smartvlc(self, config):
        manager = DayNightManager(config=config)
        decision = manager.select(0.4)
        assert decision.mode is LinkMode.SMARTVLC
        assert decision.design.achieved_dimming == pytest.approx(0.4, abs=0.01)

    def test_lights_off_uses_darklight(self, config):
        manager = DayNightManager(config=config)
        decision = manager.select(0.0)
        assert decision.mode is LinkMode.DARKLIGHT
        assert decision.design.achieved_dimming < 0.01

    def test_threshold_is_amppm_floor_by_default(self, config):
        manager = DayNightManager(config=config)
        from repro.schemes import AmppmScheme
        floor = AmppmScheme(config).supported_range[0]
        assert manager.night_threshold == pytest.approx(floor)

    def test_data_flows_in_both_modes(self, config):
        from repro.link import Receiver, Transmitter
        manager = DayNightManager(config=config)
        tx, rx = Transmitter(config), Receiver(config)
        for level in (0.0, 0.5):
            decision = manager.select(level)
            slots = tx.encode_frame(b"always on air", decision.design)
            assert rx.decode_frame(slots).payload == b"always on air"

    def test_night_rate_much_lower(self, config):
        manager = DayNightManager(config=config)
        day = manager.select(0.5).data_rate_factor
        night = manager.select(0.0).data_rate_factor
        assert night < 0.05 * day
        assert night > 0.0


class TestSwitching:
    def test_switch_counting(self, config):
        manager = DayNightManager(config=config)
        for level in (0.5, 0.4, 0.0, 0.0, 0.3):
            manager.select(level)
        assert manager.mode_switches == 2

    def test_no_switch_within_mode(self, config):
        manager = DayNightManager(config=config)
        for level in (0.2, 0.4, 0.6):
            manager.select(level)
        assert manager.mode_switches == 0

    def test_custom_threshold(self, config):
        manager = DayNightManager(config=config, night_threshold=0.1)
        assert manager.select(0.05).mode is LinkMode.DARKLIGHT
        assert manager.select(0.15).mode is LinkMode.SMARTVLC

    def test_validation(self, config):
        with pytest.raises(ValueError):
            DayNightManager(config=config, night_threshold=1.5)
        manager = DayNightManager(config=config)
        with pytest.raises(ValueError):
            manager.select(-0.1)
