"""Type-I and Type-II flicker detectors."""

import pytest

from repro.lighting import (
    max_constant_run,
    type1_perceptual,
    type1_structural_ok,
    type2_analyze,
)


class TestMaxRun:
    def test_alternating(self):
        assert max_constant_run([True, False] * 10) == 1

    def test_run_in_middle(self):
        assert max_constant_run([True, False, False, False, True]) == 3

    def test_empty(self):
        assert max_constant_run([]) == 0


class TestType1Structural:
    def test_amppm_streams_pass(self, config, designer):
        from repro.schemes import AmppmScheme
        scheme = AmppmScheme(config)
        bits = [(i * 3 + 1) % 2 for i in range(2048)]
        for level in (0.1, 0.5, 0.9):
            slots = scheme.design(level).encode_payload(bits)
            assert type1_structural_ok(slots, config)

    def test_long_run_fails(self, config):
        slots = [True] * (config.n_max_super + 1) + [False]
        assert not type1_structural_ok(slots, config)

    def test_boundary_run_passes(self, config):
        slots = [False] + [True] * config.n_max_super + [False]
        assert type1_structural_ok(slots, config)


class TestType1Perceptual:
    def test_fast_alternation_fuses(self, config):
        report = type1_perceptual([True, False] * 600, config)
        assert report.flicker_free
        assert report.mean_brightness == pytest.approx(0.5, abs=0.01)

    def test_slow_square_wave_flickers(self, config):
        # 1000 slots ON then 1000 OFF = 62.5 Hz at 125 kHz slots.
        slots = ([True] * 1000 + [False] * 1000) * 3
        report = type1_perceptual(slots, config)
        assert not report.flicker_free

    def test_needs_one_window(self, config):
        with pytest.raises(ValueError):
            type1_perceptual([True] * 10, config)


class TestType2:
    def test_smooth_trace_clean(self, config):
        from repro.core import plan_perceived_steps
        plan = plan_perceived_steps(0.2, 0.8, config.tau_perceived)
        report = type2_analyze((0.2,) + plan.levels, config)
        assert report.flicker_free

    def test_jump_detected(self, config):
        report = type2_analyze([0.2, 0.2, 0.35, 0.35], config)
        assert not report.flicker_free
        assert report.worst_index == 1

    def test_short_traces_trivially_clean(self, config):
        assert type2_analyze([0.5], config).flicker_free
        assert type2_analyze([], config).flicker_free


class TestDesignerOutputsAreFlickerFree:
    def test_every_design_fits_one_fusion_window(self, designer, config):
        # Eq. (4): the super-symbol repeats above f_th.
        for level in (0.05, 0.2, 0.4, 0.6, 0.8, 0.95):
            design = designer.design(level)
            assert design.super_symbol.flicker_free(config)

    def test_modulated_payload_perceptually_steady(self, config, designer):
        from repro.schemes import AmppmSchemeDesign
        design = AmppmSchemeDesign(designer.design(0.5), config)
        bits = [(i * 5 + 1) % 2 for i in range(4096)]
        slots = design.encode_payload(bits)
        report = type1_perceptual(slots, config, threshold=0.05)
        assert report.flicker_free
