"""The Table 2 user-study model."""

import pytest

from repro.lighting import (
    DIRECT_RESOLUTIONS,
    INDIRECT_RESOLUTIONS,
    AmbientCondition,
    ThresholdDistribution,
    Viewing,
    VolunteerPopulation,
)


@pytest.fixture(scope="module")
def population():
    return VolunteerPopulation()


class TestTableStructure:
    def test_monotone_in_resolution(self, population):
        # Bigger steps are never less visible.
        for viewing in Viewing:
            for condition in AmbientCondition:
                resolutions = (DIRECT_RESOLUTIONS if viewing is Viewing.DIRECT
                               else INDIRECT_RESOLUTIONS)
                percents = [population.percent_perceiving(r, viewing, condition)
                            for r in resolutions]
                assert percents == sorted(percents)

    def test_darker_ambient_more_sensitive(self, population):
        # The L3 column dominates L1 at every resolution (dark-adapted
        # pupils), for both viewing manners.
        for viewing, resolutions in ((Viewing.DIRECT, DIRECT_RESOLUTIONS),
                                     (Viewing.INDIRECT, INDIRECT_RESOLUTIONS)):
            for r in resolutions:
                l1 = population.percent_perceiving(r, viewing, AmbientCondition.L1)
                l3 = population.percent_perceiving(r, viewing, AmbientCondition.L3)
                assert l3 >= l1

    def test_direct_roughly_10x_more_sensitive(self, population):
        direct = population.safe_resolution(Viewing.DIRECT)
        indirect = population.safe_resolution(Viewing.INDIRECT)
        assert 8 <= indirect / direct <= 20

    def test_table_extremes(self, population):
        # First rows all zeros, last rows all 100% — as in Table 2.
        for condition in AmbientCondition:
            assert population.percent_perceiving(
                0.003, Viewing.DIRECT, condition) == 0.0
            assert population.percent_perceiving(
                0.007, Viewing.DIRECT, condition) == 100.0
            assert population.percent_perceiving(
                0.04, Viewing.INDIRECT, condition) == 0.0
            assert population.percent_perceiving(
                0.08, Viewing.INDIRECT, condition) == 100.0

    def test_paper_tau_p(self, population):
        # The paper's conclusion: 0.003 is safe for everyone, 0.004+ is
        # not safe in the darkest condition under direct viewing.
        assert population.safe_resolution(Viewing.DIRECT) >= 0.003
        assert population.percent_perceiving(
            0.004, Viewing.DIRECT, AmbientCondition.L3) > 0.0


class TestPopulation:
    def test_seeded_and_reproducible(self):
        a = VolunteerPopulation(seed=11)
        b = VolunteerPopulation(seed=11)
        c = VolunteerPopulation(seed=12)
        key = (Viewing.DIRECT, AmbientCondition.L1)
        assert (a.thresholds[key] == b.thresholds[key]).all()
        assert not (a.thresholds[key] == c.thresholds[key]).all()

    def test_twenty_volunteers(self, population):
        assert population.n_volunteers == 20
        for thresholds in population.thresholds.values():
            assert thresholds.shape == (20,)

    def test_census_shape(self, population):
        census = population.census(Viewing.DIRECT)
        assert set(census) == set(DIRECT_RESOLUTIONS)
        for row in census.values():
            assert set(row) == set(AmbientCondition)

    def test_percent_granularity(self, population):
        # With 20 volunteers the percentages are multiples of 5.
        for viewing, resolutions in ((Viewing.DIRECT, DIRECT_RESOLUTIONS),
                                     (Viewing.INDIRECT, INDIRECT_RESOLUTIONS)):
            for r in resolutions:
                for c in AmbientCondition:
                    p = population.percent_perceiving(r, viewing, c)
                    assert p == pytest.approx(round(p / 5) * 5)

    def test_validation(self):
        with pytest.raises(ValueError):
            VolunteerPopulation(n_volunteers=0)
        with pytest.raises(ValueError):
            VolunteerPopulation().percent_perceiving(
                0.0, Viewing.DIRECT, AmbientCondition.L1)


class TestThresholdDistribution:
    def test_clipping(self, rng):
        dist = ThresholdDistribution(mean=0.005, std=0.01, lo=0.004, hi=0.006)
        samples = dist.sample(rng, 1000)
        assert samples.min() >= 0.004
        assert samples.max() <= 0.006

    def test_fraction_perceiving_monotone(self):
        dist = ThresholdDistribution(mean=0.005, std=0.001, lo=0.003, hi=0.007)
        fractions = [dist.fraction_perceiving(r)
                     for r in (0.002, 0.004, 0.005, 0.006, 0.008)]
        assert fractions == sorted(fractions)
        assert fractions[0] == 0.0
        assert fractions[-1] == 1.0

    def test_lux_bands(self):
        assert AmbientCondition.L1.lux_band == (8900.0, 9760.0)
        assert AmbientCondition.L3.lux_band == (12.0, 21.0)
