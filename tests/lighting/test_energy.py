"""Energy accounting for smart lighting."""

import pytest

from repro.lighting import energy_report, led_power_w, trace_energy_j


class TestPowerModel:
    def test_linear_in_duty(self):
        assert led_power_w(0.5, 4.7) == pytest.approx(2.35)
        assert led_power_w(0.0, 4.7) == 0.0
        assert led_power_w(1.0, 4.7) == 4.7

    def test_validation(self):
        with pytest.raises(ValueError):
            led_power_w(1.5, 4.7)
        with pytest.raises(ValueError):
            led_power_w(0.5, -1.0)


class TestTraceEnergy:
    def test_integration(self):
        assert trace_energy_j([0.5, 0.5], 1.0, 4.7) == pytest.approx(4.7)

    def test_tick_scaling(self):
        fine = trace_energy_j([0.5] * 10, 0.1, 4.7)
        coarse = trace_energy_j([0.5], 1.0, 4.7)
        assert fine == pytest.approx(coarse)

    def test_validation(self):
        with pytest.raises(ValueError):
            trace_energy_j([0.5], 0.0, 4.7)


class TestReport:
    def test_daylight_saves_energy(self):
        report = energy_report([0.8, 0.5, 0.2, 0.1], tick_s=1.0)
        assert report.saved_joules > 0
        assert 0.0 < report.saving_fraction < 1.0
        assert report.saving_fraction == pytest.approx(1 - 0.4, rel=1e-9)

    def test_no_daylight_no_saving(self):
        report = energy_report([1.0, 1.0], tick_s=1.0)
        assert report.saving_fraction == 0.0

    def test_average_power(self):
        report = energy_report([0.5, 0.5], tick_s=2.0, full_power_w=4.0)
        assert report.smart_average_w == pytest.approx(2.0)

    def test_custom_baseline(self):
        report = energy_report([0.4], tick_s=1.0, baseline_level=0.8)
        assert report.saving_fraction == pytest.approx(0.5)

    def test_dynamic_scenario_saves(self, config):
        # Over the 67 s blind pull the LED averages well under full
        # power: the paper's energy-saving motivation quantified.
        from repro.lighting import BlindRampAmbient, SmartLightingController
        controller = SmartLightingController(target_sum=1.0, config=config)
        samples = controller.run(BlindRampAmbient(), 67.0)
        report = energy_report([s.led for s in samples], tick_s=1.0)
        assert report.saving_fraction > 0.3

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            energy_report([], tick_s=1.0)
