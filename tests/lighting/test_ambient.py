"""Ambient light profiles."""

import numpy as np
import pytest

from repro.lighting import (
    LUX_FULL_SCALE,
    BlindRampAmbient,
    CloudyDayAmbient,
    StaticAmbient,
    StepAmbient,
)


class TestStatic:
    def test_constant(self):
        profile = StaticAmbient(0.4)
        assert profile.intensity(0.0) == profile.intensity(1e6) == 0.4

    def test_lux_mapping(self):
        assert StaticAmbient(1.0).lux(0.0) == pytest.approx(LUX_FULL_SCALE)

    def test_validation(self):
        with pytest.raises(ValueError):
            StaticAmbient(1.5)


class TestBlindRamp:
    def test_endpoints(self):
        ramp = BlindRampAmbient()
        assert ramp.intensity(0.0) == pytest.approx(ramp.start_level)
        assert ramp.intensity(ramp.duration_s) == pytest.approx(ramp.end_level)

    def test_monotone_overall_but_wobbly(self):
        ramp = BlindRampAmbient()
        t = np.linspace(0.0, 67.0, 300)
        trace = ramp.trace(t)
        # Overall increasing...
        assert trace[-1] > trace[0]
        assert np.all(np.diff(trace) > -0.02)
        # ...but not perfectly linear (the paper's observation).
        linear = np.linspace(trace[0], trace[-1], trace.size)
        assert np.abs(trace - linear).max() > 0.005

    def test_deterministic_per_seed(self):
        a = BlindRampAmbient(seed=1).trace(np.linspace(0, 67, 50))
        b = BlindRampAmbient(seed=1).trace(np.linspace(0, 67, 50))
        c = BlindRampAmbient(seed=2).trace(np.linspace(0, 67, 50))
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_bounded(self):
        ramp = BlindRampAmbient(start_level=0.0, end_level=1.0, wobble=0.1)
        trace = ramp.trace(np.linspace(-5, 80, 400))
        assert np.all(trace >= 0.0)
        assert np.all(trace <= 1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            BlindRampAmbient(duration_s=0.0)
        with pytest.raises(ValueError):
            BlindRampAmbient(curvature=0.7)


class TestCloudyDay:
    def test_daylight_arc(self):
        day = CloudyDayAmbient(cloud_depth=0.0)
        dawn = day.intensity(0.0)
        noon = day.intensity(day.day_length_s / 2)
        dusk = day.intensity(day.day_length_s)
        assert dawn == pytest.approx(0.0, abs=1e-9)
        assert noon == pytest.approx(day.peak_level)
        assert dusk == pytest.approx(0.0, abs=1e-9)

    def test_clouds_attenuate(self):
        clear = CloudyDayAmbient(cloud_depth=0.0)
        cloudy = CloudyDayAmbient(cloud_depth=0.6, seed=5)
        t = np.linspace(0, clear.day_length_s, 200)
        assert np.all(cloudy.trace(t) <= clear.trace(t) + 1e-12)

    def test_clouds_move_fast(self):
        day = CloudyDayAmbient(cloud_depth=0.8, cloud_time_scale_s=10.0)
        mid = day.day_length_s / 2
        window = day.trace(np.linspace(mid - 30, mid + 30, 100))
        assert window.max() - window.min() > 0.05

    def test_validation(self):
        with pytest.raises(ValueError):
            CloudyDayAmbient(cloud_depth=1.0)


class TestStepProfile:
    def test_steps(self):
        profile = StepAmbient(steps=((0.0, 0.1), (5.0, 0.6)))
        assert profile.intensity(0.0) == 0.1
        assert profile.intensity(4.99) == 0.1
        assert profile.intensity(5.0) == 0.6

    def test_validation(self):
        with pytest.raises(ValueError):
            StepAmbient(steps=())
        with pytest.raises(ValueError):
            StepAmbient(steps=((5.0, 0.1),))
        with pytest.raises(ValueError):
            StepAmbient(steps=((0.0, 0.1), (1.0, 1.5)))
