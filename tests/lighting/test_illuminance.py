"""Photometric illuminance at the work surface."""

import math

import pytest

from repro.lighting import DeskIlluminance, Luminaire


class TestLuminaire:
    def test_on_axis_illuminance(self):
        lum = Luminaire(luminous_flux_lm=470.0, semi_angle_deg=15.0,
                        height_m=2.5)
        # E = I0 / h^2 directly below.
        assert lum.illuminance_lux(1.0) == pytest.approx(
            lum.peak_intensity_cd / 2.5 ** 2)

    def test_linear_in_dimming(self):
        lum = Luminaire()
        assert lum.illuminance_lux(0.5) == pytest.approx(
            0.5 * lum.illuminance_lux(1.0))
        assert lum.illuminance_lux(0.0) == 0.0

    def test_decreases_off_axis(self):
        lum = Luminaire()
        assert lum.illuminance_lux(1.0, radial_offset_m=0.5) < \
            lum.illuminance_lux(1.0)

    def test_narrow_beam_concentrates(self):
        narrow = Luminaire(semi_angle_deg=15.0)
        wide = Luminaire(semi_angle_deg=60.0)
        # Same flux: the narrow beam is brighter on-axis, dimmer off.
        assert narrow.illuminance_lux(1.0) > wide.illuminance_lux(1.0)
        assert narrow.illuminance_lux(1.0, 1.5) < wide.illuminance_lux(1.0, 1.5)

    def test_inverse_square_in_height(self):
        low = Luminaire(height_m=2.0)
        high = Luminaire(height_m=4.0)
        assert low.illuminance_lux(1.0) / high.illuminance_lux(1.0) == \
            pytest.approx(4.0)

    def test_dimming_for_lux_inverts(self):
        lum = Luminaire()
        target = 0.6 * lum.illuminance_lux(1.0)
        dimming = lum.dimming_for_lux(target)
        assert lum.illuminance_lux(dimming) == pytest.approx(target)

    def test_dimming_for_lux_clips(self):
        lum = Luminaire()
        assert lum.dimming_for_lux(1e6) == 1.0

    def test_comms_front_end_shares_beam(self):
        lum = Luminaire(semi_angle_deg=15.0)
        fe = lum.comms_front_end()
        assert fe.semi_angle_deg == 15.0
        assert math.isclose(fe.lambertian_order, lum.lambertian_order)

    def test_validation(self):
        with pytest.raises(ValueError):
            Luminaire(luminous_flux_lm=0.0)
        with pytest.raises(ValueError):
            Luminaire(height_m=-1.0)
        with pytest.raises(ValueError):
            Luminaire().illuminance_lux(1.5)


class TestDeskIlluminance:
    def test_total_adds_daylight(self):
        desk = DeskIlluminance(Luminaire(), ambient_full_lux=1000.0)
        led_only = desk.total_lux(0.5, 0.0)
        with_sun = desk.total_lux(0.5, 0.5)
        assert with_sun == pytest.approx(led_only + 500.0)

    def test_goal1_in_lux(self):
        # The lux-domain Eq. (5): dimming completes the target.
        desk = DeskIlluminance(Luminaire(), ambient_full_lux=1000.0)
        target = 0.8 * desk.luminaire.illuminance_lux(1.0)
        for ambient in (0.0, 0.1, 0.2):
            dimming = desk.dimming_for_total(target, ambient)
            assert 0.0 < dimming < 1.0
            assert desk.total_lux(dimming, ambient) == pytest.approx(target)

    def test_saturates_when_sun_exceeds_target(self):
        desk = DeskIlluminance(Luminaire(), ambient_full_lux=10_000.0)
        assert desk.dimming_for_total(300.0, 1.0) == 0.0

    def test_validation(self):
        desk = DeskIlluminance(Luminaire())
        with pytest.raises(ValueError):
            desk.total_lux(0.5, 1.5)
        with pytest.raises(ValueError):
            desk.dimming_for_total(100.0, -0.1)
