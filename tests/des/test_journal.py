"""The event journal: counters, equality, digest, export."""

import json

import pytest

from repro.des import EventJournal, JournalEntry, journals_equal, \
    write_journal_jsonl


def make_journal():
    j = EventJournal()
    j.record(0.0, "sense", "node-00", ambient=0.4)
    j.record(0.0, "control", "cell-r0c0", led=0.6)
    j.record(1.0, "sense", "node-00", ambient=0.5)
    j.record(1.5, "handover", "node-00", source="cell-r0c0",
             target="cell-r0c1")
    return j


class TestRecording:
    def test_entries_get_monotone_seq(self):
        j = make_journal()
        assert [e.seq for e in j.entries] == [0, 1, 2, 3]
        assert len(j) == 4

    def test_detail_keys_are_sorted(self):
        j = EventJournal()
        entry = j.record(0.0, "x", b=2, a=1, c=3)
        assert entry.detail == (("a", 1), ("b", 2), ("c", 3))
        assert entry.get("b") == 2
        assert entry.get("missing", "d") == "d"

    def test_as_dict_flattens_detail(self):
        j = make_journal()
        row = j.entries[3].as_dict()
        assert row == {"seq": 3, "time": 1.5, "kind": "handover",
                       "actor": "node-00", "source": "cell-r0c0",
                       "target": "cell-r0c1"}


class TestAggregation:
    def test_count_and_counts(self):
        j = make_journal()
        assert j.count("sense") == 2
        assert j.count("absent") == 0
        assert j.counts() == {"control": 1, "handover": 1, "sense": 2}

    def test_of_kind_filters_by_actor(self):
        j = make_journal()
        assert len(j.of_kind("sense")) == 2
        assert j.of_kind("sense", actor="node-99") == []

    def test_total_and_mean(self):
        j = make_journal()
        assert j.total("sense", "ambient") == pytest.approx(0.9)
        assert j.mean("sense", "ambient") == pytest.approx(0.45)
        with pytest.raises(ValueError):
            j.mean("absent", "ambient")

    def test_mean_ignores_entries_without_the_key(self):
        # Regression: entries of the right kind but lacking the key used
        # to enter the denominator as zeros and drag the mean toward 0.
        j = EventJournal()
        j.record(0.0, "deliver", "n0", latency=2.0)
        j.record(1.0, "deliver", "n0")  # no latency detail
        j.record(2.0, "deliver", "n0", latency=4.0)
        assert j.mean("deliver", "latency") == pytest.approx(3.0)
        # total() keeps its sum-over-all-entries semantics.
        assert j.total("deliver", "latency") == pytest.approx(6.0)

    def test_mean_with_no_carrying_entries_raises(self):
        j = EventJournal()
        j.record(0.0, "deliver", "n0")
        with pytest.raises(ValueError, match="no 'deliver' entries"):
            j.mean("deliver", "latency")

    def test_tail(self):
        j = make_journal()
        assert [e.kind for e in j.tail(2)] == ["sense", "handover"]
        assert j.tail(0) == []
        with pytest.raises(ValueError):
            j.tail(-1)

    def test_tail_edge_lengths(self):
        j = make_journal()
        # Asking for more than exists returns everything, in order.
        assert j.tail(100) == j.entries
        assert EventJournal().tail(0) == []
        assert EventJournal().tail(5) == []


class TestDeterminismWitness:
    def test_equal_traces_compare_equal(self):
        assert make_journal() == make_journal()
        assert journals_equal(make_journal(), make_journal())

    def test_any_divergence_breaks_equality(self):
        a, b = make_journal(), make_journal()
        b.record(2.0, "extra")
        assert a != b
        assert not journals_equal(a, b)

    def test_digest_is_stable_and_sensitive(self):
        assert make_journal().digest() == make_journal().digest()
        other = make_journal()
        other.record(9.0, "late")
        assert other.digest() != make_journal().digest()
        # A float differing only in the last bit must change the digest.
        a, b = EventJournal(), EventJournal()
        a.record(0.1 + 0.2, "x")
        b.record(0.3, "x")
        assert a.digest() != b.digest()

    def test_render_mentions_counters(self):
        text = make_journal().render(n_tail=2)
        assert "4 entries" in text
        assert "sense" in text and "handover" in text

    def test_render_empty_journal(self):
        text = EventJournal().render()
        assert text == "event journal: 0 entries"

    def test_render_with_zero_tail(self):
        text = make_journal().render(n_tail=0)
        assert "4 entries" in text
        assert "last" not in text


class TestExport:
    def test_jsonl_round_trips(self, tmp_path):
        j = make_journal()
        path = write_journal_jsonl(j, tmp_path / "trace.jsonl")
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(rows) == len(j)
        assert rows[0]["kind"] == "sense"
        assert rows[3]["target"] == "cell-r0c1"

    def test_entry_is_frozen(self):
        entry = JournalEntry(seq=0, time=0.0, kind="x")
        with pytest.raises(AttributeError):
            entry.kind = "y"
