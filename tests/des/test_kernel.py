"""The discrete-event kernel: ordering, determinism, processes."""

import pytest

from repro.des import EventJournal, EventScheduler


class TestScheduling:
    def test_events_fire_in_time_order(self):
        s = EventScheduler()
        fired = []
        s.schedule(2.0, "b", lambda e: fired.append(e.kind))
        s.schedule(1.0, "a", lambda e: fired.append(e.kind))
        s.schedule(3.0, "c", lambda e: fired.append(e.kind))
        assert s.run() == 3
        assert fired == ["a", "b", "c"]
        assert s.now == 3.0

    def test_same_time_ties_break_by_insertion_order(self):
        s = EventScheduler()
        fired = []
        for name in ("first", "second", "third"):
            s.schedule(1.0, name, lambda e: fired.append(e.kind))
        s.run()
        assert fired == ["first", "second", "third"]

    def test_priority_beats_insertion_order(self):
        s = EventScheduler()
        fired = []
        s.schedule(1.0, "late", lambda e: fired.append(e.kind), priority=1)
        s.schedule(1.0, "early", lambda e: fired.append(e.kind), priority=0)
        s.run()
        assert fired == ["early", "late"]

    def test_run_until_stops_before_later_events(self):
        s = EventScheduler()
        fired = []
        s.schedule(1.0, "in", lambda e: fired.append(e.kind))
        s.schedule(5.0, "out", lambda e: fired.append(e.kind))
        assert s.run(until_s=2.0) == 1
        assert fired == ["in"]
        assert s.pending == 1

    def test_callback_may_schedule_more_events(self):
        s = EventScheduler()
        fired = []

        def chain(event):
            fired.append(s.now)
            if len(fired) < 3:
                s.schedule(1.0, "chain", chain)

        s.schedule(1.0, "chain", chain)
        s.run()
        assert fired == [1.0, 2.0, 3.0]

    def test_max_events_bounds_cascades(self):
        s = EventScheduler()

        def forever(event):
            s.schedule(0.1, "again", forever)

        s.schedule(0.0, "again", forever)
        assert s.run(max_events=25) == 25

    def test_cancel_prevents_dispatch(self):
        s = EventScheduler()
        fired = []
        handle = s.schedule(1.0, "x", lambda e: fired.append(e.kind))
        handle.cancel()
        assert handle.cancelled
        assert s.run() == 0
        assert fired == []

    def test_payload_travels_with_the_event(self):
        s = EventScheduler()
        seen = {}
        s.schedule(1.0, "x", lambda e: seen.update({"v": e.get("value")}),
                   value=42)
        s.run()
        assert seen == {"v": 42}

    def test_validation(self):
        s = EventScheduler()
        with pytest.raises(ValueError):
            s.schedule(-1.0, "x")
        s.schedule(1.0, "x")
        s.run()
        with pytest.raises(ValueError):
            s.schedule_at(0.5, "past")
        with pytest.raises(ValueError):
            s.run(until_s=0.0)


class TestProcesses:
    def test_process_resumes_at_yielded_delays(self):
        s = EventScheduler()
        times = []

        def proc():
            for _ in range(3):
                times.append(s.now)
                yield 2.0

        s.spawn(proc())
        s.run()
        assert times == [0.0, 2.0, 4.0]

    def test_process_ends_on_return(self):
        s = EventScheduler()

        def proc():
            yield 1.0

        handle = s.spawn(proc())
        assert handle.alive
        s.run()
        assert not handle.alive

    def test_cancel_stops_the_process(self):
        s = EventScheduler()
        ticks = []

        def proc():
            while True:
                ticks.append(s.now)
                yield 1.0

        handle = s.spawn(proc())
        s.run(until_s=2.5)
        handle.cancel()
        s.run(until_s=10.0)
        assert ticks == [0.0, 1.0, 2.0]
        assert not handle.alive

    def test_two_schedulers_same_script_identical_journals(self):
        def build():
            journal = EventJournal()
            s = EventScheduler(journal=journal)

            def proc():
                while s.now < 3.0:
                    yield 1.0

            s.spawn(proc(), name="ticker")
            s.schedule(1.5, "midway", actor="external")
            s.run(until_s=5.0)
            return journal

        assert build() == build()
        assert build().digest() == build().digest()
