"""The discrete-event kernel: ordering, determinism, processes."""

import pytest

from repro.des import EventJournal, EventScheduler


class TestScheduling:
    def test_events_fire_in_time_order(self):
        s = EventScheduler()
        fired = []
        s.schedule(2.0, "b", lambda e: fired.append(e.kind))
        s.schedule(1.0, "a", lambda e: fired.append(e.kind))
        s.schedule(3.0, "c", lambda e: fired.append(e.kind))
        assert s.run() == 3
        assert fired == ["a", "b", "c"]
        assert s.now == 3.0

    def test_same_time_ties_break_by_insertion_order(self):
        s = EventScheduler()
        fired = []
        for name in ("first", "second", "third"):
            s.schedule(1.0, name, lambda e: fired.append(e.kind))
        s.run()
        assert fired == ["first", "second", "third"]

    def test_priority_beats_insertion_order(self):
        s = EventScheduler()
        fired = []
        s.schedule(1.0, "late", lambda e: fired.append(e.kind), priority=1)
        s.schedule(1.0, "early", lambda e: fired.append(e.kind), priority=0)
        s.run()
        assert fired == ["early", "late"]

    def test_run_until_stops_before_later_events(self):
        s = EventScheduler()
        fired = []
        s.schedule(1.0, "in", lambda e: fired.append(e.kind))
        s.schedule(5.0, "out", lambda e: fired.append(e.kind))
        assert s.run(until_s=2.0) == 1
        assert fired == ["in"]
        assert s.pending == 1

    def test_callback_may_schedule_more_events(self):
        s = EventScheduler()
        fired = []

        def chain(event):
            fired.append(s.now)
            if len(fired) < 3:
                s.schedule(1.0, "chain", chain)

        s.schedule(1.0, "chain", chain)
        s.run()
        assert fired == [1.0, 2.0, 3.0]

    def test_max_events_bounds_cascades(self):
        s = EventScheduler()

        def forever(event):
            s.schedule(0.1, "again", forever)

        s.schedule(0.0, "again", forever)
        assert s.run(max_events=25) == 25

    def test_cancel_prevents_dispatch(self):
        s = EventScheduler()
        fired = []
        handle = s.schedule(1.0, "x", lambda e: fired.append(e.kind))
        handle.cancel()
        assert handle.cancelled
        assert s.run() == 0
        assert fired == []

    def test_payload_travels_with_the_event(self):
        s = EventScheduler()
        seen = {}
        s.schedule(1.0, "x", lambda e: seen.update({"v": e.get("value")}),
                   value=42)
        s.run()
        assert seen == {"v": 42}

    def test_validation(self):
        s = EventScheduler()
        with pytest.raises(ValueError):
            s.schedule(-1.0, "x")
        s.schedule(1.0, "x")
        s.run()
        with pytest.raises(ValueError):
            s.schedule_at(0.5, "past")
        with pytest.raises(ValueError):
            s.run(until_s=0.0)


class TestProcesses:
    def test_process_resumes_at_yielded_delays(self):
        s = EventScheduler()
        times = []

        def proc():
            for _ in range(3):
                times.append(s.now)
                yield 2.0

        s.spawn(proc())
        s.run()
        assert times == [0.0, 2.0, 4.0]

    def test_process_ends_on_return(self):
        s = EventScheduler()

        def proc():
            yield 1.0

        handle = s.spawn(proc())
        assert handle.alive
        s.run()
        assert not handle.alive

    def test_cancel_stops_the_process(self):
        s = EventScheduler()
        ticks = []

        def proc():
            while True:
                ticks.append(s.now)
                yield 1.0

        handle = s.spawn(proc())
        s.run(until_s=2.5)
        handle.cancel()
        s.run(until_s=10.0)
        assert ticks == [0.0, 1.0, 2.0]
        assert not handle.alive

    def test_two_schedulers_same_script_identical_journals(self):
        def build():
            journal = EventJournal()
            s = EventScheduler(journal=journal)

            def proc():
                while s.now < 3.0:
                    yield 1.0

            s.spawn(proc(), name="ticker")
            s.schedule(1.5, "midway", actor="external")
            s.run(until_s=5.0)
            return journal

        assert build() == build()
        assert build().digest() == build().digest()


class TestHeapCompaction:
    def test_pending_counts_live_events_only(self):
        s = EventScheduler()
        handles = [s.schedule(float(i + 1), "x") for i in range(10)]
        assert s.pending == 10
        for handle in handles[:4]:
            handle.cancel()
        assert s.pending == 6

    def test_compaction_drops_cancelled_heap_entries(self):
        s = EventScheduler(compact_min_pending=8, compact_fraction=0.25)
        handles = [s.schedule(float(i + 1), "x") for i in range(16)]
        for handle in handles[:8]:
            handle.cancel()
        # The dead entries were physically removed, not just skipped.
        assert len(s._heap) == s.pending == 8

    def test_cancel_is_idempotent_in_the_count(self):
        s = EventScheduler()
        handle = s.schedule(1.0, "x")
        s.schedule(2.0, "y")
        handle.cancel()
        handle.cancel()
        assert s.pending == 1

    def test_cancel_after_dispatch_keeps_the_count_honest(self):
        s = EventScheduler()
        first = s.schedule(1.0, "x")
        later = s.schedule(2.0, "y")
        s.step()
        first.cancel()  # late cancel of an already-dispatched event
        assert s.pending == 1
        later.cancel()
        assert s.pending == 0

    def test_compaction_never_changes_dispatch_order_or_journal(self):
        def build(compact_min: int):
            journal = EventJournal()
            s = EventScheduler(journal=journal,
                               compact_min_pending=compact_min,
                               compact_fraction=0.01)
            fired = []
            handles = [
                s.schedule(float(i % 7), "tick",
                           lambda e: fired.append(e.seq), actor=f"a{i:02d}")
                for i in range(40)
            ]
            for handle in handles[1::2]:
                handle.cancel()
            s.run()
            return fired, journal

        aggressive_fired, aggressive_journal = build(2)
        lazy_fired, lazy_journal = build(10**6)
        assert aggressive_fired == lazy_fired
        assert aggressive_journal.digest() == lazy_journal.digest()

    def test_validation(self):
        with pytest.raises(ValueError):
            EventScheduler(compact_fraction=0.0)
        with pytest.raises(ValueError):
            EventScheduler(compact_min_pending=0)


class TestProcessFailures:
    def test_negative_delay_raises_with_the_process_name(self):
        journal = EventJournal()
        s = EventScheduler(journal=journal)

        def proc():
            yield 1.0
            yield -0.5

        handle = s.spawn(proc(), name="bad-timer")
        with pytest.raises(ValueError, match="bad-timer"):
            s.run()
        assert not handle.alive
        assert handle._pending is None
        errors = [e for e in journal.entries if e.kind == "process-error"]
        assert len(errors) == 1
        assert errors[0].actor == "bad-timer"
        assert "negative delay" in errors[0].get("error")

    def test_process_exception_is_journaled_and_reraised(self):
        journal = EventJournal()
        s = EventScheduler(journal=journal)

        def proc():
            yield 1.0
            raise RuntimeError("boom")

        handle = s.spawn(proc(), name="exploder")
        with pytest.raises(RuntimeError, match="boom"):
            s.run()
        assert not handle.alive
        assert handle._pending is None
        errors = [e for e in journal.entries if e.kind == "process-error"]
        assert [e.get("error") for e in errors] == ["RuntimeError: boom"]

    def test_failed_process_ignores_late_cancel(self):
        s = EventScheduler()

        def proc():
            yield -1.0

        handle = s.spawn(proc(), name="doomed")
        with pytest.raises(ValueError):
            s.run()
        handle.cancel()  # must not blow up on the cleared pending event
        assert not handle.alive
