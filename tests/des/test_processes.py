"""The DES adapters: Wi-Fi feedback plane and stop-and-wait MAC."""

import numpy as np
import pytest

from repro.core import SlotErrorModel, SystemConfig
from repro.des import DesFeedbackPlane, DesStopAndWaitMac, EventJournal, \
    EventScheduler
from repro.link import StopAndWaitMac, WifiUplink
from repro.net import AmbientReport, FeedbackCollector
from repro.schemes import AmppmScheme


@pytest.fixture
def design():
    return AmppmScheme(SystemConfig()).design(0.5)


def make_plane(uplink=None, **collector_kwargs):
    scheduler = EventScheduler()
    journal = EventJournal()
    collector = FeedbackCollector(uplink=uplink or WifiUplink(),
                                  **collector_kwargs)
    return scheduler, journal, DesFeedbackPlane(scheduler, journal, collector)


class TestFeedbackPlane:
    def test_report_arrives_after_wifi_latency(self, rng):
        uplink = WifiUplink(latency_s=2e-3, jitter_s=0.0)
        scheduler, journal, plane = make_plane(uplink)
        assert plane.submit(AmbientReport("n0", 0.5, sensed_at=0.0), rng)
        # Not delivered until the arrival event dispatches.
        assert plane.estimate() is None
        scheduler.run()
        assert scheduler.now == pytest.approx(2e-3)
        assert plane.estimate() == pytest.approx(0.5)
        (arrival,) = journal.of_kind("report-arrival")
        assert arrival.get("latency") == pytest.approx(2e-3)

    def test_lossy_uplink_journals_the_loss(self, rng):
        uplink = WifiUplink(loss_probability=0.999999999)
        scheduler, journal, plane = make_plane(uplink)
        assert not plane.submit(AmbientReport("n0", 0.5, sensed_at=0.0), rng)
        assert journal.count("report-lost") == 1
        assert journal.of_kind("report-lost")[0].get("reason") == "wifi-loss"

    def test_outage_drops_everything_and_is_journaled(self, rng):
        scheduler, journal, plane = make_plane()
        plane.set_outage(True)
        assert not plane.submit(AmbientReport("n0", 0.5, sensed_at=0.0), rng)
        assert journal.of_kind("report-lost")[0].get("reason") == "outage"
        plane.set_outage(False)
        assert plane.submit(AmbientReport("n0", 0.6, sensed_at=0.1), rng)
        assert journal.count("uplink-outage") == 1
        assert journal.count("uplink-restored") == 1

    def test_freshest_sensing_wins_across_out_of_order_arrivals(self, rng):
        scheduler, journal, plane = make_plane(
            WifiUplink(latency_s=1e-3, jitter_s=0.0))
        plane.submit(AmbientReport("n0", 0.9, sensed_at=0.0), rng)
        scheduler.run()
        # An older sensing delivered later must not override.
        plane.collector.deliver(AmbientReport("n0", 0.1, sensed_at=-1.0),
                                arrival=scheduler.now)
        assert plane.estimate() == pytest.approx(0.9)


class TestDesMac:
    def test_clean_channel_matches_analytic_mac(self, design):
        config = SystemConfig()
        scheduler = EventScheduler()
        mac = DesStopAndWaitMac(scheduler, EventJournal(), config,
                                uplink=WifiUplink(jitter_s=0.0))
        rng = np.random.default_rng(7)
        stats = mac.transfer(25, design, SlotErrorModel.ideal(), rng,
                             payload_bytes=64)
        scheduler.run()
        assert stats.frames_delivered == 25
        assert stats.retransmissions == 0
        analytic = StopAndWaitMac(config, uplink=WifiUplink(jitter_s=0.0))
        expected = analytic.expected_throughput(design,
                                                SlotErrorModel.ideal(),
                                                payload_bytes=64)
        assert stats.throughput_bps == pytest.approx(expected, rel=0.05)

    def test_hopeless_channel_times_out_and_abandons(self, design):
        scheduler = EventScheduler()
        journal = EventJournal()
        mac = DesStopAndWaitMac(scheduler, journal, SystemConfig(),
                                max_retries=2)
        rng = np.random.default_rng(7)
        stats = mac.transfer(1, design, SlotErrorModel(0.5, 0.5), rng)
        scheduler.run()
        assert stats.frames_delivered == 0
        assert stats.frames_sent == 3  # 1 + 2 retries
        assert journal.count("ack-timeout") == 3
        assert journal.count("frame-abandoned") == 1
        # Elapsed time includes the airtime + timeout of every attempt.
        assert stats.elapsed_s > 3 * mac.ack_timeout_s

    def test_retransmissions_happen_on_the_des_clock(self, design):
        scheduler = EventScheduler()
        journal = EventJournal()
        mac = DesStopAndWaitMac(scheduler, journal, SystemConfig())
        rng = np.random.default_rng(3)
        stats = mac.transfer(10, design, SlotErrorModel(2e-3, 2e-3), rng)
        scheduler.run()
        # Every frame ends delivered or abandoned; retries show up both in
        # the stats and as journaled timeout events on the shared clock.
        assert stats.frames_delivered \
            + journal.count("frame-abandoned") == 10
        assert stats.retransmissions > 0
        if stats.retransmissions:
            # A timeout only counts as a retransmission when a retry is
            # actually sent; the final timeout of an abandoned frame is
            # journaled but not counted.
            timeouts = journal.of_kind("ack-timeout")
            assert len(timeouts) == stats.retransmissions \
                + journal.count("frame-abandoned")
            assert all(e.time <= scheduler.now for e in timeouts)

    def test_validation(self, design, rng):
        scheduler = EventScheduler()
        with pytest.raises(ValueError):
            DesStopAndWaitMac(scheduler, EventJournal(), ack_timeout_s=0.0)
        with pytest.raises(ValueError):
            DesStopAndWaitMac(scheduler, EventJournal(), max_retries=-1)
        mac = DesStopAndWaitMac(scheduler, EventJournal())
        with pytest.raises(ValueError):
            mac.transfer(0, design, SlotErrorModel.ideal(), rng)
