"""Bench: regenerate Fig. 16 (throughput vs distance)."""

from repro.experiments import run_experiment


def test_bench_fig16(bench, config):
    fig = bench(run_experiment, "fig16", config=config)
    print("\n" + fig.render(width=64, height=12))
    mid = fig.get("dimming=0.5")
    assert mid.value_at(3.0) > 0.95 * mid.y_max   # flat to the knee
    assert mid.value_at(5.0) < 0.2 * mid.y_max    # cliff after 3.6 m
