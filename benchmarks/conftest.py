"""Benchmark fixtures.

Every bench regenerates one of the paper's artefacts through the same
registry the tests use, asserts its headline shape, and times the
regeneration.  Heavy harnesses run ``pedantic`` with a single round —
the point is the artefact, not micro-timing.
"""

from __future__ import annotations

import pytest

from repro.core import SystemConfig


@pytest.fixture(scope="session")
def config() -> SystemConfig:
    return SystemConfig()


def run_once(benchmark, func, *args, **kwargs):
    """Benchmark a heavy experiment with one round, returning its result."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)
