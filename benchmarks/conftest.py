"""Benchmark fixtures.

Every bench regenerates one of the paper's artefacts through the same
registry the tests use, asserts its headline shape, and times the
regeneration through the shared :class:`repro.obs.bench.BenchRunner`:
warmup calls first, then best-of-k timing, so a single cold run can
never masquerade as a regression (or an improvement).  At the end of
the session every record is appended to ``BENCH_HISTORY.jsonl`` at the
repository root — the same append-only store ``repro bench`` gates
against.

Environment knobs: ``REPRO_BENCH_REPEATS`` / ``REPRO_BENCH_WARMUP``
override the timing discipline (defaults 3 and 1), and
``REPRO_BENCH_HISTORY`` points the history somewhere else (set it
empty to skip recording).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.core import SystemConfig
from repro.obs.bench import BenchRunner, append_history

REPO_ROOT = Path(__file__).resolve().parent.parent
REPEATS = int(os.environ.get("REPRO_BENCH_REPEATS", "3"))
WARMUP = int(os.environ.get("REPRO_BENCH_WARMUP", "1"))
HISTORY = os.environ.get("REPRO_BENCH_HISTORY",
                         str(REPO_ROOT / "BENCH_HISTORY.jsonl"))


@pytest.fixture(scope="session")
def config() -> SystemConfig:
    return SystemConfig()


@pytest.fixture(scope="session")
def bench_runner():
    """One BenchRunner per session; records flush to the history file."""
    runner = BenchRunner(repeats=REPEATS, warmup=WARMUP)
    yield runner
    if HISTORY and runner.records:
        append_history(runner.records, HISTORY)


@pytest.fixture
def bench(bench_runner, request):
    """Time ``func`` warmup + best-of-k; returns the last call's result.

    The workload name defaults to the test name with the
    ``test_bench_`` prefix stripped, underscores dotted, and a
    ``suite.`` namespace prepended (``test_bench_fig04`` times
    workload ``suite.fig04``) — the key its history is filed under.
    The namespace keeps pytest-derived labels from ever colliding
    with the ``repro bench`` CLI workloads, which share the history
    file.  Per-call ``repeats``/``warmup`` override the session
    defaults for workloads that need more samples (or, for the very
    heavy ones, fewer); an explicit ``name=`` is used verbatim.
    """
    def run(func, *args, name=None, repeats=None, warmup=None, **kwargs):
        label = name
        if label is None:
            label = request.node.name
            for prefix in ("test_bench_", "test_"):
                if label.startswith(prefix):
                    label = label[len(prefix):]
                    break
            label = "suite." + label.replace("_", ".")
        _, result = bench_runner.run(label, func, *args, repeats=repeats,
                                     warmup=warmup, **kwargs)
        return result

    return run
