"""Bench: the serving control plane.

Races the coalesced adapt path (one designer call per unique dimming
bucket, via :meth:`AmppmDesigner.design_many`) against the
one-call-per-request baseline a stateless handler would pay (a fresh
memo per request), and pins the speedup floor the coalescer promises
(>= 3x).  A second bench runs the real daemon end to end under the
seeded synthetic fleet and records throughput and tail latency.
Everything lands in ``BENCH_serve.json`` at the repository root, and
the timed sections flow into ``BENCH_HISTORY.jsonl`` through the
shared bench fixture.
"""

import asyncio
import json
import time
from pathlib import Path

import pytest

from repro.core import AmppmDesigner
from repro.serve import ControlPlane, LoadProfile, ServeConfig, run_loadgen

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_serve.json"

#: Eight distinct dimming buckets, each asked for many times — the
#: shape a fleet of lighting controllers produces (few setpoints, many
#: luminaires).
LEVELS = (0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)
REQUESTS = LEVELS * 30


@pytest.mark.perf
def test_bench_serve_coalescing(bench, config):
    """Coalesced batch vs one-designer-call-per-request: >= 3x."""
    template = AmppmDesigner(config)

    def uncoalesced():
        # The stateless-handler baseline: every request designs with a
        # fresh memo, exactly what one-call-per-request costs.
        return [template.fork().design(d) for d in REQUESTS]

    def coalesced():
        return template.fork().design_many(REQUESTS)

    def best_of(func, k=3):
        times, result = [], None
        for _ in range(k):
            t0 = time.perf_counter()
            result = func()
            times.append(time.perf_counter() - t0)
        return min(times), result

    t_uncoalesced, direct = best_of(uncoalesced)
    t_coalesced, batched = best_of(coalesced)
    bench(coalesced, name="suite.serve.coalesce")

    # Same designs either way (the parity half of the contract).
    assert len(batched) == len(direct) == len(REQUESTS)
    for a, b in zip(direct, batched):
        assert a.super_symbol == b.super_symbol

    speedup = t_uncoalesced / t_coalesced if t_coalesced > 0 else float("inf")
    payload = json.loads(BENCH_JSON.read_text()) if BENCH_JSON.exists() else {}
    payload["coalescing"] = {
        "requests": len(REQUESTS),
        "unique_buckets": len(LEVELS),
        "uncoalesced_s": round(t_uncoalesced, 4),
        "coalesced_s": round(t_coalesced, 4),
        "speedup": round(speedup, 2),
        "floor": 3.0,
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\nserve coalescing: {len(REQUESTS)} requests, "
          f"uncoalesced {t_uncoalesced * 1e3:.0f} ms, "
          f"coalesced {t_coalesced * 1e3:.0f} ms -> {speedup:.1f}x")

    # The acceptance floor for the coalescing work.
    assert speedup >= 3.0


@pytest.mark.perf
def test_bench_serve_adapt(bench, config):
    """The daemon end to end under the synthetic fleet."""
    profile = LoadProfile(clients=40, requests_per_client=5, seed=17)

    def fleet():
        async def run():
            plane = ControlPlane(ServeConfig(coalesce_window_s=0.002),
                                 config=config)
            await plane.start()
            try:
                report = await run_loadgen(plane.host, plane.port, profile)
            finally:
                await plane.stop()
            return report, plane

        return asyncio.run(run())

    report, plane = bench(fleet)

    assert report.sent == profile.total_requests
    assert report.dropped_connections == 0
    assert report.errors == 0

    payload = json.loads(BENCH_JSON.read_text()) if BENCH_JSON.exists() else {}
    payload["fleet"] = {
        "clients": profile.clients,
        "requests_per_client": profile.requests_per_client,
        "coalesce_window_ms": 2.0,
        "coalesce_ratio": round(plane.coalescer.coalesce_ratio, 3),
        **{k: (round(v, 3) if isinstance(v, float) else v)
           for k, v in report.summary().items()},
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\nserve fleet: {report.ok}/{report.sent} ok at "
          f"{report.throughput_rps:.0f} adapt/s, "
          f"p95 {report.latency_percentile(95) * 1e3:.1f} ms, "
          f"coalesce ratio {plane.coalescer.coalesce_ratio:.2f}")
