"""Bench: regenerate Fig. 10 (adaptation step domains)."""

from repro.experiments import run_experiment


def test_bench_fig10(bench, config):
    fig = bench(run_experiment, "fig10", config=config)
    print("\n" + fig.render(width=64, height=12))
    measured = int(fig.notes.split("measured-domain ")[1].split(",")[0])
    perceived = int(fig.notes.split("perceived-domain ")[1].split(" ")[0])
    assert perceived < measured
