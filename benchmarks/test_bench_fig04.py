"""Bench: regenerate Fig. 4 (SER vs dimming level in MPPM)."""

from repro.experiments import run_experiment


def test_bench_fig04(bench, config):
    fig = bench(run_experiment, "fig04", config=config)
    print("\n" + fig.render(width=64, height=12))
    # Shape: SER rises with N at every dimming level.
    n10 = fig.get("N=10")
    n120 = fig.get("N=120")
    assert max(n10.y) < min(n120.y)
