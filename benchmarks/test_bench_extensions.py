"""Benches for the extension experiments (beyond the paper's figures)."""

from repro.experiments import run_experiment


def test_bench_ext_energy(bench, config):
    table = bench(run_experiment, "ext-energy", config=config)
    print("\n" + table.render())
    saving = dict(table.rows)["saving fraction"]
    assert saving.endswith("%")
    assert int(saving.rstrip("%")) > 20


def test_bench_ext_room(bench, config):
    fig = bench(run_experiment, "ext-room", config=config)
    print("\n" + fig.render(width=64, height=10))
    # Every default desk stays linked for the whole run.
    assert "link-down samples: 0" in fig.notes


def test_bench_ext_payload(bench, config):
    fig = bench(run_experiment, "ext-payload", config=config)
    print("\n" + fig.render(width=64, height=10))
    ampem = fig.get("AMPPM")
    assert ampem.y[-1] > ampem.y[0]


def test_bench_ext_serbound(bench, config):
    table = bench(run_experiment, "ext-serbound", config=config)
    print("\n" + table.render())
    assert any("(default)" in row[0] for row in table.rows)


def test_bench_ext_burst(bench, config):
    fig = bench(run_experiment, "ext-burst", config=config)
    print("\n" + fig.render(width=64, height=10))
    bursty = fig.get("bursty (Gilbert-Elliott)")
    iid = fig.get("iid, same avg error rate")
    assert all(b <= i + 1e-9 for b, i in zip(bursty.y, iid.y))
