"""Bench: regenerate Fig. 19 — the 67 s dynamic scenario (all panels)."""

from repro.experiments import run_experiment
from repro.experiments.fig19_dynamic import run_scenario


def test_bench_fig19(bench, config):
    result = bench(run_scenario, config=config)
    for panel in ("fig19a", "fig19b", "fig19c"):
        fig = run_experiment(panel, result=result)
        print("\n" + fig.render(width=64, height=10))
    assert 0.4 <= result.adaptation_reduction <= 0.6
    assert max(result.sum_trace) - min(result.sum_trace) < 1e-6
