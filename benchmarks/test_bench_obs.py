"""Bench: telemetry overhead on the batched Monte-Carlo hot path.

The permanent instrumentation in :mod:`repro.sim.batch` is only
acceptable if it is effectively free.  This bench times the batched
SER validator with telemetry off (the default null path) and again
under an active session — both through the shared
:class:`~repro.obs.bench.BenchRunner` discipline (warmup, then
best-of-k) — asserts the identical estimate both ways, and guards the
overhead ratio at < 5%.  The ratio is clamped at zero: timing jitter
can make the instrumented run measure *faster* than the null path,
and a negative "overhead" is noise, not a speedup.  Emits
``BENCH_obs.json`` at the repository root so the overhead trajectory
is recorded run over run.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.core.errormodel import SlotErrorModel
from repro.core.symbols import SymbolPattern
from repro.obs import render_prometheus, telemetry_session
from repro.obs.bench import BenchRunner
from repro.sim.batch import BatchMonteCarloValidator

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_obs.json"

N_SYMBOLS = 50_000
PATTERN = SymbolPattern(30, 15)
ERRORS = SlotErrorModel(2e-3, 2e-3)
REPEATS = 5


def _run_ser(validator):
    return validator.symbol_error_rate(PATTERN, ERRORS,
                                       np.random.default_rng(7),
                                       n_symbols=N_SYMBOLS)


@pytest.mark.perf
def test_bench_obs_overhead(bench, config):
    validator = BatchMonteCarloValidator(config=config)

    # The off/on comparison needs a matched pair of best-of-k timings,
    # so measure both legs on a local runner with the same discipline
    # (the shared session runner still records the off leg for the
    # history file, via the ``bench`` fixture below).
    pair = BenchRunner(repeats=REPEATS, warmup=1)
    off_record, baseline = pair.measure("obs.overhead.off",
                                        _run_ser, validator)

    def traced():
        with telemetry_session() as session:
            estimate = _run_ser(validator)
        return estimate, session

    on_record, (traced_estimate, session) = pair.measure(
        "obs.overhead.on", traced)
    t_off, t_on = off_record.min_s, on_record.min_s
    bench(_run_ser, validator, name="suite.obs.overhead", repeats=REPEATS)

    # Telemetry observes — the estimate must be bit-identical either way.
    assert traced_estimate == baseline
    registry = session.registry
    assert (registry.counter("repro_batch_symbols_total").value()
            == N_SYMBOLS)
    assert "repro_batch_symbols_total" in render_prometheus(registry)

    # Clamp at zero: min-of-k jitter can dip below the null path.
    overhead = max(0.0, t_on / t_off - 1.0)
    payload = {
        "bench": "obs",
        "n_symbols": N_SYMBOLS,
        "pattern": f"S({PATTERN.n_slots},{PATTERN.n_on})",
        "telemetry_off_s": round(t_off, 5),
        "telemetry_on_s": round(t_on, 5),
        "overhead_fraction": round(overhead, 4),
        "symbols_per_s_off": round(N_SYMBOLS / t_off, 0),
        "symbols_per_s_on": round(N_SYMBOLS / t_on, 0),
        "measured_ser": baseline.measured_ser,
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\nobs: batched SER {N_SYMBOLS} symbols — off {t_off * 1e3:.1f} ms,"
          f" on {t_on * 1e3:.1f} ms ({overhead * 100:+.1f}%) "
          f"-> {BENCH_JSON.name}")

    # The guard: an enabled session must cost < 5% on the hot path.
    assert overhead < 0.05, (
        f"telemetry overhead {overhead * 100:.1f}% exceeds the 5% budget")
