"""Bench: regenerate Fig. 9 (slope-based envelope over [0.5, 0.7])."""

from repro.experiments import run_experiment


def test_bench_fig09(bench, config):
    fig = bench(run_experiment, "fig09", config=config)
    print("\n" + fig.render(width=64, height=12))
    env = fig.get("AMPPM (envelope)")
    stairs = fig.get("without multiplexing")
    assert all(e >= s - 0.02 for e, s in zip(env.y, stairs.y))
