"""Bench: fuzz-campaign throughput.

Times a seeded in-process campaign over the cheap oracles (the mix CI's
``fuzz-smoke`` job runs), re-checks the determinism contract (two
same-seed campaigns, identical digests, zero findings), and emits
``BENCH_fuzz.json`` at the repository root so execs/s is recorded run
over run alongside the other subsystems.
"""

import json
import time
from pathlib import Path

import pytest

from repro.fuzz import CampaignConfig, run_campaign

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_fuzz.json"

ORACLES = ("codec", "roundtrip", "design", "serve")
BUDGET = 120


@pytest.mark.perf
def test_bench_fuzz(bench):
    config = CampaignConfig(seed=0, budget=BUDGET, oracles=ORACLES)
    t0 = time.perf_counter()
    first = run_campaign(config)
    t_single = time.perf_counter() - t0
    assert first.clean, [f.detail for f in first.findings]
    assert first.executed == BUDGET

    second = bench(run_campaign, config)
    assert second.clean
    assert second.digest == first.digest

    payload = {
        "bench": "fuzz",
        "budget": BUDGET,
        "oracles": list(ORACLES),
        "campaign_s": round(t_single, 4),
        "execs_per_s": round(first.execs_per_s, 1),
        "by_oracle": dict(sorted(first.by_oracle.items())),
        "campaign_digest": first.digest,
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\nfuzz: {BUDGET}-case campaign {t_single:.2f} s "
          f"({first.execs_per_s:.0f} execs/s) -> {BENCH_JSON.name}")

    # The floor: the cheap-oracle mix must stay fast enough that the
    # CI smoke campaign (hundreds of cases) finishes in seconds.
    assert first.execs_per_s > 10.0
