"""Bench: regenerate Fig. 6 (dimming levels before/after multiplexing)."""

from repro.experiments import run_experiment


def test_bench_fig06(bench, config):
    fig = bench(run_experiment, "fig06", config=config)
    print("\n" + fig.render(width=64, height=12))
    assert len(fig.get("before").x) == 9
    assert len(fig.get("after").x) > 50
