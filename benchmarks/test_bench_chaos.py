"""Bench: the chaos harness and the ext-chaos sweep.

Times a single supervised chaos run, re-checks the determinism
contract (two same-seed runs, identical reports and digests), times
the full ``ext-chaos`` regeneration, and emits ``BENCH_chaos.json`` at
the repository root so the subsystem's performance trajectory is
recorded run over run.
"""

import json
import time
from pathlib import Path

import pytest

from repro.experiments import run_experiment
from repro.resilience import ChaosScenario, shipped_schedules

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_chaos.json"


@pytest.mark.perf
def test_bench_chaos(bench, config):
    schedule = shipped_schedules()["mixed"]
    scenario = ChaosScenario(config=config, schedule=schedule, seed=13)
    t0 = time.perf_counter()
    first = scenario.run()
    t_single = time.perf_counter() - t0
    second = scenario.run()
    assert first.report == second.report
    assert first.journal.digest() == second.journal.digest()

    t0 = time.perf_counter()
    figure = bench(run_experiment, "ext-chaos",
                   config=config, duration_s=40.0, seed=13)
    t_sweep = time.perf_counter() - t0

    supervised = figure.get("supervised goodput (Kbps)")
    baseline = figure.get("unsupervised goodput (Kbps)")
    assert all(s > u for s, u in zip(supervised.y, baseline.y))
    events_per_s = len(first.journal) / t_single if t_single > 0 else 0.0
    payload = {
        "bench": "chaos",
        "single_run_s": round(t_single, 4),
        "journal_events": len(first.journal),
        "events_per_s": round(events_per_s, 1),
        "sweep_s": round(t_sweep, 4),
        "supervised_goodput_kbps": {
            f"{int(x)}": round(y, 2)
            for x, y in zip(supervised.x, supervised.y)
        },
        "unsupervised_goodput_kbps": {
            f"{int(x)}": round(y, 2)
            for x, y in zip(baseline.x, baseline.y)
        },
        "time_to_detect_s": [round(y, 3)
                             for y in figure.get("time to detect (s)").y],
        "time_to_recover_s": [round(y, 3)
                              for y in figure.get("time to recover (s)").y],
        "journal_digest": first.journal.digest(),
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\nchaos: single mixed-schedule run {t_single * 1e3:.0f} ms "
          f"({events_per_s:.0f} events/s), 8-run sweep {t_sweep:.2f} s "
          f"-> {BENCH_JSON.name}")

    # The floor: a 40 s supervised chaos run must stay interactive.
    assert t_single < 5.0
