"""Bench: the abstract's summary claims, paper vs measured."""

from repro.experiments import run_experiment


def test_bench_headline(bench, config):
    table = bench(run_experiment, "headline", config=config)
    print("\n" + table.render())
    measured = {row[0]: row[2] for row in table.rows}
    assert measured["avg gain vs OOK-CT"].startswith("+")
    assert measured["avg gain vs MPPM"].startswith("+")
