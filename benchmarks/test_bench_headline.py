"""Bench: the abstract's summary claims, paper vs measured."""

from conftest import run_once

from repro.experiments import run_experiment


def test_bench_headline(benchmark, config):
    table = run_once(benchmark, run_experiment, "headline", config=config)
    print("\n" + table.render())
    measured = {row[0]: row[2] for row in table.rows}
    assert measured["avg gain vs OOK-CT"].startswith("+")
    assert measured["avg gain vs MPPM"].startswith("+")
