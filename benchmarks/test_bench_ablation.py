"""Ablation benches for the design choices DESIGN.md §4 calls out."""

import math

import pytest

from repro.core import (
    AmppmDesigner,
    SlotErrorModel,
    SystemConfig,
    encode_symbol,
    slope_walk_envelope,
    upper_concave_envelope,
)
from repro.core.combinatorics import iter_weighted_codewords


@pytest.fixture(scope="module")
def candidates():
    config = SystemConfig()
    return AmppmDesigner(config).candidates


class TestEnvelopeConstruction:
    """Slope walk vs exhaustive hull: same result, comparable cost."""

    def test_bench_slope_walk(self, bench, candidates):
        errors = SlotErrorModel(9e-5, 8e-5)
        env = bench(slope_walk_envelope, candidates, errors)
        reference = upper_concave_envelope(candidates, errors)
        lo, hi = env.dimming_range
        for i in range(51):
            x = lo + (hi - lo) * i / 50
            assert env.rate_at(x) == pytest.approx(reference.rate_at(x),
                                                   abs=1e-9)

    def test_bench_reference_hull(self, bench, candidates):
        errors = SlotErrorModel(9e-5, 8e-5)
        bench(upper_concave_envelope, candidates, errors)


class TestTwoPatternSufficiency:
    """Super-symbols of two patterns suffice: mixing three or more
    cannot beat the envelope chord (hull segments are straight)."""

    def test_bench_two_pattern_rate_is_optimal(self, bench, config):
        designer = AmppmDesigner(config)

        def best_designs():
            return [designer.design(l) for l in (0.15, 0.3, 0.45, 0.6, 0.75)]

        designs = bench(best_designs, repeats=1, warmup=0)
        for level, design in zip((0.15, 0.3, 0.45, 0.6, 0.75), designs):
            # Any convex combination of >= 3 candidate points is also a
            # convex combination of hull points, so the chord (evaluated
            # at the dimming level actually achieved) bounds it.
            rate = design.normalized_rate(designer.errors)
            ceiling = designer.envelope.rate_at(design.achieved_dimming)
            assert rate <= ceiling + 1e-9
            assert rate >= 0.93 * designer.envelope.rate_at(level)


class TestCodingVsTabulation:
    """Combinatorial dichotomy vs lookup tabulation (Section 4.4)."""

    N, K = 24, 12

    def test_bench_arithmetic_encoder(self, bench):
        # O(N) big-integer arithmetic, no table.
        values = list(range(0, 2**20, 4099))
        bench(lambda: [encode_symbol(v, self.N, self.K) for v in values])

    def test_bench_tabulation_encoder(self, bench):
        # The classical approach must materialise C(N, K) codewords
        # first; even at N=24 that is 2.7M entries (at N=50 it would be
        # the paper's 126 TB).
        def tabulate_and_encode():
            table = list(iter_weighted_codewords(16, 8))  # C(16,8)=12870
            return [table[v % len(table)] for v in range(0, 2**20, 4099)]

        bench(tabulate_and_encode, repeats=1, warmup=1)

    def test_table_size_explodes(self):
        # The memory argument: the tabulation footprint is super-
        # exponential in N while the arithmetic codec stays O(N).
        assert math.comb(50, 25) * 4 > 500e12  # the paper's 126 TB * 4B


class TestDesignerCost:
    """Building the whole designer (Steps 1-3) stays sub-second."""

    def test_bench_designer_construction(self, bench, config):
        designer = bench(AmppmDesigner, config, repeats=2, warmup=0)
        assert len(designer.candidates) > 1000

    def test_bench_design_lookup(self, bench, config):
        designer = AmppmDesigner(config)
        designer.design(0.37)  # warm the cache

        def lookup():
            return designer.design(0.37)

        result = bench(lookup)
        assert result.dimming_error <= config.tau_perceived
