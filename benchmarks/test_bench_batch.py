"""Bench: the vectorized Monte-Carlo engine vs the scalar reference.

Pins the acceptance criterion of the batch engine: a 50k-symbol SER run
must be at least an order of magnitude faster through
:class:`repro.sim.BatchMonteCarloValidator` than through the scalar
:class:`repro.sim.MonteCarloValidator`, while producing bit-identical
counts under the same seed.
"""

import time

import numpy as np
import pytest

from repro.core import SlotErrorModel, SymbolPattern
from repro.sim import BatchMonteCarloValidator, MonteCarloValidator

N_SYMBOLS = 50_000
PATTERN = SymbolPattern(30, 15)
ERRORS = SlotErrorModel(2e-3, 2e-3)
SEED = 21


@pytest.mark.perf
def test_bench_batch_ser_speedup(bench, config):
    scalar = MonteCarloValidator(config)
    batch = BatchMonteCarloValidator(config)

    def run_scalar():
        return scalar.symbol_error_rate(PATTERN, ERRORS,
                                        np.random.default_rng(SEED),
                                        n_symbols=N_SYMBOLS)

    def run_batch():
        return batch.symbol_error_rate(PATTERN, ERRORS,
                                       np.random.default_rng(SEED),
                                       n_symbols=N_SYMBOLS)

    # Warm both paths: the first NumPy dispatch pays one-off setup
    # costs that would otherwise masquerade as engine time.
    scalar.symbol_error_rate(PATTERN, ERRORS, np.random.default_rng(0),
                             n_symbols=500)
    batch.symbol_error_rate(PATTERN, ERRORS, np.random.default_rng(0),
                            n_symbols=500)

    t0 = time.perf_counter()
    scalar_estimate = run_scalar()
    t_scalar = time.perf_counter() - t0

    t_batch = min(
        (lambda s: (run_batch(), time.perf_counter() - s)[1])(
            time.perf_counter())
        for _ in range(3)
    )

    batch_estimate = bench(run_batch)
    print(f"\n{N_SYMBOLS} symbols S({PATTERN.n_slots},{PATTERN.n_on}): "
          f"scalar {t_scalar * 1e3:.0f} ms, batch {t_batch * 1e3:.1f} ms "
          f"({t_scalar / t_batch:.1f}x)")

    # Bit-identical, not merely statistically compatible.
    assert batch_estimate == scalar_estimate
    assert batch_estimate.consistent_with_analytic()
    # The acceptance floor: at least 10x on the 50k-symbol run.
    assert t_scalar >= 10.0 * t_batch
