"""Bench: regenerate Fig. 15 — the headline AMPPM/OOK-CT/MPPM comparison."""

from repro.experiments import run_experiment


def test_bench_fig15(bench, config):
    fig = bench(run_experiment, "fig15", config=config)
    print("\n" + fig.render(width=64, height=14))
    ampem = fig.get("AMPPM")
    ookct = fig.get("OOK-CT")
    mppm = fig.get("MPPM")
    # AMPPM never loses to MPPM, and loses to OOK-CT only around 0.5.
    assert all(a >= m - 1e-9 for a, m in zip(ampem.y, mppm.y))
    losing = [x for x, a, o in zip(ampem.x, ampem.y, ookct.y) if o > a]
    assert all(0.45 <= x <= 0.55 for x in losing)
