"""Bench: regenerate Fig. 17 (throughput vs incidence angle)."""

from repro.experiments import run_experiment


def test_bench_fig17(bench, config):
    fig = bench(run_experiment, "fig17", config=config)
    print("\n" + fig.render(width=64, height=12))
    near = fig.get("distance=1.3m")
    far = fig.get("distance=3.3m")
    assert min(near.y) > 0.9 * near.y_max   # short range holds throughout
    assert min(far.y) < 0.5 * far.y_max     # long range cuts off early
