"""Bench: regenerate Fig. 8 (candidate patterns under the SER bound)."""

from repro.experiments import run_experiment


def test_bench_fig08(bench, config):
    fig = bench(run_experiment, "fig08", config=config)
    print("\n" + fig.render(width=64, height=12))
    bound = fig.get("upper bound").y[0]
    assert max(fig.get("N=10").y) < bound
    assert max(fig.get("N=63").y) > bound
