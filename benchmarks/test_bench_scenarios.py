"""Bench: the trace-driven scenario engine.

Times the smallest shipped scenario (the CI smoke day) end to end —
compile, sharded-DES run, journal fold, SLO verdict — and reports the
engine's throughput in simulated room-hours per wall second, the unit
scenario capacity plans are written in.  A second bench runs the same
day sharded to pin the ``regions`` path.  Everything lands in
``BENCH_scenarios.json`` at the repository root, and the timed
sections flow into ``BENCH_HISTORY.jsonl`` through the shared bench
fixture.
"""

import json
import time
from pathlib import Path

import pytest

from repro.scenarios import SMOKE_SCENARIO, ScenarioRunner, shipped_scenarios

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_scenarios.json"


def _write(section: str, payload: dict) -> None:
    record = json.loads(BENCH_JSON.read_text()) if BENCH_JSON.exists() else {}
    record[section] = payload
    BENCH_JSON.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")


@pytest.mark.perf
def test_bench_scenario_smoke(bench, config):
    """The CI smoke day end to end: room-hours per wall second."""
    scenario = shipped_scenarios()[SMOKE_SCENARIO]

    def day():
        return ScenarioRunner(scenario, config=config).run()

    t0 = time.perf_counter()
    reference = day()
    cold_s = time.perf_counter() - t0
    run = bench(day, name="suite.scenario.smoke")

    report = run.report
    assert report.passed, report.violations
    assert report.journal_digest == reference.report.journal_digest
    assert report.metrics()["flicker_violations"] == 0.0

    _write("smoke", {
        "scenario": scenario.name,
        "duration_s": scenario.duration_s,
        "rooms": len(report.rooms),
        "occupants": scenario.population,
        "room_hours": round(report.scenario_hours, 3),
        "wall_s": round(cold_s, 3),
        "room_hours_per_s": round(report.scenario_hours / cold_s, 3),
        "journal_digest": report.journal_digest[:16],
        "slo": "PASS" if report.passed else "FAIL",
    })
    print(f"\nscenario smoke: {scenario.name}, "
          f"{report.scenario_hours:.2f} room-hours in {cold_s:.2f} s "
          f"-> {report.scenario_hours / cold_s:.2f} room-hours/s")


@pytest.mark.perf
def test_bench_scenario_sharded(bench, config):
    """The same day on the sharded kernel: determinism + conservation."""
    scenario = shipped_scenarios()[SMOKE_SCENARIO]
    regions = min(2, scenario.n_luminaires)

    def sharded_day():
        return ScenarioRunner(scenario, regions=regions,
                              config=config).run()

    reference = ScenarioRunner(scenario, config=config).run()
    run = bench(sharded_day, name="suite.scenario.sharded")

    assert run.report.passed, run.report.violations
    assert run.result.total_handovers == reference.result.total_handovers
    rerun = sharded_day()
    assert rerun.report.journal_digest == run.report.journal_digest

    _write("sharded", {
        "scenario": scenario.name,
        "regions": regions,
        "handovers": run.result.total_handovers,
        "journal_digest": run.report.journal_digest[:16],
        "replay_identical": True,
    })
    print(f"\nscenario sharded: regions={regions}, "
          f"{run.result.total_handovers} handovers, digest "
          f"{run.report.journal_digest[:12]} (replay identical)")
