"""Bench: the discrete-event multicell network simulator.

Times the ``ext-multicell`` regeneration, re-checks the determinism
contract (two same-seed runs, identical journals), and emits
``BENCH_multicell.json`` at the repository root so the subsystem's
performance trajectory is recorded run over run.
"""

import json
import time
from pathlib import Path

import pytest

from repro.des import journals_equal
from repro.experiments import run_experiment
from repro.net.multicell import default_network

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_multicell.json"
GRIDS = ((1, 1), (2, 2), (3, 3))


@pytest.mark.perf
def test_bench_multicell(bench, config):
    sim = default_network(config, rows=2, cols=2, n_nodes=4, seed=29)
    t0 = time.perf_counter()
    first = sim.run(30.0)
    t_single = time.perf_counter() - t0
    second = sim.run(30.0)
    assert journals_equal(first.journal, second.journal)
    assert first.metrics() == second.metrics()

    t0 = time.perf_counter()
    figure = bench(run_experiment, "ext-multicell",
                   config=config, grids=GRIDS, n_nodes=4,
                   duration_s=30.0)
    t_sweep = time.perf_counter() - t0

    goodput = figure.get("aggregate goodput (Kbps)")
    assert min(goodput.y) > 0.0
    events_per_s = len(first.journal) / t_single if t_single > 0 else 0.0
    payload = {
        "bench": "multicell",
        "single_run_s": round(t_single, 4),
        "journal_events": len(first.journal),
        "events_per_s": round(events_per_s, 1),
        "sweep_s": round(t_sweep, 4),
        "sweep_grids": [list(g) for g in GRIDS],
        "aggregate_goodput_kbps": {
            f"{int(x)}": round(y, 2) for x, y in zip(goodput.x, goodput.y)
        },
        "journal_digest": first.journal.digest(),
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\nmulticell: single 2x2 run {t_single * 1e3:.0f} ms "
          f"({events_per_s:.0f} events/s), 3-grid sweep {t_sweep:.2f} s "
          f"-> {BENCH_JSON.name}")

    # The floor: a 30 s, 4-node, 2x2 run must stay interactive.
    assert t_single < 5.0
