"""Bench: the discrete-event multicell network simulator.

Times the ``ext-multicell`` regeneration, re-checks the determinism
contract (two same-seed runs, identical journals), and emits
``BENCH_multicell.json`` at the repository root so the subsystem's
performance trajectory is recorded run over run.  The fleet bench
additionally races the legacy all-pairs kernel against the spatially
indexed + sharded one on an 8x8 grid and pins the speedup floor the
sharding work promises (>= 5x events/s).
"""

import json
import time
from pathlib import Path

import pytest

from repro.des import journals_equal
from repro.experiments import run_experiment
from repro.net.multicell import default_network

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_multicell.json"
GRIDS = ((1, 1), (2, 2), (3, 3))


@pytest.mark.perf
def test_bench_multicell(bench, config):
    sim = default_network(config, rows=2, cols=2, n_nodes=4, seed=29)
    t0 = time.perf_counter()
    first = sim.run(30.0)
    t_single = time.perf_counter() - t0
    second = sim.run(30.0)
    assert journals_equal(first.journal, second.journal)
    assert first.metrics() == second.metrics()

    t0 = time.perf_counter()
    figure = bench(run_experiment, "ext-multicell",
                   config=config, grids=GRIDS, n_nodes=4,
                   duration_s=30.0)
    t_sweep = time.perf_counter() - t0

    goodput = figure.get("aggregate goodput (Kbps)")
    assert min(goodput.y) > 0.0
    events_per_s = len(first.journal) / t_single if t_single > 0 else 0.0
    payload = {
        "bench": "multicell",
        "single_run_s": round(t_single, 4),
        "journal_events": len(first.journal),
        "events_per_s": round(events_per_s, 1),
        "sweep_s": round(t_sweep, 4),
        "sweep_grids": [list(g) for g in GRIDS],
        "aggregate_goodput_kbps": {
            f"{int(x)}": round(y, 2) for x, y in zip(goodput.x, goodput.y)
        },
        "journal_digest": first.journal.digest(),
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\nmulticell: single 2x2 run {t_single * 1e3:.0f} ms "
          f"({events_per_s:.0f} events/s), 3-grid sweep {t_sweep:.2f} s "
          f"-> {BENCH_JSON.name}")

    # The floor: a 30 s, 4-node, 2x2 run must stay interactive.
    assert t_single < 5.0


@pytest.mark.perf
def test_bench_multicell_fleet(config):
    """All-pairs baseline vs indexed + sharded kernel on an 8x8 fleet."""
    duration = 8.0

    baseline = default_network(config, rows=8, cols=8, n_nodes=32, seed=11,
                               use_spatial_index=False)
    t0 = time.perf_counter()
    base_result = baseline.run(duration)
    t_base = time.perf_counter() - t0
    base_rate = len(base_result.journal) / t_base

    sharded = default_network(config, rows=8, cols=8, n_nodes=32, seed=11,
                              regions=4)
    t0 = time.perf_counter()
    fleet_result = sharded.run(duration)
    t_fleet = time.perf_counter() - t0
    fleet_rate = len(fleet_result.journal) / t_fleet

    # Same scenario, same physics: the sharded run must do the same
    # amount of work (event-for-event) and reproduce itself per seed.
    assert len(fleet_result.shards) == 4
    repeat = default_network(config, rows=8, cols=8, n_nodes=32, seed=11,
                             regions=4).run(duration)
    assert journals_equal(fleet_result.journal, repeat.journal)
    assert fleet_result.metrics() == repeat.metrics()

    speedup = fleet_rate / base_rate
    payload = json.loads(BENCH_JSON.read_text()) if BENCH_JSON.exists() else {}
    payload["fleet"] = {
        "grid": [8, 8],
        "nodes": 32,
        "regions": 4,
        "duration_s": duration,
        "allpairs_events_per_s": round(base_rate, 1),
        "sharded_events_per_s": round(fleet_rate, 1),
        "speedup": round(speedup, 2),
        "journal_events": len(fleet_result.journal),
        "journal_digest": fleet_result.journal.digest(),
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\nmulticell fleet: all-pairs {base_rate:.0f} events/s, "
          f"sharded(4) {fleet_rate:.0f} events/s -> {speedup:.1f}x")

    # The acceptance floor for the sharding work.
    assert speedup >= 5.0
