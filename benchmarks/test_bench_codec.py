"""Performance benches for the hot paths: codec, framing, waveform."""

import numpy as np
import pytest

from repro.core import SystemConfig, decode_symbol, encode_symbol
from repro.link import Receiver, Transmitter
from repro.phy import LinkGeometry
from repro.schemes import AmppmScheme
from repro.sim import EndToEndLink


@pytest.fixture(scope="module")
def config():
    return SystemConfig()


@pytest.fixture(scope="module")
def design(config):
    return AmppmScheme(config).design(0.5)


class TestSymbolCodec:
    def test_bench_encode_large_symbol(self, bench):
        bench(encode_symbol, 2**40 + 12345, 50, 25)

    def test_bench_decode_large_symbol(self, bench):
        codeword = encode_symbol(2**40 + 12345, 50, 25)
        value = bench(decode_symbol, codeword, 25)
        assert value == 2**40 + 12345


class TestFramePath:
    def test_bench_frame_encode(self, bench, config, design):
        tx = Transmitter(config)
        payload = bytes(range(128)) * 1
        slots = bench(tx.encode_frame, payload, design)
        assert len(slots) > 1000

    def test_bench_frame_decode(self, bench, config, design):
        tx = Transmitter(config)
        rx = Receiver(config)
        payload = bytes(range(128))
        slots = tx.encode_frame(payload, design)
        frame = bench(rx.decode_frame, slots)
        assert frame.payload == payload


class TestWaveformPath:
    def test_bench_end_to_end_frame(self, bench, config, design):
        link = EndToEndLink(config=config,
                            geometry=LinkGeometry.on_axis(3.0))

        def one_frame():
            return link.send_frame(bytes(64), design,
                                   np.random.default_rng(7))

        report = bench(one_frame, repeats=3, warmup=0)
        assert report.delivered
