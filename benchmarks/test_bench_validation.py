"""Bench: Monte-Carlo validation of the analytic error models.

Not a paper artefact; this bench continuously proves that the closed
forms the figure harnesses use (Eq. (3), frame-success product) agree
with the executable codec/receiver path.
"""

import numpy as np

from repro.core import SlotErrorModel, SymbolPattern
from repro.schemes import AmppmScheme
from repro.sim import MonteCarloValidator


def test_bench_eq3_validation(bench, config):
    validator = MonteCarloValidator(config)
    errors = SlotErrorModel(2e-3, 2e-3)

    def run():
        return validator.symbol_error_rate(
            SymbolPattern(30, 15), errors,
            np.random.default_rng(11), n_symbols=3000)

    estimate = bench(run)
    print(f"\nEq.(3) analytic {estimate.analytic_ser:.3e} vs measured "
          f"{estimate.measured_ser:.3e} over {estimate.n_symbols} symbols "
          f"({estimate.n_undetected} undetected aliases)")
    assert estimate.consistent_with_analytic()


def test_bench_frame_loss_validation(bench, config):
    validator = MonteCarloValidator(config)
    design = AmppmScheme(config).design(0.5)
    errors = SlotErrorModel(3e-4, 3e-4)

    def run():
        return validator.frame_loss_rate(design, errors,
                                         np.random.default_rng(12),
                                         n_frames=150)

    measured, analytic = bench(run)
    print(f"\nframe loss analytic {analytic:.3f} vs measured {measured:.3f}")
    std = (analytic * (1 - analytic) / 150) ** 0.5
    assert abs(measured - analytic) <= 4 * std + 0.03
