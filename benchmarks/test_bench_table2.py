"""Bench: regenerate Table 2 (user-study flicker census, both halves)."""

from repro.experiments import run_experiment


def test_bench_table2_direct(bench, config):
    table = bench(run_experiment, "table2-direct", config=config)
    print("\n" + table.render())
    assert table.rows[0][1:] == ("0%", "0%", "0%")
    assert table.rows[-1][1:] == ("100%", "100%", "100%")


def test_bench_table2_indirect(bench, config):
    table = bench(run_experiment, "table2-indirect", config=config)
    print("\n" + table.render())
    assert table.rows[0][1:] == ("0%", "0%", "0%")
    assert table.rows[-1][1:] == ("100%", "100%", "100%")
