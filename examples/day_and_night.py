#!/usr/bin/env python3
"""A full day: SmartVLC while the lights are needed, DarkLight after.

Implements the hand-over the paper's Section 7 sketches: through a
simulated day the controller demands less and less LED light as the sun
rises, down to zero at night — and the link never goes silent, because
the manager drops into DarkLight's imperceptible single-pulse mode
whenever SmartVLC's operating range ends.

Run:  python examples/day_and_night.py
"""

from repro.core import SystemConfig
from repro.lighting import CloudyDayAmbient, DayNightManager, LinkMode
from repro.sim import Series, ascii_plot

config = SystemConfig()
manager = DayNightManager(config=config)
day = CloudyDayAmbient(day_length_s=1200.0, peak_level=1.0,
                       cloud_depth=0.25, seed=9)

# Around midday the sun alone exceeds the illumination target: the LED
# switches off entirely and DarkLight keeps the link alive.
target_sum = 0.8
times, rates, modes, led = [], [], [], []
for t in range(0, 1201, 10):
    ambient = day.intensity(float(t))
    required = min(max(target_sum - ambient, 0.0), 1.0)
    decision = manager.select(required)
    times.append(float(t))
    led.append(required)
    rates.append(decision.data_rate_factor / config.t_slot / 1e3)
    modes.append(decision.mode)

print("required LED level and link rate over a simulated day:")
print(ascii_plot([Series("LED level x100", tuple(times),
                         tuple(100 * v for v in led)),
                  Series("rate (kbps)", tuple(times), tuple(rates))],
                 width=70, height=12))

night_ticks = sum(1 for m in modes if m is LinkMode.DARKLIGHT)
print(f"\nticks in DarkLight mode : {night_ticks} of {len(modes)}")
print(f"mode hand-overs         : {manager.mode_switches}")
day_rates = [r for r, m in zip(rates, modes) if m is LinkMode.SMARTVLC]
night_rates = [r for r, m in zip(rates, modes) if m is LinkMode.DARKLIGHT]
if day_rates:
    print(f"SmartVLC rate range     : {min(day_rates):.1f}"
          f"..{max(day_rates):.1f} kbps")
if night_rates:
    print(f"DarkLight rate          : {max(night_rates):.2f} kbps "
          "(LED appears off)")
