#!/usr/bin/env python3
"""A cloudy office day: smart lighting + VLC riding through weather.

The scenario the paper's Section 6.3 motivates ("in the Netherlands the
weather changes super fast"): a 10-minute day with fast-moving clouds.
The smart-lighting controller holds the room at constant illumination
while the AMPPM designer re-selects super-symbols as the LED dims and
brightens; we track throughput, light budget and adaptation effort.

Run:  python examples/office_day.py
"""

from repro.core import AmppmDesigner, SystemConfig
from repro.lighting import CloudyDayAmbient, SmartLightingController
from repro.phy import LinkGeometry
from repro.schemes import AmppmSchemeDesign
from repro.sim import LinkEvaluator, Series, ascii_plot, expected_goodput

config = SystemConfig()
designer = AmppmDesigner(config)
controller = SmartLightingController(target_sum=0.95, config=config,
                                     designer=designer)
weather = CloudyDayAmbient(day_length_s=600.0, cloud_depth=0.55, seed=3)
evaluator = LinkEvaluator(config=config, geometry=LinkGeometry.on_axis(2.5))

times, ambient_trace, led_trace, throughput = [], [], [], []
for t in range(0, 601, 5):
    ambient = weather.intensity(float(t))
    sample = controller.tick(float(t), ambient)
    errors = evaluator.channel.slot_error_model(evaluator.geometry, ambient)
    design = AmppmSchemeDesign(sample.design, config)
    rate = expected_goodput(design, errors, config)
    times.append(float(t))
    ambient_trace.append(ambient)
    led_trace.append(sample.led)
    throughput.append(rate / 1e3)

print("light budget over the day (normalized):")
print(ascii_plot([
    Series("ambient", tuple(times), tuple(ambient_trace)),
    Series("LED", tuple(times), tuple(led_trace)),
    Series("sum", tuple(times),
           tuple(a + l for a, l in zip(ambient_trace, led_trace))),
], width=70, height=12))

print("\nthroughput under AMPPM (kbps):")
print(ascii_plot([Series("AMPPM", tuple(times), tuple(throughput))],
                 width=70, height=10))

total_sum = [a + l for a, l in zip(ambient_trace, led_trace)]
print(f"\nillumination held at {min(total_sum):.3f}..{max(total_sum):.3f} "
      f"(target 0.95)")
print(f"throughput range  : {min(throughput):.1f}..{max(throughput):.1f} kbps")
print(f"brightness moves  : {controller.adjustments} flicker-free steps")
