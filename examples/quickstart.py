#!/usr/bin/env python3
"""Quickstart: design an AMPPM super-symbol and move data through it.

Walks the library's core loop in four steps:

1. pick the paper's operating parameters,
2. ask the AMPPM designer for the best super-symbol at a required
   dimming level,
3. frame and modulate a payload into ON/OFF slots,
4. decode the slot stream back — the receiver learns the modulation
   parameters from the frame header alone.

Run:  python examples/quickstart.py
"""

from repro import AmppmScheme, SystemConfig
from repro.link import Receiver, Transmitter

config = SystemConfig()
print(f"slot time      : {config.t_slot * 1e6:.0f} us  "
      f"(f_tx = {config.f_tx / 1e3:.0f} kHz)")
print(f"flicker bound  : {config.f_flicker:.0f} Hz  "
      f"(N_max = {config.n_max_super} slots per super-symbol)")

# 1+2 - a smart-lighting controller decided the LED must run at 35%.
scheme = AmppmScheme(config)
design = scheme.design(0.35)
print(f"\nrequired dimming 0.350 -> super-symbol {design.super_symbol}")
print(f"achieved dimming : {design.achieved_dimming:.4f}")
print(f"PHY data rate    : {design.data_rate(config) / 1e3:.1f} kbps")

# 3 - frame a payload.
transmitter = Transmitter(config)
payload = b"SmartVLC: when smart lighting meets VLC"
slots = transmitter.encode_frame(payload, design)
duty = sum(slots) / len(slots)
print(f"\nframe            : {len(slots)} slots, duty cycle {duty:.3f}")
print(f"airtime          : {len(slots) * config.t_slot * 1e3:.2f} ms")

# 4 - decode with no out-of-band knowledge.
receiver = Receiver(config)
frame = receiver.decode_frame(slots)
print(f"decoded payload  : {frame.payload.decode()!r}")
assert frame.payload == payload

# Compare against the baselines at the same dimming level.
from repro import Mppm, OokCt  # noqa: E402

print("\nthroughput comparison at dimming 0.35 (PHY rate):")
for other in (scheme, OokCt(config), Mppm(config)):
    rate = other.design_clamped(0.35).data_rate(config)
    print(f"  {other.name:7s}: {rate / 1e3:6.1f} kbps")
