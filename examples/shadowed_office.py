#!/usr/bin/env python3
"""Blockage on the beam: ARQ riding out Gilbert-Elliott shadowing.

The Eq. (3) error model covers photodiode noise, but real VLC links die
in *bursts* when someone walks through the beam.  This demo corrupts
frames with a two-state shadowing process and shows two things:

1. for the same long-run slot error rate, bursts lose *fewer* frames
   than i.i.d. noise (errors concentrate in frames that were doomed
   anyway), and
2. the stop-and-wait MAC recovers every payload, paying with
   retransmissions exactly while the beam is blocked.

Run:  python examples/shadowed_office.py
"""

import numpy as np

from repro import AmppmScheme, SystemConfig
from repro.core import SlotErrorModel
from repro.link import Receiver, StopAndWaitMac, Transmitter, corrupt_slots
from repro.link.frame import FrameError
from repro.phy import GilbertElliottChannel

config = SystemConfig()
design = AmppmScheme(config).design(0.5)
tx, rx = Transmitter(config), Receiver(config)
rng = np.random.default_rng(42)

channel = GilbertElliottChannel(
    good=SlotErrorModel(9e-5, 8e-5),
    p_good_to_bad=1e-4,      # a blockage starts every ~100 ms on average
    p_bad_to_good=4e-3,      # ...and lasts ~2 ms
)
iid = channel.average_error_model()
print(f"shadowed fraction    : {channel.steady_state_bad_fraction:.1%} "
      f"of slots, mean burst {channel.mean_burst_slots * config.t_slot * 1e3:.1f} ms")
print(f"equivalent iid model : P1={iid.p_off_error:.2e} "
      f"P2={iid.p_on_error:.2e}")

frame = tx.encode_frame(bytes(range(128)), design)
trials = 150


def frame_loss(corruptor) -> float:
    losses = 0
    for _ in range(trials):
        try:
            rx.decode_frame(corruptor(frame))
        except FrameError:
            losses += 1
    return losses / trials


burst_loss = frame_loss(lambda f: channel.corrupt(list(f), rng)[0])
iid_loss = frame_loss(lambda f: corrupt_slots(list(f), iid, rng))
print(f"\nframe loss, bursty   : {burst_loss:.1%}")
print(f"frame loss, iid      : {iid_loss:.1%}   "
      "(same average slot error rate!)")

# The MAC view: everything is delivered, blockages cost retransmissions.
mac = StopAndWaitMac(config)
payloads = [bytes([i] * 128) for i in range(40)]
stats = mac.run(payloads, design, channel.good, rng,
                corruptor=lambda s, r: channel.corrupt(s, r)[0])
print("\nstop-and-wait over the *bursty* channel:")
print(f"  delivered          : {stats.frames_delivered}/{len(payloads)}")
print(f"  retransmissions    : {stats.retransmissions}")
print(f"  goodput            : {stats.throughput_bps / 1e3:.1f} kbps")
