#!/usr/bin/env python3
"""Sample-level link demo: the whole prototype chain, one frame at a time.

Pushes frames through the full physical pipeline — LED edge filtering,
Lambertian propagation, photodiode noise, ADC quantisation, preamble
correlation, slot thresholding, frame decoding — at increasing
distances, reproducing the Fig. 16 cliff at the waveform level.

Run:  python examples/waveform_link.py
"""

import numpy as np

from repro import AmppmScheme, SystemConfig
from repro.phy import LinkGeometry
from repro.sim import EndToEndLink

config = SystemConfig()
scheme = AmppmScheme(config)
design = scheme.design(0.5)
payload = bytes(range(64))
rng = np.random.default_rng(2017)

print(f"super-symbol {design.super_symbol}, "
      f"{design.data_rate(config) / 1e3:.1f} kbps PHY rate")
print(f"payload: {len(payload)} bytes per frame, 5 frames per distance\n")
print(f"{'distance':>9}  {'delivered':>9}  {'slot errors':>11}  {'SER':>9}")

for distance in (1.0, 2.0, 3.0, 3.6, 4.2, 5.0, 6.0):
    link = EndToEndLink(config=config,
                        geometry=LinkGeometry.on_axis(distance))
    delivered = 0
    errors = 0
    slots = 0
    for _ in range(5):
        report = link.send_frame(payload, design, rng)
        delivered += int(report.delivered)
        errors += report.slot_errors
        slots += report.n_slots
    print(f"{distance:8.1f}m  {delivered:6d}/5  {errors:8d}/{slots}"
          f"  {errors / slots:9.2e}")

print("\nThe link is clean to ~3.6 m and collapses beyond it — the")
print("Fig. 16 behaviour, here emerging from the waveform itself rather")
print("than the analytic error model.")
