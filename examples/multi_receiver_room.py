#!/usr/bin/env python3
"""A whole office: one SmartVLC luminaire, three desks, Wi-Fi feedback.

Extends the paper's single-link evaluation to the deployment its
introduction sketches: receivers at different desks (different link
geometry, different daylight exposure) report ambient readings over a
lossy Wi-Fi uplink; the transmitter fuses the fresh reports, holds the
room's illumination constant, and broadcasts with AMPPM.  We also
account the energy the smart dimming saves — the motivation the paper
opens with.

Run:  python examples/multi_receiver_room.py
"""

from repro.lighting import BlindRampAmbient, energy_report
from repro.link import WifiUplink
from repro.net import Aggregation, FeedbackCollector, RoomSimulation
from repro.sim import Series, ascii_plot

room = RoomSimulation(
    profile=BlindRampAmbient(duration_s=67.0),
    collector=FeedbackCollector(
        uplink=WifiUplink(latency_s=2e-3, jitter_s=0.5e-3,
                          loss_probability=0.05),
        aggregation=Aggregation.MEAN,
    ),
)

history = room.run(67.0)
times = tuple(s.t for s in history)

print("per-desk throughput over the 67 s blind pull (kbps):")
names = [p.name for p in room.placements]
print(ascii_plot([
    Series(name, times,
           tuple(s.node(name).throughput_bps / 1e3 for s in history))
    for name in names
], width=70, height=12))

print(f"\n{'desk':>16}  {'distance':>8}  {'angle':>6}  "
      f"{'min kbps':>8}  {'max kbps':>8}")
for placement in room.placements:
    rates = [s.node(placement.name).throughput_bps / 1e3 for s in history]
    g = placement.geometry
    print(f"{placement.name:>16}  {g.distance_m:7.2f}m  "
          f"{g.incidence_angle_deg:5.1f}°  {min(rates):8.1f}  {max(rates):8.1f}")

led_trace = [s.led for s in history]
report = energy_report(led_trace, tick_s=1.0)
print(f"\nLED energy this run : {report.smart_joules:.0f} J "
      f"(avg {report.smart_average_w:.2f} W of {4.7} W)")
print(f"vs dumb always-full  : {report.baseline_joules:.0f} J "
      f"-> {100 * report.saving_fraction:.0f}% saved by smart dimming")
print(f"flicker-free moves   : {room.controller.adjustments}")
