#!/usr/bin/env python3
"""Reproduce the Table 2 user study and derive tau_p from it.

Runs the seeded 20-volunteer census for both viewing manners and all
three ambient conditions, prints the two Table 2 halves, and shows how
the safe adaptation step tau_p = 0.003 falls out of the data — the
number the whole Section 4.3 adaptation design hangs on.

Run:  python examples/flicker_user_study.py
"""

from repro.core import SystemConfig, plan_perceived_steps
from repro.experiments import run_experiment
from repro.lighting import Viewing, VolunteerPopulation

print(run_experiment("table2-indirect").render())
print()
print(run_experiment("table2-direct").render())

population = VolunteerPopulation()
safe_direct = population.safe_resolution(Viewing.DIRECT)
safe_indirect = population.safe_resolution(Viewing.INDIRECT)

print(f"\nlargest universally safe step, direct viewing  : {safe_direct:.4f}")
print(f"largest universally safe step, indirect viewing: {safe_indirect:.4f}")
print("-> SmartVLC adopts tau_p = 0.003 (the direct-viewing bound).")

config = SystemConfig()
plan = plan_perceived_steps(0.9, 0.1, config.tau_perceived)
print(f"\nwith tau_p = {config.tau_perceived}, dimming the LED from 0.9 to "
      f"0.1 takes {plan.n_steps} imperceptible steps")
print(f"largest perceived move along the way: "
      f"{plan.max_perceived_step:.4f} (<= tau_p, so no volunteer sees it)")
