#!/usr/bin/env python3
"""Regenerate every figure and table of the paper's evaluation.

Iterates the experiment registry (DESIGN.md §3 maps ids to paper
artefacts) and renders each result as text.  This is the one-command
answer to "show me the whole evaluation".

Run:  python examples/reproduce_paper.py [experiment-id ...]
"""

import sys

from repro.experiments import experiment_ids, run_experiment

requested = sys.argv[1:] or experiment_ids()
unknown = set(requested) - set(experiment_ids())
if unknown:
    sys.exit(f"unknown experiment ids: {sorted(unknown)}; "
             f"known: {experiment_ids()}")

for experiment_id in requested:
    print("=" * 78)
    result = run_experiment(experiment_id)
    print(result.render())
    print()
