"""Table 2 — users' perception of flickering.

The 20-volunteer census over dimming-step resolutions, for both viewing
manners and the three ambient conditions.  Expected structure: darker
ambient light (L3) and direct viewing make users more sensitive; the
largest universally safe resolution under direct viewing is 0.003,
which is where the paper's tau_p comes from.
"""

from __future__ import annotations

from ..core.params import SystemConfig
from ..lighting.userstudy import (
    AmbientCondition,
    Viewing,
    VolunteerPopulation,
)
from ..sim.results import TableResult
from .registry import register


def _half(population: VolunteerPopulation, viewing: Viewing,
          title: str) -> TableResult:
    census = population.census(viewing)
    rows = []
    for resolution, by_condition in sorted(census.items()):
        rows.append((
            f"{resolution:g}",
            *(f"{by_condition[c]:.0f}%" for c in AmbientCondition),
        ))
    return TableResult(
        table_id=f"table2-{viewing.value}",
        title=title,
        header=("Res.", "L1", "L2", "L3"),
        rows=tuple(rows),
        notes=f"{population.n_volunteers} volunteers, seeded census",
    )


@register("table2-direct")
def run_direct(config: SystemConfig | None = None,
               population: VolunteerPopulation | None = None) -> TableResult:
    """Table 2(b): perception under direct viewing."""
    population = population if population is not None else VolunteerPopulation()
    return _half(population, Viewing.DIRECT,
                 "Users' perception of flickering (direct viewing)")


@register("table2-indirect")
def run_indirect(config: SystemConfig | None = None,
                 population: VolunteerPopulation | None = None) -> TableResult:
    """Table 2(a): perception under indirect viewing."""
    population = population if population is not None else VolunteerPopulation()
    return _half(population, Viewing.INDIRECT,
                 "Users' perception of flickering (indirect viewing)")
