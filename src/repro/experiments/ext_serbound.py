"""Extension/ablation: sensitivity of the headline gains to the bounds.

DESIGN.md documents one deliberate parameter deviation: the paper's
quoted SER bound (1e-3) contradicts its own figures, so this
reproduction defaults to 5.45e-3 with N capped at 63.  This harness
sweeps that choice and reports the Fig. 15 average gains at each
setting, showing (a) the qualitative result — AMPPM wins on average
against both baselines — is robust across the whole sweep, and (b) the
paper's quantitative averages are matched near the chosen default.
"""

from __future__ import annotations

import numpy as np

from ..core.errormodel import SlotErrorModel
from ..core.params import SystemConfig
from ..phy.optics import LinkGeometry
from ..schemes import standard_schemes
from ..sim.linkmodel import LinkEvaluator
from ..sim.results import TableResult
from ..sim.sweep import SweepRunner
from .registry import register

#: (ser_bound, n_cap) settings swept; the third entry is the default.
SETTINGS = ((1e-3, 21), (4.5e-3, 50), (5.45e-3, 63), (8e-3, 63))


def _gains_for_setting(point: tuple) -> tuple[float, float, bool]:
    """(mean gain vs OOK-CT, mean gain vs MPPM, self-consistent?)."""
    base, ser_bound, n_cap = point
    variant = base.with_overrides(ser_bound=ser_bound, n_cap=n_cap)
    evaluator = LinkEvaluator(config=variant,
                              geometry=LinkGeometry.on_axis(3.0))
    ampem, ookct, mppm = standard_schemes(variant)
    levels = np.linspace(0.1, 0.9, 17)
    gains_ook = []
    gains_mppm = []
    for level in levels:
        a = evaluator.throughput_bps(ampem, float(level))
        o = evaluator.throughput_bps(ookct, float(level))
        m = evaluator.throughput_bps(mppm, float(level))
        gains_ook.append(a / o - 1.0)
        gains_mppm.append(a / m - 1.0)
    # Is this setting self-consistent, i.e. would the paper's own
    # MPPM(N=20) baseline pass the bound it imposes on AMPPM?
    mppm_ser = mppm.design(0.5).pattern.symbol_error_rate(
        SlotErrorModel.from_config(variant))
    return (float(np.mean(gains_ook)), float(np.mean(gains_mppm)),
            bool(mppm_ser <= ser_bound))


@register("ext-serbound")
def run(config: SystemConfig | None = None,
        settings: tuple[tuple[float, int], ...] = SETTINGS,
        jobs: int | None = None) -> TableResult:
    """Average Fig. 15 gains under different designer bounds."""
    base = config if config is not None else SystemConfig()
    points = [(base, ser_bound, n_cap) for ser_bound, n_cap in settings]
    results = SweepRunner(jobs).map(_gains_for_setting, points)

    rows = []
    for (ser_bound, n_cap), (mean_ook, mean_mppm, consistent) in zip(
            settings, results):
        tag = " (default)" if (ser_bound == base.ser_bound
                               and n_cap == base.n_cap) else ""
        if not consistent:
            tag += " [inconsistent]"
        rows.append((
            f"{ser_bound:g} / N<={n_cap}{tag}",
            f"{100 * mean_ook:+.0f}%",
            f"{100 * mean_mppm:+.0f}%",
        ))
    return TableResult(
        table_id="ext-serbound",
        title="Ablation: headline gains vs the designer's SER bound / N cap",
        header=("ser_bound / n_cap", "avg vs OOK-CT", "avg vs MPPM"),
        rows=tuple(rows),
        notes=(
            "paper reports +40% / +12%.  Rows tagged [inconsistent] "
            "apply the paper's literal bound, which the paper's own "
            "MPPM(N=20) baseline violates — handicapping AMPPM only; "
            "under every self-consistent setting AMPPM wins both "
            "comparisons (the DESIGN.md deviation argument)"
        ),
    )
