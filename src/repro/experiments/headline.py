"""The abstract's headline claims, derived from the reproduced data.

* communication distance up to 3.6 m;
* +40% average / up to +170% throughput over OOK-CT;
* +12% average / up to +30% throughput over MPPM;
* OOK-CT slightly ahead only in a narrow window around l = 0.5;
* no flickering: tau_p = 0.003 is safe for every volunteer;
* ≈50% fewer brightness adjustments than fixed-step adaptation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.params import SystemConfig
from ..lighting.userstudy import Viewing, VolunteerPopulation
from ..sim.results import TableResult
from . import fig15_throughput, fig16_distance, fig19_dynamic
from .registry import register


@dataclass(frozen=True)
class HeadlineNumbers:
    """Every summary number the abstract quotes, as measured here."""

    mean_gain_over_ookct: float
    max_gain_over_ookct: float
    mean_gain_over_mppm: float
    max_gain_over_mppm: float
    ookct_win_window: tuple[float, float]
    knee_distance_m: float
    safe_resolution_direct: float
    adaptation_reduction: float


def compute(config: SystemConfig | None = None,
            jobs: int | None = None) -> HeadlineNumbers:
    """Derive the headline numbers from the figure harnesses.

    ``jobs`` fans the underlying fig. 15/16 sweeps across worker
    processes (see :class:`~repro.sim.sweep.SweepRunner`).
    """
    config = config if config is not None else SystemConfig()

    fig15 = fig15_throughput.run(config, jobs=jobs)
    ampem = fig15.get("AMPPM")
    ookct = fig15.get("OOK-CT")
    mppm = fig15.get("MPPM")
    gains_ook = [a / o - 1.0 for a, o in zip(ampem.y, ookct.y)]
    gains_mppm = [a / m - 1.0 for a, m in zip(ampem.y, mppm.y)]

    losing = [x for x, a, o in zip(ampem.x, ampem.y, ookct.y) if o > a]
    window = (min(losing), max(losing)) if losing else (float("nan"),) * 2

    fig16 = fig16_distance.run(config, jobs=jobs)
    mid = fig16.get("dimming=0.5")
    knee = max((x for x, y in zip(mid.x, mid.y) if y >= 0.9 * mid.y_max),
               default=float("nan"))

    population = VolunteerPopulation()
    result = fig19_dynamic.run_scenario(config)

    return HeadlineNumbers(
        mean_gain_over_ookct=float(np.mean(gains_ook)),
        max_gain_over_ookct=max(gains_ook),
        mean_gain_over_mppm=float(np.mean(gains_mppm)),
        max_gain_over_mppm=max(gains_mppm),
        ookct_win_window=window,
        knee_distance_m=knee,
        safe_resolution_direct=population.safe_resolution(Viewing.DIRECT),
        adaptation_reduction=result.adaptation_reduction,
    )


@register("headline")
def run(config: SystemConfig | None = None,
        jobs: int | None = None) -> TableResult:
    """Paper-vs-measured table for the abstract's claims."""
    numbers = compute(config, jobs=jobs)
    rows = (
        ("avg gain vs OOK-CT", "+40%",
         f"{100 * numbers.mean_gain_over_ookct:+.0f}%"),
        ("max gain vs OOK-CT", "+170%",
         f"{100 * numbers.max_gain_over_ookct:+.0f}%"),
        ("avg gain vs MPPM", "+12%",
         f"{100 * numbers.mean_gain_over_mppm:+.0f}%"),
        ("max gain vs MPPM", "+30%",
         f"{100 * numbers.max_gain_over_mppm:+.0f}%"),
        ("OOK-CT win window", "0.47-0.53",
         f"{numbers.ookct_win_window[0]:.2f}-{numbers.ookct_win_window[1]:.2f}"),
        ("flat throughput to", "3.6 m", f"{numbers.knee_distance_m:.2f} m"),
        ("safe direct resolution", "0.003",
         f"{numbers.safe_resolution_direct:.4f}"),
        ("adaptation reduction", "~50%",
         f"{100 * numbers.adaptation_reduction:.0f}%"),
    )
    return TableResult(
        table_id="headline",
        title="Headline claims: paper vs this reproduction",
        header=("claim", "paper", "measured"),
        rows=rows,
    )
