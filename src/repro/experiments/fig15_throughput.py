"""Fig. 15 — throughput vs dimming level: AMPPM vs OOK-CT vs MPPM.

The headline comparison: 17 dimming levels from 0.1 to 0.9, receiver at
3 m, 128-byte payloads, MPPM fixed at N = 20.  Expected shape:

* AMPPM beats MPPM at every level and OOK-CT everywhere except a narrow
  window around l = 0.5 (where OOK-CT's compensation overhead vanishes
  and AMPPM still pays its Pattern-field/encoding overhead);
* all three curves peak at 0.5 and are roughly symmetric;
* the gap to OOK-CT explodes towards the extremes (paper: up to +170%),
  the gap to MPPM is largest at the extremes too (paper: up to +30%).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from ..core.params import SystemConfig
from ..phy.optics import LinkGeometry
from ..schemes import AmppmScheme, Mppm, OokCt, standard_schemes
from ..sim.linkmodel import LinkEvaluator
from ..sim.results import FigureResult, Series
from ..sim.sweep import SweepRunner
from .registry import register

#: "17 discrete dimming levels ... ranging from 0.1 to 0.9"
DIMMING_LEVELS = tuple(float(l) for l in np.linspace(0.1, 0.9, 17).round(4))

#: series order, matching :func:`repro.schemes.standard_schemes`
SCHEME_NAMES = (AmppmScheme.name, OokCt.name, Mppm.name)


@lru_cache(maxsize=8)
def _bound_evaluator(config: SystemConfig, distance_m: float,
                     ambient: float) -> tuple[LinkEvaluator, tuple]:
    """Evaluator + schemes, built once per (process, operating point)."""
    evaluator = LinkEvaluator(config=config,
                              geometry=LinkGeometry.on_axis(distance_m),
                              ambient=ambient)
    return evaluator, tuple(standard_schemes(config))


def _rates_at_level(point: tuple) -> tuple[float, ...]:
    """All three schemes' throughput (Kbps) at one dimming level."""
    config, distance_m, ambient, level = point
    evaluator, schemes = _bound_evaluator(config, distance_m, ambient)
    return tuple(evaluator.throughput_bps(scheme, level) / 1e3
                 for scheme in schemes)


@register("fig15")
def run(config: SystemConfig | None = None,
        distance_m: float = 3.0, ambient: float = 1.0,
        levels: tuple[float, ...] = DIMMING_LEVELS,
        jobs: int | None = None) -> FigureResult:
    """Throughput of the three schemes across dimming levels."""
    config = config if config is not None else SystemConfig()
    rates = SweepRunner(jobs).map(
        _rates_at_level,
        [(config, distance_m, ambient, level) for level in levels])
    series = [Series(name, levels, tuple(point[i] for point in rates))
              for i, name in enumerate(SCHEME_NAMES)]
    ampem, ookct, mppm = series

    gains_ook = [a / o - 1.0 for a, o in zip(ampem.y, ookct.y)]
    gains_mppm = [a / m - 1.0 for a, m in zip(ampem.y, mppm.y)]
    return FigureResult(
        figure_id="fig15",
        title="Comparison with OOK-CT and MPPM (throughput, Kbps)",
        x_label="dimming level of the LED",
        y_label="throughput (Kbps)",
        series=(ampem, ookct, mppm),
        notes=(
            f"AMPPM vs OOK-CT: mean {100 * float(np.mean(gains_ook)):+.0f}%, "
            f"max {100 * max(gains_ook):+.0f}%;  AMPPM vs MPPM: mean "
            f"{100 * float(np.mean(gains_mppm)):+.0f}%, max "
            f"{100 * max(gains_mppm):+.0f}%"
        ),
    )
