"""Extension: the multi-receiver room over the dynamic blind pull.

Not a paper figure — the paper evaluates one link at a time, but its
system section (Fig. 2) has multiple receivers reporting ambient light
over Wi-Fi.  This harness runs the closed multi-receiver loop and plots
per-desk throughput, demonstrating that one AMPPM design serves every
in-beam receiver simultaneously (broadcast).
"""

from __future__ import annotations

from ..core.params import SystemConfig
from ..lighting.ambient import BlindRampAmbient
from ..net.room import RoomSimulation
from ..sim.results import FigureResult, Series
from .registry import register


@register("ext-room")
def run(config: SystemConfig | None = None,
        duration_s: float = 67.0) -> FigureResult:
    """Per-desk throughput traces for the default three-desk room."""
    config = config if config is not None else SystemConfig()
    room = RoomSimulation(config=config,
                          profile=BlindRampAmbient(duration_s=duration_s))
    history = room.run(duration_s)
    times = tuple(sample.t for sample in history)
    series = tuple(
        Series(placement.name, times,
               tuple(s.node(placement.name).throughput_bps / 1e3
                     for s in history))
        for placement in room.placements
    )
    down = sum(1 for s in history for n in s.nodes if not n.link_ok)
    return FigureResult(
        figure_id="ext-room",
        title="Extension: per-desk throughput, three receivers, one luminaire",
        x_label="time (s)",
        y_label="throughput (Kbps)",
        series=series,
        notes=f"link-down samples: {down}; LED moves: "
              f"{room.controller.adjustments} flicker-free steps",
    )
