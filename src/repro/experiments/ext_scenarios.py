"""Extension: the shipped scenario suite judged against its SLOs.

Not a paper figure — the paper's prototype is one luminaire on a desk —
but its deployment story is a smart-lit building living through real
days.  This harness runs every shipped scenario (see
:mod:`repro.scenarios.shipped`) through the scenario engine and reports
one SLO row per scenario: simulated room-hours, occupant population,
mean goodput over occupied windows, illumination error against the
daylight target, flicker-bound violations, handover count, and the
PASS/FAIL verdict against the scenario's own :class:`~repro.scenarios.
dsl.SloSpec` — plus the journal digest that pins the run.

Every scenario is an independent seeded run, so the sweep is
``SweepRunner``-parallel and bit-deterministic under ``--jobs N``; the
``regions`` knob runs each scenario on the sharded kernel (capped at
the scenario's luminaire count).
"""

from __future__ import annotations

from ..core.params import SystemConfig
from ..scenarios.runner import ScenarioRunner
from ..scenarios.shipped import shipped_scenarios
from ..sim.results import TableResult
from ..sim.sweep import SweepRunner
from .registry import register


def _run_point(point: tuple) -> dict:
    """One scenario's flat SLO metrics (a SweepRunner work item)."""
    config, scenario, regions = point
    runner = ScenarioRunner(scenario,
                            regions=min(regions, scenario.n_luminaires),
                            config=config)
    run = runner.run()
    report = run.report
    return {
        "name": scenario.name,
        "rooms": len(report.rooms),
        "population": scenario.population,
        "scenario_hours": report.scenario_hours,
        "mean_goodput_bps": report.metrics()["mean_goodput_bps"],
        "illumination_error": report.metrics()["illumination_error"],
        "flicker_violations": int(report.metrics()["flicker_violations"]),
        "handovers": int(report.metrics()["handovers"]),
        "violations": len(report.violations),
        "passed": report.passed,
        "digest": report.journal_digest,
    }


@register("ext-scenarios")
def run(config: SystemConfig | None = None, regions: int = 1,
        jobs: int | None = None) -> TableResult:
    """One SLO verdict row per shipped scenario."""
    config = config if config is not None else SystemConfig()
    if regions < 1:
        raise ValueError("regions must be positive")
    scenarios = tuple(shipped_scenarios().values())
    points = [(config, scenario, regions) for scenario in scenarios]
    metrics = SweepRunner(jobs).map(_run_point, points)

    rows = tuple(
        (
            m["name"],
            f"{m['rooms']}",
            f"{m['population']}",
            f"{m['scenario_hours']:.1f}",
            f"{m['mean_goodput_bps'] / 1e3:.1f}",
            f"{m['illumination_error']:.4f}",
            f"{m['flicker_violations']}",
            f"{m['handovers']}",
            "PASS" if m["passed"] else f"FAIL ({m['violations']})",
            m["digest"][:12],
        )
        for m in metrics
    )
    hours = sum(m["scenario_hours"] for m in metrics)
    return TableResult(
        table_id="ext-scenarios",
        title="Extension: shipped scenarios vs their SLOs "
              "(trace-driven daylight + occupancy)",
        header=("scenario", "rooms", "occupants", "room-hours",
                "goodput (Kbps)", "illum err", "flicker", "handovers",
                "SLO", "journal digest"),
        rows=rows,
        notes=f"{hours:.1f} simulated room-hours across "
              f"{len(scenarios)} scenarios at regions={regions}; goodput "
              "averaged over occupied report windows only; digests pin "
              "byte-identical replays",
    )
