"""Fig. 6 — supported dimming levels before/after multiplexing (N = 10).

Before: a fixed N = 10 MPPM offers nine discrete (dimming, rate)
points.  After: multiplexing any two of those symbols into flicker-free
super-symbols fills the dimming axis almost continuously.  Expected
shape: the 'after' point cloud covers a semi-continuous range at and
between the original points, with rates on the chords between them.
"""

from __future__ import annotations

from itertools import combinations

from ..core.params import SystemConfig
from ..core.supersymbol import SuperSymbol
from ..core.symbols import SymbolPattern
from ..sim.results import FigureResult, Series
from .registry import register


@register("fig06")
def run(config: SystemConfig | None = None, n_slots: int = 10) -> FigureResult:
    """Dimming level vs normalized rate, before and after multiplexing."""
    config = config if config is not None else SystemConfig()
    patterns = [SymbolPattern(n_slots, k) for k in range(1, n_slots)]

    before = Series(
        "before",
        tuple(p.dimming for p in patterns),
        tuple(p.normalized_rate() for p in patterns),
    )

    points: dict[float, float] = {}

    def add(dimming: float, rate: float) -> None:
        key = round(dimming, 6)
        if rate > points.get(key, -1.0):
            points[key] = rate

    for p in patterns:
        add(p.dimming, p.normalized_rate())
    for p1, p2 in combinations(patterns, 2):
        for m1 in range(1, config.m_cap + 1):
            for m2 in range(1, config.m_cap + 1):
                super_symbol = SuperSymbol(p1, m1, p2, m2)
                if not super_symbol.flicker_free(config):
                    break
                add(super_symbol.dimming, super_symbol.normalized_rate())

    ordered = sorted(points.items())
    after = Series(
        "after",
        tuple(x for x, _ in ordered),
        tuple(y for _, y in ordered),
    )
    return FigureResult(
        figure_id="fig06",
        title="Supported dimming levels before/after multiplexing (N=10)",
        x_label="dimming level",
        y_label="normalized data rate (bits/slot)",
        series=(before, after),
        notes=(
            f"before: {len(before.x)} discrete levels; after: {len(after.x)} "
            "semi-continuous levels from pairwise flicker-free multiplexing."
        ),
    )
