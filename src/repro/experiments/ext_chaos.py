"""Extension: chaos engineering for the supervised link.

Not a paper figure — the paper's prototype assumes a healthy link —
but any deployed smart-lighting network lives through blinded
receivers, lossy ACK paths and daylight transients.  This harness runs
every shipped fault schedule (:func:`repro.resilience.shipped_schedules`)
twice — once with the :class:`~repro.link.supervision.LinkSupervisor`
reacting (backoff, conservative designs, payload step-down, probing)
and once as the paper-faithful unsupervised baseline — and reports,
per schedule:

* goodput of both arms (the supervised arm must win under faults),
* frames lost per injected fault (graceful vs. cliff-edge failure),
* mean time-to-detect and time-to-recover of the supervised arm.

A second sweep scales :meth:`FaultSchedule.random
<repro.resilience.faults.FaultSchedule.random>` across fault
*intensities*, tracing how both arms' goodput decays as the
environment sours.

Every (schedule, arm) pair is one independent seeded run, so the sweep
is ``SweepRunner``-parallel and bit-deterministic under ``--jobs N``.
"""

from __future__ import annotations

from ..core.params import SystemConfig
from ..resilience.chaos import ChaosScenario
from ..resilience.faults import FaultSchedule, shipped_schedules
from ..sim.results import FigureResult, Series
from ..sim.sweep import SweepRunner
from .registry import register

#: fault intensities for the random-schedule decay sweep
INTENSITIES = (0.2, 0.4, 0.6, 0.8, 1.0)


def _run_point(point: tuple) -> dict[str, float]:
    """Metrics of one (config, schedule, supervised, duration, seed) run."""
    config, schedule, supervised, duration_s, seed = point
    scenario = ChaosScenario(config=config, schedule=schedule,
                             duration_s=duration_s, seed=seed,
                             supervised=supervised)
    return scenario.run().report.metrics()


@register("ext-chaos")
def run(config: SystemConfig | None = None, duration_s: float = 40.0,
        seed: int = 13, intensities: tuple = INTENSITIES,
        jobs: int | None = None) -> FigureResult:
    """Supervised vs. unsupervised link under every shipped schedule."""
    config = config if config is not None else SystemConfig()
    schedules = shipped_schedules(duration_s)
    names = tuple(schedules)
    # Both arms of one schedule share a seed so the injected fault
    # draws and channel draws are the matched-pair comparison.
    points = [(config, schedules[name], supervised, duration_s, seed + i)
              for i, name in enumerate(names)
              for supervised in (True, False)]
    # The intensity sweep: one random schedule per intensity, again
    # run as a matched pair.  Seeds are offset past the named runs.
    for j, intensity in enumerate(intensities):
        random_seed = seed + 100 + j
        schedule = FaultSchedule.random(random_seed, duration_s, intensity)
        for supervised in (True, False):
            points.append((config, schedule, supervised, duration_s,
                           random_seed))
    metrics = SweepRunner(jobs).map(_run_point, points)
    named = metrics[:2 * len(names)]
    ramped = metrics[2 * len(names):]
    sup, unsup = named[0::2], named[1::2]
    ramp_sup, ramp_unsup = ramped[0::2], ramped[1::2]

    xs = tuple(float(i) for i in range(len(names)))
    levels = tuple(float(i) for i in intensities)
    series = (
        Series("supervised goodput (Kbps)", xs,
               tuple(m["goodput_bps"] / 1e3 for m in sup)),
        Series("unsupervised goodput (Kbps)", xs,
               tuple(m["goodput_bps"] / 1e3 for m in unsup)),
        Series("supervised frames lost / fault", xs,
               tuple(m["frames_lost_per_fault"] for m in sup)),
        Series("unsupervised frames lost / fault", xs,
               tuple(m["frames_lost_per_fault"] for m in unsup)),
        Series("time to detect (s)", xs,
               tuple(m.get("mean_time_to_detect_s", 0.0) for m in sup)),
        Series("time to recover (s)", xs,
               tuple(m.get("mean_time_to_recover_s", 0.0) for m in sup)),
        Series("supervised goodput vs intensity (Kbps)", levels,
               tuple(m["goodput_bps"] / 1e3 for m in ramp_sup)),
        Series("unsupervised goodput vs intensity (Kbps)", levels,
               tuple(m["goodput_bps"] / 1e3 for m in ramp_unsup)),
    )
    worst_step = max(m["max_perceived_step"] for m in metrics)
    return FigureResult(
        figure_id="ext-chaos",
        title="Extension: link supervision under fault injection "
              f"({duration_s:.0f} s per run, seed {seed})",
        x_label="fault schedule: " + ", ".join(
            f"{i}={name}" for i, name in enumerate(names))
            + "; intensity series: x = fault intensity",
        y_label="per-series units (goodput Kbps / counts / seconds)",
        series=series,
        notes="worst perceived illumination step across all runs: "
              f"{worst_step:.5f} (Type-II bound tau_p = "
              f"{config.tau_perceived:g})",
    )
