"""Fig. 4 — symbol error rate as a function of dimming level in MPPM.

The paper's point: raising N gives finer dimming levels but inflates
the symbol error rate (Eq. (3) with the measured P1 = 9e-5, P2 = 8e-5),
so fine granularity cannot come from a large N alone.  Expected shape:
PSER grows roughly linearly with N and decreases slightly with the
dimming level (P1 > P2, so OFF-heavy symbols err a bit more often).
"""

from __future__ import annotations

from ..core.errormodel import SlotErrorModel
from ..core.params import SystemConfig
from ..sim.results import FigureResult, Series
from .registry import register

#: The symbol lengths the paper plots.
N_VALUES = (10, 30, 50, 80, 120)


@register("fig04")
def run(config: SystemConfig | None = None,
        n_values: tuple[int, ...] = N_VALUES) -> FigureResult:
    """SER vs dimming level for several symbol lengths."""
    config = config if config is not None else SystemConfig()
    errors = SlotErrorModel.from_config(config)
    series = []
    for n in n_values:
        dims = []
        sers = []
        for k in range(1, n):
            dims.append(k / n)
            sers.append(errors.symbol_error_rate(n, k))
        series.append(Series(f"N={n}", tuple(dims), tuple(sers)))
    return FigureResult(
        figure_id="fig04",
        title="PSER as a function of dimming level in MPPM",
        x_label="dimming level l = K/N",
        y_label="symbol error rate",
        series=tuple(series),
        notes=(
            "Eq. (3) with the paper's measured P1/P2; larger N raises the "
            "SER roughly linearly, motivating multiplexing over large-N MPPM."
        ),
    )
