"""Extension: AMPPM's gain as a function of payload size.

Section 6.1 of the paper notes, without a figure: "The gain of AMPPM
will decrease if the payload is too small.  This is due to the overhead
in the frame header."  This harness quantifies that remark: throughput
of AMPPM, OOK-CT and MPPM at a fixed dimming level across payload
sizes, showing the fixed Table 1 overhead eating the small-frame rates
and AMPPM's relative gain growing with the payload.
"""

from __future__ import annotations

from ..core.params import SystemConfig
from ..phy.optics import LinkGeometry
from ..schemes import standard_schemes
from ..sim.linkmodel import LinkEvaluator
from ..sim.results import FigureResult, Series
from .registry import register

PAYLOAD_SIZES = (8, 16, 32, 64, 128, 256, 512)


@register("ext-payload")
def run(config: SystemConfig | None = None, dimming: float = 0.2,
        sizes: tuple[int, ...] = PAYLOAD_SIZES,
        distance_m: float = 3.0) -> FigureResult:
    """Throughput vs payload size at a fixed dimming level."""
    config = config if config is not None else SystemConfig()
    evaluator = LinkEvaluator(config=config,
                              geometry=LinkGeometry.on_axis(distance_m))
    series = []
    for scheme in standard_schemes(config):
        rates = tuple(
            evaluator.throughput_bps(scheme, dimming, payload_bytes=size) / 1e3
            for size in sizes)
        series.append(Series(scheme.name, tuple(float(s) for s in sizes),
                             rates))
    ampem, ookct, _ = series
    gain_small = ampem.y[0] / ookct.y[0] - 1.0
    gain_large = ampem.y[-1] / ookct.y[-1] - 1.0
    return FigureResult(
        figure_id="ext-payload",
        title=f"Extension: throughput vs payload size (dimming {dimming})",
        x_label="payload size (bytes)",
        y_label="throughput (Kbps)",
        series=tuple(series),
        notes=(
            f"AMPPM gain over OOK-CT grows from {100 * gain_small:+.0f}% at "
            f"{sizes[0]} B to {100 * gain_large:+.0f}% at {sizes[-1]} B — "
            "the Section 6.1 header-overhead remark, quantified"
        ),
    )
