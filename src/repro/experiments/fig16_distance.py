"""Fig. 16 — throughput vs communication distance.

SmartVLC at three dimming levels (0.18, 0.5, 0.7) as the receiver moves
from 0.5 m to 5 m.  Expected shape: each curve holds its peak
throughput flat out to ≈3.6 m, then collapses as the received swing
falls below what the photodiode can discriminate; the dimming level
does not change the cut-off (digital dimming varies duty cycle, not
amplitude).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from ..core.params import SystemConfig
from ..phy.optics import LinkGeometry
from ..schemes import AmppmScheme
from ..sim.linkmodel import LinkEvaluator
from ..sim.results import FigureResult, Series
from ..sim.sweep import SweepRunner
from .registry import register

DIMMING_LEVELS = (0.18, 0.5, 0.7)
DISTANCES_M = tuple(float(d) for d in np.arange(0.5, 5.01, 0.25).round(3))


@lru_cache(maxsize=8)
def _scheme_and_base(config: SystemConfig,
                     ambient: float) -> tuple[AmppmScheme, LinkEvaluator]:
    """Designer + channel, built once per (process, config, ambient)."""
    return AmppmScheme(config), LinkEvaluator(config=config, ambient=ambient)


def _rate_at_point(point: tuple) -> float:
    """AMPPM throughput (Kbps) at one (dimming, distance) grid point."""
    config, ambient, level, distance = point
    scheme, base = _scheme_and_base(config, ambient)
    evaluator = base.at(LinkGeometry.on_axis(distance))
    return evaluator.throughput_bps(scheme, level) / 1e3


@register("fig16")
def run(config: SystemConfig | None = None,
        levels: tuple[float, ...] = DIMMING_LEVELS,
        distances: tuple[float, ...] = DISTANCES_M,
        ambient: float = 1.0, jobs: int | None = None) -> FigureResult:
    """AMPPM throughput over distance at three dimming levels."""
    config = config if config is not None else SystemConfig()
    points = [(config, ambient, level, d)
              for level in levels for d in distances]
    rates = SweepRunner(jobs).map(_rate_at_point, points)

    series = []
    for i, level in enumerate(levels):
        chunk = rates[i * len(distances):(i + 1) * len(distances)]
        series.append(Series(f"dimming={level}", distances, tuple(chunk)))

    # Locate the knee of the mid-dimming curve for the notes.
    mid = series[len(series) // 2]
    peak = mid.y_max
    knee = max((x for x, y in zip(mid.x, mid.y) if y >= 0.9 * peak),
               default=float("nan"))
    return FigureResult(
        figure_id="fig16",
        title="Throughput vs communication distance",
        x_label="distance (m)",
        y_label="throughput (Kbps)",
        series=tuple(series),
        notes=f"flat-to-knee distance (90% of peak): {knee:.2f} m "
              "(paper: up to 3.6 m)",
    )
