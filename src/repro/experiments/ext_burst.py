"""Extension: frame loss under bursty shadowing vs i.i.d. noise.

Not a paper figure — the paper's error model (Eq. (3)) is i.i.d., but a
deployed VLC link also sees blockage bursts.  This harness sweeps the
shadowed-time fraction of a Gilbert-Elliott process and compares frame
loss against an i.i.d. channel with the *same* long-run slot error
rate: bursts concentrate damage into fewer frames, so the bursty curve
sits below the i.i.d. one everywhere.
"""

from __future__ import annotations

import numpy as np

from ..core.errormodel import SlotErrorModel
from ..core.params import SystemConfig
from ..link.frame import FrameError
from ..link.mac import corrupt_slots
from ..link.receiver import Receiver
from ..link.transmitter import Transmitter
from ..phy.burst import GilbertElliottChannel
from ..schemes import AmppmScheme
from ..sim.results import FigureResult, Series
from .registry import register

SHADOW_FRACTIONS = (0.002, 0.005, 0.01, 0.02, 0.05)


@register("ext-burst")
def run(config: SystemConfig | None = None,
        fractions: tuple[float, ...] = SHADOW_FRACTIONS,
        trials: int = 60, seed: int = 7,
        mean_burst_slots: float = 250.0) -> FigureResult:
    """Frame loss vs shadowed-time fraction, bursty vs i.i.d."""
    config = config if config is not None else SystemConfig()
    design = AmppmScheme(config).design(0.5)
    tx, rx = Transmitter(config), Receiver(config)
    frame = tx.encode_frame(bytes(range(64)), design)
    rng = np.random.default_rng(seed)

    def loss(corruptor) -> float:
        failures = 0
        for _ in range(trials):
            try:
                rx.decode_frame(corruptor(list(frame)))
            except FrameError:
                failures += 1
        return failures / trials

    bursty, iid = [], []
    for fraction in fractions:
        p_recover = 1.0 / mean_burst_slots
        p_block = fraction * p_recover / (1.0 - fraction)
        channel = GilbertElliottChannel(
            good=SlotErrorModel.from_config(config),
            p_good_to_bad=p_block, p_bad_to_good=p_recover)
        average = channel.average_error_model()
        bursty.append(loss(lambda f: channel.corrupt(f, rng)[0]))
        iid.append(loss(lambda f: corrupt_slots(f, average, rng)))

    return FigureResult(
        figure_id="ext-burst",
        title="Extension: frame loss under shadowing bursts vs iid noise",
        x_label="fraction of time shadowed",
        y_label="frame loss rate",
        series=(
            Series("bursty (Gilbert-Elliott)", fractions, tuple(bursty)),
            Series("iid, same avg error rate", fractions, tuple(iid)),
        ),
        notes=f"mean burst {mean_burst_slots * config.t_slot * 1e3:.0f} ms, "
              f"{trials} frames per point",
    )
