"""Extension: frame loss under bursty shadowing vs i.i.d. noise.

Not a paper figure — the paper's error model (Eq. (3)) is i.i.d., but a
deployed VLC link also sees blockage bursts.  This harness sweeps the
shadowed-time fraction of a Gilbert-Elliott process and compares frame
loss against an i.i.d. channel with the *same* long-run slot error
rate: bursts concentrate damage into fewer frames, so the bursty curve
sits below the i.i.d. one everywhere.

Each shadow fraction is an independent grid point with its own spawned
random stream (see :mod:`repro.sim.sweep`), so results are identical
whether the sweep runs serially or across worker processes.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from ..core.errormodel import SlotErrorModel
from ..core.params import SystemConfig
from ..link.frame import FrameError
from ..link.mac import corrupt_slots
from ..link.receiver import Receiver
from ..link.transmitter import Transmitter
from ..phy.burst import GilbertElliottChannel
from ..schemes import AmppmScheme
from ..sim.results import FigureResult, Series
from ..sim.sweep import SweepRunner
from .registry import register

SHADOW_FRACTIONS = (0.002, 0.005, 0.01, 0.02, 0.05)


@lru_cache(maxsize=8)
def _frame_for(config: SystemConfig) -> tuple[list, Receiver]:
    """Encoded test frame + receiver, built once per (process, config)."""
    design = AmppmScheme(config).design(0.5)
    frame = Transmitter(config).encode_frame(bytes(range(64)), design)
    return frame, Receiver(config)


def _losses_at_fraction(point: tuple,
                        rng: np.random.Generator) -> tuple[float, float]:
    """(bursty, iid) frame loss at one shadowed-time fraction."""
    config, fraction, trials, mean_burst_slots = point
    frame, rx = _frame_for(config)

    p_recover = 1.0 / mean_burst_slots
    p_block = fraction * p_recover / (1.0 - fraction)
    channel = GilbertElliottChannel(
        good=SlotErrorModel.from_config(config),
        p_good_to_bad=p_block, p_bad_to_good=p_recover)
    average = channel.average_error_model()

    def loss(corruptor) -> float:
        failures = 0
        for _ in range(trials):
            try:
                rx.decode_frame(corruptor(list(frame)))
            except FrameError:
                failures += 1
        return failures / trials

    return (loss(lambda f: channel.corrupt(f, rng)[0]),
            loss(lambda f: corrupt_slots(f, average, rng)))


@register("ext-burst")
def run(config: SystemConfig | None = None,
        fractions: tuple[float, ...] = SHADOW_FRACTIONS,
        trials: int = 60, seed: int = 7,
        mean_burst_slots: float = 250.0,
        jobs: int | None = None) -> FigureResult:
    """Frame loss vs shadowed-time fraction, bursty vs i.i.d."""
    config = config if config is not None else SystemConfig()
    points = [(config, fraction, trials, mean_burst_slots)
              for fraction in fractions]
    results = SweepRunner(jobs).map(_losses_at_fraction, points, seed=seed)
    bursty = tuple(b for b, _ in results)
    iid = tuple(i for _, i in results)

    return FigureResult(
        figure_id="ext-burst",
        title="Extension: frame loss under shadowing bursts vs iid noise",
        x_label="fraction of time shadowed",
        y_label="frame loss rate",
        series=(
            Series("bursty (Gilbert-Elliott)", fractions, bursty),
            Series("iid, same avg error rate", fractions, iid),
        ),
        notes=f"mean burst {mean_burst_slots * config.t_slot * 1e3:.0f} ms, "
              f"{trials} frames per point",
    )
