"""Fig. 17 — throughput vs incidence angle.

The receiver moves along constant-distance arcs (1.3 m, 2.3 m, 3.3 m)
while facing the LED, so the irradiance and incidence angles grow
together.  Expected shape: throughput holds within the beam, and the
cut-off angle shrinks with distance — at 3.3 m the link is already near
its distance limit, so a small angular loss of gain kills it, while at
1.3 m the margin covers the whole sweep.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from ..core.params import SystemConfig
from ..phy.optics import LinkGeometry
from ..schemes import AmppmScheme
from ..sim.linkmodel import LinkEvaluator
from ..sim.results import FigureResult, Series
from ..sim.sweep import SweepRunner
from .registry import register

DISTANCES_M = (1.3, 2.3, 3.3)
ANGLES_DEG = tuple(float(a) for a in np.arange(0.0, 16.01, 1.0))


@lru_cache(maxsize=8)
def _scheme_and_base(config: SystemConfig,
                     ambient: float) -> tuple[AmppmScheme, LinkEvaluator]:
    """Designer + channel, built once per (process, config, ambient)."""
    return AmppmScheme(config), LinkEvaluator(config=config, ambient=ambient)


def _rate_at_point(point: tuple) -> float:
    """AMPPM throughput (Kbps) at one (distance, angle) grid point."""
    config, ambient, dimming, distance, angle = point
    scheme, base = _scheme_and_base(config, ambient)
    evaluator = base.at(LinkGeometry.on_arc(distance, angle))
    return evaluator.throughput_bps(scheme, dimming) / 1e3


@register("fig17")
def run(config: SystemConfig | None = None,
        distances: tuple[float, ...] = DISTANCES_M,
        angles: tuple[float, ...] = ANGLES_DEG,
        dimming: float = 0.5, ambient: float = 1.0,
        jobs: int | None = None) -> FigureResult:
    """AMPPM throughput over incidence angle at three distances."""
    config = config if config is not None else SystemConfig()
    points = [(config, ambient, dimming, d, angle)
              for d in distances for angle in angles]
    flat = SweepRunner(jobs).map(_rate_at_point, points)

    series = []
    cutoffs = {}
    for i, d in enumerate(distances):
        rates = flat[i * len(angles):(i + 1) * len(angles)]
        series.append(Series(f"distance={d}m", angles, tuple(rates)))
        peak = max(rates)
        cutoffs[d] = max((a for a, r in zip(angles, rates) if r >= 0.9 * peak),
                         default=float("nan"))
    return FigureResult(
        figure_id="fig17",
        title="Throughput vs incidence angle",
        x_label="incidence angle (degrees)",
        y_label="throughput (Kbps)",
        series=tuple(series),
        notes="90%-of-peak cut-off angles: "
              + ", ".join(f"{d}m: {cutoffs[d]:.0f}deg" for d in distances),
    )
