"""Experiment harnesses: one module per figure/table of the evaluation.

Importing this package registers every runner with the registry;
``run_experiment("fig15")`` then regenerates Fig. 15, and so on.  The
mapping from experiment ids to paper artefacts lives in DESIGN.md §3.
"""

from . import (  # noqa: F401  (import-for-registration)
    ext_burst,
    ext_chaos,
    ext_energy,
    ext_multicell,
    ext_payload,
    ext_room,
    ext_scenarios,
    ext_serbound,
    fig04_ser,
    fig06_multiplexing,
    fig08_serbound,
    fig09_envelope,
    fig10_domains,
    fig15_throughput,
    fig16_distance,
    fig17_angle,
    fig19_dynamic,
    headline,
    table2_flicker,
)
from .registry import REGISTRY, experiment_ids, run_experiment

ALL_EXPERIMENTS = tuple(REGISTRY.ids())

__all__ = [
    "ALL_EXPERIMENTS",
    "REGISTRY",
    "experiment_ids",
    "run_experiment",
]
