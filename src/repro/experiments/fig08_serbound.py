"""Fig. 8 — candidate symbol patterns under the SER upper bound.

Step 2 of the AMPPM designer: symbol patterns whose Eq. (3) SER exceeds
the bound are abandoned.  The figure shows SER-vs-dimming curves for a
few N with the bound as a horizontal cut: small-N curves sit fully
below it, large-N curves are partially or fully pruned.
"""

from __future__ import annotations

from ..core.errormodel import SlotErrorModel
from ..core.params import SystemConfig
from ..core.symbols import candidate_patterns
from ..sim.results import FigureResult, Series
from .registry import register

#: The paper plots N = 10/30/50; we add the designer's cap (63), where
#: the default bound actually bites with the measured P1/P2 constants.
N_VALUES = (10, 30, 50, 63)


@register("fig08")
def run(config: SystemConfig | None = None,
        n_values: tuple[int, ...] = N_VALUES) -> FigureResult:
    """SER curves with the designer's upper bound overlaid."""
    config = config if config is not None else SystemConfig()
    errors = SlotErrorModel.from_config(config)

    series = []
    for n in n_values:
        dims = tuple(k / n for k in range(1, n))
        sers = tuple(errors.symbol_error_rate(n, k) for k in range(1, n))
        series.append(Series(f"N={n}", dims, sers))
    bound = Series("upper bound", (0.0, 1.0),
                   (config.ser_bound, config.ser_bound))

    survivors = candidate_patterns(config, errors)
    per_n = {n: sum(1 for p in survivors if p.n_slots == n) for n in n_values}
    return FigureResult(
        figure_id="fig08",
        title="Available patterns: below the SER upper bound",
        x_label="dimming level",
        y_label="symbol error rate",
        series=(*series, bound),
        notes=(
            f"bound={config.ser_bound:g}; surviving patterns per N: "
            + ", ".join(f"N={n}: {per_n[n]}" for n in n_values)
            + f"; total candidates: {len(survivors)}"
        ),
    )
