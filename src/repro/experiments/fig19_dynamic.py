"""Fig. 19 — the dynamic scenario: 67 s of blind pulling.

Three panels from one run:

* (a) throughput per second — dips near the start and end of the ramp
  (extreme dimming levels) and peaks mid-ramp, mirroring Fig. 15, with
  a slight right-side deficit from ambient interference;
* (b) ambient / LED / sum intensity — the sum stays flat (Goal 1);
* (c) cumulative adaptation count — SmartVLC's perception-domain
  stepping uses ≈half the adjustments of the fixed-step method.
"""

from __future__ import annotations

from ..core.params import SystemConfig
from ..sim.dynamic import DynamicRunResult, DynamicScenario
from ..sim.results import FigureResult, Series
from .registry import register


def run_scenario(config: SystemConfig | None = None,
                 duration_s: float = 67.0) -> DynamicRunResult:
    """The underlying simulation shared by the three panels."""
    config = config if config is not None else SystemConfig()
    return DynamicScenario(config=config, duration_s=duration_s).run()


@register("fig19a")
def run_throughput(config: SystemConfig | None = None,
                   result: DynamicRunResult | None = None) -> FigureResult:
    """Panel (a): throughput under AMPPM over time."""
    result = result if result is not None else run_scenario(config)
    times = tuple(result.times)
    return FigureResult(
        figure_id="fig19a",
        title="Dynamic scenario: throughput under AMPPM",
        x_label="time (s)",
        y_label="throughput (Kbps)",
        series=(Series("AMPPM", times,
                       tuple(t / 1e3 for t in result.throughput_bps)),),
        notes="shape mirrors the static Fig. 15 curve as the dimming "
              "level traverses its range",
    )


@register("fig19b")
def run_intensity(config: SystemConfig | None = None,
                  result: DynamicRunResult | None = None) -> FigureResult:
    """Panel (b): recorded light intensities."""
    result = result if result is not None else run_scenario(config)
    times = tuple(result.times)
    sums = result.sum_trace
    return FigureResult(
        figure_id="fig19b",
        title="Dynamic scenario: recorded light intensity",
        x_label="time (s)",
        y_label="normalized light intensity",
        series=(
            Series("ambient", times, tuple(result.ambient_trace)),
            Series("LED", times, tuple(result.led_trace)),
            Series("sum", times, tuple(sums)),
        ),
        notes=f"sum stays within [{min(sums):.3f}, {max(sums):.3f}] "
              "(Goal 1: constant illumination)",
    )


@register("fig19c")
def run_adaptation(config: SystemConfig | None = None,
                   result: DynamicRunResult | None = None) -> FigureResult:
    """Panel (c): cumulative adaptation counts."""
    result = result if result is not None else run_scenario(config)
    times = tuple(result.times)
    smart = result.cumulative_adjustments_smart
    existing = result.cumulative_adjustments_existing
    return FigureResult(
        figure_id="fig19c",
        title="Dynamic scenario: cumulative adaptation times",
        x_label="time (s)",
        y_label="cumulative adaptation count",
        series=(
            Series("existing method", times, tuple(float(v) for v in existing)),
            Series("SmartVLC", times, tuple(float(v) for v in smart)),
        ),
        notes=f"SmartVLC reduces adjustments by "
              f"{100 * result.adaptation_reduction:.0f}% (paper: ~50%)",
    )
