"""Registry of every reproduced figure and table.

Each experiment module registers its runner here; benchmarks, the CLI
renderer and EXPERIMENTS.md generation all go through
:func:`run_experiment` so there is exactly one way to regenerate any
artefact of the paper.
"""

from __future__ import annotations

import inspect

from ..sim.results import ExperimentRegistry

REGISTRY = ExperimentRegistry()


def register(experiment_id: str):
    """Decorator registering a runner under an experiment id."""

    def wrap(func):
        REGISTRY.register(experiment_id, func)
        return func

    return wrap


def _accepts_jobs(func) -> bool:
    params = inspect.signature(func).parameters
    return ("jobs" in params
            or any(p.kind is inspect.Parameter.VAR_KEYWORD
                   for p in params.values()))


def run_experiment(experiment_id: str, jobs: int | None = None, **kwargs):
    """Run one experiment by id (see :func:`experiment_ids`).

    ``jobs`` caps the worker-process count for runners that sweep their
    grid through :class:`~repro.sim.sweep.SweepRunner`; runners whose
    signature does not accept it (cheap single-point tables) silently
    ignore it.
    """
    # Importing the package registers all runners.
    from . import ALL_EXPERIMENTS  # noqa: F401

    if jobs is not None and _accepts_jobs(REGISTRY.get(experiment_id)):
        kwargs["jobs"] = jobs
    return REGISTRY.run(experiment_id, **kwargs)


def experiment_ids() -> list[str]:
    """All registered experiment ids."""
    from . import ALL_EXPERIMENTS  # noqa: F401

    return REGISTRY.ids()
