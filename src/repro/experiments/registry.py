"""Registry of every reproduced figure and table.

Each experiment module registers its runner here; benchmarks, the CLI
renderer and EXPERIMENTS.md generation all go through
:func:`run_experiment` so there is exactly one way to regenerate any
artefact of the paper.

:func:`run_experiment` is also the telemetry choke point: every run
executes inside an ``experiment.<id>`` span, and every returned
:class:`~repro.sim.results.FigureResult` /
:class:`~repro.sim.results.TableResult` comes back with a
:class:`~repro.obs.manifest.RunManifest` attached — the experiment id,
the exact configuration digest, the seeds it ran with, the package
version, wall time, and (when a telemetry session is active) the
metrics the run produced.  The manifest is provenance only: it is
excluded from result equality and rendering, so golden outputs stay
bit-identical.
"""

from __future__ import annotations

import inspect
import time
from dataclasses import replace
from datetime import datetime, timezone

from ..core.params import DEFAULT_CONFIG, SystemConfig
from ..obs import RunManifest, active, config_digest, record_manifest, span
from ..sim.results import ExperimentRegistry, FigureResult, TableResult

REGISTRY = ExperimentRegistry()


def register(experiment_id: str):
    """Decorator registering a runner under an experiment id."""

    def wrap(func):
        REGISTRY.register(experiment_id, func)
        return func

    return wrap


def _accepts_jobs(func) -> bool:
    params = inspect.signature(func).parameters
    return ("jobs" in params
            or any(p.kind is inspect.Parameter.VAR_KEYWORD
                   for p in params.values()))


def _manifest_for(experiment_id: str, kwargs: dict, wall_time_s: float,
                  started_at_utc: str, metrics_snapshot: dict) -> RunManifest:
    """Build the provenance record of one finished run."""
    from .. import __version__

    config = kwargs.get("config")
    if not isinstance(config, SystemConfig):
        config = DEFAULT_CONFIG
    seeds = tuple(v for k, v in sorted(kwargs.items())
                  if "seed" in k and isinstance(v, int))
    extra = {k: v for k, v in kwargs.items() if k != "config"}
    return RunManifest(
        experiment_id=experiment_id,
        config_digest=config_digest(config),
        version=__version__,
        seeds=seeds,
        args=repr(dict(sorted(extra.items()))) if extra else "",
        started_at_utc=started_at_utc,
        wall_time_s=wall_time_s,
        metrics=metrics_snapshot,
    )


def run_experiment(experiment_id: str, jobs: int | None = None, **kwargs):
    """Run one experiment by id (see :func:`experiment_ids`).

    ``jobs`` caps the worker-process count for runners that sweep their
    grid through :class:`~repro.sim.sweep.SweepRunner`; runners whose
    signature does not accept it (cheap single-point tables) silently
    ignore it.  The returned result carries a
    :class:`~repro.obs.manifest.RunManifest` (see the module
    docstring).
    """
    # Importing the package registers all runners.
    from . import ALL_EXPERIMENTS  # noqa: F401

    runner = REGISTRY.get(experiment_id)
    if jobs is not None and _accepts_jobs(runner):
        kwargs["jobs"] = jobs

    session = active()
    started_at = datetime.now(timezone.utc).isoformat(timespec="seconds")
    t0 = time.perf_counter()
    with span(f"experiment.{experiment_id}"):
        result = REGISTRY.run(experiment_id, **kwargs)
    wall_time_s = time.perf_counter() - t0

    snapshot: dict = {} if session is None else session.registry.snapshot()
    manifest = _manifest_for(experiment_id, kwargs, wall_time_s, started_at,
                             snapshot)
    record_manifest(manifest)
    if isinstance(result, (FigureResult, TableResult)):
        result = replace(result, manifest=manifest)
    return result


def experiment_ids() -> list[str]:
    """All registered experiment ids."""
    from . import ALL_EXPERIMENTS  # noqa: F401

    return REGISTRY.ids()
