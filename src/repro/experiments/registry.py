"""Registry of every reproduced figure and table.

Each experiment module registers its runner here; benchmarks, the CLI
renderer and EXPERIMENTS.md generation all go through
:func:`run_experiment` so there is exactly one way to regenerate any
artefact of the paper.
"""

from __future__ import annotations

from ..sim.results import ExperimentRegistry

REGISTRY = ExperimentRegistry()


def register(experiment_id: str):
    """Decorator registering a runner under an experiment id."""

    def wrap(func):
        REGISTRY.register(experiment_id, func)
        return func

    return wrap


def run_experiment(experiment_id: str, **kwargs):
    """Run one experiment by id (see :func:`experiment_ids`)."""
    # Importing the package registers all runners.
    from . import ALL_EXPERIMENTS  # noqa: F401

    return REGISTRY.run(experiment_id, **kwargs)


def experiment_ids() -> list[str]:
    """All registered experiment ids."""
    from . import ALL_EXPERIMENTS  # noqa: F401

    return REGISTRY.ids()
