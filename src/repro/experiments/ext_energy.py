"""Extension: energy saved by smart dimming over the dynamic scenario.

Not a paper figure — the paper *motivates* SmartVLC with lighting's
energy footprint (Section 1) but never quantifies the saving on its own
test bed.  This harness closes that loop: run the Fig. 19 blind pull
and account the LED's electrical energy against a non-smart
installation pinned at full brightness.
"""

from __future__ import annotations

from ..core.params import SystemConfig
from ..lighting.energy import energy_report
from ..sim.results import TableResult
from .registry import register


@register("ext-energy")
def run(config: SystemConfig | None = None,
        full_power_w: float = 4.7) -> TableResult:
    """Energy ledger of the 67 s dynamic run."""
    from .fig19_dynamic import run_scenario

    config = config if config is not None else SystemConfig()
    result = run_scenario(config)
    report = energy_report(result.led_trace, tick_s=1.0,
                           full_power_w=full_power_w)
    rows = (
        ("run duration", f"{report.duration_s:.0f} s"),
        ("smart LED energy", f"{report.smart_joules:.1f} J"),
        ("always-full baseline", f"{report.baseline_joules:.1f} J"),
        ("energy saved", f"{report.saved_joules:.1f} J"),
        ("saving fraction", f"{100 * report.saving_fraction:.0f}%"),
        ("mean electrical power", f"{report.smart_average_w:.2f} W "
                                  f"of {full_power_w} W"),
    )
    return TableResult(
        table_id="ext-energy",
        title="Extension: energy saved by smart dimming (Fig. 19 scenario)",
        header=("quantity", "value"),
        rows=rows,
        notes="duty-cycle dimming => electrical power proportional to "
              "the dimming level",
    )
