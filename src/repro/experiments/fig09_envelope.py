"""Fig. 9 — best pattern selection based on slope (the envelope).

The slope walk starts at the highest-rate pattern near l = 0.5 and hops
to the point minimising the descent; connecting the hops gives the
throughput envelope, and any dimming level between two neighbouring
vertices is served by multiplexing them.  Expected shape: the envelope
dominates every discrete pattern and the without-multiplexing staircase.
"""

from __future__ import annotations

import numpy as np

from ..core.ampdesign import AmppmDesigner
from ..core.envelope import score_points
from ..core.params import SystemConfig
from ..sim.results import FigureResult, Series
from .registry import register


@register("fig09")
def run(config: SystemConfig | None = None,
        dimming_lo: float = 0.5, dimming_hi: float = 0.7,
        step: float = 0.005) -> FigureResult:
    """The envelope vs the no-multiplexing staircase over [lo, hi]."""
    config = config if config is not None else SystemConfig()
    designer = AmppmDesigner(config)

    points = score_points(designer.candidates, designer.errors)
    window = [p for p in points if dimming_lo <= p.dimming <= dimming_hi]
    discrete = Series(
        "patterns",
        tuple(p.dimming for p in window),
        tuple(p.rate for p in window),
    )

    targets = np.arange(dimming_lo, dimming_hi + 1e-9, step)
    staircase = []
    for target in targets:
        best = max((p.rate for p in points
                    if abs(p.dimming - target) <= step / 2), default=None)
        if best is None:
            # Without multiplexing the nearest discrete level serves.
            nearest = min(points, key=lambda p: abs(p.dimming - target))
            best = nearest.rate
        staircase.append(best)
    without = Series("without multiplexing", tuple(float(t) for t in targets),
                     tuple(staircase))

    ampem = Series(
        "AMPPM (envelope)",
        tuple(float(t) for t in targets),
        tuple(designer.design(float(t)).normalized_rate(designer.errors)
              for t in targets),
    )

    vertices = [p for p in designer.envelope.points
                if dimming_lo - 1e-9 <= p.dimming <= dimming_hi + 1e-9]
    return FigureResult(
        figure_id="fig09",
        title="Best pattern selection based on slope",
        x_label="dimming level",
        y_label="normalized data rate (bits/slot)",
        series=(discrete, without, ampem),
        notes=(
            "envelope vertices in window: "
            + ", ".join(f"S({p.pattern.n_slots},{p.pattern.dimming:.3f})"
                        for p in vertices)
        ),
    )
