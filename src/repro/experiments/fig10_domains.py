"""Fig. 10 — adaptation in the measured vs the perceived domain.

Both panels show the perception curve Ip = 100·√(Im/100); the markers
are the intermediate intensities an adaptation from dark to bright
visits.  Fixed measured steps (panel a) crowd the perceptually
sensitive dark region and waste steps when bright; fixed perceived
steps (panel b, SmartVLC) space the measured steps non-uniformly and
need far fewer of them for the same flicker guarantee.
"""

from __future__ import annotations

from ..core.adaptation import plan_measured_steps, plan_perceived_steps, safe_measured_tau
from ..core.params import SystemConfig
from ..core.perception import to_perceived_percent
from ..sim.results import FigureResult, Series
from .registry import register


@register("fig10")
def run(config: SystemConfig | None = None,
        start: float = 0.05, target: float = 0.95,
        display_steps: int = 12) -> FigureResult:
    """The two stepping strategies along the perception curve.

    ``display_steps`` thins the marker sets to the paper's visual
    density; the note records the true step counts.
    """
    config = config if config is not None else SystemConfig()

    curve_x = tuple(i / 100 for i in range(0, 101, 2))
    curve = Series("Ip = 100*sqrt(Im/100)",
                   tuple(100 * x for x in curve_x),
                   tuple(to_perceived_percent(100 * x) for x in curve_x))

    tau_measured = safe_measured_tau(start, config.tau_perceived)
    measured_plan = plan_measured_steps(start, target, tau_measured)
    perceived_plan = plan_perceived_steps(start, target, config.tau_perceived)

    def thin(levels: tuple[float, ...]) -> tuple[float, ...]:
        if len(levels) <= display_steps:
            return levels
        stride = max(1, len(levels) // display_steps)
        return tuple(levels[::stride])

    measured_markers = thin(measured_plan.levels)
    perceived_markers = thin(perceived_plan.levels)
    measured_series = Series(
        "measured-domain steps",
        tuple(100 * m for m in measured_markers),
        tuple(to_perceived_percent(100 * m) for m in measured_markers))
    perceived_series = Series(
        "perceived-domain steps",
        tuple(100 * m for m in perceived_markers),
        tuple(to_perceived_percent(100 * m) for m in perceived_markers))

    return FigureResult(
        figure_id="fig10",
        title="Adaptation to dynamic ambient light: step domains",
        x_label="measured LED light (%)",
        y_label="perceived LED light (%)",
        series=(curve, measured_series, perceived_series),
        notes=(
            f"steps from {start:.2f} to {target:.2f}: "
            f"measured-domain {measured_plan.n_steps}, "
            f"perceived-domain {perceived_plan.n_steps} "
            f"(max perceived move {perceived_plan.max_perceived_step:.4f} "
            f"<= tau_p {config.tau_perceived})"
        ),
    )
