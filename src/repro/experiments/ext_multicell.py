"""Extension: the multi-luminaire network across room sizes.

Not a paper figure — the paper prototypes one luminaire — but its
deployment story is a smart-lit *building*.  This harness runs the
discrete-event multicell simulator over growing luminaire grids with a
fixed population of random-waypoint receivers and reports, per grid:

* aggregate goodput (the broadcast capacity the floor delivers),
* total handovers (the mobility cost of smaller cells), and
* the mean per-cell adaptation rate (how hard each lighting loop
  works when it only sees the receivers camped on it).

Every grid point is an independent seeded run, so the sweep is
``SweepRunner``-parallel and bit-deterministic under ``--jobs N``.
"""

from __future__ import annotations

from ..core.params import SystemConfig
from ..lighting.ambient import BlindRampAmbient
from ..net.multicell import default_network
from ..sim.results import FigureResult, Series
from ..sim.sweep import SweepRunner
from .registry import register

GRIDS: tuple[tuple[int, int], ...] = ((1, 1), (1, 2), (2, 2), (2, 3), (3, 3))


def _run_point(point: tuple) -> dict[str, float]:
    """Metrics of one (config, rows, cols, nodes, duration, seed, regions)
    run."""
    config, rows, cols, n_nodes, duration_s, seed, regions = point
    simulation = default_network(
        config, rows=rows, cols=cols, n_nodes=n_nodes,
        profile=BlindRampAmbient(duration_s=duration_s), seed=seed,
        regions=min(regions, rows * cols))
    result = simulation.run(duration_s)
    metrics = result.metrics()
    metrics["cells"] = float(rows * cols)
    metrics["mean_adaptation_rate_hz"] = (
        sum(c.adaptation_rate_hz for c in result.cells) / len(result.cells))
    return metrics


@register("ext-multicell")
def run(config: SystemConfig | None = None,
        grids: tuple[tuple[int, int], ...] = GRIDS,
        n_nodes: int = 6, duration_s: float = 40.0, seed: int = 2017,
        regions: int = 1, jobs: int | None = None) -> FigureResult:
    """Aggregate goodput, handovers and adaptation over grid sizes.

    ``regions > 1`` runs each grid point on the sharded kernel (capped
    at the grid's cell count) — the fleet-scale path for big sweeps.
    """
    config = config if config is not None else SystemConfig()
    if regions < 1:
        raise ValueError("regions must be positive")
    points = [(config, rows, cols, n_nodes, duration_s, seed + i, regions)
              for i, (rows, cols) in enumerate(grids)]
    metrics = SweepRunner(jobs).map(_run_point, points)

    cells = tuple(m["cells"] for m in metrics)
    series = (
        Series("aggregate goodput (Kbps)", cells,
               tuple(m["aggregate_throughput_bps"] / 1e3 for m in metrics)),
        Series("handovers", cells,
               tuple(m["total_handovers"] for m in metrics)),
        Series("adaptations per cell per min", cells,
               tuple(m["mean_adaptation_rate_hz"] * 60.0 for m in metrics)),
    )
    delivered = sum(m["reports_delivered"] for m in metrics)
    lost = sum(m["reports_lost"] for m in metrics)
    return FigureResult(
        figure_id="ext-multicell",
        title="Extension: multi-luminaire network vs room size "
              f"({n_nodes} mobile receivers, blind ramp)",
        x_label="luminaires in the ceiling grid",
        y_label="per-series units (goodput Kbps / counts / rate)",
        series=series,
        notes=f"{duration_s:.0f} s runs; ambient reports delivered/lost: "
              f"{delivered:.0f}/{lost:.0f}; handovers counted per "
              "receiver across strongest-cell reassociations",
    )
