"""Slot-level frame transmitter.

Assembles Table 1 frames: OOK preamble + header, a brightness
compensation run, the sync edge, then the scheme-modulated payload and
CRC.  Works with any :class:`~repro.baselines.base.SchemeDesign`; the
Pattern field is derived from the design so the receiver is
self-describing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..baselines.base import SchemeDesign
from ..baselines.darklight import DarkLightDesign
from ..baselines.mppm import MppmDesign
from ..baselines.ookct import OokCtDesign
from ..baselines.oppm import OppmDesign
from ..baselines.vppm import VppmDesign
from ..core.params import SystemConfig
from ..core.supersymbol import SuperSymbol
from ..schemes import AmppmSchemeDesign
from .bitstream import bytes_to_bits
from .crc import append_crc
from .frame import (
    PREAMBLE_SLOTS,
    SCHEME_OPPM,
    SCHEME_VPPM,
    Frame,
    FrameHeader,
    PatternDescriptor,
    compensation_run,
    header_slots,
)


def descriptor_for_design(design: SchemeDesign) -> PatternDescriptor:
    """Build the Pattern field for any known scheme design."""
    if isinstance(design, AmppmSchemeDesign):
        return PatternDescriptor.for_super_symbol(design.super_symbol)
    if isinstance(design, MppmDesign):
        return PatternDescriptor.for_super_symbol(SuperSymbol.single(design.pattern))
    if isinstance(design, OokCtDesign):
        return PatternDescriptor.for_ook()
    if isinstance(design, DarkLightDesign):
        return PatternDescriptor.for_darklight(design.n_slots)
    if isinstance(design, VppmDesign):
        return PatternDescriptor.for_pulse(SCHEME_VPPM, design.n_slots, design.width)
    if isinstance(design, OppmDesign):
        return PatternDescriptor.for_pulse(SCHEME_OPPM, design.n_slots, design.width)
    raise TypeError(f"no pattern descriptor mapping for {type(design).__name__}")


@dataclass
class Transmitter:
    """Build the ON/OFF slot stream for frames of one scheme design."""

    config: SystemConfig = field(default_factory=SystemConfig)

    def encode_frame(self, payload: bytes, design: SchemeDesign) -> list[bool]:
        """One complete frame as a slot sequence.

        The CRC covers the header bytes and the payload, so corruption
        of the plain-OOK header is also detected at the end.
        """
        frame = Frame.build(payload, descriptor_for_design(design))
        return self._assemble(frame, design)

    def frame_overhead_slots(self, design: SchemeDesign,
                             payload_bytes: int | None = None) -> int:
        """Non-payload slots of a frame at this design's dimming level.

        Exact for a given payload length: the compensation run depends
        on the header's bit pattern, which includes the length field.
        """
        n_payload = (payload_bytes if payload_bytes is not None
                     else self.config.payload_bytes)
        hdr = header_slots(FrameHeader(n_payload, descriptor_for_design(design)))
        on_count = sum(PREAMBLE_SLOTS) + sum(hdr)
        total = len(PREAMBLE_SLOTS) + len(hdr)
        comp, _ = compensation_run(on_count, total, design.achieved_dimming,
                                   self.config.n_max_super)
        return total + comp + 1

    def _assemble(self, frame: Frame, design: SchemeDesign) -> list[bool]:
        slots: list[bool] = list(PREAMBLE_SLOTS)
        hdr = header_slots(frame.header)
        slots.extend(hdr)

        comp_count, comp_on = compensation_run(
            sum(1 for s in slots if s), len(slots),
            design.achieved_dimming, self.config.n_max_super)
        slots.extend([comp_on] * comp_count)
        slots.append(not comp_on)  # the sync edge

        protected = append_crc(frame.header.to_bytes() + frame.payload)
        body_bits = bytes_to_bits(protected[len(frame.header.to_bytes()):])
        # The modulated section carries payload + CRC; the CRC bytes at
        # the end of `protected` cover header + payload.
        slots.extend(design.encode_payload(body_bits))
        return slots

    def frame_duration(self, payload: bytes, design: SchemeDesign) -> float:
        """Airtime of one frame in seconds."""
        return len(self.encode_frame(payload, design)) * self.config.t_slot
