"""Byte/bit stream conversions used by the frame codec.

Bits are most-significant-bit-first throughout, matching the symbol
codecs in :mod:`repro.core.coding`.
"""

from __future__ import annotations

from typing import Sequence


def bytes_to_bits(data: bytes) -> list[int]:
    """Expand bytes into a MSB-first bit list."""
    bits: list[int] = []
    for byte in data:
        for shift in range(7, -1, -1):
            bits.append((byte >> shift) & 1)
    return bits


def bits_to_bytes(bits: Sequence[int]) -> bytes:
    """Pack a MSB-first bit list into bytes; length must be a multiple of 8."""
    if len(bits) % 8:
        raise ValueError(f"bit count {len(bits)} is not a multiple of 8")
    out = bytearray()
    for start in range(0, len(bits), 8):
        byte = 0
        for bit in bits[start:start + 8]:
            if bit not in (0, 1):
                raise ValueError(f"bits must be 0 or 1, got {bit!r}")
            byte = (byte << 1) | bit
        out.append(byte)
    return bytes(out)
