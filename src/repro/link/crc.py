"""CRC-16 for the frame check sequence (Table 1, the trailing 2 bytes).

CRC-16-CCITT (polynomial 0x1021, init 0xFFFF, no reflection) — the
variant ubiquitous in embedded link layers of this class.  Implemented
with a precomputed 256-entry table; the table is module-level because
every frame shares it.
"""

from __future__ import annotations

_POLYNOMIAL = 0x1021
_INITIAL = 0xFFFF


def _build_table() -> tuple[int, ...]:
    table = []
    for byte in range(256):
        crc = byte << 8
        for _ in range(8):
            if crc & 0x8000:
                crc = ((crc << 1) ^ _POLYNOMIAL) & 0xFFFF
            else:
                crc = (crc << 1) & 0xFFFF
        table.append(crc)
    return tuple(table)


_TABLE = _build_table()


def crc16(data: bytes, initial: int = _INITIAL) -> int:
    """CRC-16-CCITT of ``data``."""
    crc = initial & 0xFFFF
    for byte in data:
        crc = ((crc << 8) & 0xFFFF) ^ _TABLE[((crc >> 8) ^ byte) & 0xFF]
    return crc


def append_crc(data: bytes) -> bytes:
    """Return ``data`` with its big-endian CRC-16 appended."""
    return data + crc16(data).to_bytes(2, "big")


def check_crc(data_with_crc: bytes) -> bool:
    """True when the trailing two bytes are the CRC of the rest."""
    if len(data_with_crc) < 2:
        return False
    payload, trailer = data_with_crc[:-2], data_with_crc[-2:]
    return crc16(payload) == int.from_bytes(trailer, "big")
