"""The out-of-band Wi-Fi uplink (ESP8266 stand-in).

The paper's receivers acknowledge frames and report their sensed
ambient light over Wi-Fi, because the mobile node's LED is too weak for
a VLC uplink.  Only the properties that shape MAC behaviour are
modelled: delivery latency (with jitter) and a loss probability.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class WifiUplink:
    """A lossy, delayed datagram channel.

    Attributes:
        latency_s: Median one-way delivery latency.
        jitter_s: Half-width of the uniform jitter around the latency.
        loss_probability: Chance a datagram never arrives.
    """

    latency_s: float = 2.0e-3
    jitter_s: float = 0.5e-3
    loss_probability: float = 0.0

    def __post_init__(self) -> None:
        if self.latency_s < 0 or self.jitter_s < 0:
            raise ValueError("latency and jitter must be non-negative")
        # A zero-latency uplink with jitter is a legitimate test double
        # (delays are clamped at zero in deliver); only a positive
        # median latency constrains the jitter half-width.
        if self.latency_s > 0 and self.jitter_s > self.latency_s:
            raise ValueError("jitter must not exceed a positive latency")
        if not 0.0 <= self.loss_probability < 1.0:
            raise ValueError("loss_probability must lie in [0, 1)")

    def deliver(self, sent_at: float, rng: np.random.Generator) -> float | None:
        """Arrival time of a datagram sent at ``sent_at`` (None if lost).

        The delivery delay is clamped at zero, so a datagram never
        arrives before it was sent even when jitter dominates latency.
        """
        if self.loss_probability and rng.random() < self.loss_probability:
            return None
        jitter = rng.uniform(-self.jitter_s, self.jitter_s) if self.jitter_s else 0.0
        return sent_at + max(self.latency_s + jitter, 0.0)

    @property
    def expected_latency_s(self) -> float:
        """Mean delivery latency for delivered datagrams."""
        return self.latency_s
