"""Link layer: framing (Table 1), CRC, TX/RX codecs, Wi-Fi ACKs, MAC."""

from .bitstream import bits_to_bytes, bytes_to_bits
from .crc import append_crc, check_crc, crc16
from .frame import (
    HEADER_SLOTS,
    MAX_PAYLOAD_BYTES,
    PREAMBLE_SLOTS,
    CrcError,
    Frame,
    FrameError,
    FrameHeader,
    HeaderError,
    PatternDescriptor,
    PreambleNotFoundError,
    compensation_run,
    header_overhead_slots,
)
from .mac import MacStats, StopAndWaitMac, corrupt_slots
from .receiver import DecodedFrame, Receiver, SampleSynchronizer
from .supervision import (
    BackoffPolicy,
    LinkState,
    LinkSupervisor,
    LinkTransition,
)
from .transmitter import Transmitter, descriptor_for_design
from .wifi import WifiUplink

__all__ = [
    "BackoffPolicy",
    "CrcError",
    "DecodedFrame",
    "Frame",
    "FrameError",
    "FrameHeader",
    "HEADER_SLOTS",
    "HeaderError",
    "LinkState",
    "LinkSupervisor",
    "LinkTransition",
    "MAX_PAYLOAD_BYTES",
    "MacStats",
    "PREAMBLE_SLOTS",
    "PatternDescriptor",
    "PreambleNotFoundError",
    "Receiver",
    "SampleSynchronizer",
    "StopAndWaitMac",
    "Transmitter",
    "WifiUplink",
    "append_crc",
    "bits_to_bytes",
    "bytes_to_bits",
    "check_crc",
    "compensation_run",
    "corrupt_slots",
    "crc16",
    "descriptor_for_design",
    "header_overhead_slots",
]
