"""Slot-level and sample-level frame receivers.

:class:`Receiver` consumes a boolean slot stream (the output of a
hard-decision PHY front-end) and walks the Table 1 structure: find the
preamble, read the OOK header, skip the compensation run using the sync
edge, rebuild the payload codec from the Pattern descriptor, decode,
and CRC-check.

:class:`SampleSynchronizer` is the sample-level front-end for the
waveform pipeline: it locates the preamble by correlation against the
±1 preamble template and hands an aligned offset to
:class:`~repro.phy.waveform.SlotSampler`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..baselines.darklight import DarkLightDesign
from ..baselines.oppm import OppmDesign
from ..baselines.vppm import VppmDesign
from ..core.coding import SuperSymbolCodec
from ..core.params import SystemConfig
from .bitstream import bits_to_bytes
from .crc import crc16
from .frame import (
    HEADER_SLOTS,
    PREAMBLE_SLOTS,
    SCHEME_DARKLIGHT,
    SCHEME_MPPM,
    SCHEME_OOK,
    SCHEME_OPPM,
    SCHEME_VPPM,
    CrcError,
    FrameError,
    FrameHeader,
    HeaderError,
    PreambleNotFoundError,
    parse_header_slots,
)


@dataclass(frozen=True)
class DecodedFrame:
    """A successfully decoded and CRC-verified frame."""

    header: FrameHeader
    payload: bytes
    start: int
    end: int

    @property
    def slot_count(self) -> int:
        """Slots consumed from preamble start to the last decoded slot."""
        return self.end - self.start


def _payload_decoder(header: FrameHeader,
                     config: SystemConfig) -> tuple[Callable[[Sequence[bool], int], list[int]], Callable[[int], int]]:
    """Rebuild (decode_fn, slots_needed_fn) from the Pattern descriptor."""
    descriptor = header.descriptor
    if descriptor.scheme == SCHEME_MPPM:
        codec = SuperSymbolCodec(descriptor.super_symbol())

        def slots_needed(n_bits: int) -> int:
            return codec.slots_for_bits(n_bits)

        def decode(slots: Sequence[bool], n_bits: int) -> list[int]:
            return codec.decode_stream(slots, n_bits)

        return decode, slots_needed

    if descriptor.scheme == SCHEME_OOK:
        def slots_needed(n_bits: int) -> int:
            return n_bits

        def decode(slots: Sequence[bool], n_bits: int) -> list[int]:
            return [1 if s else 0 for s in slots[:n_bits]]

        return decode, slots_needed

    if descriptor.scheme == SCHEME_DARKLIGHT:
        n = descriptor.darklight_n
        if n < 2:
            raise HeaderError("malformed DarkLight descriptor")
        design = DarkLightDesign(n, config)
        return design.decode_payload, design.payload_slots

    if descriptor.scheme in (SCHEME_VPPM, SCHEME_OPPM):
        if descriptor.n2 < 2 or not 0 < descriptor.k2 < descriptor.n2:
            raise HeaderError("malformed pulse-scheme descriptor")
        cls = VppmDesign if descriptor.scheme == SCHEME_VPPM else OppmDesign
        design = cls(descriptor.k2 / descriptor.n2, descriptor.n2, config)

        def slots_needed(n_bits: int) -> int:
            return design.payload_slots(n_bits)

        def decode(slots: Sequence[bool], n_bits: int) -> list[int]:
            return design.decode_payload(slots, n_bits)

        return decode, slots_needed

    raise HeaderError(f"unknown scheme id {descriptor.scheme}")


@dataclass
class Receiver:
    """Walk a slot stream and extract CRC-clean frames."""

    config: SystemConfig = field(default_factory=SystemConfig)

    def find_preamble(self, slots: Sequence[bool], start: int = 0) -> int:
        """Index of the first preamble at or after ``start``.

        Raises :class:`PreambleNotFoundError` when the stream ends
        without one.
        """
        pattern = PREAMBLE_SLOTS
        limit = len(slots) - len(pattern)
        for i in range(max(start, 0), limit + 1):
            if tuple(slots[i:i + len(pattern)]) == pattern:
                return i
        raise PreambleNotFoundError(
            f"no preamble in {len(slots)} slots from index {start}"
        )

    def decode_frame(self, slots: Sequence[bool], start: int = 0) -> DecodedFrame:
        """Decode the first frame at or after ``start``.

        Raises a :class:`FrameError` subclass on any structural or CRC
        failure; the MAC turns those into retransmissions.
        """
        begin = self.find_preamble(slots, start)
        cursor = begin + len(PREAMBLE_SLOTS)

        if cursor + HEADER_SLOTS > len(slots):
            raise HeaderError("slot stream truncated inside the header")
        header = parse_header_slots(list(slots[cursor:cursor + HEADER_SLOTS]))
        cursor += HEADER_SLOTS

        cursor = self._skip_compensation(slots, cursor)

        try:
            decode, slots_needed = _payload_decoder(header, self.config)
        except FrameError:
            raise
        except ValueError as exc:
            raise HeaderError(f"unusable pattern descriptor: {exc}") from exc
        n_bits = 8 * (header.payload_length + 2)  # payload + CRC
        needed = slots_needed(n_bits)
        if cursor + needed > len(slots):
            raise FrameError("slot stream truncated inside the payload")
        try:
            bits = decode(list(slots[cursor:cursor + needed]), n_bits)
        except FrameError:
            raise
        except ValueError as exc:
            # Codeword-level corruption (e.g. wrong ON count) — the
            # frame is undecodable and gets dropped like a CRC failure.
            raise FrameError(f"payload corrupted: {exc}") from exc
        cursor += needed

        data = bits_to_bytes(bits)
        payload, trailer = data[:header.payload_length], data[header.payload_length:]
        expected = crc16(header.to_bytes() + payload)
        if int.from_bytes(trailer, "big") != expected:
            raise CrcError(
                f"CRC mismatch: got {int.from_bytes(trailer, 'big'):#06x}, "
                f"expected {expected:#06x}"
            )
        return DecodedFrame(header, payload, begin, cursor)

    def decode_all(self, slots: Sequence[bool]) -> list[DecodedFrame]:
        """Every CRC-clean frame in the stream (corrupt ones skipped)."""
        frames: list[DecodedFrame] = []
        cursor = 0
        while True:
            try:
                frame = self.decode_frame(slots, cursor)
            except PreambleNotFoundError:
                break
            except FrameError:
                # Skip past this preamble and hunt for the next frame.
                try:
                    cursor = self.find_preamble(slots, cursor) + 1
                except PreambleNotFoundError:
                    break
                continue
            frames.append(frame)
            cursor = frame.end
        return frames

    def _skip_compensation(self, slots: Sequence[bool], cursor: int) -> int:
        """Advance past the compensation run and the sync edge.

        The run is one or more identical slots; the first differing slot
        is the sync edge and the payload starts right after it.
        """
        if cursor >= len(slots):
            raise FrameError("slot stream truncated before compensation")
        run_value = slots[cursor]
        cursor += 1
        while cursor < len(slots) and slots[cursor] == run_value:
            cursor += 1
        if cursor >= len(slots):
            raise FrameError("slot stream truncated inside compensation")
        return cursor + 1  # consume the sync slot


@dataclass
class SampleSynchronizer:
    """Find the frame start in a raw sample stream by correlation."""

    config: SystemConfig = field(default_factory=SystemConfig)

    def preamble_template(self) -> np.ndarray:
        """The ±1 oversampled preamble used for matched filtering."""
        pattern = np.asarray([1.0 if s else -1.0 for s in PREAMBLE_SLOTS])
        return np.repeat(pattern, self.config.oversampling)

    def find_frame_start(self, samples: np.ndarray) -> int:
        """Sample index where the preamble most plausibly begins."""
        samples = np.asarray(samples, dtype=float)
        template = self.preamble_template()
        if samples.size < template.size:
            raise PreambleNotFoundError(
                f"stream of {samples.size} samples is shorter than the preamble"
            )
        centered = samples - samples.mean()
        score = np.correlate(centered, template, mode="valid")
        return int(np.argmax(score))
