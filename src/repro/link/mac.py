"""Stop-and-wait MAC with Wi-Fi acknowledgements.

The prototype's MAC: the transmitter sends one frame, the receiver
CRC-checks it and — like the paper's setup — sends an ACK over Wi-Fi;
a missing ACK triggers a retransmission after a timeout.  Frames that
fail CRC are dropped silently at the receiver (Section 6.1).

Two evaluation paths are provided:

* :meth:`StopAndWaitMac.run` — a stochastic slot-accurate session
  against a :class:`~repro.core.errormodel.SlotErrorModel`, flipping
  individual slots and running the real receiver.
* :meth:`StopAndWaitMac.expected_throughput` — the closed-form
  expectation used by the figure harnesses (identical model, no RNG).
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field

import numpy as np

from ..baselines.base import SchemeDesign
from ..core.errormodel import SlotErrorModel
from ..core.params import SystemConfig
from ..obs import metrics, span
from .frame import FrameError
from .receiver import Receiver
from .supervision import BackoffPolicy, LinkSupervisor
from .transmitter import Transmitter
from .wifi import WifiUplink


@dataclass
class MacStats:
    """Counters accumulated over a MAC session."""

    frames_sent: int = 0
    frames_delivered: int = 0
    retransmissions: int = 0
    payload_bits_acked: int = 0
    airtime_s: float = 0.0
    elapsed_s: float = 0.0
    #: payloads given up on after exhausting every retry
    frames_abandoned: int = 0
    #: retransmitted frames the receiver already held (seq-number dedup)
    duplicates_suppressed: int = 0
    #: payload bits handed up by the receiver exactly once (first copy)
    payload_bits_delivered: int = 0
    #: transmission attempts that failed CRC/decode at the receiver
    crc_failures: int = 0
    #: attempts the receiver decoded but whose Wi-Fi ACK was lost
    ack_losses: int = 0

    @property
    def throughput_bps(self) -> float:
        """Acked payload bits per second of elapsed time."""
        if self.elapsed_s <= 0:
            return 0.0
        return self.payload_bits_acked / self.elapsed_s

    @property
    def frame_loss_rate(self) -> float:
        """Fraction of transmissions that were not acknowledged."""
        if self.frames_sent == 0:
            return 0.0
        return 1.0 - self.frames_delivered / self.frames_sent


def header_success_probability(errors: SlotErrorModel) -> float:
    """Probability the preamble + OOK header decode cleanly.

    Preamble slots alternate ON/OFF; header bits are equiprobable.
    """
    from .frame import HEADER_SLOTS, PREAMBLE_SLOTS

    p_on_ok = 1.0 - errors.p_on_error
    p_off_ok = 1.0 - errors.p_off_error
    n_pre_on = sum(1 for s in PREAMBLE_SLOTS if s)
    n_pre_off = len(PREAMBLE_SLOTS) - n_pre_on
    p_pre = p_on_ok ** n_pre_on * p_off_ok ** n_pre_off
    p_hdr_slot = 1.0 - 0.5 * (errors.p_on_error + errors.p_off_error)
    return p_pre * p_hdr_slot ** HEADER_SLOTS


def corrupt_slots(slots: list[bool], errors: SlotErrorModel,
                  rng: np.random.Generator) -> list[bool]:
    """Flip each slot independently with its error probability."""
    if errors.p_off_error == 0.0 and errors.p_on_error == 0.0:
        return list(slots)
    draws = rng.random(len(slots))
    out = []
    for slot, draw in zip(slots, draws):
        p = errors.p_on_error if slot else errors.p_off_error
        out.append(not slot if draw < p else slot)
    return out


def _time_aware(corruptor) -> bool:
    """Whether a corruptor accepts the ``(slots, rng, now)`` signature."""
    try:
        params = inspect.signature(corruptor).parameters
    except (TypeError, ValueError):
        return False
    positional = [p for p in params.values()
                  if p.kind in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD)]
    if any(p.kind == p.VAR_POSITIONAL for p in params.values()):
        return True
    return len(positional) >= 3


@dataclass
class StopAndWaitMac:
    """One transmitter, one receiver, one outstanding frame.

    Two supervision hooks upgrade the paper's fixed-timeout loop:

    * ``backoff`` replaces the constant ``ack_timeout_s`` with a
      :class:`~repro.link.supervision.BackoffPolicy` schedule — attempt
      ``a`` of a payload waits ``backoff.timeout_for(a)`` before
      retransmitting;
    * ``supervisor`` receives per-attempt evidence (delivery, CRC
      failure, ACK loss) so a
      :class:`~repro.link.supervision.LinkSupervisor` can track link
      health across the session.

    Frames carry an alternating-bit sequence number: a retransmission
    of a payload the receiver already decoded is recognized, counted in
    ``duplicates_suppressed``, re-ACKed, and *not* delivered twice.
    """

    config: SystemConfig = field(default_factory=SystemConfig)
    uplink: WifiUplink = field(default_factory=WifiUplink)
    ack_timeout_s: float = 10.0e-3
    max_retries: int = 8
    backoff: BackoffPolicy | None = None
    supervisor: LinkSupervisor | None = None

    def __post_init__(self) -> None:
        if self.ack_timeout_s <= 0:
            raise ValueError("ack_timeout_s must be positive")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        self._tx = Transmitter(self.config)
        self._rx = Receiver(self.config)

    def timeout_for(self, attempt: int) -> float:
        """The ACK timeout after the ``attempt``-th failure (0-indexed)."""
        if self.backoff is None:
            return self.ack_timeout_s
        return self.backoff.timeout_for(attempt)

    def run(self, payloads: list[bytes], design: SchemeDesign,
            errors: SlotErrorModel, rng: np.random.Generator,
            corruptor=None) -> MacStats:
        """Deliver a list of payloads over the noisy link.

        ``corruptor`` overrides the default i.i.d. slot flipping — pass
        e.g. ``lambda s, r: burst_channel.corrupt(s, r)[0]`` to run the
        MAC over a Gilbert-Elliott shadowing process.  A three-argument
        corruptor ``(slots, rng, now)`` additionally sees the MAC clock,
        which is how :meth:`FaultSchedule.corruptor
        <repro.resilience.faults.FaultSchedule.corruptor>` injects
        time-windowed faults.
        """
        if corruptor is None:
            def corrupt(slots, generator, _now):
                return corrupt_slots(slots, errors, generator)
        elif _time_aware(corruptor):
            corrupt = corruptor
        else:
            def corrupt(slots, generator, _now, inner=corruptor):
                return inner(slots, generator)
        stats = MacStats()
        now = 0.0
        with span("mac.run", payloads=len(payloads)):
            for payload in payloads:
                slots = self._tx.encode_frame(payload, design)
                airtime = len(slots) * self.config.t_slot
                delivered = False
                receiver_has_copy = False  # alternating-bit dedup state
                for attempt in range(self.max_retries + 1):
                    stats.frames_sent += 1
                    if attempt > 0:
                        stats.retransmissions += 1
                    stats.airtime_s += airtime
                    now += airtime
                    received = corrupt(list(slots), rng, now)
                    ack_at = None
                    decoded = False
                    try:
                        frame = self._rx.decode_frame(received)
                        decoded = frame.payload == payload
                    except FrameError:
                        decoded = False  # receiver stays silent on CRC failure
                    if decoded:
                        # Same sequence number: suppress the duplicate but
                        # re-ACK so the transmitter can move on.
                        if receiver_has_copy:
                            stats.duplicates_suppressed += 1
                        else:
                            receiver_has_copy = True
                            stats.payload_bits_delivered += 8 * len(payload)
                        ack_at = self.uplink.deliver(now, rng)
                    if ack_at is not None:
                        now = max(now, ack_at)
                        delivered = True
                        stats.frames_delivered += 1
                        stats.payload_bits_acked += 8 * len(payload)
                        if self.supervisor is not None:
                            self.supervisor.on_success(now)
                        break
                    if decoded:
                        stats.ack_losses += 1
                    else:
                        stats.crc_failures += 1
                    now += self.timeout_for(attempt)
                    if self.supervisor is not None:
                        self.supervisor.on_failure(
                            now, reason="ack-loss" if decoded else "crc")
                if not delivered:
                    # Give up on this payload (upper layers would resubmit).
                    stats.frames_abandoned += 1
                    continue
        stats.elapsed_s = now
        self._record_metrics(stats)
        return stats

    @staticmethod
    def _record_metrics(stats: MacStats) -> None:
        """Fold one session's counters into the telemetry registry.

        Recorded once per session from the finished :class:`MacStats`,
        so the per-attempt loop itself carries no telemetry cost.
        """
        registry = metrics()
        for name, value, help_text in (
                ("repro_mac_frames_sent_total", stats.frames_sent,
                 "MAC transmission attempts"),
                ("repro_mac_frames_delivered_total", stats.frames_delivered,
                 "MAC frames acknowledged"),
                ("repro_mac_retransmissions_total", stats.retransmissions,
                 "MAC retransmissions"),
                ("repro_mac_crc_failures_total", stats.crc_failures,
                 "MAC attempts lost to CRC/decode failure"),
                ("repro_mac_ack_losses_total", stats.ack_losses,
                 "MAC attempts whose Wi-Fi ACK was lost"),
                ("repro_mac_frames_abandoned_total", stats.frames_abandoned,
                 "MAC payloads given up on after every retry")):
            if value:
                registry.counter(name, help=help_text).inc(value)

    def expected_throughput(self, design: SchemeDesign,
                            errors: SlotErrorModel,
                            payload_bytes: int | None = None) -> float:
        """Closed-form goodput of the stop-and-wait loop in bit/s.

        With a constant timeout (no backoff, or a degenerate backoff
        with factor 1.0 and no jitter) this is the paper's expression,

            throughput = payload_bits · P_ok / E[cycle],
            E[cycle] = T_frame + P_ok·T_ack + (1-P_ok)·T_timeout.

        With backoff the timeout depends on the attempt index; summing
        the geometric attempt distribution over the (infinite-retry)
        schedule gives

            E[T] = T_frame/P + T_ack + Σ_a (1-P)^(a+1)·timeout(a),

        which reduces *exactly* to the constant-timeout form when the
        schedule is flat — disabling backoff changes nothing.
        """
        n_payload = (payload_bytes if payload_bytes is not None
                     else self.config.payload_bytes)
        n_bits = 8 * (n_payload + 2)
        # Expected airtime for equiprobable payload bits (the paper's
        # Section 6.1 assumption), not any particular payload's.
        frame_slots = (self._tx.frame_overhead_slots(design, n_payload)
                       + design.payload_slots(n_bits))
        t_frame = frame_slots * self.config.t_slot
        p_payload = design.success_probability(n_bits, errors)
        p_ok = (p_payload * header_success_probability(errors)
                * (1.0 - self.uplink.loss_probability))
        if p_ok <= 0.0:
            return 0.0
        t_ack = self.uplink.expected_latency_s

        flat = (self.backoff is None
                or (self.backoff.factor == 1.0
                    and self.backoff.jitter_frac == 0.0))
        if flat:
            tau = (self.ack_timeout_s if self.backoff is None
                   else self.backoff.base_timeout_s)
            t_cycle = t_frame + p_ok * t_ack + (1.0 - p_ok) * tau
            return 8 * n_payload * p_ok / t_cycle

        # Backoff-aware series: the timeout tail beyond the cap is an
        # exact geometric sum; before the cap we sum term by term.
        q = 1.0 - p_ok
        tail_weight = q  # q^(a+1) for a = 0
        timeout_sum = 0.0
        attempt = 0
        last = 0.0
        while attempt < 4096 and tail_weight > 0.0:
            last = self.backoff.timeout_for(attempt)
            if last >= self.backoff.cap_s:
                timeout_sum += self.backoff.cap_s * tail_weight / p_ok
                break
            timeout_sum += tail_weight * last
            tail_weight *= q
            attempt += 1
        else:
            # Schedule never reached the cap (jittered flat factor):
            # close the series with the last, largest timeout seen.
            timeout_sum += last * tail_weight / p_ok
        expected_time = t_frame / p_ok + t_ack + timeout_sum
        return 8 * n_payload / expected_time

