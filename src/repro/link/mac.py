"""Stop-and-wait MAC with Wi-Fi acknowledgements.

The prototype's MAC: the transmitter sends one frame, the receiver
CRC-checks it and — like the paper's setup — sends an ACK over Wi-Fi;
a missing ACK triggers a retransmission after a timeout.  Frames that
fail CRC are dropped silently at the receiver (Section 6.1).

Two evaluation paths are provided:

* :meth:`StopAndWaitMac.run` — a stochastic slot-accurate session
  against a :class:`~repro.core.errormodel.SlotErrorModel`, flipping
  individual slots and running the real receiver.
* :meth:`StopAndWaitMac.expected_throughput` — the closed-form
  expectation used by the figure harnesses (identical model, no RNG).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..baselines.base import SchemeDesign
from ..core.errormodel import SlotErrorModel
from ..core.params import SystemConfig
from .frame import FrameError
from .receiver import Receiver
from .transmitter import Transmitter
from .wifi import WifiUplink


@dataclass
class MacStats:
    """Counters accumulated over a MAC session."""

    frames_sent: int = 0
    frames_delivered: int = 0
    retransmissions: int = 0
    payload_bits_acked: int = 0
    airtime_s: float = 0.0
    elapsed_s: float = 0.0

    @property
    def throughput_bps(self) -> float:
        """Acked payload bits per second of elapsed time."""
        if self.elapsed_s <= 0:
            return 0.0
        return self.payload_bits_acked / self.elapsed_s

    @property
    def frame_loss_rate(self) -> float:
        """Fraction of transmissions that were not acknowledged."""
        if self.frames_sent == 0:
            return 0.0
        return 1.0 - self.frames_delivered / self.frames_sent


def header_success_probability(errors: SlotErrorModel) -> float:
    """Probability the preamble + OOK header decode cleanly.

    Preamble slots alternate ON/OFF; header bits are equiprobable.
    """
    from .frame import HEADER_SLOTS, PREAMBLE_SLOTS

    p_on_ok = 1.0 - errors.p_on_error
    p_off_ok = 1.0 - errors.p_off_error
    n_pre_on = sum(1 for s in PREAMBLE_SLOTS if s)
    n_pre_off = len(PREAMBLE_SLOTS) - n_pre_on
    p_pre = p_on_ok ** n_pre_on * p_off_ok ** n_pre_off
    p_hdr_slot = 1.0 - 0.5 * (errors.p_on_error + errors.p_off_error)
    return p_pre * p_hdr_slot ** HEADER_SLOTS


def corrupt_slots(slots: list[bool], errors: SlotErrorModel,
                  rng: np.random.Generator) -> list[bool]:
    """Flip each slot independently with its error probability."""
    if errors.p_off_error == 0.0 and errors.p_on_error == 0.0:
        return list(slots)
    draws = rng.random(len(slots))
    out = []
    for slot, draw in zip(slots, draws):
        p = errors.p_on_error if slot else errors.p_off_error
        out.append(not slot if draw < p else slot)
    return out


@dataclass
class StopAndWaitMac:
    """One transmitter, one receiver, one outstanding frame."""

    config: SystemConfig = field(default_factory=SystemConfig)
    uplink: WifiUplink = field(default_factory=WifiUplink)
    ack_timeout_s: float = 10.0e-3
    max_retries: int = 8

    def __post_init__(self) -> None:
        if self.ack_timeout_s <= 0:
            raise ValueError("ack_timeout_s must be positive")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        self._tx = Transmitter(self.config)
        self._rx = Receiver(self.config)

    def run(self, payloads: list[bytes], design: SchemeDesign,
            errors: SlotErrorModel, rng: np.random.Generator,
            corruptor=None) -> MacStats:
        """Deliver a list of payloads over the noisy link.

        ``corruptor`` overrides the default i.i.d. slot flipping — pass
        e.g. ``lambda s, r: burst_channel.corrupt(s, r)[0]`` to run the
        MAC over a Gilbert-Elliott shadowing process.
        """
        if corruptor is None:
            def corruptor(slots, generator):
                return corrupt_slots(slots, errors, generator)
        stats = MacStats()
        now = 0.0
        for payload in payloads:
            slots = self._tx.encode_frame(payload, design)
            airtime = len(slots) * self.config.t_slot
            delivered = False
            for _attempt in range(self.max_retries + 1):
                stats.frames_sent += 1
                stats.airtime_s += airtime
                now += airtime
                received = corruptor(list(slots), rng)
                ack_at = None
                try:
                    frame = self._rx.decode_frame(received)
                    if frame.payload == payload:
                        ack_at = self.uplink.deliver(now, rng)
                except FrameError:
                    ack_at = None  # receiver stays silent on CRC failure
                if ack_at is not None:
                    now = max(now, ack_at)
                    delivered = True
                    stats.frames_delivered += 1
                    stats.payload_bits_acked += 8 * len(payload)
                    break
                now += self.ack_timeout_s
                stats.retransmissions += 1
            if not delivered:
                # Give up on this payload (upper layers would resubmit).
                continue
        stats.elapsed_s = now
        return stats

    def expected_throughput(self, design: SchemeDesign,
                            errors: SlotErrorModel,
                            payload_bytes: int | None = None) -> float:
        """Closed-form goodput of the stop-and-wait loop in bit/s.

        throughput = payload_bits · P_ok / E[time per attempt cycle],
        with E[cycle] = T_frame + P_ok·T_ack + (1-P_ok)·T_timeout.
        """
        n_payload = (payload_bytes if payload_bytes is not None
                     else self.config.payload_bytes)
        n_bits = 8 * (n_payload + 2)
        # Expected airtime for equiprobable payload bits (the paper's
        # Section 6.1 assumption), not any particular payload's.
        frame_slots = (self._tx.frame_overhead_slots(design, n_payload)
                       + design.payload_slots(n_bits))
        t_frame = frame_slots * self.config.t_slot
        p_payload = design.success_probability(n_bits, errors)
        p_ok = (p_payload * header_success_probability(errors)
                * (1.0 - self.uplink.loss_probability))

        t_cycle = (t_frame + p_ok * self.uplink.expected_latency_s
                   + (1.0 - p_ok) * self.ack_timeout_s)
        return 8 * n_payload * p_ok / t_cycle

