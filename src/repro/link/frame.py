"""The SmartVLC frame format (Table 1).

::

    Preamble | Length | Pattern | Compensation | Sync  | Payload | CRC
    3 bytes  | 2 B    | 4 B     | x B          | 1 bit | 0-MAX B | 2 B

* **Preamble** — 24 slots of alternating ON/OFF marking a frame start.
* **Length** — payload byte count, big-endian.
* **Pattern** — a 32-bit descriptor of the modulation the payload uses
  (for AMPPM: the super-symbol tuple ⟨N1,K1,m1,N2,K2,m2⟩), so the
  receiver can decode without out-of-band agreement.
* **Compensation** — a run of identical slots sized so the brightness of
  preamble+header matches the payload's dimming level (no intra-frame
  Type-II flicker).
* **Sync** — a single slot of the opposite value, i.e. an edge, telling
  the receiver where the compensation run ends.
* **Payload + CRC** — scheme-modulated; the CRC-16 covers length,
  pattern and payload bytes.

The preamble and header are plain OOK: the receiver must read them
*before* it knows the payload's modulation parameters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.params import SystemConfig
from ..core.supersymbol import SuperSymbol
from ..core.symbols import SymbolPattern
from .bitstream import bits_to_bytes, bytes_to_bits
from .crc import append_crc, check_crc

#: 3 bytes of alternating ON/OFF (Table 1's Preamble).
PREAMBLE_SLOTS: tuple[bool, ...] = tuple(bool((i + 1) % 2) for i in range(24))

#: Length (2 B) + Pattern (4 B) encoded as OOK.
HEADER_BYTES = 6
HEADER_SLOTS = HEADER_BYTES * 8

#: Scheme identifiers carried by the Pattern field (see
#: :class:`PatternDescriptor` for the encoding).
SCHEME_OOK = 0
SCHEME_MPPM = 1  # covers MPPM, AMPPM and any super-symbol scheme
SCHEME_VPPM = 2
SCHEME_OPPM = 3
SCHEME_DARKLIGHT = 4

MAX_PAYLOAD_BYTES = 0xFFFF


class FrameError(ValueError):
    """Base class for frame parsing failures."""


class PreambleNotFoundError(FrameError):
    """No preamble in the slot stream."""


class HeaderError(FrameError):
    """The header failed to parse into a usable pattern descriptor."""


class CrcError(FrameError):
    """The frame check sequence did not match (frame is dropped)."""


@dataclass(frozen=True)
class PatternDescriptor:
    """The 4-byte Pattern field: which modulation the payload uses.

    Bit layout (MSB first): ``n1:6 | k1:6 | n2:6 | k2:6 | m1:4 | m2:4``.

    The scheme is implicit: ``n1 >= 2`` describes an MPPM-family
    super-symbol ⟨S(n1,k1), m1, S(n2,k2), m2⟩; ``n1 == 0`` escapes to
    the non-MPPM schemes, with ``k1`` carrying the scheme id (OOK,
    VPPM or OPPM) and ``n2``/``k2`` the pulse parameters.
    """

    n1: int = 0
    k1: int = 0
    n2: int = 0
    k2: int = 0
    m1: int = 0
    m2: int = 0

    def __post_init__(self) -> None:
        for name, value, width in (("n1", self.n1, 6), ("k1", self.k1, 6),
                                   ("n2", self.n2, 6), ("k2", self.k2, 6),
                                   ("m1", self.m1, 4), ("m2", self.m2, 4)):
            if not 0 <= value < (1 << width):
                raise ValueError(f"{name}={value} does not fit {width} bits")

    @property
    def scheme(self) -> int:
        """The scheme id (SCHEME_* constant) this descriptor denotes."""
        if self.n1 >= 2:
            return SCHEME_MPPM
        if self.n1 == 0 and self.k1 in (SCHEME_OOK, SCHEME_VPPM,
                                        SCHEME_OPPM, SCHEME_DARKLIGHT):
            return self.k1
        raise HeaderError(f"malformed pattern descriptor {self!r}")

    def to_int(self) -> int:
        """Pack into the 32-bit wire value."""
        return ((self.n1 << 26) | (self.k1 << 20) | (self.n2 << 14)
                | (self.k2 << 8) | (self.m1 << 4) | self.m2)

    @classmethod
    def from_int(cls, value: int) -> "PatternDescriptor":
        """Unpack the 32-bit wire value."""
        if not 0 <= value < (1 << 32):
            raise ValueError("pattern descriptor must fit 32 bits")
        return cls(
            n1=(value >> 26) & 0x3F,
            k1=(value >> 20) & 0x3F,
            n2=(value >> 14) & 0x3F,
            k2=(value >> 8) & 0x3F,
            m1=(value >> 4) & 0xF,
            m2=value & 0xF,
        )

    @classmethod
    def for_super_symbol(cls, super_symbol: SuperSymbol) -> "PatternDescriptor":
        """Describe an AMPPM/MPPM super-symbol."""
        return cls(
            n1=super_symbol.first.n_slots,
            k1=super_symbol.first.n_on,
            n2=super_symbol.second.n_slots if super_symbol.m2 else 0,
            k2=super_symbol.second.n_on if super_symbol.m2 else 0,
            m1=super_symbol.m1,
            m2=super_symbol.m2,
        )

    @classmethod
    def for_ook(cls) -> "PatternDescriptor":
        """Describe a plain OOK payload (OOK-CT)."""
        return cls(n1=0, k1=SCHEME_OOK)

    @classmethod
    def for_pulse(cls, scheme: int, n_slots: int, width: int) -> "PatternDescriptor":
        """Describe a VPPM or OPPM payload (single pulse of given width)."""
        if scheme not in (SCHEME_VPPM, SCHEME_OPPM):
            raise ValueError("for_pulse is for VPPM/OPPM descriptors")
        return cls(n1=0, k1=scheme, n2=n_slots, k2=width)

    @classmethod
    def for_darklight(cls, n_slots: int) -> "PatternDescriptor":
        """Describe a DarkLight payload (single pulse in N slots).

        N exceeds the 6-bit pattern fields, so it is split across the
        n2/k2 fields as a 12-bit value (N <= 4095).
        """
        if not 2 <= n_slots <= 0xFFF:
            raise ValueError("DarkLight N must fit 12 bits (2..4095)")
        return cls(n1=0, k1=SCHEME_DARKLIGHT,
                   n2=(n_slots >> 6) & 0x3F, k2=n_slots & 0x3F)

    @property
    def darklight_n(self) -> int:
        """Recover the DarkLight symbol length from n2/k2."""
        if self.scheme != SCHEME_DARKLIGHT:
            raise HeaderError("descriptor is not a DarkLight descriptor")
        return (self.n2 << 6) | self.k2

    def super_symbol(self) -> SuperSymbol:
        """Reconstruct the super-symbol (scheme must be SCHEME_MPPM)."""
        if self.scheme != SCHEME_MPPM:
            raise HeaderError(f"descriptor scheme {self.scheme} is not MPPM-family")
        if self.m1 < 1:
            raise HeaderError("malformed super-symbol descriptor")
        first = SymbolPattern(self.n1, self.k1)
        if self.m2 == 0:
            return SuperSymbol.single(first, self.m1)
        if self.n2 < 2:
            raise HeaderError("malformed second pattern in descriptor")
        return SuperSymbol(first, self.m1, SymbolPattern(self.n2, self.k2), self.m2)


@dataclass(frozen=True)
class FrameHeader:
    """Decoded Length + Pattern fields."""

    payload_length: int
    descriptor: PatternDescriptor

    def to_bytes(self) -> bytes:
        if not 0 <= self.payload_length <= MAX_PAYLOAD_BYTES:
            raise ValueError("payload length does not fit the 2-byte field")
        return (self.payload_length.to_bytes(2, "big")
                + self.descriptor.to_int().to_bytes(4, "big"))

    @classmethod
    def from_bytes(cls, data: bytes) -> "FrameHeader":
        if len(data) != HEADER_BYTES:
            raise HeaderError(f"header must be {HEADER_BYTES} bytes, got {len(data)}")
        length = int.from_bytes(data[:2], "big")
        descriptor = PatternDescriptor.from_int(int.from_bytes(data[2:], "big"))
        return cls(length, descriptor)


def compensation_run(header_on: int, header_total: int, dimming: float,
                     max_run: int) -> tuple[int, bool]:
    """Length and polarity of the compensation run after the header.

    Appends ``count`` slots of value ``on`` so that the preamble+header
    region's average brightness approaches the payload dimming level.
    The run is capped at ``max_run`` (the Type-I flicker bound): a very
    low or high dimming level would otherwise demand an unbounded run.
    At least one slot is always emitted so the sync edge that follows is
    well defined.
    """
    if not 0.0 < dimming < 1.0:
        raise ValueError("dimming must lie in (0, 1)")
    current = header_on / header_total
    if current > dimming:
        count = math.ceil(header_on / dimming - header_total)
        on = False
    elif current < dimming:
        count = math.ceil((dimming * header_total - header_on) / (1.0 - dimming))
        on = True
    else:
        count, on = 1, False
    return max(1, min(count, max_run)), on


def header_overhead_slots(config: SystemConfig, dimming: float) -> int:
    """Expected non-payload slots per frame at a dimming level.

    Used by the analytic link model: preamble + OOK header + the
    compensation run for a typical (half-ON) header + the sync slot.
    """
    header_on = len([s for s in PREAMBLE_SLOTS if s]) + HEADER_SLOTS // 2
    header_total = len(PREAMBLE_SLOTS) + HEADER_SLOTS
    count, _ = compensation_run(header_on, header_total, dimming,
                                config.n_max_super)
    return header_total + count + 1


@dataclass(frozen=True)
class Frame:
    """A fully specified frame ready for slot encoding."""

    header: FrameHeader
    payload: bytes

    @property
    def body_bytes(self) -> bytes:
        """Length + Pattern + payload — the bytes the CRC covers."""
        return self.header.to_bytes() + self.payload

    def protected_bytes(self) -> bytes:
        """Body with CRC appended (what rides in the modulated section)."""
        return append_crc(self.body_bytes)

    @classmethod
    def build(cls, payload: bytes, descriptor: PatternDescriptor) -> "Frame":
        if len(payload) > MAX_PAYLOAD_BYTES:
            raise ValueError(
                f"payload of {len(payload)} bytes exceeds the 2-byte length field"
            )
        return cls(FrameHeader(len(payload), descriptor), payload)

    def verify(self, recovered: bytes) -> bool:
        """CRC check helper for tests."""
        return check_crc(recovered)


def header_slots(header: FrameHeader) -> list[bool]:
    """OOK-encode the 6 header bytes (1 bit per slot)."""
    return [bool(b) for b in bytes_to_bits(header.to_bytes())]


def parse_header_slots(slots: list[bool]) -> FrameHeader:
    """Decode 48 OOK header slots back into a :class:`FrameHeader`."""
    if len(slots) != HEADER_SLOTS:
        raise HeaderError(f"expected {HEADER_SLOTS} header slots, got {len(slots)}")
    data = bits_to_bytes([1 if s else 0 for s in slots])
    return FrameHeader.from_bytes(data)
