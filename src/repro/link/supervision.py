"""Link supervision: retransmission backoff and a link-state machine.

The paper's prototype retries on a fixed 10 ms timeout and trusts the
control plane to stay up (Sections 5.1, 6.1).  Real deployments of the
OpenVLC-class platforms report link outages and noise bursts as the
dominant failure mode, so this module adds the two standard defences:

* :class:`BackoffPolicy` — exponential backoff with deterministic
  jitter on the ACK-timeout schedule.  The schedule is a pure function
  of ``(seed, attempt)``: same seed, same schedule, bit-for-bit, which
  keeps every supervised simulation replayable.
* :class:`LinkSupervisor` — a four-state link health machine
  (UP → DEGRADED → DOWN → PROBING) driven by ACK-loss streaks and
  CRC-failure streaks.  Transitions are recorded both on the
  supervisor (for metrics) and, when a journal is attached, as
  ``link-state`` events in the discrete-event journal, so resilience
  metrics (time-to-detect, time-to-recover) fall out of the trace.

The MAC (:class:`~repro.link.mac.StopAndWaitMac`) consumes the backoff
schedule; the chaos harness (:mod:`repro.resilience.chaos`) drives the
supervisor and reacts to its state.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # avoid a link <-> des import cycle at runtime
    from ..des.journal import EventJournal


class LinkState(Enum):
    """Health of a supervised VLC link."""

    UP = "up"                # nominal: full-rate design, full payloads
    DEGRADED = "degraded"    # lossy: conservative design, small payloads
    DOWN = "down"            # dead: illumination-only, data suspended
    PROBING = "probing"      # dead but sending probe frames to detect recovery


def _unit_draw(seed: int, attempt: int) -> float:
    """A deterministic, platform-stable uniform draw in [0, 1).

    Derived through :class:`numpy.random.SeedSequence`, not ``hash``,
    so the value does not depend on ``PYTHONHASHSEED`` or the host.
    """
    state = np.random.SeedSequence(entropy=(seed, attempt)).generate_state(1)
    return float(state[0]) / float(2 ** 32)


@dataclass(frozen=True)
class BackoffPolicy:
    """Capped exponential backoff with deterministic jitter.

    ``timeout_for(attempt)`` yields the ACK timeout to wait after the
    ``attempt``-th failed transmission (0-indexed).  The schedule is

    * monotone non-decreasing (a running maximum is enforced, so jitter
      can never shrink a later timeout below an earlier one),
    * capped at ``cap_s`` (jitter included), and
    * a pure function of ``(seed, attempt)`` — exact determinism.

    ``factor=1.0`` with ``jitter_frac=0.0`` degenerates to the paper's
    fixed-timeout behaviour and leaves
    :meth:`~repro.link.mac.StopAndWaitMac.expected_throughput` exactly
    unchanged.
    """

    base_timeout_s: float = 10.0e-3
    factor: float = 2.0
    cap_s: float = 0.16
    jitter_frac: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.base_timeout_s <= 0:
            raise ValueError("base_timeout_s must be positive")
        if self.factor < 1.0:
            raise ValueError("factor must be >= 1 (backoff cannot shrink)")
        if self.cap_s < self.base_timeout_s:
            raise ValueError("cap_s must be >= base_timeout_s")
        if not 0.0 <= self.jitter_frac < 1.0:
            raise ValueError("jitter_frac must lie in [0, 1)")

    @classmethod
    def disabled(cls, base_timeout_s: float = 10.0e-3) -> "BackoffPolicy":
        """The fixed-timeout policy of the paper's prototype."""
        return cls(base_timeout_s=base_timeout_s, factor=1.0,
                   cap_s=base_timeout_s, jitter_frac=0.0)

    def _jittered(self, attempt: int) -> float:
        raw = self.base_timeout_s * self.factor ** attempt
        if self.jitter_frac:
            raw *= 1.0 + self.jitter_frac * _unit_draw(self.seed, attempt)
        return min(raw, self.cap_s)

    def timeout_for(self, attempt: int) -> float:
        """Timeout after the ``attempt``-th failure (0-indexed)."""
        if attempt < 0:
            raise ValueError("attempt must be non-negative")
        timeout = 0.0
        for a in range(attempt + 1):
            timeout = max(timeout, self._jittered(a))
        return timeout

    def schedule(self, n_attempts: int) -> tuple[float, ...]:
        """The first ``n_attempts`` timeouts of the schedule."""
        if n_attempts < 0:
            raise ValueError("n_attempts must be non-negative")
        out: list[float] = []
        timeout = 0.0
        for a in range(n_attempts):
            timeout = max(timeout, self._jittered(a))
            out.append(timeout)
        return tuple(out)

    @property
    def saturation_attempt(self) -> int:
        """First attempt index whose un-jittered timeout reaches the cap."""
        attempt = 0
        raw = self.base_timeout_s
        while raw < self.cap_s and attempt < 10_000:
            raw *= self.factor
            attempt += 1
            if self.factor == 1.0:
                break
        return attempt


@dataclass(frozen=True)
class LinkTransition:
    """One supervisor state change, stamped on the simulation clock."""

    time: float
    source: LinkState
    target: LinkState
    reason: str = ""


@dataclass
class LinkSupervisor:
    """The UP → DEGRADED → DOWN → PROBING link health machine.

    Failure evidence (a missing ACK or a CRC-failed probe echo) feeds
    :meth:`on_failure`; delivery evidence feeds :meth:`on_success`.
    Streaks drive the transitions, and the failure *kind* matters:
    stepping the design down cannot repair a lossy out-of-band ACK
    path, so only channel-quality evidence (any reason other than
    ``"ack-loss"``) counts toward degradation, while failures of any
    kind count toward declaring the link dead:

    * ``degraded_after`` consecutive CRC failures: UP → DEGRADED (the
      designer steps down to a conservative symbol, payloads shrink);
    * ``down_after`` consecutive failures of any kind: → DOWN (data is
      suspended; the lighting controller keeps illuminating);
    * from DOWN the caller starts PROBING; ``recover_after``
      consecutive probe successes re-enter DEGRADED, and
      ``recover_after`` consecutive data successes restore UP.

    Every transition is appended to :attr:`transitions` and, when a
    journal is attached, recorded as a ``link-state`` event.
    """

    degraded_after: int = 3
    down_after: int = 8
    recover_after: int = 2
    journal: "EventJournal | None" = None
    actor: str = "link"

    def __post_init__(self) -> None:
        if self.degraded_after < 1:
            raise ValueError("degraded_after must be positive")
        if self.down_after <= self.degraded_after:
            raise ValueError("down_after must exceed degraded_after")
        if self.recover_after < 1:
            raise ValueError("recover_after must be positive")
        self._state = LinkState.UP
        self._fail_streak = 0
        self._crc_streak = 0
        self._ok_streak = 0
        self._down_was_crc = False
        self.transitions: list[LinkTransition] = []

    @property
    def state(self) -> LinkState:
        """The current link state."""
        return self._state

    @property
    def fail_streak(self) -> int:
        """Consecutive failures (of any kind) since the last success."""
        return self._fail_streak

    @property
    def crc_streak(self) -> int:
        """Consecutive channel-quality failures since the last success."""
        return self._crc_streak

    def _transition(self, t: float, target: LinkState, reason: str) -> None:
        if target is self._state:
            return
        transition = LinkTransition(t, self._state, target, reason)
        self.transitions.append(transition)
        if self.journal is not None:
            self.journal.record(t, "link-state", self.actor,
                                source=self._state.value,
                                target=target.value, reason=reason)
        self._state = target

    def on_success(self, t: float) -> LinkState:
        """A data frame was delivered and acknowledged at ``t``."""
        self._fail_streak = 0
        self._crc_streak = 0
        self._ok_streak += 1
        if (self._state is LinkState.DEGRADED
                and self._ok_streak >= self.recover_after):
            self._transition(t, LinkState.UP, "recovered")
            self._ok_streak = 0
        return self._state

    def on_failure(self, t: float, reason: str = "ack-loss") -> LinkState:
        """A transmission failed at ``t``.

        ``reason`` distinguishes the evidence: ``"ack-loss"`` (the
        frame may have been decoded but the out-of-band ACK vanished)
        only counts toward DOWN, while any other reason (``"crc"``,
        a garbled frame) also counts toward DEGRADED.
        """
        self._ok_streak = 0
        self._fail_streak += 1
        if reason != "ack-loss":
            self._crc_streak += 1
        if self._state is LinkState.UP \
                and self._crc_streak >= self.degraded_after:
            self._transition(t, LinkState.DEGRADED, reason)
        if self._state in (LinkState.UP, LinkState.DEGRADED) \
                and self._fail_streak >= self.down_after:
            # Remember the dominant evidence: a channel-caused outage
            # recovers conservatively (probe -> DEGRADED), an
            # ACK-path-caused one re-enters UP directly.
            self._down_was_crc = self._crc_streak >= self.degraded_after
            self._transition(t, LinkState.DOWN, reason)
        return self._state

    def start_probing(self, t: float) -> LinkState:
        """Begin sending probe frames on a DOWN link."""
        if self._state is LinkState.DOWN:
            self._ok_streak = 0
            self._transition(t, LinkState.PROBING, "probe")
        return self._state

    def on_probe_success(self, t: float) -> LinkState:
        """A probe frame was acknowledged at ``t``.

        Recovery re-enters DEGRADED when the outage was channel-caused
        (data successes then finish the climb to UP) but returns to UP
        directly when it was ACK-path-caused — the probes just proved
        the ACK path works again, and there was never channel evidence
        against full-rate frames.
        """
        self._fail_streak = 0
        self._crc_streak = 0
        self._ok_streak += 1
        if (self._state is LinkState.PROBING
                and self._ok_streak >= self.recover_after):
            target = (LinkState.DEGRADED if self._down_was_crc
                      else LinkState.UP)
            self._transition(t, target, "probe-recovered")
            self._ok_streak = 0
        return self._state

    def on_probe_failure(self, t: float) -> LinkState:
        """A probe frame went unanswered at ``t``."""
        self._ok_streak = 0
        self._fail_streak += 1
        if self._state is LinkState.PROBING:
            self._transition(t, LinkState.DOWN, "probe-failed")
        return self._state

    @property
    def data_suspended(self) -> bool:
        """Whether data transmission is currently suspended."""
        return self._state in (LinkState.DOWN, LinkState.PROBING)

    def snapshot(self, backoff: BackoffPolicy | None = None) -> dict:
        """The supervisor's externally visible state as a plain dict.

        Everything a control-plane consumer needs without poking
        internals: the current state, the ``cause`` of the most recent
        transition (empty before the first one), the evidence streaks,
        whether data is suspended, and — when a :class:`BackoffPolicy`
        is supplied — ``backoff_remaining_s``, the ACK timeout the MAC
        is currently waiting out given the failure streak.  The dict is
        JSON-able, so the serve ``link`` endpoint returns it verbatim
        and ``repro stats`` renders it from exported telemetry.
        """
        remaining = 0.0
        if backoff is not None and self._fail_streak > 0:
            remaining = backoff.timeout_for(self._fail_streak - 1)
        return {
            "state": self._state.value,
            "cause": self.transitions[-1].reason if self.transitions else "",
            "fail_streak": self._fail_streak,
            "crc_streak": self._crc_streak,
            "ok_streak": self._ok_streak,
            "transitions": len(self.transitions),
            "data_suspended": self.data_suspended,
            "backoff_remaining_s": remaining,
        }

    def time_in_state(self, state: LinkState, until_s: float,
                      since_s: float = 0.0) -> float:
        """Total seconds spent in ``state`` over ``[since_s, until_s]``."""
        if until_s < since_s:
            raise ValueError("until_s must be >= since_s")
        total = 0.0
        current = LinkState.UP
        mark = since_s
        for tr in self.transitions:
            t = min(max(tr.time, since_s), until_s)
            if current is state:
                total += t - mark
            mark = t
            current = tr.target
        if current is state:
            total += until_s - mark
        return total
