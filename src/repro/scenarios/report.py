"""Scenario reports: per-room / per-window SLOs from the event journal.

The report is computed *only* from the merged journal and the compiled
atlas — never from wall-clock state — so equal journals yield equal
reports, and the report inherits the run's determinism guarantee.

Three SLO dimensions per (room, report window):

* **goodput** — the mean of the ``link`` samples of the room's present
  occupants (a churned-out occupant contributes no sample);
* **illumination error** — the mean absolute gap between each cell's
  LED level and ``clamp(target_sum − daylight, 0, 1)`` under the *true*
  zone daylight (not the fused estimate the controller acted on): the
  error contributed by stale or gain-skewed occupant reports plus
  adaptation lag, measured against the daylight target;
* **flicker violations** — ticks on which a cell's LED moved further
  (in the perceived domain) than its executed adjustment count allows:
  ``n`` flicker-free steps of at most ``tau_perceived`` each can cover
  at most ``n·tau_perceived`` of perceived distance, so exceeding that
  bound proves at least one perceptible step was taken.  Zero whenever
  the adaptation planner honours its own constraint.

Handover counts and mean occupancy ride along for context.  SLO bounds
come from the scenario's :class:`~repro.scenarios.dsl.SloSpec`; goodput
is judged only on occupied windows.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

from ..core.perception import perceived_step
from ..net.multicell import MulticellResult
from .compiler import CompiledScenario


@dataclass(frozen=True)
class WindowSlo:
    """One (room, report window) SLO row."""

    room: str
    window: int
    start_s: float
    end_s: float
    ticks: int
    present_ticks: int
    mean_occupancy: float
    mean_goodput_bps: float
    illumination_error: float
    flicker_violations: int
    handovers: int

    def as_dict(self) -> dict[str, Any]:
        """A JSON-able row (the report artifact format)."""
        return {
            "room": self.room,
            "window": self.window,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "ticks": self.ticks,
            "present_ticks": self.present_ticks,
            "mean_occupancy": self.mean_occupancy,
            "mean_goodput_bps": self.mean_goodput_bps,
            "illumination_error": self.illumination_error,
            "flicker_violations": self.flicker_violations,
            "handovers": self.handovers,
        }


@dataclass(frozen=True)
class RoomSlo:
    """One room's aggregate over all its windows."""

    room: str
    mean_goodput_bps: float
    worst_window_goodput_bps: float
    illumination_error: float
    flicker_violations: int
    handovers: int

    def as_dict(self) -> dict[str, Any]:
        """A JSON-able row (the report artifact format)."""
        return {
            "room": self.room,
            "mean_goodput_bps": self.mean_goodput_bps,
            "worst_window_goodput_bps": self.worst_window_goodput_bps,
            "illumination_error": self.illumination_error,
            "flicker_violations": self.flicker_violations,
            "handovers": self.handovers,
        }


@dataclass(frozen=True)
class ScenarioReport:
    """The SLO verdict of one scenario run (see the module docstring)."""

    scenario: str
    duration_s: float
    tick_s: float
    window_s: float
    regions: int
    journal_digest: str
    windows: tuple[WindowSlo, ...]
    rooms: tuple[RoomSlo, ...]
    violations: tuple[str, ...] = ()
    notes: tuple[str, ...] = ()

    @property
    def passed(self) -> bool:
        """Whether every enforced SLO held in every judged window."""
        return not self.violations

    @property
    def scenario_hours(self) -> float:
        """Simulated room-hours (the bench throughput unit)."""
        return self.duration_s * len(self.rooms) / 3600.0

    def room(self, room_id: str) -> RoomSlo:
        """A room's aggregate row by id."""
        for row in self.rooms:
            if row.room == room_id:
                return row
        raise KeyError(room_id)

    def metrics(self) -> dict[str, float]:
        """A flat metric dict (attached to the run manifest)."""
        occupied = [w for w in self.windows if w.present_ticks]
        return {
            "rooms": float(len(self.rooms)),
            "scenario_hours": self.scenario_hours,
            "mean_goodput_bps": (
                sum(w.mean_goodput_bps for w in occupied) / len(occupied)
                if occupied else 0.0),
            "illumination_error": (
                sum(w.illumination_error for w in self.windows)
                / len(self.windows) if self.windows else 0.0),
            "flicker_violations": float(
                sum(w.flicker_violations for w in self.windows)),
            "handovers": float(sum(w.handovers for w in self.windows)),
            "slo_violations": float(len(self.violations)),
            "slo_pass": 1.0 if self.passed else 0.0,
        }

    def as_dict(self) -> dict[str, Any]:
        """The JSON artifact form (uploaded by the CI smoke job)."""
        return {
            "kind": "scenario-report",
            "scenario": self.scenario,
            "duration_s": self.duration_s,
            "tick_s": self.tick_s,
            "window_s": self.window_s,
            "regions": self.regions,
            "journal_digest": self.journal_digest,
            "windows": [w.as_dict() for w in self.windows],
            "rooms": [r.as_dict() for r in self.rooms],
            "violations": list(self.violations),
            "notes": list(self.notes),
            "passed": self.passed,
        }

    def render(self) -> str:
        """Aligned plain-text report for the CLI."""
        lines = [
            f"scenario {self.scenario}: {self.duration_s:g} s, "
            f"{len(self.rooms)} rooms, {self.regions} region(s), "
            f"window {self.window_s:g} s",
            f"  journal digest {self.journal_digest}",
        ]
        header = (f"  {'room':<14} {'window':>14} {'occ':>5} "
                  f"{'goodput':>12} {'illum err':>10} {'flicker':>8} "
                  f"{'handover':>9}")
        lines.append(header)
        for w in self.windows:
            window = f"{w.start_s:.0f}-{w.end_s:.0f}"
            lines.append(
                f"  {w.room:<14} {window:>14} {w.mean_occupancy:>5.2f} "
                f"{w.mean_goodput_bps:>12.1f} {w.illumination_error:>10.4f} "
                f"{w.flicker_violations:>8d} {w.handovers:>9d}")
        lines.append("  rooms:")
        for r in self.rooms:
            lines.append(
                f"    {r.room:<12} goodput {r.mean_goodput_bps:>10.1f} bps "
                f"(worst window {r.worst_window_goodput_bps:.1f})  "
                f"illum err {r.illumination_error:.4f}  "
                f"flicker {r.flicker_violations}  "
                f"handovers {r.handovers}")
        for note in self.notes:
            lines.append(f"  note: {note}")
        if self.violations:
            lines.append(f"  SLO: FAIL ({len(self.violations)} violation(s))")
            for violation in self.violations:
                lines.append(f"    - {violation}")
        else:
            lines.append("  SLO: PASS")
        return "\n".join(lines)


def build_report(compiled: CompiledScenario,
                 result: MulticellResult) -> ScenarioReport:
    """Fold a run's journal into the per-room/per-window SLO report."""
    scenario = compiled.scenario
    duration = scenario.duration_s
    window_s = scenario.report_window_s
    n_windows = max(1, math.ceil(duration / window_s))
    tau = compiled.simulation.config.tau_perceived
    target = scenario.target_sum
    room_ids = [layout.id for layout in compiled.rooms]
    #: per-room reference cell: its control entries count the ticks
    reference = {layout.luminaires[0]: layout.id for layout in compiled.rooms}

    def window_of(t: float) -> int:
        return min(int(t / window_s), n_windows - 1)

    zeros = {room: [0.0] * n_windows for room in room_ids}
    izeros = {room: [0] * n_windows for room in room_ids}
    goodput_sum = {r: list(z) for r, z in zeros.items()}
    goodput_n = {r: list(z) for r, z in izeros.items()}
    err_sum = {r: list(z) for r, z in zeros.items()}
    err_n = {r: list(z) for r, z in izeros.items()}
    flicker = {r: list(z) for r, z in izeros.items()}
    handovers = {r: list(z) for r, z in izeros.items()}
    ticks = {r: list(z) for r, z in izeros.items()}
    last_led: dict[str, float] = {}
    last_adjustments: dict[str, int] = {}
    ambient = compiled.simulation.ambient
    profiles = {cell: ambient.profile_for(cell)
                for cell in compiled.cell_room}

    for entry in result.journal.entries:
        if entry.kind == "link":
            room = compiled.node_room[entry.actor]
            w = window_of(entry.time)
            goodput_sum[room][w] += entry.get("goodput_bps", 0.0)
            goodput_n[room][w] += 1
        elif entry.kind == "control":
            room = compiled.cell_room[entry.actor]
            w = window_of(entry.time)
            led = entry.get("led", 0.0)
            adjustments = entry.get("adjustments", 0)
            daylight = profiles[entry.actor].intensity(entry.time)
            required = min(max(target - daylight, 0.0), 1.0)
            err_sum[room][w] += abs(led - required)
            err_n[room][w] += 1
            previous = last_led.get(entry.actor)
            if previous is not None:
                steps = adjustments - last_adjustments[entry.actor]
                if perceived_step(previous, led) > tau * steps + 1e-9:
                    flicker[room][w] += 1
            last_led[entry.actor] = led
            last_adjustments[entry.actor] = adjustments
            if entry.actor in reference:
                ticks[room][w] += 1
        elif entry.kind == "handover":
            room = compiled.node_room[entry.actor]
            handovers[room][window_of(entry.time)] += 1

    populations = {layout.id: len(layout.nodes) for layout in compiled.rooms}
    windows: list[WindowSlo] = []
    for room in room_ids:
        for w in range(n_windows):
            n_ticks = ticks[room][w]
            windows.append(WindowSlo(
                room=room, window=w,
                start_s=w * window_s,
                end_s=min((w + 1) * window_s, duration),
                ticks=n_ticks,
                present_ticks=goodput_n[room][w],
                mean_occupancy=(goodput_n[room][w] / n_ticks
                                if n_ticks else 0.0),
                mean_goodput_bps=(goodput_sum[room][w] / goodput_n[room][w]
                                  if goodput_n[room][w] else 0.0),
                illumination_error=(err_sum[room][w] / err_n[room][w]
                                    if err_n[room][w] else 0.0),
                flicker_violations=flicker[room][w],
                handovers=handovers[room][w],
            ))

    rooms: list[RoomSlo] = []
    for room in room_ids:
        rows = [w for w in windows if w.room == room]
        occupied = [w for w in rows if w.present_ticks]
        rooms.append(RoomSlo(
            room=room,
            mean_goodput_bps=(
                sum(w.mean_goodput_bps for w in occupied) / len(occupied)
                if occupied else 0.0),
            worst_window_goodput_bps=(
                min(w.mean_goodput_bps for w in occupied)
                if occupied else 0.0),
            illumination_error=(
                sum(w.illumination_error for w in rows) / len(rows)),
            flicker_violations=sum(w.flicker_violations for w in rows),
            handovers=sum(w.handovers for w in rows),
        ))

    slo = scenario.slo
    violations: list[str] = []
    for w in windows:
        where = f"{w.room} [{w.start_s:g}, {w.end_s:g})"
        if (slo.min_goodput_bps is not None and w.present_ticks
                and w.mean_goodput_bps < slo.min_goodput_bps):
            violations.append(
                f"{where}: goodput {w.mean_goodput_bps:.1f} bps < "
                f"{slo.min_goodput_bps:g}")
        if (slo.max_illumination_error is not None
                and w.illumination_error > slo.max_illumination_error):
            violations.append(
                f"{where}: illumination error {w.illumination_error:.4f} > "
                f"{slo.max_illumination_error:g}")
        if (slo.max_flicker_violations is not None
                and w.flicker_violations > slo.max_flicker_violations):
            violations.append(
                f"{where}: flicker violations {w.flicker_violations} > "
                f"{slo.max_flicker_violations}")

    notes = []
    if compiled.unprojected:
        notes.append("chaos primitives outside the DES surface: "
                     + ", ".join(compiled.unprojected))
    occupancy_s = sum(t.present_s for t in compiled.occupants)
    notes.append(f"{len(compiled.occupants)} occupants, "
                 f"{occupancy_s / 3600.0:.2f} occupant-hours; "
                 f"population per room "
                 + ", ".join(f"{room}={populations[room]}"
                             for room in room_ids))
    return ScenarioReport(
        scenario=scenario.name,
        duration_s=duration,
        tick_s=scenario.tick_s,
        window_s=window_s,
        regions=compiled.simulation.regions,
        journal_digest=result.journal.digest(),
        windows=tuple(windows),
        rooms=tuple(rooms),
        violations=tuple(violations),
        notes=tuple(notes),
    )
