"""The shipped named scenarios: curated days for CI, bench, and demos.

Each scenario is a pure :class:`~repro.scenarios.dsl.Scenario` value —
no I/O, no ambient state — so ``shipped_scenarios()`` is as
deterministic as the DSL itself.  ``huddle-smoke`` is deliberately the
smallest (two luminaires, two occupants, half an hour) and is the one
CI replays twice for byte-identical journal digests; the rest scale up
through a working day, a lunch-rush open plan, an overcast flicker
stress, and a chaos-laced night shift.

The scenario clock is seconds from the start of the episode; each
description anchors it to wall time.
"""

from __future__ import annotations

from .daylight import clear_sky, night_sky, overcast_sky
from .dsl import ChaosSpec, OccupancySpec, RoomSpec, Scenario, SloSpec


def _huddle_smoke() -> Scenario:
    return Scenario(
        name="huddle-smoke",
        description="A 30-minute huddle in a two-luminaire meeting "
                    "room; the smallest shipped scenario (CI smoke).",
        seed=11,
        duration_s=1800.0,
        tick_s=5.0,
        report_window_s=600.0,
        rooms=(
            RoomSpec(
                id="huddle", rows=1, cols=2, spacing_m=2.5,
                daylight=clear_sky(0.0, 5400.0, peak_level=0.7),
                occupancy=OccupancySpec(
                    population=2,
                    arrive_lo_s=0.0, arrive_hi_s=120.0,
                    depart_lo_s=1560.0, depart_hi_s=1740.0),
            ),
        ),
        slo=SloSpec(min_goodput_bps=5000.0,
                    max_illumination_error=0.08,
                    max_flicker_violations=0),
    )


def _office_day() -> Scenario:
    return Scenario(
        name="office-day",
        description="Two offices over a 07:00-19:00 working day: "
                    "staggered arrivals, lunch breaks, a dimmer "
                    "north-facing room (clock 0 = 07:00).",
        seed=20,
        duration_s=43200.0,
        tick_s=60.0,
        report_window_s=3600.0,
        rooms=(
            RoomSpec(
                id="office-a", rows=2, cols=2, spacing_m=2.5,
                daylight=clear_sky(0.0, 39600.0, peak_level=0.85),
                occupancy=OccupancySpec(
                    population=3,
                    arrive_lo_s=3600.0, arrive_hi_s=7200.0,
                    depart_lo_s=36000.0, depart_hi_s=41400.0,
                    break_probability=0.7,
                    break_lo_s=18000.0, break_hi_s=19800.0,
                    break_duration_s=2400.0),
            ),
            RoomSpec(
                id="office-b", rows=2, cols=3, spacing_m=2.5,
                daylight=clear_sky(0.0, 39600.0, peak_level=0.85,
                                   window_gain=0.6),
                occupancy=OccupancySpec(
                    population=4,
                    arrive_lo_s=3600.0, arrive_hi_s=7200.0,
                    depart_lo_s=36000.0, depart_hi_s=41400.0,
                    break_probability=0.7,
                    break_lo_s=18000.0, break_hi_s=19800.0,
                    break_duration_s=2400.0),
            ),
        ),
        slo=SloSpec(min_goodput_bps=1000.0,
                    max_illumination_error=0.08,
                    max_flicker_violations=0),
    )


def _open_plan_lunch_rush() -> Scenario:
    return Scenario(
        name="open-plan-lunch-rush",
        description="An eight-desk open plan over 09:00-17:00; nearly "
                    "everyone leaves for lunch and returns at once "
                    "(clock 0 = 09:00).",
        seed=33,
        duration_s=28800.0,
        tick_s=40.0,
        report_window_s=3600.0,
        rooms=(
            RoomSpec(
                id="open-plan", rows=2, cols=4, spacing_m=2.5,
                daylight=clear_sky(0.0, 30000.0, peak_level=0.8),
                occupancy=OccupancySpec(
                    population=8,
                    arrive_lo_s=0.0, arrive_hi_s=1800.0,
                    depart_lo_s=25200.0, depart_hi_s=28080.0,
                    break_probability=0.95,
                    break_lo_s=9000.0, break_hi_s=12600.0,
                    break_duration_s=2700.0),
            ),
        ),
        slo=SloSpec(min_goodput_bps=8000.0,
                    max_illumination_error=0.08,
                    max_flicker_violations=0),
    )


def _overcast_flicker_stress() -> Scenario:
    return Scenario(
        name="overcast-flicker-stress",
        description="Four hours of fast, deep cloud churn over two "
                    "labs: the lighting loop must track a jittery sky "
                    "without a single perceivable step.",
        seed=47,
        duration_s=14400.0,
        tick_s=20.0,
        report_window_s=3600.0,
        rooms=(
            RoomSpec(
                id="lab-north", rows=1, cols=2, spacing_m=2.5,
                daylight=overcast_sky(0.0, 16000.0,
                                      cloud_time_scale_s=90.0,
                                      window_gain=0.8),
                occupancy=OccupancySpec(
                    population=2,
                    arrive_lo_s=0.0, arrive_hi_s=600.0,
                    depart_lo_s=13200.0, depart_hi_s=14100.0),
            ),
            RoomSpec(
                id="lab-south", rows=2, cols=2, spacing_m=2.5,
                daylight=overcast_sky(0.0, 16000.0,
                                      cloud_time_scale_s=90.0),
                occupancy=OccupancySpec(
                    population=2,
                    arrive_lo_s=0.0, arrive_hi_s=600.0,
                    depart_lo_s=13200.0, depart_hi_s=14100.0),
            ),
        ),
        slo=SloSpec(min_goodput_bps=7000.0,
                    max_illumination_error=0.08,
                    max_flicker_violations=0),
    )


def _night_shift_chaos() -> Scenario:
    return Scenario(
        name="night-shift-chaos",
        description="A six-hour night shift in an ops centre under a "
                    "seeded random fault overlay: churn, outages, and "
                    "ambient transients with no daylight to hide them.",
        seed=58,
        duration_s=21600.0,
        tick_s=30.0,
        report_window_s=3600.0,
        rooms=(
            RoomSpec(
                id="ops", rows=2, cols=2, spacing_m=2.5,
                daylight=night_sky(21600.0),
                occupancy=OccupancySpec(
                    population=3,
                    arrive_lo_s=0.0, arrive_hi_s=1800.0,
                    depart_lo_s=18000.0, depart_hi_s=21000.0),
            ),
            RoomSpec(
                id="noc", rows=1, cols=2, spacing_m=2.5,
                daylight=night_sky(21600.0, night_level=0.05),
                occupancy=OccupancySpec(
                    population=2,
                    arrive_lo_s=0.0, arrive_hi_s=1800.0,
                    depart_lo_s=18000.0, depart_hi_s=21000.0),
            ),
        ),
        chaos=ChaosSpec(schedule="random", intensity=0.6),
        slo=SloSpec(min_goodput_bps=1500.0,
                    max_illumination_error=0.08,
                    max_flicker_violations=0),
    )


def shipped_scenarios() -> dict[str, Scenario]:
    """The curated scenarios by name, smallest first."""
    scenarios = (_huddle_smoke(), _office_day(), _open_plan_lunch_rush(),
                 _overcast_flicker_stress(), _night_shift_chaos())
    return {scenario.name: scenario for scenario in scenarios}


#: The scenario CI replays twice for byte-identical digests.
SMOKE_SCENARIO = "huddle-smoke"
