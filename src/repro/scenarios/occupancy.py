"""Occupancy compilation: seeded arrival/break/departure traces.

Each occupant is a pure function of ``(scenario seed, room index,
occupant index)`` through a private :class:`numpy.random.SeedSequence`
child: their arrival, optional break, departure, waypoint-mobility
seed, and personal daylight gain all come from that one stream, so
growing a room's population never disturbs anyone already hired.

Presence windows compile to the *complement* — the multicell
simulator's churn primitive is downtime, so an occupant arriving at
09:12 and leaving at 17:30 is "down" on ``[0, 09:12)`` and ``[17:30,
end)``.  Downtime from chaos overlays merges into the same per-node
window list (overlaps coalesced) in :mod:`repro.scenarios.compiler`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .dsl import OccupancySpec

#: Spawn-key namespace separating occupant streams from sky streams.
_OCCUPANT_NS = 2


@dataclass(frozen=True)
class OccupantTrace:
    """One compiled occupant: identity, presence, and trace seeds."""

    name: str
    room: str
    #: disjoint, sorted ``[start_s, end_s)`` windows of presence
    presence: tuple[tuple[float, float], ...]
    mobility_seed: int
    daylight_gain: float

    def present_at(self, t: float) -> bool:
        """Whether the occupant is in the room at ``t``."""
        return any(start <= t < end for start, end in self.presence)

    @property
    def present_s(self) -> float:
        """Total seconds of presence."""
        return sum(end - start for start, end in self.presence)


def occupant_rng(scenario_seed: int, room_index: int,
                 occupant_index: int) -> np.random.Generator:
    """The private generator of one occupant, pure in its arguments."""
    sequence = np.random.SeedSequence(
        entropy=scenario_seed,
        spawn_key=(_OCCUPANT_NS, room_index, occupant_index))
    return np.random.default_rng(sequence)


def build_occupants(spec: OccupancySpec, room_id: str, room_index: int,
                    scenario_seed: int) -> tuple[OccupantTrace, ...]:
    """Compile one room's population into occupant traces.

    Draw order per occupant is fixed (arrival, departure, break roll,
    break start, mobility seed, daylight gain) so traces replay
    bit-identically; the conditional break-start draw is safe because
    each occupant owns an independent stream.
    """
    occupants = []
    for index in range(spec.population):
        rng = occupant_rng(scenario_seed, room_index, index)
        arrive = float(rng.uniform(spec.arrive_lo_s, spec.arrive_hi_s))
        depart = float(rng.uniform(spec.depart_lo_s, spec.depart_hi_s))
        windows: tuple[tuple[float, float], ...]
        if (spec.break_probability > 0.0
                and float(rng.random()) < spec.break_probability):
            away = float(rng.uniform(spec.break_lo_s, spec.break_hi_s))
            windows = ((arrive, away),
                       (away + spec.break_duration_s, depart))
        else:
            windows = ((arrive, depart),)
        mobility_seed = int(rng.integers(0, 2 ** 31 - 1))
        daylight_gain = float(rng.uniform(0.75, 1.25))
        occupants.append(OccupantTrace(
            name=f"{room_id}.occ{index:02d}", room=room_id,
            presence=windows, mobility_seed=mobility_seed,
            daylight_gain=daylight_gain))
    return tuple(occupants)


def downtime_windows(trace: OccupantTrace,
                     duration_s: float) -> tuple[tuple[float, float], ...]:
    """The churn complement of a presence trace over ``[0, duration_s)``."""
    windows = []
    previous = 0.0
    for start, end in trace.presence:
        if start > previous:
            windows.append((previous, min(start, duration_s)))
        previous = max(previous, end)
    if previous < duration_s:
        windows.append((previous, duration_s))
    return tuple((start, end) for start, end in windows if end > start)


def merge_windows(windows: tuple[tuple[float, float], ...]
                  ) -> tuple[tuple[float, float], ...]:
    """Coalesce overlapping/adjacent windows into disjoint sorted ones."""
    merged: list[tuple[float, float]] = []
    for start, end in sorted(windows):
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return tuple(merged)
