"""The scenario runner: compile, run at fleet scale, judge, attest.

:class:`ScenarioRunner` is the one-stop entry point the CLI, the
``ext-scenarios`` experiment, the fuzz oracle, and the benchmarks all
share: compile the declarative scenario onto the (sharded) DES, run
it, fold the journal into a :class:`~repro.scenarios.report.
ScenarioReport`, and pin provenance with a
:class:`~repro.obs.manifest.RunManifest` carrying the journal digest.

Determinism contract: the report and the journal digest are pure
functions of ``(scenario, regions, config)``.  Only the manifest's
wall-clock fields differ between reruns, and they are provenance-only
by construction.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from datetime import datetime, timezone

from ..core.params import SystemConfig
from ..net.multicell import MulticellResult
from ..obs.manifest import RunManifest, config_digest
from .compiler import CompiledScenario, compile_scenario
from .dsl import Scenario
from .report import ScenarioReport, build_report


@dataclass(frozen=True)
class ScenarioRun:
    """Everything one scenario run produced."""

    scenario: Scenario
    compiled: CompiledScenario
    result: MulticellResult
    report: ScenarioReport
    manifest: RunManifest


class ScenarioRunner:
    """Compile and run one scenario, returning report + provenance."""

    def __init__(self, scenario: Scenario, *, regions: int = 1,
                 config: SystemConfig | None = None):
        if regions < 1:
            raise ValueError("regions must be positive")
        if regions > scenario.n_luminaires:
            raise ValueError(
                f"scenario {scenario.name!r} has {scenario.n_luminaires} "
                f"luminaires; cannot shard into {regions} regions")
        self.scenario = scenario
        self.regions = regions
        self.config = config if config is not None else SystemConfig()

    def run(self) -> ScenarioRun:
        """Compile, simulate, and judge the scenario."""
        started_at = datetime.now(timezone.utc).isoformat(timespec="seconds")
        t0 = time.perf_counter()
        compiled = compile_scenario(self.scenario, regions=self.regions,
                                    config=self.config)
        result = compiled.simulation.run(self.scenario.duration_s)
        report = build_report(compiled, result)
        wall_time_s = time.perf_counter() - t0
        manifest = RunManifest(
            experiment_id=f"scenario/{self.scenario.name}",
            config_digest=config_digest(self.config),
            version=_version(),
            seeds=(self.scenario.seed,),
            args=f"regions={self.regions}",
            started_at_utc=started_at,
            wall_time_s=wall_time_s,
            metrics=report.metrics(),
            journal_digest=report.journal_digest,
        )
        return ScenarioRun(scenario=self.scenario, compiled=compiled,
                           result=result, report=report, manifest=manifest)


def _version() -> str:
    from .. import __version__

    return __version__
