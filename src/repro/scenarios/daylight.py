"""Daylight compilation: a room's :class:`DaylightSpec` to a profile.

Every room derives its sky seed from the scenario seed through a
dedicated :class:`numpy.random.SeedSequence` spawn key, so two rooms
never share a cloud stream, adding a room never reshuffles existing
skies, and the whole building's daylight is a pure function of
``(scenario seed, room index)``.
"""

from __future__ import annotations

import numpy as np

from ..lighting.ambient import DaylightAmbient
from .dsl import DaylightSpec

#: Spawn-key namespace separating sky streams from occupant streams.
_SKY_NS = 1


def sky_seed(scenario_seed: int, room_index: int) -> int:
    """The cloud-noise seed of one room, pure in its arguments."""
    sequence = np.random.SeedSequence(entropy=scenario_seed,
                                      spawn_key=(_SKY_NS, room_index))
    return int(sequence.generate_state(1)[0])


def build_daylight(spec: DaylightSpec, scenario_seed: int,
                   room_index: int) -> DaylightAmbient:
    """Compile one room's sky into a seeded ambient profile.

    ``window_gain`` scales both the peak and the night floor — glazing
    attenuates streetlight spill at night just as it does the sun — so
    the compiled profile stays inside the spec's declared band.
    """
    return DaylightAmbient(
        sunrise_s=spec.sunrise_s,
        sunset_s=spec.sunset_s,
        peak_level=spec.peak_level * spec.window_gain,
        night_level=spec.night_level * spec.window_gain,
        cloud_depth=spec.cloud_depth,
        cloud_time_scale_s=spec.cloud_time_scale_s,
        seed=sky_seed(scenario_seed, room_index),
    )


def clear_sky(sunrise_s: float, sunset_s: float, *,
              peak_level: float = 0.85,
              window_gain: float = 1.0) -> DaylightSpec:
    """A bright day with light, slow clouds."""
    return DaylightSpec(sunrise_s=sunrise_s, sunset_s=sunset_s,
                        peak_level=peak_level, night_level=0.02,
                        cloud_depth=0.15, cloud_time_scale_s=1800.0,
                        window_gain=window_gain)


def overcast_sky(sunrise_s: float, sunset_s: float, *,
                 peak_level: float = 0.6,
                 cloud_time_scale_s: float = 120.0,
                 window_gain: float = 1.0) -> DaylightSpec:
    """Fast, deep cloud churn — the flicker-stress sky."""
    return DaylightSpec(sunrise_s=sunrise_s, sunset_s=sunset_s,
                        peak_level=peak_level, night_level=0.05,
                        cloud_depth=0.8,
                        cloud_time_scale_s=cloud_time_scale_s,
                        window_gain=window_gain)


def night_sky(duration_s: float, *,
              night_level: float = 0.03) -> DaylightSpec:
    """No sun inside the run: the arc sits entirely past the end."""
    return DaylightSpec(sunrise_s=duration_s + 3600.0,
                        sunset_s=duration_s + 2 * 3600.0,
                        peak_level=max(night_level, 0.5),
                        night_level=night_level,
                        cloud_depth=0.0)
