"""Scenario compilation: declarative specs to a runnable DES fleet.

Rooms are laid out along ``+x`` with a wall gap wider than the
receiver's field-of-view cull radius, so *every* cross-room channel
gain is exactly zero — walls as FoV cutoffs, with no special-cased
geometry in the simulator.  The layout doubles as the sharding axis:
the sharded kernel partitions luminaires into contiguous x-strips, so
a multi-room building maps naturally onto ``regions``.

Occupancy compiles to the churn primitive (downtime complements, see
:mod:`repro.scenarios.occupancy`), daylight to per-zone ambient
overrides, and the optional chaos overlay is projected onto what the
DES injects: node churn and uplink outages through the
:class:`~repro.resilience.faults.FaultPlan`, ambient steps folded into
each room's sky via :class:`~repro.lighting.ambient.ScheduledAmbient`.
Primitives the DES does not model (ADC blinding, ACK-loss bursts) are
reported, never silently applied.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field

import numpy as np

from ..core.params import SystemConfig
from ..lighting.ambient import AmbientProfile, ScheduledAmbient, StaticAmbient
from ..net.mobility import MobilityModel, RandomWaypoint
from ..net.multicell import (
    AmbientField,
    Luminaire,
    MobileNode,
    MulticellSimulation,
)
from ..net.spatial import LuminaireIndex
from ..phy.channel import calibrated_channel
from ..resilience.faults import (
    AckLossBurst,
    AdcBlinding,
    AmbientStep,
    FaultPlan,
    FaultSchedule,
    NodeDowntime,
    shipped_schedules,
)
from .daylight import build_daylight
from .dsl import Scenario
from .occupancy import (
    OccupantTrace,
    build_occupants,
    downtime_windows,
    merge_windows,
)

#: Spawn-key namespace for the chaos overlay's random schedule.
_CHAOS_NS = 3

#: Extra clearance beyond the FoV cull radius between adjacent rooms.
WALL_MARGIN_M = 1.0


@dataclass
class RoomWaypoint(MobilityModel):
    """A random-waypoint trace confined to one room's floor.

    Wraps a :class:`RandomWaypoint` drawn in room-local coordinates and
    translates it to the building frame, so occupants roam their own
    room and never cross a wall.  All trace-state management
    (``forget_before``/``reset``/``retire``) passes straight through.
    """

    origin_x_m: float
    origin_y_m: float
    inner: RandomWaypoint

    def position(self, t: float) -> tuple[float, float]:
        """The building-frame position at ``t``."""
        x, y = self.inner.position(t)
        return (self.origin_x_m + x, self.origin_y_m + y)

    def forget_before(self, t: float) -> None:
        """Forward the low-water mark to the wrapped trace."""
        self.inner.forget_before(t)

    def reset(self) -> None:
        """Rewind the wrapped trace to ``t = 0``."""
        self.inner.reset()

    def retire(self, t: float) -> None:
        """Release the wrapped trace at departure time ``t``."""
        self.inner.retire(t)


@dataclass(frozen=True)
class RoomLayout:
    """Where one room landed in the building frame."""

    id: str
    origin_x_m: float
    origin_y_m: float
    width_m: float
    depth_m: float
    luminaires: tuple[str, ...]
    nodes: tuple[str, ...]


@dataclass(frozen=True)
class CompiledScenario:
    """A scenario bound to a runnable simulation plus its atlas."""

    scenario: Scenario
    simulation: MulticellSimulation
    rooms: tuple[RoomLayout, ...]
    occupants: tuple[OccupantTrace, ...]
    wall_gap_m: float
    #: chaos primitives the DES does not model, as ``kind×count`` notes
    unprojected: tuple[str, ...] = ()
    node_room: dict[str, str] = dataclass_field(default_factory=dict)
    cell_room: dict[str, str] = dataclass_field(default_factory=dict)


def _chaos_seed(scenario_seed: int) -> int:
    """The seed of a ``random`` chaos overlay, pure in the scenario seed."""
    sequence = np.random.SeedSequence(entropy=scenario_seed,
                                      spawn_key=(_CHAOS_NS,))
    return int(sequence.generate_state(1)[0])


def _chaos_schedule(scenario: Scenario,
                    node_names: tuple[str, ...]) -> FaultSchedule:
    """Resolve the scenario's chaos overlay to a concrete schedule."""
    chaos = scenario.chaos
    assert chaos is not None
    if chaos.schedule == "random":
        return FaultSchedule.random(_chaos_seed(scenario.seed),
                                    scenario.duration_s,
                                    chaos.intensity, nodes=node_names)
    return shipped_schedules(scenario.duration_s)[chaos.schedule]


def compile_scenario(scenario: Scenario, *, regions: int = 1,
                     config: SystemConfig | None = None
                     ) -> CompiledScenario:
    """Compile a declarative scenario into a runnable DES simulation.

    Pure in ``(scenario, regions, config)``: every generator involved
    is seeded from the scenario seed through fixed spawn keys, so two
    compilations produce simulations whose runs journal identically.
    """
    config = config if config is not None else SystemConfig()
    channel = calibrated_channel(config)
    drop_m = 2.0
    probe = LuminaireIndex((Luminaire("probe", 0.0, 0.0),), drop_m,
                           channel.optics, 0.0)
    if not np.isfinite(probe.radius):
        raise ValueError(
            "scenario compilation needs a finite receiver FoV "
            f"(rx_fov_deg={channel.optics.rx_fov_deg:g}): walls are "
            "enforced as FoV cutoffs")
    wall_gap = probe.radius + WALL_MARGIN_M

    luminaires: list[Luminaire] = []
    nodes: list[MobileNode] = []
    occupants: list[OccupantTrace] = []
    layouts: list[RoomLayout] = []
    node_room: dict[str, str] = {}
    cell_room: dict[str, str] = {}
    overrides: list[tuple[str, AmbientProfile]] = []
    room_profiles: list[tuple[RoomLayout, AmbientProfile]] = []

    origin_x = 0.0
    for room_index, room in enumerate(scenario.rooms):
        width = room.cols * room.spacing_m
        depth = room.rows * room.spacing_m
        cell_names = []
        for r in range(room.rows):
            for c in range(room.cols):
                name = f"{room.id}.r{r}c{c}"
                luminaires.append(Luminaire(
                    name,
                    origin_x + (c + 0.5) * room.spacing_m,
                    (r + 0.5) * room.spacing_m))
                cell_names.append(name)
                cell_room[name] = room.id
        traces = build_occupants(room.occupancy, room.id, room_index,
                                 scenario.seed)
        for trace in traces:
            mobility = RoomWaypoint(origin_x, 0.0, RandomWaypoint(
                width, depth,
                speed_min_mps=room.occupancy.speed_min_mps,
                speed_max_mps=room.occupancy.speed_max_mps,
                pause_s=room.occupancy.pause_s,
                seed=trace.mobility_seed))
            nodes.append(MobileNode(trace.name, mobility,
                                    daylight_gain=trace.daylight_gain))
            node_room[trace.name] = room.id
        occupants.extend(traces)
        layout = RoomLayout(id=room.id, origin_x_m=origin_x,
                            origin_y_m=0.0, width_m=width, depth_m=depth,
                            luminaires=tuple(cell_names),
                            nodes=tuple(t.name for t in traces))
        layouts.append(layout)
        room_profiles.append(
            (layout, build_daylight(room.daylight, scenario.seed,
                                    room_index)))
        origin_x += width + wall_gap

    # -- chaos overlay --------------------------------------------------
    downtime: dict[str, tuple[tuple[float, float], ...]] = {
        trace.name: downtime_windows(trace, scenario.duration_s)
        for trace in occupants
    }
    outages: tuple[tuple[float, float], ...] = ()
    ambient_steps: tuple[tuple[float, float | None], ...] = ()
    unprojected: tuple[str, ...] = ()
    if scenario.chaos is not None:
        schedule = _chaos_schedule(
            scenario, tuple(node.name for node in nodes))
        plan = schedule.to_fault_plan()
        outages = plan.uplink_outages
        for name, start, end in plan.node_downtime:
            downtime[name] = merge_windows(downtime[name] + ((start, end),))
        steps = sorted(schedule.of_type(AmbientStep),
                       key=lambda step: step.at_s)
        ambient_steps = tuple((step.at_s, step.level) for step in steps)
        dropped = []
        for kind, label in ((AdcBlinding, "adc-blinding"),
                            (AckLossBurst, "ack-loss-burst")):
            count = len(schedule.of_type(kind))
            if count:
                dropped.append(f"{label}×{count}")
        unprojected = tuple(dropped)

    for layout, profile in room_profiles:
        if ambient_steps:
            profile = ScheduledAmbient(profile, ambient_steps)
        for cell_name in layout.luminaires:
            overrides.append((cell_name, profile))

    plan = FaultPlan(
        node_downtime=tuple(
            (node.name, start, end)
            for node in nodes
            for start, end in downtime[node.name]),
        uplink_outages=outages,
    )
    simulation = MulticellSimulation(
        config=config,
        luminaires=tuple(luminaires),
        nodes=tuple(nodes),
        ambient=AmbientField(base=StaticAmbient(0.0),
                             zone_overrides=tuple(overrides)),
        drop_m=drop_m,
        target_sum=scenario.target_sum,
        tick_s=scenario.tick_s,
        # The freshest report a controller can see was sensed one tick
        # ago; a staleness window below tick_s silently disables the
        # occupant sensing plane and pins fusion to the fallback.
        staleness_s=max(5.0, scenario.tick_s),
        faults=plan,
        seed=scenario.seed,
        regions=regions,
    )
    return CompiledScenario(
        scenario=scenario, simulation=simulation, rooms=tuple(layouts),
        occupants=tuple(occupants), wall_gap_m=wall_gap,
        unprojected=unprojected, node_room=node_room, cell_room=cell_room)
