"""The declarative scenario DSL: frozen specs plus a strict loader.

A :class:`Scenario` is a day (or any stretch) of building life: rooms
with their own luminaire grids, daylight curves behind their own
windows, seeded occupant populations that arrive, break, and leave, an
optional chaos overlay, and the SLOs the run is judged against.  The
schema is versioned (:data:`SCHEMA_VERSION`) and the loader is strict —
unknown keys, missing keys, version drift, negative durations, and
duplicate room ids are all hard errors, never silent defaults — so a
scenario file pinned in CI cannot quietly change meaning.

Everything here is declarative: specs carry no generators and no
numpy state.  Compilation to profiles, traces, and the DES lives in
:mod:`repro.scenarios.daylight`, :mod:`repro.scenarios.occupancy`, and
:mod:`repro.scenarios.compiler`; ``to_dict``/``from_dict`` round-trip
exactly (floats included), which the test suite checks by hypothesis.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

#: The schema understood by :meth:`Scenario.from_dict`.
SCHEMA_VERSION = 1

#: Chaos overlays resolvable by name (see ``resilience.shipped_schedules``
#: plus the seeded ``random`` mix).
CHAOS_SCHEDULES = ("blinding", "ack-burst", "transients", "mixed", "random")


def _check_keys(row: Any, what: str, required: frozenset,
                optional: frozenset = frozenset()) -> None:
    """Reject non-mappings, unknown keys, and missing required keys."""
    if not isinstance(row, Mapping):
        raise ValueError(f"{what} must be a mapping, "
                         f"got {type(row).__name__}")
    unknown = sorted(set(row) - required - optional)
    if unknown:
        raise ValueError(f"unknown {what} key(s): {', '.join(unknown)}")
    missing = sorted(required - set(row))
    if missing:
        raise ValueError(f"{what} missing key(s): {', '.join(missing)}")


@dataclass(frozen=True)
class DaylightSpec:
    """One room's sky: a piecewise solar arc seen through its window.

    ``window_gain`` scales what the glazing admits — the per-room
    heterogeneity knob that turns one shared sky into different indoor
    daylight levels.  Times are scenario-clock seconds; an arc entirely
    outside the run (``sunrise_s`` past the duration) is a legal night
    scenario.
    """

    sunrise_s: float = 6.0 * 3600.0
    sunset_s: float = 18.0 * 3600.0
    peak_level: float = 0.85
    night_level: float = 0.02
    cloud_depth: float = 0.15
    cloud_time_scale_s: float = 900.0
    window_gain: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.sunrise_s < self.sunset_s:
            raise ValueError("need 0 <= sunrise_s < sunset_s")
        if not 0.0 <= self.night_level <= self.peak_level <= 1.0:
            raise ValueError("need 0 <= night_level <= peak_level <= 1")
        if not 0.0 <= self.cloud_depth < 1.0:
            raise ValueError("cloud_depth must lie in [0, 1)")
        if self.cloud_time_scale_s <= 0:
            raise ValueError("cloud_time_scale_s must be positive")
        if not 0.0 < self.window_gain <= 1.0:
            raise ValueError("window_gain must lie in (0, 1]")

    def to_dict(self) -> dict[str, Any]:
        """The exact JSON-able form (round-trips via :meth:`from_dict`)."""
        return {
            "sunrise_s": self.sunrise_s,
            "sunset_s": self.sunset_s,
            "peak_level": self.peak_level,
            "night_level": self.night_level,
            "cloud_depth": self.cloud_depth,
            "cloud_time_scale_s": self.cloud_time_scale_s,
            "window_gain": self.window_gain,
        }

    @classmethod
    def from_dict(cls, row: Mapping[str, Any]) -> "DaylightSpec":
        """Strictly parse a daylight spec (unknown keys are errors)."""
        _check_keys(row, "daylight", frozenset(),
                    frozenset(cls.__dataclass_fields__))
        return cls(**{key: (float(row[key])) for key in row})


@dataclass(frozen=True)
class OccupancySpec:
    """One room's population: seeded arrival/break/departure windows.

    Each of the ``population`` occupants draws an arrival uniformly in
    ``[arrive_lo_s, arrive_hi_s]``, a departure in ``[depart_lo_s,
    depart_hi_s]``, and — with ``break_probability`` — one mid-day
    absence of ``break_duration_s`` starting in ``[break_lo_s,
    break_hi_s]``.  While present they follow a random-waypoint trace
    inside their room at the given speeds.  Windows must be ordered
    (arrivals before breaks before departures) so every draw yields a
    valid presence timeline.
    """

    population: int = 2
    arrive_lo_s: float = 0.0
    arrive_hi_s: float = 0.0
    depart_lo_s: float = 3600.0
    depart_hi_s: float = 3600.0
    break_probability: float = 0.0
    break_lo_s: float = 0.0
    break_hi_s: float = 0.0
    break_duration_s: float = 0.0
    speed_min_mps: float = 0.3
    speed_max_mps: float = 1.0
    pause_s: float = 15.0

    def __post_init__(self) -> None:
        if self.population < 1:
            raise ValueError("population must be at least 1")
        if self.arrive_lo_s < 0:
            raise ValueError("arrive_lo_s must be non-negative")
        if not (self.arrive_lo_s <= self.arrive_hi_s
                <= self.depart_lo_s <= self.depart_hi_s):
            raise ValueError("need arrive_lo_s <= arrive_hi_s <= "
                             "depart_lo_s <= depart_hi_s")
        if self.depart_hi_s <= self.arrive_hi_s:
            raise ValueError("departures must end after arrivals")
        if not 0.0 <= self.break_probability <= 1.0:
            raise ValueError("break_probability must lie in [0, 1]")
        if self.break_duration_s < 0:
            raise ValueError("break_duration_s must be non-negative")
        if self.break_probability > 0.0:
            if self.break_duration_s <= 0:
                raise ValueError("breaks need a positive break_duration_s")
            if not (self.arrive_hi_s <= self.break_lo_s <= self.break_hi_s):
                raise ValueError("need arrive_hi_s <= break_lo_s "
                                 "<= break_hi_s")
            if self.break_hi_s + self.break_duration_s > self.depart_lo_s:
                raise ValueError("breaks must end before departures begin")
        if not 0.0 < self.speed_min_mps <= self.speed_max_mps:
            raise ValueError("need 0 < speed_min_mps <= speed_max_mps")
        if self.pause_s < 0:
            raise ValueError("pause_s must be non-negative")

    def to_dict(self) -> dict[str, Any]:
        """The exact JSON-able form (round-trips via :meth:`from_dict`)."""
        return {
            "population": self.population,
            "arrive_lo_s": self.arrive_lo_s,
            "arrive_hi_s": self.arrive_hi_s,
            "depart_lo_s": self.depart_lo_s,
            "depart_hi_s": self.depart_hi_s,
            "break_probability": self.break_probability,
            "break_lo_s": self.break_lo_s,
            "break_hi_s": self.break_hi_s,
            "break_duration_s": self.break_duration_s,
            "speed_min_mps": self.speed_min_mps,
            "speed_max_mps": self.speed_max_mps,
            "pause_s": self.pause_s,
        }

    @classmethod
    def from_dict(cls, row: Mapping[str, Any]) -> "OccupancySpec":
        """Strictly parse an occupancy spec (unknown keys are errors)."""
        _check_keys(row, "occupancy", frozenset({"population"}),
                    frozenset(cls.__dataclass_fields__) - {"population"})
        values: dict[str, Any] = {"population": int(row["population"])}
        for key in row:
            if key != "population":
                values[key] = float(row[key])
        return cls(**values)


@dataclass(frozen=True)
class RoomSpec:
    """One room: a luminaire grid behind walls, a sky, a population.

    ``rows × cols`` ceiling luminaires at ``spacing_m``; the compiler
    places rooms far enough apart that the receiver field of view cuts
    every cross-room gain to exactly zero — walls as FoV cutoffs.
    """

    id: str
    rows: int = 2
    cols: int = 2
    spacing_m: float = 2.5
    daylight: DaylightSpec = field(default_factory=DaylightSpec)
    occupancy: OccupancySpec = field(default_factory=OccupancySpec)

    def __post_init__(self) -> None:
        if not self.id or not isinstance(self.id, str):
            raise ValueError("room id must be a non-empty string")
        if any(sep in self.id for sep in (".", "/", "\n")):
            raise ValueError("room ids must not contain '.', '/', "
                             "or newlines")
        if self.rows < 1 or self.cols < 1:
            raise ValueError("rooms need at least one luminaire "
                             "row and column")
        if not 0.0 < self.spacing_m <= 4.0:
            raise ValueError("spacing_m must lie in (0, 4] so every "
                             "occupant stays in their own room's zones")

    def to_dict(self) -> dict[str, Any]:
        """The exact JSON-able form (round-trips via :meth:`from_dict`)."""
        return {
            "id": self.id,
            "rows": self.rows,
            "cols": self.cols,
            "spacing_m": self.spacing_m,
            "daylight": self.daylight.to_dict(),
            "occupancy": self.occupancy.to_dict(),
        }

    @classmethod
    def from_dict(cls, row: Mapping[str, Any]) -> "RoomSpec":
        """Strictly parse a room spec (unknown keys are errors)."""
        _check_keys(row, "room", frozenset({"id"}),
                    frozenset({"rows", "cols", "spacing_m", "daylight",
                               "occupancy"}))
        values: dict[str, Any] = {"id": row["id"]}
        if "rows" in row:
            values["rows"] = int(row["rows"])
        if "cols" in row:
            values["cols"] = int(row["cols"])
        if "spacing_m" in row:
            values["spacing_m"] = float(row["spacing_m"])
        if "daylight" in row:
            values["daylight"] = DaylightSpec.from_dict(row["daylight"])
        if "occupancy" in row:
            values["occupancy"] = OccupancySpec.from_dict(row["occupancy"])
        return cls(**values)


@dataclass(frozen=True)
class ChaosSpec:
    """An optional fault overlay: a named resilience schedule.

    ``schedule`` picks one of the curated schedules (scaled to the
    scenario duration) or ``random`` — the seeded, ``intensity``-scaled
    mix derived from the scenario seed.  Only the primitives the DES
    projects (churn, uplink outages, ambient steps) take effect; the
    rest are surfaced in the report notes rather than silently applied.
    """

    schedule: str = "mixed"
    intensity: float = 0.5

    def __post_init__(self) -> None:
        if self.schedule not in CHAOS_SCHEDULES:
            raise ValueError(f"unknown chaos schedule {self.schedule!r}; "
                             f"expected one of {', '.join(CHAOS_SCHEDULES)}")
        if not 0.0 <= self.intensity <= 1.0:
            raise ValueError("intensity must lie in [0, 1]")

    def to_dict(self) -> dict[str, Any]:
        """The exact JSON-able form (round-trips via :meth:`from_dict`)."""
        return {"schedule": self.schedule, "intensity": self.intensity}

    @classmethod
    def from_dict(cls, row: Mapping[str, Any]) -> "ChaosSpec":
        """Strictly parse a chaos spec (unknown keys are errors)."""
        _check_keys(row, "chaos", frozenset({"schedule"}),
                    frozenset({"intensity"}))
        values: dict[str, Any] = {"schedule": row["schedule"]}
        if "intensity" in row:
            values["intensity"] = float(row["intensity"])
        return cls(**values)


@dataclass(frozen=True)
class SloSpec:
    """The service-level objectives a scenario run is judged against.

    Each bound applies per room per report window; ``None`` leaves that
    dimension unenforced.  Goodput is judged only on *occupied* windows
    (an empty room owes nobody throughput), illumination error is the
    mean LED tracking error against the flicker-constrained target, and
    flicker violations count perceived steps beyond the configured
    perception threshold.
    """

    min_goodput_bps: float | None = None
    max_illumination_error: float | None = None
    max_flicker_violations: int | None = None

    def __post_init__(self) -> None:
        if self.min_goodput_bps is not None and self.min_goodput_bps < 0:
            raise ValueError("min_goodput_bps must be non-negative")
        if (self.max_illumination_error is not None
                and self.max_illumination_error < 0):
            raise ValueError("max_illumination_error must be non-negative")
        if (self.max_flicker_violations is not None
                and self.max_flicker_violations < 0):
            raise ValueError("max_flicker_violations must be non-negative")

    def to_dict(self) -> dict[str, Any]:
        """The exact JSON-able form (round-trips via :meth:`from_dict`)."""
        return {
            "min_goodput_bps": self.min_goodput_bps,
            "max_illumination_error": self.max_illumination_error,
            "max_flicker_violations": self.max_flicker_violations,
        }

    @classmethod
    def from_dict(cls, row: Mapping[str, Any]) -> "SloSpec":
        """Strictly parse an SLO spec (unknown keys are errors)."""
        _check_keys(row, "slo", frozenset(),
                    frozenset(cls.__dataclass_fields__))
        values: dict[str, Any] = {}
        for key in ("min_goodput_bps", "max_illumination_error"):
            if key in row and row[key] is not None:
                values[key] = float(row[key])
        if ("max_flicker_violations" in row
                and row["max_flicker_violations"] is not None):
            values["max_flicker_violations"] = \
                int(row["max_flicker_violations"])
        return cls(**values)


@dataclass(frozen=True)
class Scenario:
    """A complete declarative scenario (see the module docstring)."""

    name: str
    rooms: tuple[RoomSpec, ...]
    seed: int = 0
    duration_s: float = 3600.0
    tick_s: float = 5.0
    report_window_s: float = 3600.0
    target_sum: float = 1.0
    description: str = ""
    chaos: ChaosSpec | None = None
    slo: SloSpec = field(default_factory=SloSpec)

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ValueError("scenario name must be a non-empty string")
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if not 0.0 < self.tick_s <= self.duration_s:
            raise ValueError("tick_s must lie in (0, duration_s]")
        if self.report_window_s <= 0:
            raise ValueError("report_window_s must be positive")
        if not 0.0 < self.target_sum <= 1.5:
            raise ValueError("target_sum must lie in (0, 1.5]")
        if not self.rooms:
            raise ValueError("a scenario needs at least one room")
        ids = [room.id for room in self.rooms]
        duplicates = sorted({i for i in ids if ids.count(i) > 1})
        if duplicates:
            raise ValueError(
                f"overlapping room id(s): {', '.join(duplicates)}")
        for room in self.rooms:
            if room.occupancy.depart_hi_s > self.duration_s:
                raise ValueError(
                    f"room {room.id!r}: departures extend past the "
                    f"scenario duration ({room.occupancy.depart_hi_s:g} > "
                    f"{self.duration_s:g})")

    @property
    def n_luminaires(self) -> int:
        """Total ceiling luminaires across all rooms."""
        return sum(room.rows * room.cols for room in self.rooms)

    @property
    def population(self) -> int:
        """Total occupants across all rooms."""
        return sum(room.occupancy.population for room in self.rooms)

    def to_dict(self) -> dict[str, Any]:
        """The exact JSON-able form (round-trips via :meth:`from_dict`)."""
        return {
            "version": SCHEMA_VERSION,
            "name": self.name,
            "description": self.description,
            "seed": self.seed,
            "duration_s": self.duration_s,
            "tick_s": self.tick_s,
            "report_window_s": self.report_window_s,
            "target_sum": self.target_sum,
            "rooms": [room.to_dict() for room in self.rooms],
            "chaos": self.chaos.to_dict() if self.chaos else None,
            "slo": self.slo.to_dict(),
        }

    @classmethod
    def from_dict(cls, row: Mapping[str, Any]) -> "Scenario":
        """Strictly parse a scenario dict (the versioned schema).

        Unknown keys anywhere, a missing or mismatched ``version``,
        and every constraint of the spec dataclasses are hard errors.
        """
        _check_keys(row, "scenario",
                    frozenset({"version", "name", "rooms"}),
                    frozenset({"description", "seed", "duration_s",
                               "tick_s", "report_window_s", "target_sum",
                               "chaos", "slo"}))
        version = row["version"]
        if version != SCHEMA_VERSION:
            raise ValueError(f"unsupported scenario schema version "
                             f"{version!r} (this build reads "
                             f"{SCHEMA_VERSION})")
        rooms = row["rooms"]
        if not isinstance(rooms, (list, tuple)):
            raise ValueError("rooms must be a list of room mappings")
        values: dict[str, Any] = {
            "name": row["name"],
            "rooms": tuple(RoomSpec.from_dict(r) for r in rooms),
        }
        if "description" in row:
            values["description"] = str(row["description"])
        if "seed" in row:
            values["seed"] = int(row["seed"])
        for key in ("duration_s", "tick_s", "report_window_s",
                    "target_sum"):
            if key in row:
                values[key] = float(row[key])
        if row.get("chaos") is not None:
            values["chaos"] = ChaosSpec.from_dict(row["chaos"])
        if "slo" in row:
            values["slo"] = SloSpec.from_dict(row["slo"])
        return cls(**values)

    def to_json(self) -> str:
        """The scenario as an indented JSON document."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)


def load_scenario(path: str | Path) -> Scenario:
    """Read one scenario from a JSON file through the strict loader."""
    payload = json.loads(Path(path).read_text())
    return Scenario.from_dict(payload)
