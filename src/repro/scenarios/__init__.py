"""Trace-driven scenarios: daylight, occupancy, deployments, SLOs.

The scenario engine turns the sharded DES + resilience + lighting
stack into a system judged against *days of building life* instead of
point benchmarks: a declarative, versioned DSL (:mod:`~repro.
scenarios.dsl`) composes per-room daylight curves, seeded occupant
populations, multi-room luminaire fleets separated by FoV-cutoff
walls, and optional chaos overlays; :class:`ScenarioRunner` compiles
and runs it at fleet scale and emits a :class:`ScenarioReport` of
per-room/per-window SLOs under :class:`~repro.obs.manifest.
RunManifest` provenance.  ``shipped_scenarios()`` holds the curated
named days used by ``repro scenario``, the ``ext-scenarios``
experiment, CI, and the benchmarks.
"""

from .compiler import (
    CompiledScenario,
    RoomLayout,
    RoomWaypoint,
    compile_scenario,
)
from .daylight import build_daylight, clear_sky, night_sky, overcast_sky
from .dsl import (
    CHAOS_SCHEDULES,
    SCHEMA_VERSION,
    ChaosSpec,
    DaylightSpec,
    OccupancySpec,
    RoomSpec,
    Scenario,
    SloSpec,
    load_scenario,
)
from .occupancy import (
    OccupantTrace,
    build_occupants,
    downtime_windows,
    merge_windows,
)
from .report import RoomSlo, ScenarioReport, WindowSlo, build_report
from .runner import ScenarioRun, ScenarioRunner
from .shipped import SMOKE_SCENARIO, shipped_scenarios

__all__ = [
    "CHAOS_SCHEDULES",
    "ChaosSpec",
    "CompiledScenario",
    "DaylightSpec",
    "OccupancySpec",
    "OccupantTrace",
    "RoomLayout",
    "RoomSlo",
    "RoomSpec",
    "RoomWaypoint",
    "SCHEMA_VERSION",
    "SMOKE_SCENARIO",
    "Scenario",
    "ScenarioReport",
    "ScenarioRun",
    "ScenarioRunner",
    "SloSpec",
    "WindowSlo",
    "build_daylight",
    "build_occupants",
    "build_report",
    "clear_sky",
    "compile_scenario",
    "downtime_windows",
    "load_scenario",
    "merge_windows",
    "night_sky",
    "overcast_sky",
    "shipped_scenarios",
]
