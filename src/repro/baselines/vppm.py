"""Variable Pulse Position Modulation (IEEE 802.15.7 dimming scheme).

Each symbol spans N slots and carries exactly one bit: a pulse of width
W placed at the leading edge encodes one value, at the trailing edge the
other (a blend of 2-PPM and PWM).  Dimming is the pulse duty W/N, so
the resolution is 1/N, but the rate is a flat 1/N bit per slot — which
is why the paper notes VPPM is outperformed by MPPM in theory and omits
it from the measurements.  Included here as a related-work extension.
"""

from __future__ import annotations

from typing import Sequence

from ..core.errormodel import SlotErrorModel
from ..core.params import SystemConfig
from .base import ModulationScheme, SchemeDesign


class VppmDesign(SchemeDesign):
    """VPPM bound to the nearest W/N duty."""

    def __init__(self, dimming: float, n_slots: int, config: SystemConfig):
        if not 0.0 < dimming < 1.0:
            raise ValueError("VPPM dimming level must lie in (0, 1)")
        if n_slots < 2:
            raise ValueError("VPPM needs at least two slots per symbol")
        self.target_dimming = dimming
        self.config = config
        self.n_slots = n_slots
        self.width = min(max(round(dimming * n_slots), 1), n_slots - 1)

    @property
    def achieved_dimming(self) -> float:
        return self.width / self.n_slots

    def _codewords(self) -> tuple[list[bool], list[bool]]:
        """The two symbol shapes: leading-edge pulse (0), trailing (1)."""
        lead = [True] * self.width + [False] * (self.n_slots - self.width)
        trail = [False] * (self.n_slots - self.width) + [True] * self.width
        return lead, trail

    def _symbol_error_rate(self, errors: SlotErrorModel) -> float:
        """A symbol survives when all its slots decode correctly.

        (A matched-filter receiver does better; the slot-wise bound is
        used for comparability with the MPPM analysis of Eq. (3).)
        """
        ok = ((1.0 - errors.p_on_error) ** self.width
              * (1.0 - errors.p_off_error) ** (self.n_slots - self.width))
        return 1.0 - ok

    def normalized_rate(self, errors: SlotErrorModel | None = None) -> float:
        rate = 1.0 / self.n_slots
        if errors is not None:
            rate *= 1.0 - self._symbol_error_rate(errors)
        return rate

    def payload_slots(self, n_bits: int) -> int:
        return n_bits * self.n_slots

    def success_probability(self, n_bits: int, errors: SlotErrorModel) -> float:
        return (1.0 - self._symbol_error_rate(errors)) ** n_bits

    def encode_payload(self, bits: Sequence[int]) -> list[bool]:
        lead, trail = self._codewords()
        slots: list[bool] = []
        for bit in bits:
            if bit not in (0, 1):
                raise ValueError(f"payload bits must be 0 or 1, got {bit!r}")
            slots.extend(trail if bit else lead)
        return slots

    def decode_payload(self, slots: Sequence[bool], n_bits: int) -> list[int]:
        n = self.n_slots
        if len(slots) < n_bits * n:
            raise ValueError(
                f"need {n_bits * n} slots for {n_bits} bits, got {len(slots)}"
            )
        lead, trail = self._codewords()
        bits: list[int] = []
        for start in range(0, n_bits * n, n):
            symbol = list(slots[start:start + n])
            # Nearest-codeword (Hamming) decision.
            d_lead = sum(a != b for a, b in zip(symbol, lead))
            d_trail = sum(a != b for a, b in zip(symbol, trail))
            bits.append(1 if d_trail < d_lead else 0)
        return bits


class Vppm(ModulationScheme):
    """Factory for :class:`VppmDesign` with a fixed symbol length."""

    name = "VPPM"

    DEFAULT_N = 10

    def __init__(self, config: SystemConfig | None = None,
                 n_slots: int | None = None):
        super().__init__(config)
        self.n_slots = n_slots if n_slots is not None else self.DEFAULT_N
        if self.n_slots < 2:
            raise ValueError("VPPM needs at least two slots per symbol")

    @property
    def supported_range(self) -> tuple[float, float]:
        return 1.0 / self.n_slots, (self.n_slots - 1) / self.n_slots

    def design(self, dimming: float) -> VppmDesign:
        return VppmDesign(dimming, self.n_slots, self.config)
