"""OOK with Compensation Time — the compensation-based baseline.

Bits map directly to slots (1 → ON, 0 → OFF), so random data averages a
dimming level of 0.5.  Any other level is reached by appending a run of
consecutive ONs or OFFs — the *compensation time* — which conveys no
information (Fig. 1, "compensation-based approach").  The scheme can hit
any dimming level, but its throughput collapses towards the extremes:
the data fraction is 2l below 0.5 and 2(1-l) above it.
"""

from __future__ import annotations

import math
from typing import Sequence

from ..core.errormodel import SlotErrorModel
from ..core.params import SystemConfig
from .base import ModulationScheme, SchemeDesign, bits_to_bools


class OokCtDesign(SchemeDesign):
    """OOK-CT bound to one dimming level.

    Compensation is computed for the *actual* ON count of each encoded
    block, mirroring the prototype, which compensates per frame; the
    rate/overhead maths below uses the equiprobable-bits expectation
    (the paper's assumption in Section 6.1).
    """

    def __init__(self, dimming: float, config: SystemConfig):
        if not 0.0 < dimming < 1.0:
            raise ValueError("OOK-CT dimming level must lie in (0, 1)")
        self.target_dimming = dimming
        self.config = config

    @property
    def achieved_dimming(self) -> float:
        """Compensation makes the achieved level exactly the target."""
        return self.target_dimming

    @property
    def data_fraction(self) -> float:
        """Expected fraction of slots carrying data: 2l or 2(1-l)."""
        level = self.target_dimming
        return 2.0 * level if level <= 0.5 else 2.0 * (1.0 - level)

    def normalized_rate(self, errors: SlotErrorModel | None = None) -> float:
        rate = self.data_fraction
        if errors is not None:
            # A data slot is a coin flip between ON and OFF.
            rate *= 1.0 - 0.5 * (errors.p_on_error + errors.p_off_error)
        return rate

    def compensation_slots(self, n_data_slots: int, n_on: int) -> tuple[int, bool]:
        """Compensation length and polarity for a block.

        Returns ``(count, on)`` such that appending ``count`` slots of
        value ``on`` brings the block average to the target level (to
        within one slot's worth of granularity).
        """
        level = self.target_dimming
        current = n_on / n_data_slots if n_data_slots else 0.0
        if current > level:
            # Append OFFs: (n_on) / (n + c) = level.
            count = math.ceil(n_on / level - n_data_slots)
            return max(count, 0), False
        if current < level:
            # Append ONs: (n_on + c) / (n + c) = level.
            count = math.ceil((level * n_data_slots - n_on) / (1.0 - level))
            return max(count, 0), True
        return 0, False

    def payload_slots(self, n_bits: int) -> int:
        """Expected slot count for an equiprobable ``n_bits`` payload."""
        if n_bits == 0:
            return 0
        count, _ = self.compensation_slots(n_bits, n_bits // 2)
        return n_bits + count

    def success_probability(self, n_bits: int, errors: SlotErrorModel) -> float:
        """Every data slot must decode; compensation slots don't matter."""
        p_ok = 1.0 - 0.5 * (errors.p_on_error + errors.p_off_error)
        return p_ok ** n_bits

    def encode_payload(self, bits: Sequence[int]) -> list[bool]:
        slots = bits_to_bools(bits)
        count, on = self.compensation_slots(len(slots), sum(slots))
        return slots + [on] * count

    def decode_payload(self, slots: Sequence[bool], n_bits: int) -> list[int]:
        if len(slots) < n_bits:
            raise ValueError(
                f"need at least {n_bits} slots to recover {n_bits} bits, "
                f"got {len(slots)}"
            )
        return [1 if s else 0 for s in slots[:n_bits]]


class OokCt(ModulationScheme):
    """Factory for :class:`OokCtDesign`."""

    name = "OOK-CT"

    @property
    def supported_range(self) -> tuple[float, float]:
        """Any level strictly inside (0, 1) — OOK-CT's selling point.

        The open interval is reported through the smallest granularity
        a single compensated frame can express.
        """
        eps = 1.0 / self.config.n_max_super
        return eps, 1.0 - eps

    def design(self, dimming: float) -> OokCtDesign:
        return OokCtDesign(dimming, self.config)
