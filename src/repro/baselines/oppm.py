"""Overlapping Pulse Position Modulation (related work [8, 35]).

An OPPM symbol spans N slots and carries one contiguous pulse of width
W; the pulse may start at any of the N - W + 1 positions (starts are
allowed to overlap between codewords, hence the name), giving
``floor(log2 (N - W + 1))`` bits per symbol at a dimming level of W/N.
Better than VPPM, still below MPPM — which can scatter its ON slots —
and with the same coarse dimming grid as any fixed-parameter scheme.
"""

from __future__ import annotations

from typing import Sequence

from ..core.errormodel import SlotErrorModel
from ..core.params import SystemConfig
from .base import ModulationScheme, SchemeDesign


class OppmDesign(SchemeDesign):
    """OPPM bound to the nearest W/N duty."""

    def __init__(self, dimming: float, n_slots: int, config: SystemConfig):
        if not 0.0 < dimming < 1.0:
            raise ValueError("OPPM dimming level must lie in (0, 1)")
        if n_slots < 2:
            raise ValueError("OPPM needs at least two slots per symbol")
        self.target_dimming = dimming
        self.config = config
        self.n_slots = n_slots
        self.width = min(max(round(dimming * n_slots), 1), n_slots - 1)

    @property
    def achieved_dimming(self) -> float:
        return self.width / self.n_slots

    @property
    def positions(self) -> int:
        """Number of distinct pulse start positions."""
        return self.n_slots - self.width + 1

    @property
    def bits(self) -> int:
        """Data bits per symbol: floor(log2 positions)."""
        if self.positions < 2:
            return 0
        return self.positions.bit_length() - 1

    def _symbol_error_rate(self, errors: SlotErrorModel) -> float:
        ok = ((1.0 - errors.p_on_error) ** self.width
              * (1.0 - errors.p_off_error) ** (self.n_slots - self.width))
        return 1.0 - ok

    def normalized_rate(self, errors: SlotErrorModel | None = None) -> float:
        if self.bits == 0:
            return 0.0
        rate = self.bits / self.n_slots
        if errors is not None:
            rate *= 1.0 - self._symbol_error_rate(errors)
        return rate

    def payload_slots(self, n_bits: int) -> int:
        if self.bits == 0:
            raise ValueError("this OPPM design carries no data")
        symbols = -(-n_bits // self.bits)
        return symbols * self.n_slots

    def success_probability(self, n_bits: int, errors: SlotErrorModel) -> float:
        if self.bits == 0:
            return 0.0
        symbols = -(-n_bits // self.bits)
        return (1.0 - self._symbol_error_rate(errors)) ** symbols

    def encode_payload(self, bits: Sequence[int]) -> list[bool]:
        if self.bits == 0:
            raise ValueError("this OPPM design carries no data")
        padded = list(bits)
        padded.extend([0] * ((-len(padded)) % self.bits))
        slots: list[bool] = []
        for start in range(0, len(padded), self.bits):
            value = 0
            for bit in padded[start:start + self.bits]:
                if bit not in (0, 1):
                    raise ValueError(f"payload bits must be 0 or 1, got {bit!r}")
                value = (value << 1) | bit
            symbol = [False] * self.n_slots
            symbol[value:value + self.width] = [True] * self.width
            slots.extend(symbol)
        return slots

    def decode_payload(self, slots: Sequence[bool], n_bits: int) -> list[int]:
        if self.bits == 0:
            raise ValueError("this OPPM design carries no data")
        n = self.n_slots
        if len(slots) % n:
            raise ValueError(f"slot count {len(slots)} not a multiple of {n}")
        bits: list[int] = []
        for start in range(0, len(slots), n):
            symbol = slots[start:start + n]
            value = self._decode_symbol(symbol)
            for shift in range(self.bits - 1, -1, -1):
                bits.append((value >> shift) & 1)
        if len(bits) < n_bits:
            raise ValueError(f"decoded only {len(bits)} bits, need {n_bits}")
        return bits[:n_bits]

    def _decode_symbol(self, symbol: Sequence[bool]) -> int:
        """Best-correlation pulse start (nearest-codeword decision)."""
        best_value = 0
        best_score = -1
        usable = 1 << self.bits
        for position in range(min(self.positions, usable)):
            score = sum(1 for i in range(self.width) if symbol[position + i])
            score += sum(
                1 for i, s in enumerate(symbol)
                if not s and not position <= i < position + self.width
            )
            if score > best_score:
                best_score = score
                best_value = position
        return best_value


class Oppm(ModulationScheme):
    """Factory for :class:`OppmDesign` with a fixed symbol length."""

    name = "OPPM"

    DEFAULT_N = 16

    def __init__(self, config: SystemConfig | None = None,
                 n_slots: int | None = None):
        super().__init__(config)
        self.n_slots = n_slots if n_slots is not None else self.DEFAULT_N
        if self.n_slots < 2:
            raise ValueError("OPPM needs at least two slots per symbol")

    @property
    def supported_range(self) -> tuple[float, float]:
        return 1.0 / self.n_slots, (self.n_slots - 1) / self.n_slots

    def design(self, dimming: float) -> OppmDesign:
        return OppmDesign(dimming, self.n_slots, self.config)
