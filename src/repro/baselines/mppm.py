"""Fixed-N MPPM — the compensation-free baseline.

Data rides in the positions of K ON slots within an N-slot symbol
(Fig. 1, "compensation-free approach").  Dimming is a by-product of the
(N, K) choice, so a fixed N offers only the N-1 discrete levels
K/N — the coarse step-wise function the paper criticises.  The
evaluation uses N = 20, the largest value whose SER stays under the
bound at every K (Section 6.2).
"""

from __future__ import annotations

from typing import Sequence

from ..core.coding import SymbolCodec
from ..core.errormodel import SlotErrorModel
from ..core.params import SystemConfig
from ..core.symbols import SymbolPattern
from .base import ModulationScheme, SchemeDesign


class MppmDesign(SchemeDesign):
    """MPPM bound to the nearest achievable K/N level."""

    def __init__(self, dimming: float, n_slots: int, config: SystemConfig):
        if not 0.0 < dimming < 1.0:
            raise ValueError("MPPM dimming level must lie in (0, 1)")
        self.target_dimming = dimming
        self.config = config
        k = min(max(round(dimming * n_slots), 1), n_slots - 1)
        self.pattern = SymbolPattern(n_slots, k)
        self._codec = SymbolCodec(self.pattern)

    @property
    def achieved_dimming(self) -> float:
        return self.pattern.dimming

    @property
    def quantisation_error(self) -> float:
        """|K/N - target|: the dimming error MPPM cannot avoid."""
        return abs(self.achieved_dimming - self.target_dimming)

    def normalized_rate(self, errors: SlotErrorModel | None = None) -> float:
        return self.pattern.normalized_rate(errors)

    def payload_slots(self, n_bits: int) -> int:
        symbols = -(-n_bits // self.pattern.bits)  # ceil division
        return symbols * self.pattern.n_slots

    def success_probability(self, n_bits: int, errors: SlotErrorModel) -> float:
        symbols = -(-n_bits // self.pattern.bits)
        return (1.0 - self.pattern.symbol_error_rate(errors)) ** symbols

    def encode_payload(self, bits: Sequence[int]) -> list[bool]:
        padded = list(bits)
        padded.extend([0] * ((-len(padded)) % self.pattern.bits))
        slots: list[bool] = []
        for start in range(0, len(padded), self.pattern.bits):
            value = 0
            for bit in padded[start:start + self.pattern.bits]:
                if bit not in (0, 1):
                    raise ValueError(f"payload bits must be 0 or 1, got {bit!r}")
                value = (value << 1) | bit
            slots.extend(self._codec.encode(value))
        return slots

    def decode_payload(self, slots: Sequence[bool], n_bits: int) -> list[int]:
        n = self.pattern.n_slots
        if len(slots) % n:
            raise ValueError(f"slot count {len(slots)} not a multiple of {n}")
        bits: list[int] = []
        for start in range(0, len(slots), n):
            value = self._codec.decode(slots[start:start + n])
            for shift in range(self.pattern.bits - 1, -1, -1):
                bits.append((value >> shift) & 1)
        if len(bits) < n_bits:
            raise ValueError(f"decoded only {len(bits)} bits, need {n_bits}")
        return bits[:n_bits]


class Mppm(ModulationScheme):
    """Factory for :class:`MppmDesign` with a fixed symbol length."""

    name = "MPPM"

    #: the paper's evaluation choice for the MPPM baseline
    DEFAULT_N = 20

    def __init__(self, config: SystemConfig | None = None,
                 n_slots: int | None = None):
        super().__init__(config)
        self.n_slots = n_slots if n_slots is not None else self.DEFAULT_N
        if self.n_slots < 2:
            raise ValueError("MPPM needs at least two slots per symbol")

    @property
    def supported_range(self) -> tuple[float, float]:
        return 1.0 / self.n_slots, (self.n_slots - 1) / self.n_slots

    @property
    def supported_levels(self) -> list[float]:
        """The step-wise K/N levels — what Fig. 6(a) plots."""
        return [k / self.n_slots for k in range(1, self.n_slots)]

    def design(self, dimming: float) -> MppmDesign:
        return MppmDesign(dimming, self.n_slots, self.config)
