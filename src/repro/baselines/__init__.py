"""State-of-the-art dimmable modulation schemes SmartVLC compares against."""

from .base import ModulationScheme, SchemeDesign
from .darklight import DarkLight, DarkLightDesign
from .mppm import Mppm, MppmDesign
from .ookct import OokCt, OokCtDesign
from .oppm import Oppm, OppmDesign
from .vppm import Vppm, VppmDesign

__all__ = [
    "DarkLight",
    "DarkLightDesign",
    "ModulationScheme",
    "Mppm",
    "MppmDesign",
    "OokCt",
    "OokCtDesign",
    "Oppm",
    "OppmDesign",
    "SchemeDesign",
    "Vppm",
    "VppmDesign",
]
