"""DarkLight-style communication for lights-off hours (paper Section 7).

The paper positions SmartVLC as orthogonal to DarkLight [35]: "when
illumination is required, SmartVLC can be applied and when illumination
is not required (e.g., at night), DarkLight can then be applied
instead."  This module provides that companion mode: ultra-sparse
single-pulse position modulation whose average light output is so low
(one slot ON out of hundreds) that the LED *appears off* while still
carrying data at a few kbps.

It is an (N, 1) pulse-position code with N far beyond the AMPPM
designer's range; the pulse position carries ``floor(log2 N)`` bits per
symbol and the apparent brightness is 1/N.
"""

from __future__ import annotations

from typing import Sequence

from ..core.errormodel import SlotErrorModel
from ..core.params import SystemConfig
from .base import ModulationScheme, SchemeDesign

#: Largest symbol length the frame header can describe (12-bit field).
MAX_DARKLIGHT_N = 4095


class DarkLightDesign(SchemeDesign):
    """Single-pulse PPM at an imperceptible duty cycle."""

    def __init__(self, n_slots: int, config: SystemConfig):
        if not 2 <= n_slots <= MAX_DARKLIGHT_N:
            raise ValueError(
                f"DarkLight symbol length must lie in [2, {MAX_DARKLIGHT_N}]"
            )
        self.n_slots = n_slots
        self.config = config
        self.target_dimming = 1.0 / n_slots

    @property
    def achieved_dimming(self) -> float:
        return 1.0 / self.n_slots

    @property
    def bits(self) -> int:
        """Bits per symbol: floor(log2 N) pulse positions are used."""
        return self.n_slots.bit_length() - 1

    @property
    def positions(self) -> int:
        """Number of usable pulse positions, 2**bits."""
        return 1 << self.bits

    def _symbol_error_rate(self, errors: SlotErrorModel) -> float:
        ok = ((1.0 - errors.p_on_error)
              * (1.0 - errors.p_off_error) ** (self.n_slots - 1))
        return 1.0 - ok

    def normalized_rate(self, errors: SlotErrorModel | None = None) -> float:
        rate = self.bits / self.n_slots
        if errors is not None:
            rate *= 1.0 - self._symbol_error_rate(errors)
        return rate

    def payload_slots(self, n_bits: int) -> int:
        symbols = -(-n_bits // self.bits)
        return symbols * self.n_slots

    def success_probability(self, n_bits: int, errors: SlotErrorModel) -> float:
        symbols = -(-n_bits // self.bits)
        return (1.0 - self._symbol_error_rate(errors)) ** symbols

    def encode_payload(self, bits: Sequence[int]) -> list[bool]:
        padded = list(bits)
        padded.extend([0] * ((-len(padded)) % self.bits))
        slots: list[bool] = []
        for start in range(0, len(padded), self.bits):
            value = 0
            for bit in padded[start:start + self.bits]:
                if bit not in (0, 1):
                    raise ValueError(f"payload bits must be 0 or 1, got {bit!r}")
                value = (value << 1) | bit
            symbol = [False] * self.n_slots
            symbol[value] = True
            slots.extend(symbol)
        return slots

    def decode_payload(self, slots: Sequence[bool], n_bits: int) -> list[int]:
        n = self.n_slots
        if len(slots) % n:
            raise ValueError(f"slot count {len(slots)} not a multiple of {n}")
        bits: list[int] = []
        for start in range(0, len(slots), n):
            symbol = slots[start:start + n]
            ons = [i for i, s in enumerate(symbol) if s]
            if len(ons) != 1 or ons[0] >= self.positions:
                raise ValueError(
                    f"DarkLight symbol corrupted: pulse positions {ons}"
                )
            value = ons[0]
            for shift in range(self.bits - 1, -1, -1):
                bits.append((value >> shift) & 1)
        if len(bits) < n_bits:
            raise ValueError(f"decoded only {len(bits)} bits, need {n_bits}")
        return bits[:n_bits]


class DarkLight(ModulationScheme):
    """Factory for :class:`DarkLightDesign`.

    ``design(dimming)`` picks the symbol length whose 1/N duty is
    closest to (but not above) the requested darkness level.
    """

    name = "DarkLight"

    DEFAULT_N = 512

    def __init__(self, config: SystemConfig | None = None,
                 n_slots: int | None = None):
        super().__init__(config)
        self.n_slots = n_slots if n_slots is not None else self.DEFAULT_N
        if not 2 <= self.n_slots <= MAX_DARKLIGHT_N:
            raise ValueError(
                f"DarkLight symbol length must lie in [2, {MAX_DARKLIGHT_N}]"
            )

    @property
    def supported_range(self) -> tuple[float, float]:
        return 1.0 / MAX_DARKLIGHT_N, 0.5

    def design(self, dimming: float) -> DarkLightDesign:
        if not 0.0 < dimming <= 0.5:
            raise ValueError("DarkLight serves dimming levels in (0, 0.5]")
        n = min(max(round(1.0 / dimming), 2), MAX_DARKLIGHT_N)
        return DarkLightDesign(n, self.config)

    def darkest_design(self) -> DarkLightDesign:
        """The configured default darkness (duty 1/DEFAULT_N)."""
        return DarkLightDesign(self.n_slots, self.config)
