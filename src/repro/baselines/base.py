"""Common interface for dimmable VLC modulation schemes.

AMPPM and the state-of-the-art schemes it is compared against (OOK-CT,
MPPM, and the related-work VPPM/OPPM) all answer the same two
questions, so they share one interface:

* given a required dimming level, how are payload bits turned into
  ON/OFF slots (and back)?
* what throughput does that mapping achieve under a slot error model?

A :class:`ModulationScheme` is the per-scheme factory; calling
:meth:`ModulationScheme.design` binds it to a dimming level and returns
a :class:`SchemeDesign` that the frame codec and the analytic link
model both consume.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

from ..core.errormodel import SlotErrorModel
from ..core.params import SystemConfig


class SchemeDesign(ABC):
    """A modulation scheme bound to one dimming level."""

    #: dimming level the caller asked for
    target_dimming: float

    @property
    @abstractmethod
    def achieved_dimming(self) -> float:
        """Dimming level the slot stream actually averages to."""

    @abstractmethod
    def normalized_rate(self, errors: SlotErrorModel | None = None) -> float:
        """Asymptotic expected data bits per slot (goodput factor)."""

    @abstractmethod
    def payload_slots(self, n_bits: int) -> int:
        """Slots needed to carry ``n_bits`` payload bits."""

    @abstractmethod
    def success_probability(self, n_bits: int, errors: SlotErrorModel) -> float:
        """Probability that an ``n_bits`` payload decodes error-free."""

    @abstractmethod
    def encode_payload(self, bits: Sequence[int]) -> list[bool]:
        """Map payload bits to an ON/OFF slot sequence."""

    @abstractmethod
    def decode_payload(self, slots: Sequence[bool], n_bits: int) -> list[int]:
        """Recover ``n_bits`` payload bits from a slot sequence.

        Raises ValueError (or a subclass) when the slots are corrupted
        in a way the scheme can detect.
        """

    def data_rate(self, config: SystemConfig,
                  errors: SlotErrorModel | None = None) -> float:
        """Asymptotic PHY data rate in bit/s (no frame overhead)."""
        return self.normalized_rate(errors) / config.t_slot


class ModulationScheme(ABC):
    """Factory of :class:`SchemeDesign` objects for one scheme."""

    #: short name used in experiment tables ("AMPPM", "OOK-CT", ...)
    name: str = "scheme"

    def __init__(self, config: SystemConfig | None = None):
        self.config = config if config is not None else SystemConfig()

    @property
    @abstractmethod
    def supported_range(self) -> tuple[float, float]:
        """Dimming levels the scheme can serve."""

    @abstractmethod
    def design(self, dimming: float) -> SchemeDesign:
        """Bind the scheme to a required dimming level."""

    def design_clamped(self, dimming: float) -> SchemeDesign:
        """Clamp out-of-range requests to the nearest supported level."""
        lo, hi = self.supported_range
        return self.design(min(max(dimming, lo), hi))


def bits_to_bools(bits: Sequence[int]) -> list[bool]:
    """Validate and convert a 0/1 sequence to booleans."""
    out = []
    for bit in bits:
        if bit not in (0, 1):
            raise ValueError(f"payload bits must be 0 or 1, got {bit!r}")
        out.append(bool(bit))
    return out
