"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list`` — show every registered experiment id.
* ``run <id> [...]`` — regenerate experiments and render them as text;
  ``--csv DIR`` / ``--json DIR`` additionally export machine-readable
  files (plus a ``<id>.manifest.json`` provenance sidecar per result),
  ``--jobs N`` fans sweep grids across worker processes,
  ``--telemetry FILE`` records the whole invocation — metrics, spans,
  manifests — as JSON lines for ``repro stats``, ``--trace FILE``
  exports the span tree as Chrome trace-event JSON (open it in
  ``chrome://tracing`` or https://ui.perfetto.dev), and ``--profile``
  prints the inclusive/exclusive hot-path table afterwards.
* ``bench run [name ...]`` — time the built-in benchmark workloads
  (warmup + best-of-k), append the records to the append-only
  ``BENCH_HISTORY.jsonl``, and gate against the historical baseline
  with a noise-aware threshold (exit code 1 on regression);
  ``bench diff`` re-judges the latest recorded run against the earlier
  history, ``bench history`` lists recorded runs.
* ``design <dimming>`` — ask the AMPPM designer for the best
  super-symbol at a dimming level and print its properties.
* ``journal`` — run a multicell network scenario and show its event
  journal (counters + tail); ``--jsonl FILE`` exports the full trace.
* ``chaos`` — run one fault schedule against the supervised link and
  print its resilience report (and the determinism digest).
* ``scenario list|show|run`` — the trace-driven scenario engine:
  enumerate the shipped scenarios, print one as its versioned JSON
  document, or compile/run/judge one (``--regions`` shards the DES,
  ``--report FILE`` writes the ScenarioReport + RunManifest JSON
  artifact, ``--file`` reads a scenario document instead of a shipped
  name; exit code 1 when the run misses its SLOs).
* ``fuzz run`` — a seeded, budgeted differential-fuzzing campaign over
  the modulation/scenario/fault space with crash isolation and
  automatic failure shrinking (``--self-test`` hunts a known injected
  defect instead); ``fuzz replay`` re-executes repro artifacts and
  checks bit-identical digests; ``fuzz corpus`` lists or extends the
  regression corpus under ``tests/fuzz/corpus/``.
* ``stats <file>`` — render a ``--telemetry`` JSONL dump: counters,
  gauges, histograms (with p50/p95/p99), the span tree and run
  manifests (``--prometheus`` emits the metrics in Prometheus text
  format, ``--profile`` the hot-path table aggregated from the spans).
* ``info`` — the active configuration and derived constants.

Error contract: every subcommand reports bad arguments on ``stderr``
and returns exit code 2; ``stdout`` carries results only.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from .core import AmppmDesigner, SystemConfig
from .experiments import experiment_ids, run_experiment
from .obs import (
    ProfileSession,
    read_telemetry_jsonl,
    render_prometheus,
    render_text,
    telemetry_session,
    write_chrome_trace,
    write_manifest,
    write_telemetry_jsonl,
)
from .sim.export import write_figure_csv, write_json, write_table_csv
from .sim.results import FigureResult


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SmartVLC (CoNEXT 2017) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiment ids")

    run_cmd = sub.add_parser("run", help="regenerate experiments")
    run_cmd.add_argument("ids", nargs="*", metavar="ID",
                         help="experiment ids (default: all)")
    run_cmd.add_argument("--csv", metavar="DIR", default=None,
                         help="also export CSV files into DIR")
    run_cmd.add_argument("--json", metavar="DIR", default=None,
                         help="also export JSON files into DIR")
    run_cmd.add_argument("--jobs", metavar="N", type=int, default=None,
                         help="fan sweep grids across up to N worker "
                              "processes (default: in-process)")
    run_cmd.add_argument("--telemetry", metavar="FILE", default=None,
                         help="record metrics/spans/manifests for the whole "
                              "invocation as JSON lines into FILE")
    run_cmd.add_argument("--trace", metavar="FILE", default=None,
                         help="export the invocation's span tree as Chrome "
                              "trace-event JSON into FILE (open in "
                              "chrome://tracing or Perfetto)")
    run_cmd.add_argument("--profile", action="store_true",
                         help="print the inclusive/exclusive hot-path table "
                              "after the run")

    bench_cmd = sub.add_parser(
        "bench", help="perf benchmarks: run + regression gate, diff, history")
    bench_sub = bench_cmd.add_subparsers(dest="bench_command", required=True)
    bench_run = bench_sub.add_parser(
        "run", help="time the built-in workloads and gate against history")
    bench_run.add_argument("names", nargs="*", metavar="NAME",
                           help="workload names (default: all)")
    bench_run.add_argument("--repeats", type=int, default=5, metavar="K",
                           help="timed repeats per workload (default 5)")
    bench_run.add_argument("--warmup", type=int, default=1, metavar="W",
                           help="untimed warmup calls per workload "
                                "(default 1)")
    bench_run.add_argument("--history", metavar="FILE",
                           default="BENCH_HISTORY.jsonl",
                           help="append-only history file "
                                "(default BENCH_HISTORY.jsonl)")
    bench_run.add_argument("--slowdown", type=float, default=1.0, metavar="X",
                           help="multiply measured samples by X — a "
                                "synthetic slowdown for exercising the "
                                "regression gate; the scaled records are "
                                "judged but not recorded (default 1.0)")
    bench_run.add_argument("--rel-floor", type=float, default=0.10,
                           metavar="F",
                           help="always-tolerated relative band above the "
                                "baseline min (default 0.10)")
    bench_run.add_argument("--iqr-mult", type=float, default=2.0, metavar="M",
                           help="tolerated IQRs above the worst historical "
                                "q3 (default 2.0)")
    bench_diff = bench_sub.add_parser(
        "diff", help="re-judge the latest recorded run against history")
    bench_diff.add_argument("--history", metavar="FILE",
                            default="BENCH_HISTORY.jsonl",
                            help="history file (default BENCH_HISTORY.jsonl)")
    bench_diff.add_argument("--rel-floor", type=float, default=0.10,
                            metavar="F", help="see bench run --rel-floor")
    bench_diff.add_argument("--iqr-mult", type=float, default=2.0,
                            metavar="M", help="see bench run --iqr-mult")
    bench_history = bench_sub.add_parser(
        "history", help="list recorded bench runs")
    bench_history.add_argument("name", nargs="?", default=None,
                               metavar="NAME",
                               help="show one workload only")
    bench_history.add_argument("--history", metavar="FILE",
                               default="BENCH_HISTORY.jsonl",
                               help="history file "
                                    "(default BENCH_HISTORY.jsonl)")
    bench_history.add_argument("--tail", type=int, default=10, metavar="K",
                               help="records to print (default 10)")

    design_cmd = sub.add_parser("design",
                                help="design a super-symbol for a dimming level")
    design_cmd.add_argument("dimming", type=float,
                            help="required dimming level in (0, 1)")

    journal_cmd = sub.add_parser(
        "journal", help="trace a multicell run's event journal")
    journal_cmd.add_argument("--grid", default="2x2", metavar="RxC",
                             help="luminaire grid, e.g. 2x3 (default 2x2)")
    journal_cmd.add_argument("--nodes", type=int, default=4, metavar="N",
                             help="mobile receivers (default 4)")
    journal_cmd.add_argument("--duration", type=float, default=30.0,
                             metavar="S", help="simulated seconds (default 30)")
    journal_cmd.add_argument("--regions", type=int, default=1, metavar="R",
                             help="spatial shards for the DES kernel "
                                  "(default 1: unsharded)")
    journal_cmd.add_argument("--seed", type=int, default=13,
                             help="scenario seed (default 13)")
    journal_cmd.add_argument("--tail", type=int, default=12, metavar="K",
                             help="journal entries to print (default 12)")
    journal_cmd.add_argument("--jsonl", metavar="FILE", default=None,
                             help="also export the full trace as JSON lines")

    chaos_cmd = sub.add_parser(
        "chaos", help="run a fault schedule against the supervised link")
    chaos_cmd.add_argument("--schedule", default="mixed", metavar="NAME",
                           help="shipped fault schedule name, or 'random' "
                                "(default mixed)")
    chaos_cmd.add_argument("--duration", type=float, default=40.0,
                           metavar="S", help="simulated seconds (default 40)")
    chaos_cmd.add_argument("--seed", type=int, default=13,
                           help="scenario seed (default 13)")
    chaos_cmd.add_argument("--intensity", type=float, default=0.6,
                           metavar="X",
                           help="fault intensity in [0, 1] for "
                                "--schedule random (default 0.6)")
    chaos_cmd.add_argument("--unsupervised", action="store_true",
                           help="run the no-supervision baseline instead")

    fuzz_cmd = sub.add_parser(
        "fuzz", help="differential fuzzing: campaigns, replay, corpus")
    fuzz_sub = fuzz_cmd.add_subparsers(dest="fuzz_command", required=True)
    fuzz_run = fuzz_sub.add_parser(
        "run", help="run a seeded, budgeted fuzz campaign")
    fuzz_run.add_argument("--budget", type=int, default=200, metavar="N",
                          help="cases to execute (default 200)")
    fuzz_run.add_argument("--seed", type=int, default=0,
                          help="campaign seed (default 0)")
    fuzz_run.add_argument("--jobs", type=int, default=None, metavar="N",
                          help="worker processes (default: in-process)")
    fuzz_run.add_argument("--oracles", default=None, metavar="CSV",
                          help="comma-separated oracle subset "
                               "(default: all, weighted)")
    fuzz_run.add_argument("--timeout", type=float, default=30.0,
                          metavar="S",
                          help="per-case deadline in seconds before a "
                               "case counts as hung (default 30)")
    fuzz_run.add_argument("--chunk", type=int, default=128, metavar="K",
                          help="cases per scheduling round (default 128)")
    fuzz_run.add_argument("--findings", metavar="FILE", default=None,
                          help="journal findings as JSON lines into FILE")
    fuzz_run.add_argument("--self-test", action="store_true",
                          help="inject a known synthetic defect and assert "
                               "the harness finds, shrinks, and replays it")
    fuzz_replay = fuzz_sub.add_parser(
        "replay", help="re-execute repro artifacts, check digests")
    fuzz_replay.add_argument("paths", nargs="*", metavar="FILE",
                             help="artifact files (default: the shipped "
                                  "corpus directory)")
    fuzz_corpus = fuzz_sub.add_parser(
        "corpus", help="list the regression corpus, or pin new entries")
    fuzz_corpus.add_argument("--dir", default=None, metavar="DIR",
                             help="corpus directory "
                                  "(default tests/fuzz/corpus)")
    fuzz_corpus.add_argument("--add", metavar="FINDINGS", default=None,
                             help="pin every finding in a findings JSONL "
                                  "journal as a new corpus artifact")

    scenario_cmd = sub.add_parser(
        "scenario", help="trace-driven scenarios: list, show, run")
    scenario_sub = scenario_cmd.add_subparsers(dest="scenario_command",
                                               required=True)
    scenario_sub.add_parser("list", help="list the shipped scenarios")
    scenario_show = scenario_sub.add_parser(
        "show", help="print one scenario as its JSON document")
    scenario_show.add_argument("name", metavar="NAME",
                               help="shipped scenario name")
    scenario_show.add_argument("--file", action="store_true",
                               help="treat NAME as a scenario JSON file "
                                    "path instead")
    scenario_run = scenario_sub.add_parser(
        "run", help="compile, run, and judge one scenario")
    scenario_run.add_argument("name", metavar="NAME",
                              help="shipped scenario name")
    scenario_run.add_argument("--file", action="store_true",
                              help="treat NAME as a scenario JSON file "
                                   "path instead")
    scenario_run.add_argument("--regions", type=int, default=1, metavar="R",
                              help="spatial shards for the DES kernel "
                                   "(default 1: unsharded)")
    scenario_run.add_argument("--report", metavar="FILE", default=None,
                              help="write the ScenarioReport (with its "
                                   "RunManifest) as JSON into FILE")

    serve_cmd = sub.add_parser(
        "serve", help="run the always-on adaptation control plane")
    serve_cmd.add_argument("--host", default="127.0.0.1",
                           help="bind address (default 127.0.0.1)")
    serve_cmd.add_argument("--port", type=int, default=0,
                           help="TCP port (default 0: ephemeral)")
    serve_cmd.add_argument("--coalesce-window", type=float, default=2.0,
                           metavar="MS",
                           help="adapt coalescing window in milliseconds; "
                                "0 disables batching (default 2.0)")
    serve_cmd.add_argument("--max-connections", type=int, default=1024,
                           metavar="N",
                           help="connection cap (default 1024)")
    serve_cmd.add_argument("--queue-limit", type=int, default=64, metavar="N",
                           help="per-connection in-flight adapt cap "
                                "(default 64)")
    serve_cmd.add_argument("--max-inflight", type=int, default=4096,
                           metavar="N",
                           help="global in-flight adapt cap (default 4096)")
    serve_cmd.add_argument("--drain-grace", type=float, default=5.0,
                           metavar="S",
                           help="seconds to let in-flight work finish on "
                                "SIGTERM (default 5)")
    serve_cmd.add_argument("--load", action="store_true",
                           help="run the seeded synthetic client fleet "
                                "against the daemon, print its report and "
                                "exit (nonzero if any connection dropped)")
    serve_cmd.add_argument("--clients", type=int, default=50, metavar="N",
                           help="fleet size for --load (default 50)")
    serve_cmd.add_argument("--requests", type=int, default=10, metavar="K",
                           help="requests per client for --load (default 10)")
    serve_cmd.add_argument("--seed", type=int, default=0,
                           help="fleet seed for --load (default 0)")
    serve_cmd.add_argument("--telemetry", metavar="FILE", default=None,
                           help="dump the server's metrics as telemetry "
                                "JSON lines into FILE at shutdown "
                                "(render with repro stats)")

    stats_cmd = sub.add_parser(
        "stats", help="render a telemetry JSONL dump")
    stats_cmd.add_argument("file", metavar="FILE",
                           help="JSONL file written by run --telemetry")
    stats_cmd.add_argument("--prometheus", action="store_true",
                           help="emit the metrics in Prometheus text "
                                "exposition format instead of aligned text")
    stats_cmd.add_argument("--profile", action="store_true",
                           help="print the hot-path table aggregated from "
                                "the recorded spans instead of aligned text")

    sub.add_parser("info", help="show the active configuration")
    return parser


def _fail(err, message: str) -> int:
    """The uniform bad-argument path: message on ``err``, exit code 2."""
    print(message, file=err)
    return 2


def _cmd_list(out) -> int:
    for experiment_id in experiment_ids():
        print(experiment_id, file=out)
    return 0


def _write_exports(result, experiment_id: str, csv_dir: str | None,
                   json_dir: str | None, out) -> None:
    """CSV/JSON exports plus the manifest sidecar for one result."""
    manifest = getattr(result, "manifest", None)
    target_dirs: list[str] = []
    for target_dir in (csv_dir, json_dir):
        if target_dir is not None and target_dir not in target_dirs:
            target_dirs.append(target_dir)
    if manifest is not None:
        for target_dir in target_dirs:
            path = write_manifest(
                manifest, Path(target_dir) / f"{experiment_id}.manifest.json")
            print(f"[manifest] {path}", file=out)
    if csv_dir is not None:
        target = Path(csv_dir)
        path = target / f"{experiment_id}.csv"
        if isinstance(result, FigureResult):
            write_figure_csv(result, path)
        else:
            write_table_csv(result, path)
        print(f"[csv] {path}", file=out)
    if json_dir is not None:
        path = write_json(result, Path(json_dir) / f"{experiment_id}.json")
        print(f"[json] {path}", file=out)


def _cmd_run(ids: Sequence[str], csv_dir: str | None, json_dir: str | None,
             out, err, jobs: int | None = None,
             telemetry: str | None = None, trace: str | None = None,
             profile: bool = False) -> int:
    requested = list(ids) or experiment_ids()
    unknown = sorted(set(requested) - set(experiment_ids()))
    if unknown:
        return _fail(err, f"unknown experiment ids: {unknown}")
    if jobs is not None and jobs < 1:
        return _fail(err, f"--jobs must be a positive integer, got {jobs}")
    for target_dir in (csv_dir, json_dir):
        if target_dir is not None:
            Path(target_dir).mkdir(parents=True, exist_ok=True)

    def run_all() -> None:
        for experiment_id in requested:
            result = run_experiment(experiment_id, jobs=jobs)
            print("=" * 72, file=out)
            print(result.render(), file=out)
            _write_exports(result, experiment_id, csv_dir, json_dir, out)

    if telemetry is None and trace is None and not profile:
        run_all()
        return 0
    with telemetry_session() as session:
        run_all()
    if telemetry is not None:
        path = write_telemetry_jsonl(session, telemetry)
        print(f"[telemetry] {path}", file=out)
    if trace is not None:
        path = write_chrome_trace(session, trace)
        print(f"[trace] {path}", file=out)
    if profile:
        print(ProfileSession.from_session(session).render(), file=out)
    return 0


def _bench_policy(rel_floor: float, iqr_mult: float, err):
    from .obs.bench import RegressionPolicy

    if rel_floor < 0 or iqr_mult < 0:
        return None, _fail(err, "--rel-floor and --iqr-mult cannot be "
                                "negative")
    return RegressionPolicy(rel_floor=rel_floor, iqr_mult=iqr_mult), 0


def _describe_record(record, baseline) -> str:
    """One aligned report line for a fresh bench record."""
    line = (f"  {record.name:<18} min {record.min_s * 1e3:>9.3f} ms  "
            f"median {record.median_s * 1e3:>9.3f} ms  "
            f"iqr {record.iqr_s * 1e3:>8.3f} ms")
    if baseline:
        base_min = min(r.min_s for r in baseline)
        if base_min > 0:
            delta = (record.median_s / base_min - 1.0) * 100.0
            line += f"  vs best {delta:+6.1f}%"
    return line


def _cmd_bench_run(names: Sequence[str], repeats: int, warmup: int,
                   history: str, slowdown: float, rel_floor: float,
                   iqr_mult: float, out, err) -> int:
    import os
    import time

    from .obs.bench import (BenchRunner, append_history, detect_regressions,
                            deterministic_timer, group_by_name, load_history)
    from .obs.workloads import bench_workloads

    if repeats < 1:
        return _fail(err, f"--repeats must be a positive integer, "
                          f"got {repeats}")
    if warmup < 0:
        return _fail(err, f"--warmup cannot be negative, got {warmup}")
    if slowdown <= 0:
        return _fail(err, f"--slowdown must be positive, got {slowdown}")
    policy, code = _bench_policy(rel_floor, iqr_mult, err)
    if policy is None:
        return code
    workloads = bench_workloads()
    requested = list(names) or list(workloads)
    unknown = sorted(set(requested) - set(workloads))
    if unknown:
        return _fail(err, f"unknown workloads: {unknown}; "
                          f"known: {sorted(workloads)}")
    try:
        prior = load_history(history)
    except ValueError as exc:
        return _fail(err, f"corrupt history file: {exc}")
    baseline = group_by_name(prior)
    # REPRO_BENCH_TIMER=fake swaps wall-clock timing for a
    # deterministic step clock, for tests that exercise the
    # run/record/gate plumbing rather than the host's performance.
    timer_mode = os.environ.get("REPRO_BENCH_TIMER", "wall") or "wall"
    if timer_mode == "fake":
        timer = deterministic_timer()
    elif timer_mode == "wall":
        timer = time.perf_counter
    else:
        return _fail(err, f"REPRO_BENCH_TIMER must be 'wall' or 'fake', "
                          f"got {timer_mode!r}")
    runner = BenchRunner(repeats=repeats, warmup=warmup, scale=slowdown,
                         timer=timer)
    print(f"bench run {runner.run_id}: {len(requested)} workloads, "
          f"{warmup} warmup + {repeats} repeats", file=out)
    for name in requested:
        record, _ = runner.run(name, workloads[name])
        print(_describe_record(record, baseline.get(name)), file=out)
    regressions = detect_regressions(runner.records, prior, policy)
    if slowdown == 1.0:
        path = append_history(runner.records, history)
        print(f"[history] {path} (+{len(runner.records)} records)", file=out)
    else:
        # Synthetic slowdowns exercise the gate; recording them would
        # poison the baseline's noise band.
        print(f"[history] not recorded (synthetic slowdown "
              f"{slowdown:g}x)", file=out)
    if not regressions:
        print("no regressions against recorded history", file=out)
        return 0
    for regression in regressions:
        print(regression.describe(), file=out)
    return 1


def _cmd_bench_diff(history: str, rel_floor: float, iqr_mult: float,
                    out, err) -> int:
    from .obs.bench import (detect_regressions, group_by_name, last_run,
                            load_history)

    policy, code = _bench_policy(rel_floor, iqr_mult, err)
    if policy is None:
        return code
    try:
        records = load_history(history)
    except ValueError as exc:
        return _fail(err, f"corrupt history file: {exc}")
    if not records:
        return _fail(err, f"no bench history at {history}")
    current, earlier = last_run(records)
    if not earlier:
        print(f"only one recorded run ({current[0].run_id}) — "
              f"nothing to diff against", file=out)
        return 0
    baseline = group_by_name(earlier)
    print(f"bench diff: run {current[0].run_id} vs "
          f"{len(earlier)} earlier records", file=out)
    for record in current:
        print(_describe_record(record, baseline.get(record.name)), file=out)
    regressions = detect_regressions(current, earlier, policy)
    if not regressions:
        print("no regressions against recorded history", file=out)
        return 0
    for regression in regressions:
        print(regression.describe(), file=out)
    return 1


def _cmd_bench_history(name: str | None, history: str, tail: int,
                       out, err) -> int:
    from .obs.bench import load_history

    if tail < 0:
        return _fail(err, f"--tail must be non-negative, got {tail}")
    try:
        records = load_history(history)
    except ValueError as exc:
        return _fail(err, f"corrupt history file: {exc}")
    if not records:
        return _fail(err, f"no bench history at {history}")
    if name is not None:
        records = [r for r in records if r.name == name]
        if not records:
            return _fail(err, f"no records for workload {name!r}")
    shown = records[-tail:] if tail else []
    print(f"bench history: {len(records)} records "
          f"({len({r.run_id for r in records})} runs), "
          f"showing {len(shown)}", file=out)
    for record in shown:
        print(f"  {record.run_id:<28} {record.name:<18} "
              f"min {record.min_s * 1e3:>9.3f} ms  "
              f"median {record.median_s * 1e3:>9.3f} ms  "
              f"iqr {record.iqr_s * 1e3:>8.3f} ms", file=out)
    return 0


def _cmd_design(dimming: float, out, err) -> int:
    config = SystemConfig()
    designer = AmppmDesigner(config)
    lo, hi = designer.supported_range
    if not lo <= dimming <= hi:
        return _fail(err, f"dimming {dimming} outside supported range "
                          f"[{lo:.3f}, {hi:.3f}]")
    design = designer.design(dimming)
    print(f"target dimming   : {dimming:.4f}", file=out)
    print(f"super-symbol     : {design.super_symbol}", file=out)
    print(f"achieved dimming : {design.achieved_dimming:.4f}", file=out)
    print(f"slots / bits     : {design.super_symbol.n_slots} / "
          f"{design.super_symbol.bits}", file=out)
    print(f"PHY data rate    : {design.data_rate(config) / 1e3:.1f} kbps",
          file=out)
    return 0


def _cmd_journal(grid: str, nodes: int, duration: float, seed: int,
                 regions: int, tail: int, jsonl: str | None, out, err) -> int:
    from .des import write_journal_jsonl
    from .net.multicell import default_network

    try:
        rows_str, _, cols_str = grid.lower().partition("x")
        rows, cols = int(rows_str), int(cols_str)
    except ValueError:
        return _fail(err, f"--grid expects RxC (e.g. 2x3), got {grid!r}")
    if rows < 1 or cols < 1 or nodes < 1 or duration <= 0:
        return _fail(err, "grid dimensions and --nodes must be positive, "
                          "--duration > 0")
    if tail < 0:
        return _fail(err, f"--tail must be non-negative, got {tail}")
    if regions < 1 or regions > rows * cols:
        return _fail(err, f"--regions must lie in [1, {rows * cols}] for a "
                          f"{rows}x{cols} grid, got {regions}")
    simulation = default_network(rows=rows, cols=cols, n_nodes=nodes,
                                 seed=seed, regions=regions)
    result = simulation.run(duration)
    shards = (f", {regions} regions ({len(result.shards)} shards)"
              if regions > 1 else "")
    print(f"multicell {rows}x{cols}, {nodes} nodes, {duration:g} s, "
          f"seed {seed}{shards}", file=out)
    print(f"  aggregate goodput : "
          f"{result.aggregate_throughput_bps / 1e3:.1f} Kbps", file=out)
    print(f"  handovers         : {result.total_handovers}", file=out)
    print(f"  adjustments       : {result.total_adjustments}", file=out)
    print(f"  journal digest    : {result.journal.digest()[:16]}", file=out)
    print(result.journal.render(n_tail=tail), file=out)
    if jsonl is not None:
        path = write_journal_jsonl(result.journal, jsonl)
        print(f"[jsonl] {path}", file=out)
    return 0


def _cmd_chaos(schedule: str, duration: float, seed: int, intensity: float,
               unsupervised: bool, out, err) -> int:
    from .resilience import ChaosScenario, FaultSchedule, shipped_schedules

    if duration <= 0:
        return _fail(err, "--duration must be positive")
    if schedule == "random":
        if not 0.0 <= intensity <= 1.0:
            return _fail(err,
                         f"--intensity must lie in [0, 1], got {intensity}")
        plan = FaultSchedule.random(seed, duration, intensity)
    else:
        shipped = shipped_schedules(duration)
        if schedule not in shipped:
            known = sorted(shipped) + ["random"]
            return _fail(err, f"unknown schedule {schedule!r}; known: {known}")
        plan = shipped[schedule]
    scenario = ChaosScenario(schedule=plan, duration_s=duration, seed=seed,
                             supervised=not unsupervised)
    result = scenario.run()
    print(f"chaos schedule {schedule!r}, seed {seed}, "
          f"{len(plan)} faults", file=out)
    print(result.report.render(), file=out)
    return 0


def _cmd_fuzz_run(budget: int, seed: int, jobs: int | None,
                  oracles: str | None, timeout: float, chunk: int,
                  findings: str | None, selftest: bool, out, err) -> int:
    from .fuzz import CampaignConfig, run_campaign, self_test
    from .fuzz.generators import DEFAULT_WEIGHTS

    if jobs is not None and jobs < 1:
        return _fail(err, f"--jobs must be a positive integer, got {jobs}")
    if selftest:
        report = self_test(jobs=jobs,
                           progress=lambda line: print(f"  {line}",
                                                       file=out))
        print(f"self-test: {'PASS' if report.passed else 'FAIL'} — "
              f"{report.detail}", file=out)
        if not report.found:
            print("  the injected defect went undetected", file=out)
        elif not report.shrunk_minimal:
            print(f"  shrinking missed the minimal trigger "
                  f"(got {report.minimal_params})", file=out)
        elif not report.replay_identical:
            print("  replay of the minimal repro was not bit-identical",
                  file=out)
        return 0 if report.passed else 1
    names = (tuple(part.strip() for part in oracles.split(",") if
                   part.strip()) if oracles is not None
             else tuple(DEFAULT_WEIGHTS))
    try:
        config = CampaignConfig(seed=seed, budget=budget, jobs=jobs,
                                oracles=names, timeout_s=timeout,
                                chunk=chunk, findings_path=findings)
    except ValueError as exc:
        return _fail(err, str(exc))
    print(f"fuzz campaign: seed {seed}, budget {budget}, "
          f"oracles {','.join(names)}"
          + (f", {jobs} jobs" if jobs else ""), file=out)
    report = run_campaign(config,
                          progress=lambda line: print(f"  {line}", file=out))
    mix = ", ".join(f"{oracle}:{count}"
                    for oracle, count in sorted(report.by_oracle.items()))
    print(f"executed {report.executed} cases in {report.elapsed_s:.1f} s "
          f"({report.execs_per_s:.0f}/s) — {mix}", file=out)
    print(f"campaign digest: {report.digest}", file=out)
    if report.clean:
        print("no findings", file=out)
        return 0
    print(f"{len(report.findings)} findings:", file=out)
    for finding in report.findings:
        steps = finding.shrunk.steps if finding.shrunk else 0
        print(f"  [{finding.status}] case {finding.case.index} "
              f"({finding.case.oracle}): {finding.detail}", file=out)
        print(f"    minimal repro ({steps} shrink steps): "
              f"{finding.minimal_params}", file=out)
    if findings:
        print(f"[findings] {findings}", file=out)
    return 1


def _cmd_fuzz_replay(paths: Sequence[str], out, err) -> int:
    from .fuzz import DEFAULT_CORPUS_DIR, replay_artifact, replay_corpus

    try:
        if paths:
            outcomes = []
            for raw in paths:
                path = Path(raw)
                if path.is_dir():
                    outcomes.extend(replay_corpus(path))
                elif path.is_file():
                    outcomes.append(replay_artifact(path))
                else:
                    return _fail(err, f"no such artifact: {path}")
        else:
            directory = DEFAULT_CORPUS_DIR
            if not directory.is_dir():
                return _fail(err, f"no corpus directory at {directory} "
                                  f"(run from the repo root, or pass "
                                  f"artifact paths)")
            outcomes = replay_corpus(directory)
    except ValueError as exc:
        return _fail(err, str(exc))
    if not outcomes:
        return _fail(err, "nothing to replay")
    drift = [outcome for outcome in outcomes if not outcome.matched]
    for outcome in outcomes:
        print(outcome.describe(), file=out)
    print(f"replayed {len(outcomes)} artifacts, "
          f"{len(drift)} drifted", file=out)
    return 1 if drift else 0


def _cmd_fuzz_corpus(directory: str | None, add: str | None,
                     out, err) -> int:
    import json as json_module

    from .fuzz import (DEFAULT_CORPUS_DIR, iter_corpus, load_artifact,
                       pin_artifact, write_artifact)

    corpus_dir = Path(directory) if directory else DEFAULT_CORPUS_DIR
    if add is not None:
        journal = Path(add)
        if not journal.is_file():
            return _fail(err, f"no findings journal at {journal}")
        added = 0
        for line in journal.read_text(encoding="utf-8").splitlines():
            if not line.strip():
                continue
            try:
                record = json_module.loads(line)
                oracle = record["case"]["oracle"]
                shrunk = record.get("shrunk") or {}
                params = shrunk.get("params") or record["case"]["params"]
                detail = str(record.get("detail", ""))
            except (json_module.JSONDecodeError, KeyError, TypeError) as exc:
                return _fail(err, f"malformed findings journal line: {exc}")
            artifact = pin_artifact(str(oracle), params, note=detail)
            name = f"{artifact.oracle}-{artifact.expect_digest[:12]}.json"
            write_artifact(corpus_dir / name, artifact)
            print(f"pinned {name} (status {artifact.expect_status})",
                  file=out)
            added += 1
        print(f"added {added} artifacts to {corpus_dir}", file=out)
        return 0
    if not corpus_dir.is_dir():
        return _fail(err, f"no corpus directory at {corpus_dir}")
    count = 0
    for path in iter_corpus(corpus_dir):
        try:
            artifact = load_artifact(path)
        except ValueError as exc:
            return _fail(err, str(exc))
        note = f" — {artifact.note}" if artifact.note else ""
        print(f"  {artifact.oracle:<9} {path.name}  "
              f"expect {artifact.expect_status}/"
              f"{artifact.expect_digest[:12]}{note}", file=out)
        count += 1
    print(f"{count} artifacts in {corpus_dir}", file=out)
    return 0


def _load_cli_scenario(name: str, from_file: bool, err):
    """Resolve a CLI scenario argument to a Scenario, or an exit code."""
    from .scenarios import load_scenario, shipped_scenarios

    if from_file:
        path = Path(name)
        if not path.is_file():
            return None, _fail(err, f"no such scenario file: {path}")
        try:
            return load_scenario(path), 0
        except (ValueError, KeyError, TypeError) as exc:
            return None, _fail(err, f"invalid scenario file {path}: {exc}")
    shipped = shipped_scenarios()
    if name not in shipped:
        return None, _fail(err, f"unknown scenario {name!r}; known: "
                                f"{sorted(shipped)} (or pass --file)")
    return shipped[name], 0


def _cmd_scenario_list(out) -> int:
    from .scenarios import shipped_scenarios

    for name, scenario in shipped_scenarios().items():
        chaos = (f", chaos {scenario.chaos.schedule}"
                 if scenario.chaos is not None else "")
        print(f"  {name:<24} {len(scenario.rooms)} room(s), "
              f"{scenario.n_luminaires} luminaires, "
              f"{scenario.population} occupants, "
              f"{scenario.duration_s:g} s{chaos}", file=out)
        print(f"    {scenario.description}", file=out)
    return 0


def _cmd_scenario_show(name: str, from_file: bool, out, err) -> int:
    scenario, code = _load_cli_scenario(name, from_file, err)
    if scenario is None:
        return code
    print(scenario.to_json(), file=out)
    return 0


def _cmd_scenario_run(name: str, from_file: bool, regions: int,
                      report_path: str | None, out, err) -> int:
    import json as json_module

    from .scenarios import ScenarioRunner

    scenario, code = _load_cli_scenario(name, from_file, err)
    if scenario is None:
        return code
    if regions < 1 or regions > scenario.n_luminaires:
        return _fail(err, f"--regions must lie in "
                          f"[1, {scenario.n_luminaires}] for scenario "
                          f"{scenario.name!r}, got {regions}")
    run = ScenarioRunner(scenario, regions=regions).run()
    print(run.report.render(), file=out)
    if report_path is not None:
        payload = run.report.as_dict()
        payload["manifest"] = run.manifest.as_dict()
        path = Path(report_path)
        path.write_text(json_module.dumps(payload, indent=2,
                                          sort_keys=True) + "\n")
        print(f"[report] {path}", file=out)
    return 0 if run.report.passed else 1


def _cmd_serve(host: str, port: int, coalesce_window_ms: float,
               max_connections: int, queue_limit: int, max_inflight: int,
               drain_grace: float, load: bool, clients: int, requests: int,
               seed: int, telemetry: str | None, out, err) -> int:
    import asyncio

    from .serve import ControlPlane, LoadProfile, ServeConfig, run_loadgen
    from .serve.server import run_daemon

    if coalesce_window_ms < 0:
        return _fail(err, f"--coalesce-window cannot be negative, "
                          f"got {coalesce_window_ms}")
    try:
        serve_config = ServeConfig(
            host=host, port=port, max_connections=max_connections,
            queue_limit=queue_limit, max_inflight=max_inflight,
            coalesce_window_s=coalesce_window_ms * 1e-3,
            drain_grace_s=drain_grace)
        profile = (LoadProfile(clients=clients, requests_per_client=requests,
                               seed=seed) if load else None)
    except ValueError as exc:
        return _fail(err, str(exc))

    async def serve_and_load(registry) -> tuple[int, "ControlPlane"]:
        plane = ControlPlane(serve_config, registry=registry)
        await plane.start()
        print(f"repro serve: listening on {plane.host}:{plane.port} "
              f"(--load fleet: {profile.clients} clients x "
              f"{profile.requests_per_client} requests)", file=out, flush=True)
        try:
            report = await run_loadgen(plane.host, plane.port, profile)
        finally:
            await plane.stop()
        print(report.render(), file=out)
        return (0 if report.dropped_connections == 0 else 1), plane

    with telemetry_session() as session:
        try:
            if load:
                code, plane = asyncio.run(serve_and_load(session.registry))
            else:
                plane = asyncio.run(run_daemon(
                    serve_config, registry=session.registry, out=out))
                code = 0
        except OSError as exc:
            return _fail(err, f"cannot serve on {host}:{port}: {exc}")
        coalescer = plane.coalescer
        print(f"serve: {coalescer.requests} adapt requests, "
              f"{coalescer.designer_calls} designer calls "
              f"(coalesce ratio {coalescer.coalesce_ratio:.2f}), "
              f"{plane.shed_count} shed", file=out)
    if telemetry is not None:
        path = write_telemetry_jsonl(session, telemetry)
        print(f"[telemetry] {path}", file=out)
    return code


def _cmd_stats(file: str, prometheus: bool, profile: bool, out, err) -> int:
    path = Path(file)
    if not path.is_file():
        return _fail(err, f"no such telemetry file: {path}")
    try:
        session = read_telemetry_jsonl(path)
    except ValueError as exc:
        return _fail(err, f"not a telemetry JSONL file: {exc}")
    if prometheus:
        out.write(render_prometheus(session.registry))
    elif profile:
        print(ProfileSession.from_session(session).render(), file=out)
    else:
        print(render_text(session), file=out)
    return 0


def _cmd_info(out) -> int:
    config = SystemConfig()
    print("SmartVLC reproduction — active configuration", file=out)
    print(f"  t_slot        : {config.t_slot * 1e6:.1f} us "
          f"(f_tx {config.f_tx / 1e3:.0f} kHz)", file=out)
    print(f"  f_flicker     : {config.f_flicker:.0f} Hz "
          f"(N_max {config.n_max_super} slots)", file=out)
    print(f"  P1 / P2       : {config.p_off_error:g} / "
          f"{config.p_on_error:g}", file=out)
    print(f"  SER bound     : {config.ser_bound:g}", file=out)
    print(f"  N range       : {config.n_min}..{config.n_cap}", file=out)
    print(f"  tau_perceived : {config.tau_perceived:g}", file=out)
    print(f"  payload       : {config.payload_bytes} bytes", file=out)
    designer = AmppmDesigner(config)
    lo, hi = designer.supported_range
    print(f"  candidates    : {len(designer.candidates)} patterns, "
          f"dimming {lo:.3f}..{hi:.3f}", file=out)
    return 0


def main(argv: Sequence[str] | None = None, out=None, err=None) -> int:
    """Entry point; returns a process exit code.

    ``out`` carries results, ``err`` carries error messages (defaults:
    ``sys.stdout`` / ``sys.stderr``); bad arguments return exit code 2.
    """
    out = out if out is not None else sys.stdout
    err = err if err is not None else sys.stderr
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list(out)
    if args.command == "run":
        return _cmd_run(args.ids, args.csv, args.json, out, err,
                        jobs=args.jobs, telemetry=args.telemetry,
                        trace=args.trace, profile=args.profile)
    if args.command == "bench":
        if args.bench_command == "run":
            return _cmd_bench_run(args.names, args.repeats, args.warmup,
                                  args.history, args.slowdown,
                                  args.rel_floor, args.iqr_mult, out, err)
        if args.bench_command == "diff":
            return _cmd_bench_diff(args.history, args.rel_floor,
                                   args.iqr_mult, out, err)
        if args.bench_command == "history":
            return _cmd_bench_history(args.name, args.history, args.tail,
                                      out, err)
        raise AssertionError(
            f"unhandled bench command {args.bench_command!r}")
    if args.command == "design":
        return _cmd_design(args.dimming, out, err)
    if args.command == "journal":
        return _cmd_journal(args.grid, args.nodes, args.duration, args.seed,
                            args.regions, args.tail, args.jsonl, out, err)
    if args.command == "chaos":
        return _cmd_chaos(args.schedule, args.duration, args.seed,
                          args.intensity, args.unsupervised, out, err)
    if args.command == "fuzz":
        if args.fuzz_command == "run":
            return _cmd_fuzz_run(args.budget, args.seed, args.jobs,
                                 args.oracles, args.timeout, args.chunk,
                                 args.findings, args.self_test, out, err)
        if args.fuzz_command == "replay":
            return _cmd_fuzz_replay(args.paths, out, err)
        if args.fuzz_command == "corpus":
            return _cmd_fuzz_corpus(args.dir, args.add, out, err)
        raise AssertionError(f"unhandled fuzz command {args.fuzz_command!r}")
    if args.command == "scenario":
        if args.scenario_command == "list":
            return _cmd_scenario_list(out)
        if args.scenario_command == "show":
            return _cmd_scenario_show(args.name, args.file, out, err)
        if args.scenario_command == "run":
            return _cmd_scenario_run(args.name, args.file, args.regions,
                                     args.report, out, err)
        raise AssertionError(
            f"unhandled scenario command {args.scenario_command!r}")
    if args.command == "serve":
        return _cmd_serve(args.host, args.port, args.coalesce_window,
                          args.max_connections, args.queue_limit,
                          args.max_inflight, args.drain_grace, args.load,
                          args.clients, args.requests, args.seed,
                          args.telemetry, out, err)
    if args.command == "stats":
        return _cmd_stats(args.file, args.prometheus, args.profile, out, err)
    if args.command == "info":
        return _cmd_info(out)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
