"""SmartVLC (CoNEXT 2017) reproduction.

A from-scratch Python implementation of AMPPM — adaptive multiple pulse
position modulation for joint smart lighting and visible light
communication — together with the baselines, PHY substrate, link layer,
smart-lighting controller and every experiment of the paper's
evaluation.

Quickstart::

    from repro import AmppmScheme, SystemConfig

    scheme = AmppmScheme(SystemConfig())
    design = scheme.design(0.35)
    slots = design.encode_payload([1, 0, 1, 1, 0, 0, 1, 0])
"""

from .core import (
    DEFAULT_CONFIG,
    AmppmDesign,
    AmppmDesigner,
    SlotErrorModel,
    SuperSymbol,
    SymbolPattern,
    SystemConfig,
)
from .schemes import (
    AmppmScheme,
    Mppm,
    OokCt,
    Oppm,
    Vppm,
    standard_schemes,
)

__version__ = "1.0.0"

__all__ = [
    "AmppmDesign",
    "AmppmDesigner",
    "AmppmScheme",
    "DEFAULT_CONFIG",
    "Mppm",
    "OokCt",
    "Oppm",
    "SlotErrorModel",
    "SuperSymbol",
    "SymbolPattern",
    "SystemConfig",
    "Vppm",
    "standard_schemes",
    "__version__",
]
