"""Multi-receiver deployments: feedback plane and room simulation."""

from .feedback import Aggregation, AmbientReport, FeedbackCollector
from .room import (
    NodeSample,
    ReceiverPlacement,
    RoomSample,
    RoomSimulation,
)

__all__ = [
    "Aggregation",
    "AmbientReport",
    "FeedbackCollector",
    "NodeSample",
    "ReceiverPlacement",
    "RoomSample",
    "RoomSimulation",
]
