"""Multi-receiver deployments: feedback plane, rooms, and the
multi-luminaire network (mobility, handover, interference) on the
discrete-event kernel."""

from .feedback import Aggregation, AmbientReport, FeedbackCollector
from .interference import (
    Interferer,
    effective_slot_errors,
    interference_sigma,
    sinr,
)
from .mobility import (
    LinearTrace,
    MobilityModel,
    RandomWaypoint,
    StaticPosition,
)
from .multicell import (
    AmbientField,
    CellReport,
    FaultPlan,
    Luminaire,
    MobileNode,
    MulticellResult,
    MulticellSimulation,
    NodeReport,
    default_network,
    luminaire_grid,
    strongest_cell,
)
from .room import (
    NodeSample,
    ReceiverPlacement,
    RoomSample,
    RoomSimulation,
)
from .sharded import merge_journals
from .spatial import LuminaireIndex

__all__ = [
    "Aggregation",
    "AmbientField",
    "AmbientReport",
    "CellReport",
    "FaultPlan",
    "FeedbackCollector",
    "Interferer",
    "LinearTrace",
    "Luminaire",
    "LuminaireIndex",
    "MobileNode",
    "MobilityModel",
    "MulticellResult",
    "MulticellSimulation",
    "NodeReport",
    "NodeSample",
    "RandomWaypoint",
    "ReceiverPlacement",
    "RoomSample",
    "RoomSimulation",
    "StaticPosition",
    "default_network",
    "effective_slot_errors",
    "interference_sigma",
    "luminaire_grid",
    "merge_journals",
    "sinr",
    "strongest_cell",
]
