"""Conservative-lookahead sharded execution of the multicell network.

City-scale fleets (thousands of luminaires) outgrow a single event
heap: every event funnels through one queue and every link evaluation
walks one global cell table.  This module partitions a
:class:`~repro.net.multicell.MulticellSimulation` into spatial regions,
each with its **own** :class:`~repro.des.EventScheduler`, journal
shard, and (for ``regions > 1``) RNG stream, and advances them in
bounded-lookahead rounds:

* within a round ``[k·L, (k+1)·L)`` every region dispatches its local
  events independently — optical propagation is hard-limited to the
  cull radius of :class:`~repro.net.spatial.LuminaireIndex`, so the
  only inter-region coupling is luminaires near a boundary and the
  Wi-Fi uplink;
* at each round edge the regions exchange boundary state: ambient
  reports addressed to cells in other regions (the handover-candidate
  traffic), and fresh LED/design snapshots from which cross-region
  interference is folded into each link as a pre-summed variance via
  the vectorized :func:`~repro.sim.batch.lambertian_gains`.

The default lookahead is one sense tick — remote state a region
observes is then at most one tick stale, the same bound the unsharded
network already tolerates through its reporting latency and
``staleness_s`` fusion window.

**Degeneracy contract:** with ``regions=1`` there is a single region
holding everything — no outbox, no snapshots consulted, the same
single RNG stream — and the merged journal is bit-identical to the
unsharded kernel's (``tests/net/test_sharded.py`` pins the digests).
With ``regions > 1`` runs are deterministic per seed but journals are
a different (sharded) interleaving; only aggregate behaviour is
comparable to the unsharded run.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

import numpy as np

from ..des import EventJournal, EventScheduler
from ..des.journal import JournalEntry
from ..obs import metrics, span
from ..resilience.faults import FaultPlan
from ..sim.batch import lambertian_gains
from .feedback import AmbientReport
from .multicell import MulticellResult, _LocalView, _NodeState, _TickSample

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .multicell import MulticellSimulation


def merge_journals(shards: list[EventJournal] | tuple[EventJournal, ...]
                   ) -> EventJournal:
    """Merge journal shards into one globally ordered trace.

    Entries sort by ``(time, shard index, shard seq)`` and are
    re-sequenced.  Within a shard, record times are non-decreasing in
    sequence order (every consumer stamps the dispatch clock), so a
    single shard merges to *itself* — sequence numbers included —
    which is what makes the ``regions=1`` digest-parity guarantee
    hold through this function rather than around it.
    """
    tagged = [(entry.time, idx, entry.seq, entry)
              for idx, shard in enumerate(shards)
              for entry in shard.entries]
    tagged.sort(key=lambda item: (item[0], item[1], item[2]))
    return EventJournal(entries=[
        JournalEntry(seq=i, time=entry.time, kind=entry.kind,
                     actor=entry.actor, detail=entry.detail)
        for i, (_time, _idx, _seq, entry) in enumerate(tagged)
    ])


class _RemoteCell:
    """Round-edge snapshot of another region's cell (led + design)."""

    __slots__ = ("luminaire", "led", "design")

    def __init__(self, luminaire, led, design):
        self.luminaire = luminaire
        self.led = led
        self.design = design


class _Region:
    """One spatial shard: its kernel, journal, cells, and home nodes."""

    __slots__ = ("idx", "scheduler", "journal", "rng", "cells", "states",
                 "outage", "outbox")

    def __init__(self, idx: int, scheduler: EventScheduler,
                 journal: EventJournal, rng: np.random.Generator,
                 cells: dict, states: dict):
        self.idx = idx
        self.scheduler = scheduler
        self.journal = journal
        self.rng = rng
        self.cells = cells
        self.states = states
        self.outage = False
        #: reports for other regions: (arrival, insertion order, cell, report)
        self.outbox: list = []


class _RegionView(_LocalView):
    """A region's window onto the whole network.

    Local cells resolve exactly; remote serving cells resolve to the
    latest round-edge snapshot; remote report submission goes through
    the outbox; remote interference comes back as one batched variance.
    """

    __slots__ = ("_run", "_region")

    def __init__(self, run: "_ShardedRun", region: _Region):
        super().__init__(region.scheduler, region.journal, region.rng,
                         region.cells)
        self._run = run
        self._region = region

    def serving_state(self, name: str):
        local = self.cells.get(name)
        return local if local is not None else self._run.snapshots[name]

    def submit(self, name: str, report: AmbientReport) -> None:
        if name in self.cells:
            self.cells[name].plane.submit(report, self.rng)
        else:
            self._run.submit_remote(self._region, name, report)

    def remote_variance(self, serving: str, sample: _TickSample) -> float:
        return self._run.remote_variance(self._region, serving, sample)


class _ShardedRun:
    """One sharded execution: partition, round loop, exchange, merge."""

    def __init__(self, sim: "MulticellSimulation", duration_s: float):
        self.sim = sim
        self.duration_s = duration_s
        self.lookahead = (sim.lookahead_s if sim.lookahead_s is not None
                          else sim.tick_s)
        # Regions are contiguous chunks of the position-sorted luminaire
        # list — spatial strips, deterministic in the scenario alone.
        ordered = sorted(sim.luminaires,
                         key=lambda lum: (lum.x_m, lum.y_m, lum.name))
        n, r = len(ordered), sim.regions
        chunks = [ordered[i * n // r:(i + 1) * n // r] for i in range(r)]
        self.owner = {lum.name: idx
                      for idx, chunk in enumerate(chunks)
                      for lum in chunk}
        for node in sim.nodes:
            node.mobility.reset()
        homes = {node.name: self.owner[sim.zone_of(
            node.mobility.position(0.0))] for node in sim.nodes}
        self.regions: list[_Region] = []
        for idx, chunk in enumerate(chunks):
            journal = EventJournal()
            scheduler = EventScheduler()
            rng = (np.random.default_rng(sim.seed) if r == 1
                   else np.random.default_rng((sim.seed, idx)))
            cells = sim._build_cells(scheduler, journal,
                                     names={lum.name for lum in chunk})
            states = {node.name: _NodeState(node=node)
                      for node in sim.nodes if homes[node.name] == idx}
            self.regions.append(_Region(idx, scheduler, journal, rng,
                                        cells, states))
        #: name -> _RemoteCell, refreshed at every round edge
        self.snapshots: dict[str, _RemoteCell] = {}

    def _install(self, region: _Region) -> None:
        """Faults and loops for one region, in the unsharded order."""
        sim = self.sim
        plan = FaultPlan(
            node_downtime=tuple(w for w in sim.faults.node_downtime
                                if w[0] in region.states),
            uplink_outages=sim.faults.uplink_outages)

        def on_outage(active: bool) -> None:
            region.outage = active

        sim._schedule_faults(region.scheduler, region.journal,
                             region.cells, region.states,
                             plan=plan, on_outage=on_outage)
        view = _RegionView(self, region)
        for node in sim.nodes:
            if node.name in region.states:
                region.scheduler.spawn(
                    sim._sense_loop_indexed(view, region.states[node.name]),
                    name=f"sense:{node.name}", priority=0)
        for cell in region.cells.values():
            region.scheduler.spawn(
                sim._control_loop(region.scheduler, region.journal, cell),
                name=f"control:{cell.name}", priority=1)
        for node in sim.nodes:
            if node.name in region.states:
                region.scheduler.spawn(
                    sim._link_loop_indexed(view, region.states[node.name]),
                    name=f"link:{node.name}", priority=2)

    def submit_remote(self, region: _Region, cell_name: str,
                      report: AmbientReport) -> None:
        """A report addressed to another region's cell.

        Mirrors :meth:`~repro.des.DesFeedbackPlane.submit` — outage and
        Wi-Fi loss are decided (and journaled) at the sender using the
        home region's clock and RNG — but a deliverable report parks in
        the outbox until the round edge instead of scheduling locally.
        """
        now = region.scheduler.now
        if region.outage:
            region.journal.record(now, "report-lost", report.node,
                                  reason="outage")
            return
        arrival = self.sim.uplink.deliver(now, region.rng)
        if arrival is None:
            region.journal.record(now, "report-lost", report.node,
                                  reason="wifi-loss")
            return
        region.outbox.append((arrival, len(region.outbox), cell_name, report))

    def remote_variance(self, region: _Region, serving: str,
                        sample: _TickSample) -> float:
        """Summed interference variance from other regions' luminaires.

        Only in-radius luminaires matter (beyond it the gain is exactly
        zero), and their duty cycles come from the round-edge
        snapshots.  The channel math runs through the vectorized batch
        engine: one NumPy pass per link evaluation instead of a Python
        loop per remote cell.
        """
        names = [lum.name for lum in sample.nearby
                 if lum.name not in region.cells and lum.name != serving]
        if not names:
            return 0.0
        channel = self.sim.channel
        gains = lambertian_gains(
            channel.optics,
            np.array([sample.offsets[name] for name in names]),
            self.sim.drop_m)
        swings = (channel.photodiode.responsivity_a_per_w
                  * channel.optics.tx_power_w * gains)
        duty = np.array([self.snapshots[name].led for name in names])
        return float(np.sum(duty * (1.0 - duty) * swings ** 2))

    def _exchange(self) -> None:
        """Round edge: refresh snapshots, deliver cross-region reports."""
        for region in self.regions:
            for name, cell in region.cells.items():
                self.snapshots[name] = _RemoteCell(cell.luminaire, cell.led,
                                                   cell.design)
        for region in self.regions:
            for arrival, _order, cell_name, report in sorted(
                    region.outbox, key=lambda item: (item[0], item[1])):
                target = self.regions[self.owner[cell_name]]
                cell = target.cells[cell_name]
                when = max(arrival, target.scheduler.now)

                def on_arrival(_event, cell=cell, report=report,
                               arrival=arrival) -> None:
                    cell.plane.collector.deliver(report, arrival)
                    cell.plane.journal.record(
                        arrival, "report-arrival", report.node,
                        value=report.value,
                        latency=arrival - report.sensed_at)

                target.scheduler.schedule_at(when, "report-arrival",
                                             on_arrival, actor=report.node)
            region.outbox.clear()

    def execute(self) -> MulticellResult:
        """Run the rounds, merge the shards, aggregate the result."""
        sim = self.sim
        until = self.duration_s + 1e-9
        for region in self.regions:
            self._install(region)
        rounds = 0
        with span("multicell.sharded", regions=len(self.regions),
                  lookahead_s=self.lookahead):
            self._exchange()  # initial snapshots (led=1, no design yet)
            while True:
                edge = min((rounds + 1) * self.lookahead, until)
                for region in self.regions:
                    with span("multicell.region", region=region.idx,
                              round=rounds):
                        region.scheduler.run(until_s=edge)
                self._exchange()
                rounds += 1
                if edge >= until:
                    break
        registry = metrics()
        registry.counter("repro_multicell_rounds_total",
                         help="conservative-lookahead rounds executed") \
            .inc(rounds)
        registry.gauge("repro_multicell_regions",
                       help="regions of the latest sharded run") \
            .set(float(len(self.regions)))
        shards = tuple(region.journal for region in self.regions)
        merged = merge_journals(shards)
        states = {node.name: self.regions[self._home(node.name)]
                  .states[node.name] for node in sim.nodes}
        cells = {lum.name: self.regions[self.owner[lum.name]]
                 .cells[lum.name] for lum in sim.luminaires}
        return sim._collect(self.duration_s, states, cells, merged,
                            shards=shards)

    def _home(self, node_name: str) -> int:
        for region in self.regions:
            if node_name in region.states:
                return region.idx
        raise KeyError(node_name)  # pragma: no cover (homing is total)


def run_sharded(sim: "MulticellSimulation",
                duration_s: float) -> MulticellResult:
    """Execute ``sim`` for ``duration_s`` seconds as regional shards."""
    if math.isinf(sim._index.radius) and sim.regions > 1:
        # With an uncullable field of view every luminaire interferes
        # with every receiver; sharding would only hide that coupling.
        raise ValueError("cannot shard: the receiver FoV makes every "
                         "luminaire globally visible (no finite cull radius)")
    return _ShardedRun(sim, duration_s).execute()
