"""Uniform-grid spatial index over the luminaire plane.

The all-pairs loops of the multicell simulator evaluate the Lambertian
channel from *every* luminaire to every receiver every tick — O(cells)
per query, which is what caps the fleet at a few thousand events per
second.  Physically almost all of those evaluations are exactly zero:
an upward-facing photodiode under a ``drop_m`` ceiling stops seeing a
luminaire the moment the incidence angle exceeds its field of view,
i.e. beyond the horizontal radius ``drop_m · tan(rx_fov)``.

:class:`LuminaireIndex` hashes luminaires into square buckets of that
radius so queries touch at most a 3×3 neighbourhood:

* :meth:`within` — the luminaires whose horizontal offset is inside
  the cull radius, **in original tuple order** (so downstream float
  sums accumulate in the same order as the all-pairs scan and stay
  bit-identical — culled luminaires would have contributed exactly
  ``0.0``).
* :meth:`nearest` — the exact nearest luminaire by ``(distance,
  name)``, identical to a brute-force scan, via an expanding bucket
  ring search.

With the default ``gain_floor = 0.0`` the cull radius is the exact
zero-gain boundary (inflated by one part in 10⁹ so an ulp of
``atan2``/``tan`` disagreement can never flip a boundary luminaire the
wrong way): indexed results are bit-identical to all-pairs results.  A
positive ``gain_floor`` shrinks the radius to where the gain falls
below the floor — a genuine approximation that trades journal-digest
stability for speed on dense fleets.
"""

from __future__ import annotations

import math
from typing import Sequence

from ..phy.optics import LinkGeometry, OpticalFrontEnd

#: Relative + absolute inflation applied to cull radii so float round
#: trips through tan/atan2 cannot exclude a luminaire whose gain is
#: nonzero (over-inclusion is always safe: the extra gain is 0.0).
_EPS = 1e-9


def _fov_radius(drop_m: float, optics: OpticalFrontEnd) -> float:
    """Horizontal offset beyond which the channel gain is exactly 0.

    :meth:`LinkGeometry.from_offsets` clamps the incidence angle at
    89°, so a field of view of 89° or more never rejects anything —
    the radius is infinite and culling is impossible.
    """
    if optics.rx_fov_deg >= 89.0:
        return math.inf
    radius = drop_m * math.tan(math.radians(optics.rx_fov_deg))
    return radius * (1.0 + _EPS) + _EPS


def _floor_radius(drop_m: float, optics: OpticalFrontEnd,
                  gain_floor: float) -> float:
    """Largest horizontal offset whose channel gain reaches the floor.

    The gain is monotone decreasing in the horizontal offset (distance
    grows and both cosine factors shrink), so plain bisection finds the
    crossing.  Only called with ``gain_floor > 0``.
    """

    def gain(h: float) -> float:
        return optics.channel_gain(LinkGeometry.from_offsets(h, drop_m))

    if gain(0.0) < gain_floor:
        return 0.0
    hi = max(drop_m, 1.0)
    while gain(hi) >= gain_floor:
        hi *= 2.0
        if hi > 1e9:  # pragma: no cover (floor below any reachable gain)
            return math.inf
    lo = 0.0
    for _ in range(100):
        mid = 0.5 * (lo + hi)
        if gain(mid) >= gain_floor:
            lo = mid
        else:
            hi = mid
    return hi * (1.0 + _EPS) + _EPS


class LuminaireIndex:
    """Bucketed luminaires for O(1)-neighbourhood channel queries.

    ``luminaires`` is any sequence of objects with ``name``, ``x_m``
    and ``y_m`` attributes (the :class:`~repro.net.multicell.Luminaire`
    shape); the original sequence order is what :meth:`within`
    preserves.
    """

    def __init__(self, luminaires: Sequence, drop_m: float,
                 optics: OpticalFrontEnd, gain_floor: float = 0.0):
        if not luminaires:
            raise ValueError("an index needs at least one luminaire")
        if drop_m <= 0:
            raise ValueError("drop_m must be positive")
        if gain_floor < 0:
            raise ValueError("gain_floor must be non-negative")
        self.luminaires = tuple(luminaires)
        self.radius = _fov_radius(drop_m, optics)
        if gain_floor > 0.0:
            self.radius = min(self.radius,
                              _floor_radius(drop_m, optics, gain_floor))
        if math.isfinite(self.radius) and self.radius > 0.0:
            self._size = self.radius
        else:
            # Degenerate radii (infinite FoV, or a floor above the
            # on-axis gain) still need finite buckets for nearest().
            span = max(
                max(lum.x_m for lum in self.luminaires)
                - min(lum.x_m for lum in self.luminaires),
                max(lum.y_m for lum in self.luminaires)
                - min(lum.y_m for lum in self.luminaires))
            self._size = max(span / max(1.0, math.sqrt(len(self.luminaires))),
                             1.0)
        self._buckets: dict[tuple[int, int], list[int]] = {}
        for i, lum in enumerate(self.luminaires):
            self._buckets.setdefault(self._key(lum.x_m, lum.y_m), []).append(i)
        keys = self._buckets.keys()
        self._kx = (min(k[0] for k in keys), max(k[0] for k in keys))
        self._ky = (min(k[1] for k in keys), max(k[1] for k in keys))

    def _key(self, x: float, y: float) -> tuple[int, int]:
        return (math.floor(x / self._size), math.floor(y / self._size))

    def within(self, position: tuple[float, float]) -> list:
        """Luminaires inside the cull radius, in original order.

        Everything outside has channel gain exactly ``0.0`` (when
        ``gain_floor == 0``), so callers may treat the result as the
        complete set of optically relevant luminaires.
        """
        if math.isinf(self.radius):
            return list(self.luminaires)
        x, y = position
        bx, by = self._key(x, y)
        indices: list[int] = []
        for iy in (by - 1, by, by + 1):
            for ix in (bx - 1, bx, bx + 1):
                bucket = self._buckets.get((ix, iy))
                if bucket:
                    indices.extend(bucket)
        indices.sort()
        return [self.luminaires[i] for i in indices
                if math.hypot(x - self.luminaires[i].x_m,
                              y - self.luminaires[i].y_m) <= self.radius]

    def nearest(self, position: tuple[float, float]):
        """The nearest luminaire by ``(distance, name)`` — exact.

        Buckets are scanned in expanding Chebyshev rings around the
        query's bucket; a luminaire in ring ``k`` is at least
        ``(k − 1)·size`` away, so the search stops as soon as that
        bound strictly exceeds the best distance found (ties must keep
        searching: a farther ring can hold an equal-distance luminaire
        with a smaller name).
        """
        x, y = position
        bx, by = self._key(x, y)
        max_ring = max(abs(bx - self._kx[0]), abs(bx - self._kx[1]),
                       abs(by - self._ky[0]), abs(by - self._ky[1]))
        best = None
        best_key = None
        for ring in range(max_ring + 1):
            if best_key is not None and (ring - 1) * self._size > best_key[0]:
                break
            for ix, iy in self._ring(bx, by, ring):
                for i in self._buckets.get((ix, iy), ()):
                    lum = self.luminaires[i]
                    key = (math.hypot(x - lum.x_m, y - lum.y_m), lum.name)
                    if best_key is None or key < best_key:
                        best, best_key = lum, key
        return best

    @staticmethod
    def _ring(bx: int, by: int, ring: int):
        """Bucket keys at exact Chebyshev distance ``ring`` from (bx, by)."""
        if ring == 0:
            yield (bx, by)
            return
        for ix in range(bx - ring, bx + ring + 1):
            yield (ix, by - ring)
            yield (ix, by + ring)
        for iy in range(by - ring + 1, by + ring):
            yield (bx - ring, iy)
            yield (bx + ring, iy)
