"""A smart-lit floor: a grid of SmartVLC luminaires, mobile receivers.

The paper's deployment story (Section 1, Fig. 2) is a building where
*every* ceiling luminaire is an AMPPM transmitter.  This module scales
the single-luminaire :class:`~repro.net.room.RoomSimulation` to that
story on top of the :mod:`repro.des` event kernel:

* each :class:`Luminaire` cell runs its own
  :class:`~repro.lighting.controller.SmartLightingController` and
  :class:`~repro.core.ampdesign.AmppmDesigner`, fed by its own Wi-Fi
  feedback plane;
* :class:`MobileNode` receivers follow :mod:`~repro.net.mobility`
  traces, associate with the strongest cell
  (:func:`strongest_cell`, hysteresis in dB so ties do not flap), and
  hand over as they move;
* co-channel interference from every other luminaire degrades the
  serving link through :mod:`~repro.net.interference`;
* faults (:class:`FaultPlan`) — receiver churn, uplink outages, and
  per-window blind ramps via :class:`AmbientField` zone overrides —
  are ordinary events on the same clock;
* everything is journaled: same-seed runs produce bit-identical
  :class:`~repro.des.EventJournal` traces.

Every tick interleaves, in deterministic priority order, node sensing
(+ association and Wi-Fi reporting), per-cell control (fusion →
lighting → AMPPM design), and per-node link measurement.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from ..core.ampdesign import AmppmDesigner
from ..core.params import SystemConfig
from ..des import DesFeedbackPlane, EventJournal, EventScheduler
from ..lighting.ambient import AmbientProfile, StaticAmbient
from ..lighting.controller import SmartLightingController
from ..link.wifi import WifiUplink
from ..phy.channel import VlcChannel, calibrated_channel
from ..phy.optics import LinkGeometry
from ..resilience.faults import FaultPlan, schedule_plan_events
from ..schemes import AmppmSchemeDesign
from ..sim.linkmodel import expected_goodput
from .feedback import Aggregation, AmbientReport, FeedbackCollector
from .interference import Interferer, effective_slot_errors
from .mobility import MobilityModel, RandomWaypoint, StaticPosition
from .spatial import LuminaireIndex


@dataclass(frozen=True)
class Luminaire:
    """One ceiling transmitter at a floor-plane position."""

    name: str
    x_m: float
    y_m: float


def luminaire_grid(rows: int, cols: int,
                   spacing_m: float = 2.5) -> tuple[Luminaire, ...]:
    """A regular ceiling grid, cell centres ``spacing_m`` apart.

    Luminaire ``cell-r<r>c<c>`` sits at ``((c + ½)·s, (r + ½)·s)``, so
    the served floor is ``cols·s`` by ``rows·s`` metres.
    """
    if rows < 1 or cols < 1:
        raise ValueError("grid needs at least one row and one column")
    if spacing_m <= 0:
        raise ValueError("spacing_m must be positive")
    return tuple(
        Luminaire(f"cell-r{r}c{c}",
                  (c + 0.5) * spacing_m, (r + 0.5) * spacing_m)
        for r in range(rows) for c in range(cols)
    )


@dataclass(frozen=True)
class MobileNode:
    """A receiver: a mobility trace plus its local daylight gain."""

    name: str
    mobility: MobilityModel
    daylight_gain: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.daylight_gain <= 1.5:
            raise ValueError("daylight_gain must lie in [0, 1.5]")


def strongest_cell(gains: Mapping[str, float], serving: str | None,
                   hysteresis_db: float = 0.0) -> str | None:
    """Strongest-cell association with hysteresis.

    Returns the cell to camp on given per-cell channel gains: the
    strongest cell (ties broken by name for determinism), except that a
    currently serving cell is kept until a challenger beats it by
    ``hysteresis_db`` decibels — the standard ping-pong suppression.
    Returns ``None`` when no cell has positive gain (out of coverage).
    """
    if hysteresis_db < 0:
        raise ValueError("hysteresis_db must be non-negative")
    covered = {name: gain for name, gain in gains.items() if gain > 0.0}
    if not covered:
        return None
    best = min(covered, key=lambda name: (-covered[name], name))
    if serving is None or serving not in covered:
        return best
    margin = 10.0 ** (hysteresis_db / 10.0)
    if covered[best] > covered[serving] * margin:
        return best
    return serving


@dataclass(frozen=True)
class AmbientField:
    """Spatially varying ambient light, zoned by nearest luminaire.

    ``zone_overrides`` maps luminaire names to their own profiles — a
    blind ramp on one window then only affects the cells (and the nodes
    standing in them) along that wall, which is the per-window fault
    injection of the multicell scenarios.
    """

    base: AmbientProfile = field(default_factory=lambda: StaticAmbient(0.4))
    zone_overrides: tuple[tuple[str, AmbientProfile], ...] = ()

    def profile_for(self, zone: str | None) -> AmbientProfile:
        """The profile governing a zone (the base when not overridden)."""
        for name, profile in self.zone_overrides:
            if name == zone:
                return profile
        return self.base

    def level(self, t: float, zone: str | None = None) -> float:
        """Normalized ambient level at time ``t`` in a zone."""
        return self.profile_for(zone).intensity(t)


@dataclass(frozen=True)
class NodeReport:
    """Per-node outcome of a multicell run."""

    name: str
    mean_goodput_bps: float
    handovers: int
    samples: int
    down_samples: int


@dataclass(frozen=True)
class CellReport:
    """Per-cell outcome of a multicell run."""

    name: str
    adjustments: int
    adaptation_rate_hz: float
    final_led: float


@dataclass(frozen=True)
class MulticellResult:
    """Aggregate metrics plus the full event journal of one run.

    ``journal`` is always the single, globally ordered trace; for a
    sharded run (``regions > 1``) it is the deterministic merge of the
    per-region ``shards``, which are also kept for inspection.
    """

    duration_s: float
    nodes: tuple[NodeReport, ...]
    cells: tuple[CellReport, ...]
    journal: EventJournal
    shards: tuple[EventJournal, ...] = ()

    @property
    def aggregate_throughput_bps(self) -> float:
        """Time-averaged sum of all nodes' goodputs."""
        return sum(n.mean_goodput_bps for n in self.nodes)

    @property
    def total_handovers(self) -> int:
        """Handovers summed over nodes."""
        return sum(n.handovers for n in self.nodes)

    @property
    def total_adjustments(self) -> int:
        """Flicker-free brightness adjustments summed over cells."""
        return sum(c.adjustments for c in self.cells)

    def node(self, name: str) -> NodeReport:
        """A node's report by name."""
        for report in self.nodes:
            if report.name == name:
                return report
        raise KeyError(name)

    def cell(self, name: str) -> CellReport:
        """A cell's report by name."""
        for report in self.cells:
            if report.name == name:
                return report
        raise KeyError(name)

    def metrics(self) -> dict[str, float]:
        """A flat metric dict (the determinism-comparison payload)."""
        return {
            "aggregate_throughput_bps": self.aggregate_throughput_bps,
            "total_handovers": float(self.total_handovers),
            "total_adjustments": float(self.total_adjustments),
            "reports_delivered": float(self.journal.count("report-arrival")),
            "reports_lost": float(self.journal.count("report-lost")),
        }


@dataclass
class _CellState:
    """Runtime state of one luminaire cell."""

    luminaire: Luminaire
    controller: SmartLightingController
    plane: DesFeedbackPlane
    design: AmppmSchemeDesign | None = None
    led: float = 1.0

    @property
    def name(self) -> str:
        """The cell's (= luminaire's) name."""
        return self.luminaire.name


@dataclass(frozen=True)
class _TickSample:
    """Everything position-dependent a node needs within one tick.

    Computed once per (node, tick) and shared by the sense and link
    loops — historically each recomputed the position, the zone scan
    and the local ambient independently.  All members are pure
    functions of ``(node, t)``: faults (which are not) dispatch at
    priority −1, strictly before any loop at the same instant, so
    nothing here can go stale within a tick.
    """

    position: tuple[float, float]
    zone: str
    ambient: float
    #: luminaires inside the cull radius, in original tuple order
    nearby: tuple
    offsets: dict[str, float]
    geometry: dict[str, LinkGeometry]
    gains: dict[str, float]


@dataclass
class _NodeState:
    """Runtime state of one mobile receiver."""

    node: MobileNode
    serving: str | None = None
    handovers: int = 0
    down: bool = False
    goodput_sum_bps: float = 0.0
    samples: int = 0
    down_samples: int = 0
    tick_t: float | None = None
    sample: _TickSample | None = None


class _LocalView:
    """What the per-node loops see of their (sub-)kernel.

    The unsharded simulator runs every loop against one of these; the
    sharded engine subclasses it per region to route remote serving
    cells, cross-region reports, and far interference through the
    round-edge exchange (:mod:`repro.net.sharded`).  Keeping the loop
    bodies identical across both is what makes the ``regions == 1``
    digest-parity guarantee checkable rather than aspirational.
    """

    __slots__ = ("scheduler", "journal", "rng", "cells")

    def __init__(self, scheduler: EventScheduler, journal: EventJournal,
                 rng: np.random.Generator, cells: dict[str, _CellState]):
        self.scheduler = scheduler
        self.journal = journal
        self.rng = rng
        self.cells = cells

    @property
    def now(self) -> float:
        """The kernel clock."""
        return self.scheduler.now

    def serving_state(self, name: str):
        """Led/design state of a serving cell (always local here)."""
        return self.cells[name]

    def submit(self, name: str, report: AmbientReport) -> None:
        """Send an ambient report to a cell's feedback plane."""
        self.cells[name].plane.submit(report, self.rng)

    def remote_variance(self, serving: str, sample: "_TickSample") -> float:
        """Interference variance from cells outside this view (amps²)."""
        return 0.0


@dataclass
class MulticellSimulation:
    """The discrete-event multi-luminaire network simulator.

    :meth:`run` builds all per-run state (cells, planes, scheduler,
    journal) from scratch, so running the same instance twice — or two
    equal instances — produces identical journals and metrics.
    """

    config: SystemConfig = field(default_factory=SystemConfig)
    luminaires: tuple[Luminaire, ...] = field(
        default_factory=lambda: luminaire_grid(2, 2))
    nodes: tuple[MobileNode, ...] = field(default_factory=lambda: (
        MobileNode("node-00", StaticPosition(1.25, 1.25)),
        MobileNode("node-01", StaticPosition(3.75, 3.75)),
    ))
    ambient: AmbientField = field(default_factory=AmbientField)
    channel: VlcChannel | None = None
    drop_m: float = 2.0
    target_sum: float = 1.0
    tick_s: float = 1.0
    hysteresis_db: float = 2.0
    uplink: WifiUplink = field(default_factory=WifiUplink)
    aggregation: Aggregation = Aggregation.MEAN
    staleness_s: float = 5.0
    faults: FaultPlan = field(default_factory=FaultPlan)
    seed: int = 13
    #: number of spatial sub-kernels; 1 = the classic single kernel
    regions: int = 1
    #: synchronization window of a sharded run (defaults to ``tick_s``)
    lookahead_s: float | None = None
    #: cull luminaires whose gain falls below this (0 = exact FoV cull)
    gain_floor: float = 0.0
    #: False preserves the pre-index all-pairs evaluation (the
    #: benchmark baseline); journals are bit-identical either way at
    #: ``gain_floor == 0``.
    use_spatial_index: bool = True

    def __post_init__(self) -> None:
        if not self.luminaires:
            raise ValueError("a network needs at least one luminaire")
        if not self.nodes:
            raise ValueError("a network needs at least one receiver")
        names = [lum.name for lum in self.luminaires]
        if len(set(names)) != len(names):
            raise ValueError("luminaire names must be unique")
        names = [node.name for node in self.nodes]
        if len(set(names)) != len(names):
            raise ValueError("node names must be unique")
        if self.drop_m <= 0:
            raise ValueError("drop_m must be positive")
        if self.tick_s <= 0:
            raise ValueError("tick_s must be positive")
        if self.hysteresis_db < 0:
            raise ValueError("hysteresis_db must be non-negative")
        if self.regions < 1:
            raise ValueError("regions must be positive")
        if self.regions > len(self.luminaires):
            raise ValueError("cannot have more regions than luminaires")
        if self.regions > 1 and not self.use_spatial_index:
            raise ValueError("sharded runs require the spatial index")
        if self.lookahead_s is not None and self.lookahead_s <= 0:
            raise ValueError("lookahead_s must be positive")
        if self.gain_floor < 0:
            raise ValueError("gain_floor must be non-negative")
        if self.channel is None:
            self.channel = calibrated_channel(self.config)
        known = {node.name for node in self.nodes}
        for name, _start, _end in self.faults.node_downtime:
            if name not in known:
                raise ValueError(f"downtime names unknown node {name!r}")
        self._index = (LuminaireIndex(self.luminaires, self.drop_m,
                                      self.channel.optics, self.gain_floor)
                       if self.use_spatial_index else None)

    # -- geometry helpers (shared with RoomSimulation) ------------------

    def geometry_to(self, luminaire: Luminaire,
                    position: tuple[float, float]) -> LinkGeometry:
        """Link geometry from a luminaire to a floor position."""
        horizontal = math.hypot(position[0] - luminaire.x_m,
                                position[1] - luminaire.y_m)
        return LinkGeometry.from_offsets(horizontal, self.drop_m)

    def gains_at(self, position: tuple[float, float]) -> dict[str, float]:
        """Per-cell Lambertian channel gain at a floor position.

        With the spatial index active, only luminaires inside the cull
        radius appear; everything omitted has gain exactly ``0.0``
        (when ``gain_floor == 0``), so consumers that filter positive
        gains — association does — see identical results either way.
        """
        if self._index is not None:
            return {
                lum.name: self.channel.optics.channel_gain(
                    self.geometry_to(lum, position))
                for lum in self._index.within(position)
            }
        return {
            lum.name: self.channel.optics.channel_gain(
                self.geometry_to(lum, position))
            for lum in self.luminaires
        }

    def zone_of(self, position: tuple[float, float]) -> str:
        """The ambient zone (nearest luminaire) of a floor position."""
        if self._index is not None:
            return self._index.nearest(position).name
        return min(
            self.luminaires,
            key=lambda lum: (math.hypot(position[0] - lum.x_m,
                                        position[1] - lum.y_m), lum.name),
        ).name

    # -- the run --------------------------------------------------------

    def run(self, duration_s: float) -> MulticellResult:
        """Simulate ``duration_s`` seconds and aggregate the outcome.

        With ``regions > 1`` the network executes as spatially sharded
        sub-kernels synchronized in conservative-lookahead rounds (see
        :mod:`repro.net.sharded`); at ``regions == 1`` the single
        kernel below runs everything, and a sharded run degenerates to
        a bit-identical journal.
        """
        if duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if self.regions > 1:
            from .sharded import run_sharded
            return run_sharded(self, duration_s)
        for node in self.nodes:
            node.mobility.reset()
        journal = EventJournal()
        scheduler = EventScheduler()
        rng = np.random.default_rng(self.seed)

        cells = self._build_cells(scheduler, journal)
        states = {node.name: _NodeState(node=node) for node in self.nodes}

        self._schedule_faults(scheduler, journal, cells, states)
        if self._index is not None:
            view = _LocalView(scheduler, journal, rng, cells)
            for node in self.nodes:
                scheduler.spawn(
                    self._sense_loop_indexed(view, states[node.name]),
                    name=f"sense:{node.name}", priority=0)
        else:
            for node in self.nodes:
                scheduler.spawn(self._sense_loop(scheduler, journal, rng,
                                                 cells, states[node.name]),
                                name=f"sense:{node.name}", priority=0)
        for cell in cells.values():
            scheduler.spawn(self._control_loop(scheduler, journal, cell),
                            name=f"control:{cell.name}", priority=1)
        if self._index is not None:
            for node in self.nodes:
                scheduler.spawn(
                    self._link_loop_indexed(view, states[node.name]),
                    name=f"link:{node.name}", priority=2)
        else:
            for node in self.nodes:
                scheduler.spawn(self._link_loop(scheduler, journal,
                                                cells, states[node.name]),
                                name=f"link:{node.name}", priority=2)

        scheduler.run(until_s=duration_s + 1e-9)
        return self._collect(duration_s, states, cells, journal)

    def _build_cells(self, scheduler: EventScheduler, journal: EventJournal,
                     names: set[str] | None = None) -> dict[str, _CellState]:
        """Per-cell runtime state, in luminaire order.

        ``names`` restricts to a region's cells (sharded runs).  On
        the indexed path all controllers :meth:`~AmppmDesigner.fork`
        one template :class:`AmppmDesigner`: candidate filtering and
        envelope construction are pure functions of the config, so
        sharing them removes the dominant O(cells) setup cost of large
        fleets, while the per-fork design memo keeps every cell
        bit-identical to one with a fully independent designer.  The
        all-pairs path keeps per-cell construction, matching the
        historical cost profile it exists to benchmark.
        """
        template = AmppmDesigner(self.config) if self._index is not None \
            else None
        cells: dict[str, _CellState] = {}
        for lum in self.luminaires:
            if names is not None and lum.name not in names:
                continue
            controller = SmartLightingController(
                target_sum=self.target_sum, config=self.config,
                designer=(template.fork() if template is not None
                          else AmppmDesigner(self.config)))
            collector = FeedbackCollector(
                uplink=self.uplink, aggregation=self.aggregation,
                staleness_s=self.staleness_s)
            cells[lum.name] = _CellState(
                luminaire=lum, controller=controller,
                plane=DesFeedbackPlane(scheduler, journal, collector),
                led=controller.led_intensity)
        return cells

    def _collect(self, duration_s: float, states: dict[str, _NodeState],
                 cells: dict[str, _CellState], journal: EventJournal,
                 shards: tuple[EventJournal, ...] = ()) -> MulticellResult:
        """Fold runtime state into the immutable result."""
        node_reports = tuple(
            NodeReport(
                name=name,
                mean_goodput_bps=(state.goodput_sum_bps / state.samples
                                  if state.samples else 0.0),
                handovers=state.handovers,
                samples=state.samples,
                down_samples=state.down_samples,
            )
            for name, state in states.items()
        )
        cell_reports = tuple(
            CellReport(
                name=name,
                adjustments=cell.controller.adjustments,
                adaptation_rate_hz=cell.controller.adjustments / duration_s,
                final_led=cell.led,
            )
            for name, cell in cells.items()
        )
        return MulticellResult(duration_s=duration_s, nodes=node_reports,
                               cells=cell_reports, journal=journal,
                               shards=shards)

    # -- processes ------------------------------------------------------

    def _schedule_faults(self, scheduler: EventScheduler,
                         journal: EventJournal,
                         cells: dict[str, _CellState],
                         states: dict[str, _NodeState],
                         plan: FaultPlan | None = None,
                         on_outage=None) -> None:
        """Turn the fault plan into down/up and outage events.

        Installation is delegated to the shared
        :func:`~repro.resilience.faults.schedule_plan_events`, which
        preserves the historical event order, priorities, and kinds —
        same-seed runs journal bit-identically to the pre-refactor
        simulator.  Sharded runs pass a ``plan`` filtered to the
        region's own nodes (outage windows are global and install in
        every region) plus an ``on_outage`` hook so the region can
        track the uplink state for its cross-region outbox.
        """

        def on_node_change(name: str, down: bool) -> None:
            state = states[name]
            state.down = down
            if down:
                state.serving = None  # rejoining re-associates fresh
            journal.record(scheduler.now,
                           "node-down" if down else "node-up",
                           state.node.name)

        def on_uplink_change(active: bool) -> None:
            for cell in cells.values():
                cell.plane.outage = active
            if on_outage is not None:
                on_outage(active)
            journal.record(scheduler.now,
                           "uplink-outage" if active
                           else "uplink-restored")

        schedule_plan_events(plan if plan is not None else self.faults,
                             scheduler,
                             on_node_change=on_node_change,
                             on_uplink_change=on_uplink_change)

    def _local_ambient(self, t: float, position: tuple[float, float],
                       node: MobileNode) -> float:
        """Daylight at a node: zone profile scaled by its window gain."""
        level = self.ambient.level(t, self.zone_of(position))
        return min(max(level * node.daylight_gain, 0.0), 1.0)

    def _sensed_state(self, now: float, state: _NodeState) -> _TickSample:
        """The node's per-tick sample, computed once per (node, tick).

        The sense loop (priority 0) populates it; the link loop
        (priority 2) at the same instant reuses it, eliminating the
        duplicate position/zone/ambient/geometry evaluation the two
        loops historically performed per tick.
        """
        if state.tick_t == now and state.sample is not None:
            return state.sample
        position = state.node.mobility.position(now)
        nearby = tuple(self._index.within(position))
        offsets = {
            lum.name: math.hypot(position[0] - lum.x_m,
                                 position[1] - lum.y_m)
            for lum in nearby
        }
        geometry = {
            name: LinkGeometry.from_offsets(offset, self.drop_m)
            for name, offset in offsets.items()
        }
        gains = {
            name: self.channel.optics.channel_gain(geom)
            for name, geom in geometry.items()
        }
        zone = self._index.nearest(position).name
        level = self.ambient.level(now, zone)
        ambient = min(max(level * state.node.daylight_gain, 0.0), 1.0)
        sample = _TickSample(position=position, zone=zone, ambient=ambient,
                            nearby=nearby, offsets=offsets,
                            geometry=geometry, gains=gains)
        state.tick_t = now
        state.sample = sample
        return sample

    def _sense_loop_indexed(self, view: "_LocalView", state: _NodeState):
        """Index-backed :meth:`_sense_loop`: same journal, one sample.

        Journals the exact entries of the all-pairs loop — the culled
        luminaires have gain exactly 0.0 and never influence
        association — while touching only the 3×3 bucket neighbourhood
        and trimming the mobility trace behind the clock.
        """
        while True:
            now = view.now
            if not state.down:
                sample = self._sensed_state(now, state)
                state.node.mobility.forget_before(now)
                target = strongest_cell(sample.gains, state.serving,
                                        self.hysteresis_db)
                if target != state.serving:
                    if state.serving is None:
                        view.journal.record(now, "associate",
                                            state.node.name, cell=target)
                    elif target is None:
                        view.journal.record(now, "coverage-lost",
                                            state.node.name)
                    else:
                        state.handovers += 1
                        view.journal.record(now, "handover", state.node.name,
                                            source=state.serving,
                                            target=target)
                    state.serving = target
                view.journal.record(now, "sense", state.node.name,
                                    ambient=sample.ambient,
                                    x=sample.position[0],
                                    y=sample.position[1])
                if state.serving is not None:
                    view.submit(state.serving,
                                AmbientReport(state.node.name, sample.ambient,
                                              sensed_at=now))
            yield self.tick_s

    def _link_loop_indexed(self, view: "_LocalView", state: _NodeState):
        """Index-backed :meth:`_link_loop`: culled, cached, shard-aware.

        Interferers beyond the cull radius contribute exactly ``0.0``
        variance, and surviving ones are visited in original luminaire
        order, so the accumulated float sums — and hence the journal —
        are bit-identical to the all-pairs loop.  In a sharded run the
        remote (other-region) interferers arrive pre-summed as a
        variance through the view instead.
        """
        while True:
            now = view.now
            state.samples += 1
            if state.down:
                state.down_samples += 1
                view.journal.record(now, "link-down", state.node.name)
            else:
                sample = self._sensed_state(now, state)
                goodput = 0.0
                if state.serving is not None:
                    serving = view.serving_state(state.serving)
                    if serving.design is not None:
                        geometry = sample.geometry[state.serving]
                        interferers = [
                            Interferer(sample.geometry[lum.name],
                                       view.cells[lum.name].led)
                            for lum in sample.nearby
                            if lum.name != state.serving
                            and lum.name in view.cells
                        ]
                        errors = effective_slot_errors(
                            self.channel, geometry, sample.ambient,
                            interferers,
                            extra_variance=view.remote_variance(
                                state.serving, sample))
                        goodput = expected_goodput(serving.design, errors,
                                                   self.config)
                state.goodput_sum_bps += goodput
                view.journal.record(now, "link", state.node.name,
                                    cell=state.serving or "",
                                    goodput_bps=goodput)
            yield self.tick_s

    def _sense_loop(self, scheduler, journal, rng, cells, state):
        """Per-node process: move, (re)associate, sense, report."""
        while True:
            now = scheduler.now
            if not state.down:
                position = state.node.mobility.position(now)
                gains = self.gains_at(position)
                target = strongest_cell(gains, state.serving,
                                        self.hysteresis_db)
                if target != state.serving:
                    if state.serving is None:
                        journal.record(now, "associate", state.node.name,
                                       cell=target)
                    elif target is None:
                        journal.record(now, "coverage-lost",
                                       state.node.name)
                    else:
                        state.handovers += 1
                        journal.record(now, "handover", state.node.name,
                                       source=state.serving, target=target)
                    state.serving = target
                local = self._local_ambient(now, position, state.node)
                journal.record(now, "sense", state.node.name,
                               ambient=local, x=position[0], y=position[1])
                if state.serving is not None:
                    cells[state.serving].plane.submit(
                        AmbientReport(state.node.name, local, sensed_at=now),
                        rng)
            yield self.tick_s

    def _control_loop(self, scheduler, journal, cell):
        """Per-cell process: fuse reports, relight, redesign."""
        while True:
            now = scheduler.now
            fallback = self.ambient.level(now, cell.name)
            fused = cell.plane.estimate(fallback=fallback)
            sample = cell.controller.tick(now, fused)
            cell.led = sample.led
            cell.design = (AmppmSchemeDesign(sample.design, self.config)
                           if sample.design is not None else None)
            journal.record(now, "control", cell.name, led=sample.led,
                           fused=fused, adjustments=sample.adjustments)
            yield self.tick_s

    def _link_loop(self, scheduler, journal, cells, state):
        """Per-node process: evaluate the serving link with interference."""
        while True:
            now = scheduler.now
            state.samples += 1
            if state.down:
                state.down_samples += 1
                journal.record(now, "link-down", state.node.name)
            else:
                position = state.node.mobility.position(now)
                goodput = 0.0
                if state.serving is not None:
                    serving = cells[state.serving]
                    if serving.design is not None:
                        geometry = self.geometry_to(serving.luminaire,
                                                    position)
                        interferers = [
                            Interferer(self.geometry_to(other.luminaire,
                                                        position),
                                       other.led)
                            for other in cells.values()
                            if other.name != state.serving
                        ]
                        errors = effective_slot_errors(
                            self.channel, geometry,
                            self._local_ambient(now, position, state.node),
                            interferers)
                        goodput = expected_goodput(serving.design, errors,
                                                   self.config)
                state.goodput_sum_bps += goodput
                journal.record(now, "link", state.node.name,
                               cell=state.serving or "",
                               goodput_bps=goodput)
            yield self.tick_s


def default_network(config: SystemConfig | None = None, *,
                    rows: int = 2, cols: int = 2, spacing_m: float = 2.5,
                    n_nodes: int = 4, speed_min_mps: float = 0.2,
                    speed_max_mps: float = 0.8, pause_s: float = 2.0,
                    profile: AmbientProfile | None = None,
                    seed: int = 13, **kwargs) -> MulticellSimulation:
    """A ready-to-run network: a luminaire grid plus waypoint nodes.

    Node mobility seeds are derived deterministically from ``seed``, so
    the whole scenario — traces included — is a pure function of its
    arguments.  Extra ``kwargs`` pass through to
    :class:`MulticellSimulation`.
    """
    if n_nodes < 1:
        raise ValueError("n_nodes must be positive")
    config = config if config is not None else SystemConfig()
    luminaires = luminaire_grid(rows, cols, spacing_m)
    width, depth = cols * spacing_m, rows * spacing_m
    node_seeds = np.random.default_rng(seed).integers(
        0, 2 ** 31 - 1, size=n_nodes)
    nodes = tuple(
        MobileNode(f"node-{i:02d}",
                   RandomWaypoint(width, depth,
                                  speed_min_mps=speed_min_mps,
                                  speed_max_mps=speed_max_mps,
                                  pause_s=pause_s, seed=int(node_seed)))
        for i, node_seed in enumerate(node_seeds)
    )
    ambient = AmbientField(profile if profile is not None
                           else StaticAmbient(0.4))
    return MulticellSimulation(config=config, luminaires=luminaires,
                               nodes=nodes, ambient=ambient, seed=seed,
                               **kwargs)
