"""Receiver mobility: where a node's photodiode is at time ``t``.

The multi-luminaire network needs receivers that *move* — the paper's
smart-lit building serves phones carried between desks, not only fixed
ones.  Three models cover the evaluation's needs:

* :class:`StaticPosition` — a desk (the degenerate trace).
* :class:`LinearTrace` — constant-velocity motion, the deterministic
  way to walk a receiver across a cell boundary in tests.
* :class:`RandomWaypoint` — the classical random-waypoint process over
  a rectangular floor: pick a uniform destination, walk at a uniform
  speed, pause, repeat.  Legs are generated lazily from a private
  seeded generator, so ``position(t)`` is deterministic per seed and
  independent of query order.

Positions are floor-plane ``(x, y)`` metres; the vertical drop to the
luminaire plane is a property of the network, not the trace.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np


class MobilityModel(ABC):
    """A deterministic floor-plane trajectory."""

    @abstractmethod
    def position(self, t: float) -> tuple[float, float]:
        """The ``(x, y)`` position in metres at time ``t`` seconds."""

    def speed(self, t: float, dt: float = 0.5) -> float:
        """Finite-difference speed in m/s around time ``t``."""
        x0, y0 = self.position(max(t - dt, 0.0))
        x1, y1 = self.position(t + dt)
        return math.hypot(x1 - x0, y1 - y0) / (dt + min(t, dt))

    def forget_before(self, t: float) -> None:
        """Promise that ``position`` will never be asked about times
        before ``t`` again, letting stateful models release history.

        A no-op for memoryless models; long-running simulations should
        call it with their low-water mark (e.g. the last completed
        tick) so day-length runs don't accumulate unbounded trace
        state.
        """

    def reset(self) -> None:
        """Rewind the trace to ``t = 0``, undoing :meth:`forget_before`.

        A no-op for memoryless models.  Deterministic models rebuild
        from their seed, so a reset trace replays identically — this is
        what lets one simulation instance run twice and journal
        bit-identically even though runs trim history as they go.
        """

    def retire(self, t: float) -> None:
        """Release a trace whose node leaves the simulation at ``t``.

        Equivalent to :meth:`reset` followed by ``forget_before(t)``:
        all buffered history is dropped, and if the node later rejoins
        (occupancy churn), positions from ``t`` onward replay exactly
        as if the trace had never been trimmed — stateful models must
        not resurrect discarded legs into memory on the way back.
        """
        self.reset()
        self.forget_before(t)


@dataclass(frozen=True)
class StaticPosition(MobilityModel):
    """A receiver that never moves (a desk)."""

    x_m: float
    y_m: float

    def position(self, t: float) -> tuple[float, float]:
        """The fixed ``(x, y)`` regardless of ``t``."""
        return (self.x_m, self.y_m)


@dataclass(frozen=True)
class LinearTrace(MobilityModel):
    """Constant-velocity motion from a start point.

    ``end_t_s`` (optional) freezes the position after that time, so a
    test can walk a node from cell A to cell B and let it dwell there.
    """

    start_x_m: float
    start_y_m: float
    velocity_x_mps: float = 0.0
    velocity_y_mps: float = 0.0
    end_t_s: float | None = None

    def __post_init__(self) -> None:
        if self.end_t_s is not None and self.end_t_s < 0:
            raise ValueError("end_t_s must be non-negative")

    def position(self, t: float) -> tuple[float, float]:
        """Start + velocity · t, frozen at ``end_t_s`` if set."""
        t = max(t, 0.0)
        if self.end_t_s is not None:
            t = min(t, self.end_t_s)
        return (self.start_x_m + self.velocity_x_mps * t,
                self.start_y_m + self.velocity_y_mps * t)


@dataclass
class RandomWaypoint(MobilityModel):
    """Random-waypoint mobility over a rectangular floor.

    The node starts at a uniform point, repeatedly draws a uniform
    destination and a uniform speed in ``[speed_min_mps,
    speed_max_mps]``, walks there in a straight line, pauses for
    ``pause_s``, and repeats.  All draws come from a private generator
    seeded with ``seed``: the trace is a pure function of the seed.
    """

    width_m: float
    depth_m: float
    speed_min_mps: float = 0.2
    speed_max_mps: float = 1.0
    pause_s: float = 2.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.width_m <= 0 or self.depth_m <= 0:
            raise ValueError("floor dimensions must be positive")
        if not 0.0 < self.speed_min_mps <= self.speed_max_mps:
            raise ValueError("need 0 < speed_min_mps <= speed_max_mps")
        if self.pause_s < 0:
            raise ValueError("pause_s must be non-negative")
        self.reset()

    def reset(self) -> None:
        """Rebuild the trace from the seed (pure, so replays match)."""
        self._rng = np.random.default_rng(self.seed)
        x0 = float(self._rng.uniform(0.0, self.width_m))
        y0 = float(self._rng.uniform(0.0, self.depth_m))
        #: legs as (t_start, walk_duration, pause, (x0, y0), (x1, y1))
        self._legs: list[tuple[float, float, float,
                               tuple[float, float], tuple[float, float]]] = []
        self._frontier_t = 0.0
        self._frontier_pos = (x0, y0)
        self._low_water = 0.0

    def _extend_to(self, t: float) -> None:
        """Generate legs (in deterministic order) until ``t`` is covered.

        Legs that end at or before the low-water mark are consumed from
        the generator (the trace is a pure function of draw order) but
        never buffered: after a :meth:`retire`/``reset`` +
        ``forget_before`` cycle, regenerating the covered prefix must
        not resurrect trimmed legs into memory.
        """
        while self._frontier_t <= t:
            x1 = float(self._rng.uniform(0.0, self.width_m))
            y1 = float(self._rng.uniform(0.0, self.depth_m))
            speed = float(self._rng.uniform(self.speed_min_mps,
                                            self.speed_max_mps))
            x0, y0 = self._frontier_pos
            walk = math.hypot(x1 - x0, y1 - y0) / speed
            if self._frontier_t + walk + self.pause_s > self._low_water:
                self._legs.append((self._frontier_t, walk, self.pause_s,
                                   (x0, y0), (x1, y1)))
            self._frontier_t += walk + self.pause_s
            self._frontier_pos = (x1, y1)

    def forget_before(self, t: float) -> None:
        """Trim legs that end at or before the (monotone) low-water mark.

        Only the generator's *consumption order* determines the trace,
        so dropping already-finished legs cannot change any future
        ``position`` result; the mark only forbids queries about the
        discarded past.  The mark never moves backwards, which keeps
        trimming idempotent and query-order independent.
        """
        self._low_water = max(self._low_water, t)
        keep = 0
        while keep < len(self._legs):
            t_start, walk, pause, _, _ = self._legs[keep]
            if t_start + walk + pause > self._low_water:
                break
            keep += 1
        if keep:
            del self._legs[:keep]

    def position(self, t: float) -> tuple[float, float]:
        """The waypoint-interpolated position at time ``t``."""
        t = max(t, 0.0)
        if t < self._low_water:
            raise ValueError(
                f"position({t}) predates forget_before({self._low_water})")
        self._extend_to(t)
        # Binary search would be O(log n); traces are short enough that
        # a reverse linear scan from the frontier is simpler and the
        # common query pattern (monotone t) hits the last legs anyway.
        for t_start, walk, pause, (x0, y0), (x1, y1) in reversed(self._legs):
            if t >= t_start:
                if walk <= 0.0:
                    return (x1, y1)
                frac = min((t - t_start) / walk, 1.0)
                return (x0 + (x1 - x0) * frac, y0 + (y1 - y0) * frac)
        return self._frontier_pos  # pragma: no cover (t=0 hits leg 0)
