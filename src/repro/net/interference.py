"""Co-channel interference between ceiling luminaires.

Neighbouring SmartVLC cells share the optical medium: a receiver under
luminaire A also collects light from luminaire B through the same
Lambertian geometry.  The receiver's DC-removal stage cancels the
*mean* of that foreign signal, but B's AMPPM slots toggle around their
duty cycle, leaving a zero-mean fluctuation of variance

    var_B = l_B · (1 − l_B) · swing_B²

for an interfering swing ``swing_B`` and duty (dimming level) ``l_B``
— a Bernoulli slot process seen through the photodiode.  Summed over
interferers and added in quadrature with the photodiode noise, this
degrades the serving link's slot error probabilities and hence its
SINR and goodput.  A luminaire pinned fully ON or fully OFF does not
fluctuate and contributes nothing, exactly as DC ambient light.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..core.errormodel import SlotErrorModel
from ..phy.channel import VlcChannel
from ..phy.optics import LinkGeometry


@dataclass(frozen=True)
class Interferer:
    """One neighbouring luminaire as seen from a receiver."""

    geometry: LinkGeometry
    duty: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.duty <= 1.0:
            raise ValueError("duty must lie in [0, 1]")


def interference_sigma(channel: VlcChannel,
                       interferers: Iterable[Interferer]) -> float:
    """RMS interference current from neighbouring luminaires (amps)."""
    variance = 0.0
    for interferer in interferers:
        swing = channel.signal_swing(interferer.geometry)
        variance += interferer.duty * (1.0 - interferer.duty) * swing ** 2
    return math.sqrt(variance)


def effective_slot_errors(channel: VlcChannel, geometry: LinkGeometry,
                          ambient: float,
                          interferers: Sequence[Interferer] = (),
                          extra_variance: float = 0.0) -> SlotErrorModel:
    """Slot error model of a link including co-channel interference.

    With no interferers this is exactly
    :meth:`~repro.phy.channel.VlcChannel.slot_error_model`; the single-
    luminaire :class:`~repro.net.room.RoomSimulation` and the
    multi-cell network therefore share one link-evaluation path.

    ``extra_variance`` (amps²) folds in interference that was computed
    elsewhere — the sharded fleet kernel batches far-away luminaires
    through the vectorized engine and passes their summed variance
    here.  At the default ``0.0`` the arithmetic (and therefore every
    journal digest) is bit-identical to the two-argument form.
    """
    if extra_variance < 0.0:
        raise ValueError("extra_variance must be non-negative")
    extra = interference_sigma(channel, interferers) if interferers else 0.0
    if extra_variance > 0.0:
        extra = math.sqrt(extra ** 2 + extra_variance)
    return channel.slot_error_model(geometry, ambient, extra_noise_a=extra)


def sinr(channel: VlcChannel, geometry: LinkGeometry, ambient: float,
         interferers: Sequence[Interferer] = ()) -> float:
    """Signal-to-interference-plus-noise power ratio of a link.

    Signal power is the squared OFF→ON swing; the denominator sums the
    photodiode noise variance and the interference variance.  Returns
    ``inf`` on a noiseless, interference-free link and ``0`` outside
    the receiver's field of view.
    """
    swing = channel.signal_swing(geometry)
    noise = channel.photodiode.noise_sigma(ambient)
    denominator = noise ** 2 + interference_sigma(channel, interferers) ** 2
    if denominator == 0.0:
        return math.inf if swing > 0 else 0.0
    return swing ** 2 / denominator
