"""A room with one SmartVLC luminaire and several mobile receivers.

The deployment the paper's introduction sketches: a ceiling LED serves
a room; receivers at different desks see different link geometries (and
slightly different daylight), report their ambient readings over Wi-Fi,
and the transmitter maintains constant illumination while broadcasting
data.  One :meth:`RoomSimulation.step` advances the whole closed loop:

    ambient profile → per-node sensing → Wi-Fi feedback → fused
    estimate → lighting controller → AMPPM design → per-node throughput
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.ampdesign import AmppmDesigner
from ..core.params import SystemConfig
from ..lighting.ambient import AmbientProfile, StaticAmbient
from ..lighting.controller import SmartLightingController
from ..phy.channel import VlcChannel, calibrated_channel
from ..phy.optics import LinkGeometry
from ..schemes import AmppmSchemeDesign
from ..sim.linkmodel import expected_goodput
from .feedback import AmbientReport, FeedbackCollector
from .interference import effective_slot_errors


@dataclass(frozen=True)
class ReceiverPlacement:
    """A receiver at a desk: position relative to the luminaire.

    ``daylight_gain`` scales the room-level ambient at this desk (a
    desk by the window sees more daylight than one in the corner).
    """

    name: str
    horizontal_offset_m: float
    vertical_drop_m: float = 2.5
    daylight_gain: float = 1.0

    def __post_init__(self) -> None:
        if self.vertical_drop_m <= 0:
            raise ValueError("vertical_drop_m must be positive")
        if self.horizontal_offset_m < 0:
            raise ValueError("horizontal_offset_m must be non-negative")
        if not 0.0 <= self.daylight_gain <= 1.5:
            raise ValueError("daylight_gain must lie in [0, 1.5]")

    @property
    def geometry(self) -> LinkGeometry:
        """Link geometry assuming the photodiode faces the luminaire."""
        return LinkGeometry.from_offsets(self.horizontal_offset_m,
                                         self.vertical_drop_m)

    def local_ambient(self, room_ambient: float) -> float:
        """Daylight level at this desk."""
        return min(room_ambient * self.daylight_gain, 1.0)


@dataclass(frozen=True)
class NodeSample:
    """Per-receiver outcome of one simulation step."""

    name: str
    ambient: float
    throughput_bps: float
    link_ok: bool


@dataclass(frozen=True)
class RoomSample:
    """Room-wide outcome of one simulation step."""

    t: float
    fused_ambient: float
    led: float
    nodes: tuple[NodeSample, ...]

    @property
    def aggregate_throughput_bps(self) -> float:
        """Broadcast goodput summed over receivers that can decode."""
        return sum(n.throughput_bps for n in self.nodes)

    def node(self, name: str) -> NodeSample:
        for n in self.nodes:
            if n.name == name:
                return n
        raise KeyError(name)


@dataclass
class RoomSimulation:
    """Closed-loop multi-receiver SmartVLC room."""

    config: SystemConfig = field(default_factory=SystemConfig)
    #: default desks stay inside the narrow (15° semi-angle) beam; the
    #: prototype's LED is a spotlight, so usable desks sit near the axis
    placements: tuple[ReceiverPlacement, ...] = (
        ReceiverPlacement("desk-under-lamp", 0.0),
        ReceiverPlacement("desk-window", 0.35, daylight_gain=1.2),
        ReceiverPlacement("desk-corner", 0.6, daylight_gain=0.7),
    )
    profile: AmbientProfile = field(default_factory=lambda: StaticAmbient(0.4))
    target_sum: float = 1.0
    channel: VlcChannel | None = None
    collector: FeedbackCollector = field(default_factory=FeedbackCollector)
    seed: int = 13

    def __post_init__(self) -> None:
        if not self.placements:
            raise ValueError("a room needs at least one receiver")
        if self.channel is None:
            self.channel = calibrated_channel(self.config)
        self._designer = AmppmDesigner(self.config)
        self._controller = SmartLightingController(
            target_sum=self.target_sum, config=self.config,
            designer=self._designer)
        self._rng = np.random.default_rng(self.seed)
        #: minimum goodput for a node to count as "linked"
        self.link_floor_bps = 1e3

    @property
    def controller(self) -> SmartLightingController:
        """The room's lighting controller (exposed for inspection)."""
        return self._controller

    def step(self, t: float) -> RoomSample:
        """Advance the closed loop to time ``t``."""
        room_ambient = self.profile.intensity(t)

        # 1. every receiver senses locally and reports over Wi-Fi
        for placement in self.placements:
            report = AmbientReport(placement.name,
                                   placement.local_ambient(room_ambient),
                                   sensed_at=t)
            self.collector.submit(report, self._rng)

        # 2. the transmitter fuses what has arrived (its own photodiode
        #    reading of the room ambient is the fallback)
        fused = self.collector.ambient_estimate(
            t + self.collector.uplink.latency_s, fallback=room_ambient)

        # 3. lighting control + AMPPM design
        sample = self._controller.tick(t, fused)
        design = AmppmSchemeDesign(sample.design, self.config)

        # 4. per-receiver link evaluation at the receiver's own ambient
        #    (the shared multicell path, with zero interfering cells)
        nodes = []
        for placement in self.placements:
            local = placement.local_ambient(room_ambient)
            errors = effective_slot_errors(self.channel, placement.geometry,
                                           local)
            rate = expected_goodput(design, errors, self.config)
            nodes.append(NodeSample(
                name=placement.name,
                ambient=local,
                throughput_bps=rate,
                link_ok=rate >= self.link_floor_bps,
            ))
        return RoomSample(t=t, fused_ambient=fused, led=sample.led,
                          nodes=tuple(nodes))

    def run(self, duration_s: float, tick_s: float = 1.0) -> list[RoomSample]:
        """Run the closed loop for a duration."""
        if tick_s <= 0:
            raise ValueError("tick_s must be positive")
        samples = []
        t = 0.0
        while t <= duration_s + 1e-9:
            samples.append(self.step(t))
            t += tick_s
        return samples
