"""The receiver → transmitter feedback plane.

In the prototype, every receiver senses the ambient light at its own
position and reports it — together with ACKs — over the ESP8266 Wi-Fi
uplink (Section 5.1).  The transmitter therefore works with *delayed,
possibly missing* observations.  This module models that plane: reports
ride a :class:`~repro.link.wifi.WifiUplink`, arrive out of order, and a
collector keeps the freshest delivered value per node with an
aggregation policy and a staleness cut-off.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable

import numpy as np

from ..link.wifi import WifiUplink


@dataclass(frozen=True)
class AmbientReport:
    """One receiver's sensed ambient level, stamped at sensing time."""

    node: str
    value: float
    sensed_at: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.value <= 1.0:
            raise ValueError("ambient value must lie in [0, 1]")


class Aggregation(Enum):
    """How the transmitter fuses multi-receiver ambient reports."""

    MEAN = "mean"
    MIN = "min"      # darkest spot rules: nobody is under-lit
    MAX = "max"
    LATEST = "latest"


@dataclass
class FeedbackCollector:
    """Delivers reports over Wi-Fi and serves the fused ambient value.

    ``staleness_s`` bounds how old a delivered report may be before it
    is ignored — a receiver that went quiet must not pin the controller
    to an outdated daylight level.  ``max_nodes`` (optional) bounds the
    per-node state against receiver churn: when exceeded, stale entries
    are purged first and then the oldest-sensed entries are evicted.
    """

    uplink: WifiUplink = field(default_factory=WifiUplink)
    aggregation: Aggregation = Aggregation.MEAN
    staleness_s: float = 5.0
    max_nodes: int | None = None

    def __post_init__(self) -> None:
        if self.staleness_s <= 0:
            raise ValueError("staleness_s must be positive")
        if self.max_nodes is not None and self.max_nodes < 1:
            raise ValueError("max_nodes must be positive when set")
        # Per node: (arrival_time, report); in-flight as (arrival, report).
        self._delivered: dict[str, tuple[float, AmbientReport]] = {}
        self._in_flight: list[tuple[float, AmbientReport]] = []

    def submit(self, report: AmbientReport,
               rng: np.random.Generator) -> None:
        """A receiver sends a report; it may be lost or delayed."""
        arrival = self.uplink.deliver(report.sensed_at, rng)
        if arrival is not None:
            self._in_flight.append((arrival, report))

    def deliver(self, report: AmbientReport, arrival: float) -> None:
        """Register a report that arrived at ``arrival``.

        This is the delivery half of :meth:`submit`, exposed so a
        discrete-event scheduler can compute the arrival instant itself
        (see :class:`repro.des.DesFeedbackPlane`) and still share the
        freshest-sensing-time-wins semantics.
        """
        current = self._delivered.get(report.node)
        # Keep the freshest *sensing* time, not arrival order.
        if current is None or report.sensed_at > current[1].sensed_at:
            self._delivered[report.node] = (arrival, report)

    def forget(self, node: str) -> bool:
        """Drop all state for a departed node (returns whether any existed).

        Call on receiver churn: a node that left the room must neither
        linger in the fused estimate until it goes stale nor leak its
        per-node entry forever.  In-flight reports from the node are
        discarded too.
        """
        existed = self._delivered.pop(node, None) is not None
        before = len(self._in_flight)
        self._in_flight = [(arrival, report)
                           for arrival, report in self._in_flight
                           if report.node != node]
        return existed or len(self._in_flight) < before

    def _purge(self, now: float) -> None:
        """Enforce ``max_nodes``: drop stale entries, then oldest-sensed."""
        if self.max_nodes is None or len(self._delivered) <= self.max_nodes:
            return
        stale = [node for node, (_, report) in self._delivered.items()
                 if now - report.sensed_at > self.staleness_s]
        for node in stale:
            del self._delivered[node]
        excess = len(self._delivered) - self.max_nodes
        if excess > 0:
            oldest = sorted(self._delivered,
                            key=lambda n: self._delivered[n][1].sensed_at)
            for node in oldest[:excess]:
                del self._delivered[node]

    def _drain(self, now: float) -> None:
        still_flying = []
        for arrival, report in self._in_flight:
            if arrival <= now:
                self.deliver(report, arrival)
            else:
                still_flying.append((arrival, report))
        self._in_flight = still_flying
        self._purge(now)

    def fresh_reports(self, now: float) -> list[AmbientReport]:
        """Delivered, non-stale reports as of ``now``."""
        self._drain(now)
        return [report for _, report in self._delivered.values()
                if now - report.sensed_at <= self.staleness_s]

    def ambient_estimate(self, now: float,
                         fallback: float | None = None) -> float | None:
        """The fused ambient level, or ``fallback`` when nothing is fresh."""
        reports = self.fresh_reports(now)
        if not reports:
            return fallback
        values = [r.value for r in reports]
        if self.aggregation is Aggregation.MEAN:
            return float(np.mean(values))
        if self.aggregation is Aggregation.MIN:
            return min(values)
        if self.aggregation is Aggregation.MAX:
            return max(values)
        return max(reports, key=lambda r: r.sensed_at).value

    def known_nodes(self) -> Iterable[str]:
        """Nodes that have ever delivered a report."""
        return self._delivered.keys()
