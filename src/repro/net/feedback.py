"""The receiver → transmitter feedback plane.

In the prototype, every receiver senses the ambient light at its own
position and reports it — together with ACKs — over the ESP8266 Wi-Fi
uplink (Section 5.1).  The transmitter therefore works with *delayed,
possibly missing* observations.  This module models that plane: reports
ride a :class:`~repro.link.wifi.WifiUplink`, arrive out of order, and a
collector keeps the freshest delivered value per node with an
aggregation policy and a staleness cut-off.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable

import numpy as np

from ..link.wifi import WifiUplink


@dataclass(frozen=True)
class AmbientReport:
    """One receiver's sensed ambient level, stamped at sensing time."""

    node: str
    value: float
    sensed_at: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.value <= 1.0:
            raise ValueError("ambient value must lie in [0, 1]")


class Aggregation(Enum):
    """How the transmitter fuses multi-receiver ambient reports."""

    MEAN = "mean"
    MIN = "min"      # darkest spot rules: nobody is under-lit
    MAX = "max"
    LATEST = "latest"


@dataclass
class FeedbackCollector:
    """Delivers reports over Wi-Fi and serves the fused ambient value.

    ``staleness_s`` bounds how old a delivered report may be before it
    is ignored — a receiver that went quiet must not pin the controller
    to an outdated daylight level.
    """

    uplink: WifiUplink = field(default_factory=WifiUplink)
    aggregation: Aggregation = Aggregation.MEAN
    staleness_s: float = 5.0

    def __post_init__(self) -> None:
        if self.staleness_s <= 0:
            raise ValueError("staleness_s must be positive")
        # Per node: (arrival_time, report); in-flight as (arrival, report).
        self._delivered: dict[str, tuple[float, AmbientReport]] = {}
        self._in_flight: list[tuple[float, AmbientReport]] = []

    def submit(self, report: AmbientReport,
               rng: np.random.Generator) -> None:
        """A receiver sends a report; it may be lost or delayed."""
        arrival = self.uplink.deliver(report.sensed_at, rng)
        if arrival is not None:
            self._in_flight.append((arrival, report))

    def deliver(self, report: AmbientReport, arrival: float) -> None:
        """Register a report that arrived at ``arrival``.

        This is the delivery half of :meth:`submit`, exposed so a
        discrete-event scheduler can compute the arrival instant itself
        (see :class:`repro.des.DesFeedbackPlane`) and still share the
        freshest-sensing-time-wins semantics.
        """
        current = self._delivered.get(report.node)
        # Keep the freshest *sensing* time, not arrival order.
        if current is None or report.sensed_at > current[1].sensed_at:
            self._delivered[report.node] = (arrival, report)

    def _drain(self, now: float) -> None:
        still_flying = []
        for arrival, report in self._in_flight:
            if arrival <= now:
                self.deliver(report, arrival)
            else:
                still_flying.append((arrival, report))
        self._in_flight = still_flying

    def fresh_reports(self, now: float) -> list[AmbientReport]:
        """Delivered, non-stale reports as of ``now``."""
        self._drain(now)
        return [report for _, report in self._delivered.values()
                if now - report.sensed_at <= self.staleness_s]

    def ambient_estimate(self, now: float,
                         fallback: float | None = None) -> float | None:
        """The fused ambient level, or ``fallback`` when nothing is fresh."""
        reports = self.fresh_reports(now)
        if not reports:
            return fallback
        values = [r.value for r in reports]
        if self.aggregation is Aggregation.MEAN:
            return float(np.mean(values))
        if self.aggregation is Aggregation.MIN:
            return min(values)
        if self.aggregation is Aggregation.MAX:
            return max(values)
        return max(reports, key=lambda r: r.sensed_at).value

    def known_nodes(self) -> Iterable[str]:
        """Nodes that have ever delivered a report."""
        return self._delivered.keys()
