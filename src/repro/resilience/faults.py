"""Composable, seedable fault schedules for every simulation substrate.

The multicell simulator introduced :class:`FaultPlan` — receiver churn
plus uplink outage windows.  This module generalizes it into a
:class:`FaultSchedule`: an ordered tuple of typed fault primitives

* :class:`UplinkOutage` — every Wi-Fi packet (ACKs and ambient
  reports alike) is lost for a window;
* :class:`AckLossBurst` — a window of elevated ACK loss on an
  otherwise healthy uplink;
* :class:`AdcBlinding` — a saturation/blinding window at the
  photodiode: slot error probabilities scale up (analytic paths) and
  the ambient pedestal rises (waveform paths);
* :class:`AmbientStep` — a step transient in the ambient level that
  persists until the next step;
* :class:`NodeDowntime` — receiver churn (multicell).

The same schedule injects into three substrates: by-time queries
(:meth:`FaultSchedule.ack_loss_at` and friends) for the chaos harness
and :mod:`repro.sim.endtoend`, a MAC corruptor via
:meth:`FaultSchedule.corruptor`, and discrete-event kernels via
:func:`install_fault_events` / :func:`schedule_plan_events` (the latter
preserves the multicell journal bit-for-bit).

Everything is frozen and validated at construction, and
:meth:`FaultSchedule.random` derives an intensity-scaled schedule from
a seed alone, so chaos sweeps are pure functions of their arguments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

import numpy as np

from ..core.errormodel import SlotErrorModel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..des.journal import EventJournal
    from ..des.kernel import EventScheduler


def _check_window(start_s: float, end_s: float, what: str) -> None:
    if start_s < 0 or end_s <= start_s:
        raise ValueError(f"bad {what} window ({start_s}, {end_s})")


@dataclass(frozen=True)
class UplinkOutage:
    """A window during which every Wi-Fi packet is lost."""

    start_s: float
    end_s: float

    def __post_init__(self) -> None:
        _check_window(self.start_s, self.end_s, "outage")


@dataclass(frozen=True)
class AckLossBurst:
    """A window of elevated ACK loss probability on the uplink."""

    start_s: float
    end_s: float
    loss_probability: float = 1.0

    def __post_init__(self) -> None:
        _check_window(self.start_s, self.end_s, "ACK-loss")
        if not 0.0 <= self.loss_probability <= 1.0:
            raise ValueError("loss_probability must lie in [0, 1]")


@dataclass(frozen=True)
class AdcBlinding:
    """A photodiode saturation window of a given severity in (0, 1].

    Severity maps to an error-probability scale for the analytic slot
    error model (``1 + severity·(max_error_scale - 1)``) and to an
    additive ambient pedestal for the waveform path.
    """

    start_s: float
    end_s: float
    severity: float = 0.5
    max_error_scale: float = 100.0

    def __post_init__(self) -> None:
        _check_window(self.start_s, self.end_s, "blinding")
        if not 0.0 < self.severity <= 1.0:
            raise ValueError("severity must lie in (0, 1]")
        if self.max_error_scale < 1.0:
            raise ValueError("max_error_scale must be >= 1")

    @property
    def error_scale(self) -> float:
        """Multiplier applied to slot error probabilities."""
        return 1.0 + self.severity * (self.max_error_scale - 1.0)

    @property
    def ambient_boost(self) -> float:
        """Additive normalized-ambient pedestal for waveform paths."""
        return self.severity


@dataclass(frozen=True)
class AmbientStep:
    """A step transient: ambient jumps to ``level`` at ``at_s``."""

    at_s: float
    level: float

    def __post_init__(self) -> None:
        if self.at_s < 0:
            raise ValueError("at_s must be non-negative")
        if not 0.0 <= self.level <= 1.0:
            raise ValueError("level must lie in [0, 1]")


@dataclass(frozen=True)
class NodeDowntime:
    """Receiver churn: ``node`` is gone over ``[start_s, end_s)``."""

    node: str
    start_s: float
    end_s: float

    def __post_init__(self) -> None:
        if self.start_s < 0 or self.end_s <= self.start_s:
            raise ValueError(
                f"bad downtime window ({self.start_s}, {self.end_s}) "
                f"for {self.node!r}")


@dataclass(frozen=True)
class FaultPlan:
    """Deterministic fault-injection schedule for one run.

    ``node_downtime`` holds ``(node, start_s, end_s)`` churn windows
    (the receiver is gone: no sensing, no reports, zero goodput);
    ``uplink_outages`` holds ``(start_s, end_s)`` windows during which
    every Wi-Fi report is lost.

    This is the original multicell fault surface, kept verbatim for
    compatibility; :meth:`to_schedule` lifts it into the generalized
    :class:`FaultSchedule`.
    """

    node_downtime: tuple[tuple[str, float, float], ...] = ()
    uplink_outages: tuple[tuple[float, float], ...] = ()

    def __post_init__(self) -> None:
        for name, start, end in self.node_downtime:
            if start < 0 or end <= start:
                raise ValueError(
                    f"bad downtime window ({start}, {end}) for {name!r}")
        for start, end in self.uplink_outages:
            if start < 0 or end <= start:
                raise ValueError(f"bad outage window ({start}, {end})")

    def to_schedule(self) -> "FaultSchedule":
        """The equivalent :class:`FaultSchedule` (same event order)."""
        faults: list = [NodeDowntime(name, start, end)
                        for name, start, end in self.node_downtime]
        faults.extend(UplinkOutage(start, end)
                      for start, end in self.uplink_outages)
        return FaultSchedule(tuple(faults))


@dataclass(frozen=True)
class FaultSchedule:
    """An ordered, validated collection of fault primitives."""

    faults: tuple = ()

    def __post_init__(self) -> None:
        allowed = (UplinkOutage, AckLossBurst, AdcBlinding, AmbientStep,
                   NodeDowntime)
        for fault in self.faults:
            if not isinstance(fault, allowed):
                raise TypeError(f"unsupported fault {fault!r}")

    def __len__(self) -> int:
        return len(self.faults)

    def of_type(self, kind: type) -> tuple:
        """All faults of one primitive type, in schedule order."""
        return tuple(f for f in self.faults if isinstance(f, kind))

    def combine(self, other: "FaultSchedule") -> "FaultSchedule":
        """A schedule containing this schedule's faults then ``other``'s.

        Composition is commutative *in effect*: every by-time query
        folds active windows with order-independent reductions (max for
        loss/scale/boost, any() for outages and churn, latest-step for
        ambient), so ``a.combine(b)`` and ``b.combine(a)`` answer every
        query identically even though their fault tuples differ.
        """
        return FaultSchedule(self.faults + other.faults)

    def shifted(self, dt: float) -> "FaultSchedule":
        """The same schedule displaced ``dt`` seconds into the future.

        Time-translation equivariance: ``shifted(dt)`` at ``t + dt``
        answers every by-time query exactly as the original does at
        ``t``.  Shifting left (``dt < 0``) is allowed as long as no
        window start would go negative.
        """
        from dataclasses import replace

        def move(fault):
            if isinstance(fault, AmbientStep):
                return replace(fault, at_s=fault.at_s + dt)
            return replace(fault, start_s=fault.start_s + dt,
                           end_s=fault.end_s + dt)

        return FaultSchedule(tuple(move(fault) for fault in self.faults))

    # -- by-time queries (chaos harness, end-to-end link) ---------------

    def uplink_outage_at(self, t: float) -> bool:
        """Whether a full uplink outage is active at ``t``."""
        return any(f.start_s <= t < f.end_s
                   for f in self.of_type(UplinkOutage))

    def ack_loss_at(self, t: float) -> float:
        """Extra ACK loss probability at ``t`` (1.0 during outages)."""
        loss = 0.0
        for f in self.of_type(AckLossBurst):
            if f.start_s <= t < f.end_s:
                loss = max(loss, f.loss_probability)
        if self.uplink_outage_at(t):
            loss = 1.0
        return loss

    def error_scale_at(self, t: float) -> float:
        """Slot-error scale from active blinding windows (1.0 if none)."""
        scale = 1.0
        for f in self.of_type(AdcBlinding):
            if f.start_s <= t < f.end_s:
                scale = max(scale, f.error_scale)
        return scale

    def errors_at(self, t: float, base: SlotErrorModel) -> SlotErrorModel:
        """The effective slot error model at ``t`` (blinding applied)."""
        scale = self.error_scale_at(t)
        return base if scale == 1.0 else base.scaled(scale)

    def ambient_at(self, t: float, base: float) -> float:
        """Room ambient at ``t``: the latest step override, else ``base``.

        Blinding does *not* enter here — it saturates the receiver, not
        the room — so lighting control sees only genuine daylight.
        Steps landing at exactly the same instant resolve to the
        brightest level, not to tuple position, so the answer is
        independent of the order schedules were combined in.
        """
        level = base
        last_step = None
        for f in self.of_type(AmbientStep):
            if f.at_s > t:
                continue
            if (last_step is None or f.at_s > last_step.at_s
                    or (f.at_s == last_step.at_s
                        and f.level > last_step.level)):
                last_step = f
        if last_step is not None:
            level = last_step.level
        return min(max(level, 0.0), 1.0)

    def ambient_boost_at(self, t: float) -> float:
        """Receiver-side ambient pedestal from active blinding windows.

        Used by the waveform path (:mod:`repro.sim.endtoend`), where
        blinding manifests as extra light saturating the ADC.
        """
        boost = 0.0
        for f in self.of_type(AdcBlinding):
            if f.start_s <= t < f.end_s:
                boost = max(boost, f.ambient_boost)
        return boost

    def node_down_at(self, node: str, t: float) -> bool:
        """Whether ``node`` is churned out at ``t``."""
        return any(f.node == node and f.start_s <= t < f.end_s
                   for f in self.of_type(NodeDowntime))

    @property
    def end_s(self) -> float:
        """When the last fault window closes (0.0 for an empty schedule)."""
        ends = [f.at_s if isinstance(f, AmbientStep) else f.end_s
                for f in self.faults]
        return max(ends, default=0.0)

    # -- substrate adapters ---------------------------------------------

    def corruptor(self, base: SlotErrorModel) -> Callable:
        """A time-aware corruptor for :meth:`StopAndWaitMac.run`.

        The returned callable has the three-argument signature
        ``(slots, rng, now)`` the MAC upgrades to when available, and
        applies active blinding windows to the base error model.
        """
        from ..link.mac import corrupt_slots

        def corrupt(slots, rng, now: float):
            return corrupt_slots(slots, self.errors_at(now, base), rng)

        return corrupt

    def to_fault_plan(self) -> FaultPlan:
        """Project onto the multicell fault surface (churn + outages)."""
        return FaultPlan(
            node_downtime=tuple((f.node, f.start_s, f.end_s)
                                for f in self.of_type(NodeDowntime)),
            uplink_outages=tuple((f.start_s, f.end_s)
                                 for f in self.of_type(UplinkOutage)),
        )

    @classmethod
    def from_fault_plan(cls, plan: FaultPlan) -> "FaultSchedule":
        """Lift a multicell :class:`FaultPlan` into a schedule."""
        return plan.to_schedule()

    @classmethod
    def random(cls, seed: int, duration_s: float,
               intensity: float, nodes: tuple[str, ...] = ()
               ) -> "FaultSchedule":
        """An intensity-scaled random schedule, pure in its arguments.

        ``intensity`` in [0, 1] scales the number, length, and severity
        of injected faults; 0 yields an empty schedule.  The mix leans
        on blinding windows — the dominant real-world failure mode on
        OpenVLC-class hardware — with ACK bursts, ambient steps, full
        outages, and (when ``nodes`` are given) churn mixed in.
        """
        if duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if not 0.0 <= intensity <= 1.0:
            raise ValueError("intensity must lie in [0, 1]")
        rng = np.random.default_rng(seed)
        n_faults = int(round(6 * intensity))
        kinds = ["blinding", "ack-burst", "ambient-step", "outage"]
        weights = [0.45, 0.25, 0.2, 0.1]
        if nodes:
            kinds.append("churn")
            weights = [0.4, 0.2, 0.15, 0.1, 0.15]
        faults: list = []
        for _ in range(n_faults):
            kind = rng.choice(kinds, p=weights)
            start = float(rng.uniform(0.05, 0.75)) * duration_s
            length = float(rng.uniform(0.04, 0.12)) * duration_s \
                * (0.5 + intensity)
            end = min(start + length, duration_s * 0.95)
            if kind == "blinding":
                severity = 0.25 + 0.5 * intensity * float(rng.random())
                faults.append(AdcBlinding(start, end, severity=severity))
            elif kind == "ack-burst":
                loss = 0.5 + 0.5 * intensity * float(rng.random())
                faults.append(AckLossBurst(start, end,
                                           loss_probability=loss))
            elif kind == "ambient-step":
                faults.append(AmbientStep(start,
                                          float(rng.uniform(0.1, 0.9))))
            elif kind == "outage":
                faults.append(UplinkOutage(start, end))
            else:
                node = str(rng.choice(list(nodes)))
                faults.append(NodeDowntime(node, start, end))
        return cls(tuple(faults))


def shipped_schedules(duration_s: float = 40.0) -> dict[str, FaultSchedule]:
    """The curated fault schedules used by ``repro chaos`` and CI.

    Each schedule stresses one failure mode reported on real VLC
    deployments; ``mixed`` composes them.  All are sized for a
    ``duration_s``-second run (windows scale linearly).
    """
    if duration_s <= 0:
        raise ValueError("duration_s must be positive")
    s = duration_s / 40.0

    def blinding() -> tuple:
        return (AdcBlinding(8.0 * s, 14.0 * s, severity=0.35),
                AdcBlinding(22.0 * s, 30.0 * s, severity=0.55))

    def ack_burst() -> tuple:
        return (AckLossBurst(10.0 * s, 16.0 * s, loss_probability=0.7),
                AdcBlinding(24.0 * s, 30.0 * s, severity=0.4))

    def transients() -> tuple:
        return (AmbientStep(6.0 * s, 0.85),
                AdcBlinding(12.0 * s, 18.0 * s, severity=0.45),
                AmbientStep(20.0 * s, 0.3),
                AdcBlinding(26.0 * s, 31.0 * s, severity=0.3))

    def mixed() -> tuple:
        return (AdcBlinding(5.0 * s, 10.0 * s, severity=0.4),
                UplinkOutage(13.0 * s, 16.0 * s),
                AckLossBurst(19.0 * s, 23.0 * s, loss_probability=0.8),
                AmbientStep(25.0 * s, 0.8),
                AdcBlinding(28.0 * s, 34.0 * s, severity=0.5))

    return {
        "blinding": FaultSchedule(blinding()),
        "ack-burst": FaultSchedule(ack_burst()),
        "transients": FaultSchedule(transients()),
        "mixed": FaultSchedule(mixed()),
    }


def schedule_plan_events(plan: FaultPlan, scheduler: "EventScheduler", *,
                         on_node_change: Callable[[str, bool], None],
                         on_uplink_change: Callable[[bool], None]) -> None:
    """Install a :class:`FaultPlan` on a discrete-event scheduler.

    Replicates the multicell fault installer exactly — node windows
    first (down then up), then outage windows, all at priority ``-1``
    with the historical event kinds — so refactored consumers produce
    bit-identical journals.  Callbacks receive ``(node, down)`` and
    ``(active,)`` and are responsible for state mutation + journaling.
    """

    def node_event(name: str, down: bool):
        def apply(_event) -> None:
            on_node_change(name, down)
        return apply

    def uplink_event(active: bool):
        def apply(_event) -> None:
            on_uplink_change(active)
        return apply

    for name, start, end in plan.node_downtime:
        scheduler.schedule_at(start, "node-down", node_event(name, True),
                              priority=-1, actor=name)
        scheduler.schedule_at(end, "node-up", node_event(name, False),
                              priority=-1, actor=name)
    for start, end in plan.uplink_outages:
        scheduler.schedule_at(start, "uplink-outage", uplink_event(True),
                              priority=-1)
        scheduler.schedule_at(end, "uplink-restored", uplink_event(False),
                              priority=-1)


def install_fault_events(schedule: FaultSchedule,
                         scheduler: "EventScheduler",
                         journal: "EventJournal", *,
                         actor: str = "faults") -> None:
    """Journal every fault boundary as events on a DES scheduler.

    Windowed faults record ``fault-begin``/``fault-end`` pairs (with
    the fault kind in the detail); ambient steps record a single
    ``fault-step``.  Physics stays with the by-time queries — these
    events make fault boundaries visible in the trace so resilience
    metrics can attribute detections and recoveries.
    """

    def mark(kind: str, fault_kind: str, **detail):
        def apply(_event) -> None:
            journal.record(scheduler.now, kind, actor,
                           fault=fault_kind, **detail)
        return apply

    for fault in schedule.faults:
        if isinstance(fault, AmbientStep):
            scheduler.schedule_at(fault.at_s, "fault-step",
                                  mark("fault-step", "ambient-step",
                                       level=fault.level),
                                  priority=-1, actor=actor)
            continue
        name = {UplinkOutage: "uplink-outage",
                AckLossBurst: "ack-loss-burst",
                AdcBlinding: "adc-blinding",
                NodeDowntime: "node-downtime"}[type(fault)]
        scheduler.schedule_at(fault.start_s, "fault-begin",
                              mark("fault-begin", name),
                              priority=-1, actor=actor)
        scheduler.schedule_at(fault.end_s, "fault-end",
                              mark("fault-end", name),
                              priority=-1, actor=actor)
