"""Resilience measurement: fault attribution and the ResilienceReport.

Given a fault schedule, the supervisor's transition trace, and the MAC
counters of a chaos run, this module answers the operational questions:
how fast was each fault *detected* (first departure from UP inside the
window), how fast did the link *recover* (first return to UP after the
window closed), how much goodput survived degradation, and how many
frames were lost per injected fault.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..link.supervision import LinkState, LinkTransition
from .faults import AckLossBurst, AdcBlinding, FaultSchedule, UplinkOutage

#: grace period after a window closes during which a departure from UP
#: still counts as detecting that window (late evidence of its tail)
DETECTION_GRACE_S = 1.0


def fault_windows(schedule: FaultSchedule
                  ) -> tuple[tuple[str, float, float], ...]:
    """Channel-affecting ``(kind, start_s, end_s)`` windows, sorted.

    Ambient steps are excluded — they have no end and are handled by
    the controller, not the link supervisor; node downtime is a
    multicell concern with no single-link meaning.
    """
    kinds = {AdcBlinding: "adc-blinding", AckLossBurst: "ack-loss-burst",
             UplinkOutage: "uplink-outage"}
    windows = [(kinds[type(f)], f.start_s, f.end_s)
               for f in schedule.faults if type(f) in kinds]
    return tuple(sorted(windows, key=lambda w: (w[1], w[2], w[0])))


def detection_delays(windows: tuple[tuple[str, float, float], ...],
                     transitions: list[LinkTransition]
                     ) -> list[float | None]:
    """Per-window seconds from fault onset to leaving UP (None: missed)."""
    delays: list[float | None] = []
    for _kind, start, end in windows:
        detected = None
        for tr in transitions:
            if (tr.source is LinkState.UP and tr.target is not LinkState.UP
                    and start <= tr.time < end + DETECTION_GRACE_S):
                detected = tr.time - start
                break
        delays.append(detected)
    return delays


def recovery_delays(windows: tuple[tuple[str, float, float], ...],
                    transitions: list[LinkTransition]
                    ) -> list[float | None]:
    """Per-window seconds from fault end to the next return to UP.

    ``None`` when the link never left UP for that window (nothing to
    recover from) or never returned before the trace ended.
    """
    detections = detection_delays(windows, transitions)
    delays: list[float | None] = []
    for (_kind, _start, end), detected in zip(windows, detections):
        if detected is None:
            delays.append(None)
            continue
        recovered = None
        for tr in transitions:
            if tr.target is LinkState.UP and tr.time >= end:
                recovered = tr.time - end
                break
        delays.append(recovered)
    return delays


def _mean(values: list[float | None]) -> float | None:
    present = [v for v in values if v is not None]
    if not present:
        return None
    return sum(present) / len(present)


@dataclass(frozen=True)
class ResilienceReport:
    """The measured outcome of one chaos run.

    All rates are over the full run duration; ``degraded_goodput_bps``
    divides the bits acknowledged while the link was *not* UP by the
    time spent not-UP (0 when the link never degraded).
    """

    duration_s: float
    supervised: bool
    goodput_bps: float
    delivered_goodput_bps: float
    degraded_goodput_bps: float
    frames_sent: int
    frames_delivered: int
    frames_lost: int
    retransmissions: int
    duplicates_suppressed: int
    probes_sent: int
    transitions: int
    time_degraded_s: float
    time_down_s: float
    n_faults: int
    mean_time_to_detect_s: float | None
    mean_time_to_recover_s: float | None
    max_perceived_step: float
    digest: str

    @property
    def frames_lost_per_fault(self) -> float:
        """Abandoned payloads per injected channel-affecting fault."""
        if self.n_faults == 0:
            return float(self.frames_lost)
        return self.frames_lost / self.n_faults

    def metrics(self) -> dict[str, float]:
        """A flat numeric dict (the determinism-comparison payload)."""
        out = {
            "goodput_bps": self.goodput_bps,
            "delivered_goodput_bps": self.delivered_goodput_bps,
            "degraded_goodput_bps": self.degraded_goodput_bps,
            "frames_sent": float(self.frames_sent),
            "frames_delivered": float(self.frames_delivered),
            "frames_lost": float(self.frames_lost),
            "frames_lost_per_fault": self.frames_lost_per_fault,
            "retransmissions": float(self.retransmissions),
            "duplicates_suppressed": float(self.duplicates_suppressed),
            "probes_sent": float(self.probes_sent),
            "transitions": float(self.transitions),
            "time_degraded_s": self.time_degraded_s,
            "time_down_s": self.time_down_s,
            "max_perceived_step": self.max_perceived_step,
        }
        if self.mean_time_to_detect_s is not None:
            out["mean_time_to_detect_s"] = self.mean_time_to_detect_s
        if self.mean_time_to_recover_s is not None:
            out["mean_time_to_recover_s"] = self.mean_time_to_recover_s
        return out

    def render(self) -> str:
        """Aligned text form for the ``repro chaos`` CLI."""
        mode = "supervised" if self.supervised else "unsupervised"
        lines = [f"resilience report ({mode}, {self.duration_s:g} s, "
                 f"{self.n_faults} fault windows)"]

        def row(label: str, value: str) -> None:
            lines.append(f"  {label:<26} {value}")

        row("goodput", f"{self.goodput_bps / 1e3:.2f} kbps")
        row("goodput while degraded", f"{self.degraded_goodput_bps / 1e3:.2f} kbps")
        row("frames sent/delivered", f"{self.frames_sent}/{self.frames_delivered}")
        row("frames lost", f"{self.frames_lost} "
            f"({self.frames_lost_per_fault:.2f} per fault)")
        row("retransmissions", str(self.retransmissions))
        row("duplicates suppressed", str(self.duplicates_suppressed))
        row("probes sent", str(self.probes_sent))
        row("link transitions", str(self.transitions))
        row("time degraded / down", f"{self.time_degraded_s:.2f} s / "
            f"{self.time_down_s:.2f} s")
        if self.mean_time_to_detect_s is not None:
            row("mean time to detect", f"{self.mean_time_to_detect_s:.3f} s")
        if self.mean_time_to_recover_s is not None:
            row("mean time to recover", f"{self.mean_time_to_recover_s:.3f} s")
        row("max perceived step", f"{self.max_perceived_step:.5f}")
        row("journal digest", self.digest)
        return "\n".join(lines)


def build_report(*, duration_s: float, supervised: bool,
                 schedule: FaultSchedule,
                 transitions: list[LinkTransition],
                 goodput_bps: float, delivered_goodput_bps: float,
                 degraded_goodput_bps: float, frames_sent: int,
                 frames_delivered: int, frames_lost: int,
                 retransmissions: int, duplicates_suppressed: int,
                 probes_sent: int, time_degraded_s: float,
                 time_down_s: float, max_perceived_step: float,
                 digest: str) -> ResilienceReport:
    """Assemble a :class:`ResilienceReport` with fault attribution."""
    windows = fault_windows(schedule)
    return ResilienceReport(
        duration_s=duration_s,
        supervised=supervised,
        goodput_bps=goodput_bps,
        delivered_goodput_bps=delivered_goodput_bps,
        degraded_goodput_bps=degraded_goodput_bps,
        frames_sent=frames_sent,
        frames_delivered=frames_delivered,
        frames_lost=frames_lost,
        retransmissions=retransmissions,
        duplicates_suppressed=duplicates_suppressed,
        probes_sent=probes_sent,
        transitions=len(transitions),
        time_degraded_s=time_degraded_s,
        time_down_s=time_down_s,
        n_faults=len(windows),
        mean_time_to_detect_s=_mean(detection_delays(windows, transitions)),
        mean_time_to_recover_s=_mean(recovery_delays(windows, transitions)),
        max_perceived_step=max_perceived_step,
        digest=digest,
    )
