"""Resilience: fault injection, chaos scenarios, and recovery metrics.

The paper's prototype assumes the control plane stays up; this package
supplies the production-hardening counterpart — a composable, seedable
fault substrate (:mod:`~repro.resilience.faults`), a supervised-link
chaos harness on the discrete-event kernel
(:mod:`~repro.resilience.chaos`), and the resilience report
(:mod:`~repro.resilience.metrics`) that quantifies time-to-detect,
time-to-recover, and goodput under degradation.
"""

from .chaos import ChaosResult, ChaosScenario
from .faults import (
    AckLossBurst,
    AdcBlinding,
    AmbientStep,
    FaultPlan,
    FaultSchedule,
    NodeDowntime,
    UplinkOutage,
    install_fault_events,
    schedule_plan_events,
    shipped_schedules,
)
from .metrics import ResilienceReport, fault_windows

__all__ = [
    "AckLossBurst",
    "AdcBlinding",
    "AmbientStep",
    "ChaosResult",
    "ChaosScenario",
    "FaultPlan",
    "FaultSchedule",
    "NodeDowntime",
    "ResilienceReport",
    "UplinkOutage",
    "fault_windows",
    "install_fault_events",
    "schedule_plan_events",
    "shipped_schedules",
]
