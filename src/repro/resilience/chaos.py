"""The chaos harness: a supervised VLC link under injected faults.

One :class:`ChaosScenario` runs a single luminaire-to-receiver link on
the discrete-event kernel while a :class:`FaultSchedule` batters it:

* a lighting control process ticks the
  :class:`~repro.lighting.controller.SmartLightingController` against
  the (fault-perturbed) ambient, preserving Goal 1 and the Type-II
  flicker guarantee whatever the link state;
* a MAC process runs stop-and-wait data transfer whose per-frame
  success probability follows the analytic link model under the
  *current* fault-modified error model, with backoff, duplicate
  suppression, and a :class:`~repro.link.supervision.LinkSupervisor`
  reacting to the evidence — stepping down to conservative designs and
  small payloads when DEGRADED, suspending data and probing when DOWN;
* every fault boundary, link transition, control tick, delivery and
  loss is journaled, so the run collapses to one determinism digest.

Running with ``supervised=False`` yields the paper-faithful baseline:
fixed timeout, fixed payload, no state machine — the comparison arm
for the "supervision pays for itself" acceptance criterion.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.ampdesign import AmppmDesigner
from ..core.params import SystemConfig
from ..des.journal import EventJournal
from ..des.kernel import EventScheduler
from ..lighting.ambient import AmbientProfile, StaticAmbient
from ..lighting.controller import SmartLightingController
from ..link.supervision import BackoffPolicy, LinkState, LinkSupervisor
from ..link.wifi import WifiUplink
from ..phy.channel import VlcChannel, calibrated_channel
from ..phy.optics import LinkGeometry
from ..schemes import AmppmSchemeDesign
from ..sim.linkmodel import frame_slot_count, frame_success_probability
from .faults import FaultSchedule, install_fault_events
from .metrics import ResilienceReport, build_report


@dataclass(frozen=True)
class ChaosResult:
    """A chaos run's report plus its full determinism evidence."""

    report: ResilienceReport
    journal: EventJournal
    schedule: FaultSchedule


class _Counters:
    """Mutable per-run tallies shared between the DES processes."""

    def __init__(self) -> None:
        self.frames_sent = 0
        self.frames_delivered = 0
        self.frames_lost = 0
        self.retransmissions = 0
        self.duplicates_suppressed = 0
        self.probes_sent = 0
        self.bits_acked = 0
        self.bits_delivered = 0
        self.bits_acked_degraded = 0
        self.max_step = 0.0


@dataclass
class ChaosScenario:
    """One supervised (or baseline) link under a fault schedule.

    :meth:`run` builds all state from scratch, so the same instance run
    twice — or run under any ``SweepRunner`` worker count — produces
    bit-identical journals and reports.
    """

    config: SystemConfig = field(default_factory=SystemConfig)
    schedule: FaultSchedule = field(default_factory=FaultSchedule)
    duration_s: float = 40.0
    seed: int = 13
    supervised: bool = True
    ambient: AmbientProfile = field(default_factory=lambda: StaticAmbient(0.4))
    target_sum: float = 1.0
    tick_s: float = 1.0
    uplink: WifiUplink = field(default_factory=WifiUplink)
    #: paper's worst-case operating point (Section 3's 3.6 m reference)
    distance_m: float = 3.6
    channel: VlcChannel | None = None
    ack_timeout_s: float = 10.0e-3
    max_retries: int = 8
    #: None picks a default exponential policy when supervised: half
    #: the flat timeout as base (retry sooner on a first loss) with a
    #: gentle 1.25 factor — the losses here are random, not congestive,
    #: so aggressive escalation would only idle the channel — up to a
    #: cap of 4x the flat timeout under persistent loss
    backoff: BackoffPolicy | None = None
    degraded_payload_bytes: int = 32
    probe_interval_s: float = 10.0e-3
    degraded_after: int = 3
    #: higher than the LinkSupervisor default: under a lossy (rather
    #: than dead) ACK path, 8-failure streaks occur by chance and each
    #: needless DOWN excursion parks the link in probing
    down_after: int = 16
    #: higher than the LinkSupervisor default on purpose: premature
    #: DEGRADED->UP excursions retry large frames against a channel
    #: that is still faulted, and each excursion costs ~100 ms
    recover_after: int = 6

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if self.tick_s <= 0:
            raise ValueError("tick_s must be positive")
        if self.ack_timeout_s <= 0:
            raise ValueError("ack_timeout_s must be positive")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.degraded_payload_bytes < 1:
            raise ValueError("degraded_payload_bytes must be positive")
        if self.probe_interval_s <= 0:
            raise ValueError("probe_interval_s must be positive")
        if self.distance_m <= 0:
            raise ValueError("distance_m must be positive")

    def run(self) -> ChaosResult:
        """Simulate the scenario and assemble its resilience report."""
        journal = EventJournal()
        scheduler = EventScheduler()
        rng = np.random.default_rng(self.seed)
        channel = (self.channel if self.channel is not None
                   else calibrated_channel(self.config))
        geometry = LinkGeometry.on_axis(self.distance_m)
        designer = AmppmDesigner(self.config)
        controller = SmartLightingController(
            target_sum=self.target_sum, config=self.config,
            designer=designer)
        supervisor = (LinkSupervisor(degraded_after=self.degraded_after,
                                     down_after=self.down_after,
                                     recover_after=self.recover_after,
                                     journal=journal)
                      if self.supervised else None)
        backoff = self.backoff
        if backoff is None and self.supervised:
            backoff = BackoffPolicy(base_timeout_s=self.ack_timeout_s / 2,
                                    factor=1.25,
                                    cap_s=4 * self.ack_timeout_s,
                                    seed=self.seed)
        counters = _Counters()
        install_fault_events(self.schedule, scheduler, journal)

        # -- per-time channel state, memoized on (ambient, scale) -------
        error_cache: dict = {}
        frame_cache: dict = {}
        design_cache: dict = {}

        def ambient_now(t: float) -> float:
            return self.schedule.ambient_at(t, self.ambient.intensity(t))

        def errors_now(t: float):
            key = (round(ambient_now(t), 12),
                   self.schedule.error_scale_at(t))
            if key not in error_cache:
                base = channel.slot_error_model(geometry, key[0])
                error_cache[key] = (base if key[1] == 1.0
                                    else base.scaled(key[1]))
            return error_cache[key]

        def design_for(led: float, conservative: bool):
            key = (round(led, 12), conservative)
            if key not in design_cache:
                raw = (controller.conservative_design(led) if conservative
                       else designer.design_clamped(led))
                design_cache[key] = (AmppmSchemeDesign(raw, self.config)
                                     if raw is not None else None)
            return design_cache[key]

        def frame_params(design, design_key, n_payload, errors):
            key = (design_key, n_payload, errors)
            if key not in frame_cache:
                t_frame = (frame_slot_count(design, self.config, n_payload)
                           * self.config.t_slot)
                p_ok = frame_success_probability(design, errors,
                                                 self.config, n_payload)
                frame_cache[key] = (t_frame, p_ok)
            return frame_cache[key]

        def try_ack(t: float):
            """ACK arrival time, or None (Wi-Fi loss or fault burst)."""
            burst = self.schedule.ack_loss_at(t)
            if burst > 0.0 and rng.random() < burst:
                return None
            return self.uplink.deliver(t, rng)

        # -- processes ---------------------------------------------------

        def control_loop():
            while True:
                now = scheduler.now
                amb = ambient_now(now)
                state = (supervisor.state if supervisor is not None
                         else LinkState.UP)
                sample = controller.tick(now, amb, link_state=state)
                plan = controller.last_plan
                step = plan.max_perceived_step if plan is not None else 0.0
                counters.max_step = max(counters.max_step, step)
                journal.record(now, "control", "controller",
                               ambient=amb, led=sample.led,
                               state=state.value, step=step)
                yield self.tick_s

        def mac_loop():
            pending_bytes: int | None = None
            receiver_has_copy = False
            attempt = 0
            while True:
                now = scheduler.now
                state = (supervisor.state if supervisor is not None
                         else LinkState.UP)
                if supervisor is not None and state is LinkState.DOWN:
                    state = supervisor.start_probing(now)
                if state is LinkState.PROBING:
                    # Header-only probe on the most conservative design.
                    led = controller.led_intensity
                    design = design_for(led, conservative=True)
                    if design is None:
                        yield self.tick_s
                        continue
                    counters.probes_sent += 1
                    errors = errors_now(now)
                    t_probe, p_ok = frame_params(design, (round(led, 12),
                                                          True), 0, errors)
                    yield t_probe
                    sent_at = scheduler.now
                    decoded = rng.random() < p_ok
                    ack_at = try_ack(sent_at) if decoded else None
                    if ack_at is not None:
                        journal.record(sent_at, "probe-ok", "mac")
                        supervisor.on_probe_success(sent_at)
                        yield max(ack_at - sent_at, 0.0)
                    else:
                        journal.record(sent_at, "probe-lost", "mac")
                        supervisor.on_probe_failure(
                            sent_at + self.ack_timeout_s)
                        yield self.ack_timeout_s + self.probe_interval_s
                    continue

                # -- data frame (UP or DEGRADED) -----------------------
                if pending_bytes is None:
                    pending_bytes = (self.degraded_payload_bytes
                                     if state is LinkState.DEGRADED
                                     else self.config.payload_bytes)
                    receiver_has_copy = False
                    attempt = 0
                elif (state is LinkState.DEGRADED
                      and pending_bytes > self.degraded_payload_bytes):
                    # Re-segment: a stalled large frame is re-framed at
                    # the degraded size instead of being retried (with
                    # escalating backoff) against a channel that just
                    # proved it cannot carry it.
                    pending_bytes = self.degraded_payload_bytes
                    receiver_has_copy = False
                    attempt = 0
                led = controller.led_intensity
                conservative = state is LinkState.DEGRADED
                design = design_for(led, conservative)
                if design is None:
                    yield self.tick_s
                    continue
                errors = errors_now(now)
                t_frame, p_ok = frame_params(
                    design, (round(led, 12), conservative),
                    pending_bytes, errors)
                counters.frames_sent += 1
                if attempt > 0:
                    counters.retransmissions += 1
                yield t_frame
                sent_at = scheduler.now
                decoded = rng.random() < p_ok
                ack_at = None
                if decoded:
                    if receiver_has_copy:
                        counters.duplicates_suppressed += 1
                    else:
                        receiver_has_copy = True
                        counters.bits_delivered += 8 * pending_bytes
                    ack_at = try_ack(sent_at)
                if ack_at is not None:
                    counters.frames_delivered += 1
                    counters.bits_acked += 8 * pending_bytes
                    if state is not LinkState.UP:
                        counters.bits_acked_degraded += 8 * pending_bytes
                    journal.record(sent_at, "frame-acked", "mac",
                                   bits=8 * pending_bytes,
                                   state=state.value)
                    if supervisor is not None:
                        supervisor.on_success(sent_at)
                    pending_bytes = None
                    yield max(ack_at - sent_at, 0.0)
                else:
                    reason = "ack-loss" if decoded else "crc"
                    if supervisor is not None:
                        supervisor.on_failure(sent_at, reason=reason)
                    attempt += 1
                    if attempt > self.max_retries:
                        counters.frames_lost += 1
                        journal.record(sent_at, "frame-abandoned", "mac",
                                       reason=reason)
                        pending_bytes = None
                    timeout = (backoff.timeout_for(attempt - 1)
                               if backoff is not None and attempt > 0
                               else self.ack_timeout_s)
                    yield timeout

        scheduler.spawn(control_loop(), name="control", priority=0)
        scheduler.spawn(mac_loop(), name="mac", priority=1)
        scheduler.run(until_s=self.duration_s)

        if supervisor is not None:
            transitions = supervisor.transitions
            time_degraded = supervisor.time_in_state(
                LinkState.DEGRADED, self.duration_s)
            time_down = (supervisor.time_in_state(LinkState.DOWN,
                                                  self.duration_s)
                         + supervisor.time_in_state(LinkState.PROBING,
                                                    self.duration_s))
        else:
            transitions = []
            time_degraded = 0.0
            time_down = 0.0
        not_up = time_degraded + time_down
        report = build_report(
            duration_s=self.duration_s,
            supervised=self.supervised,
            schedule=self.schedule,
            transitions=transitions,
            goodput_bps=counters.bits_acked / self.duration_s,
            delivered_goodput_bps=counters.bits_delivered / self.duration_s,
            degraded_goodput_bps=(counters.bits_acked_degraded / not_up
                                  if not_up > 0 else 0.0),
            frames_sent=counters.frames_sent,
            frames_delivered=counters.frames_delivered,
            frames_lost=counters.frames_lost,
            retransmissions=counters.retransmissions,
            duplicates_suppressed=counters.duplicates_suppressed,
            probes_sent=counters.probes_sent,
            time_degraded_s=time_degraded,
            time_down_s=time_down,
            max_perceived_step=counters.max_step,
            digest=journal.digest(),
        )
        return ChaosResult(report=report, journal=journal,
                           schedule=self.schedule)
