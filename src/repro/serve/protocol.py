"""The control-plane wire protocol: versioned JSON requests/responses.

Every message is one JSON object.  Requests carry a protocol version
``v``, an operation ``op`` and an optional client correlation ``id``
that is echoed back verbatim; responses carry ``ok`` plus either a
``result`` payload or a structured ``error`` (stable machine-readable
``code``, human-readable ``message``).  The same objects travel over
both transports: as an HTTP body on ``POST /v1/adapt`` and friends, or
as one line each on the persistent NDJSON socket protocol.

Operations:

* ``adapt`` — dimming level + ambient + geometry → the AMPPM
  super-symbol design and its expected performance at that placement;
* ``link`` — the :class:`~repro.link.LinkSupervisor` snapshot, with an
  optional evidence ``report`` to drive the state machine;
* ``health`` — liveness and load;
* ``metrics`` — the Prometheus exposition payload.

:func:`encode` is canonical (sorted keys, minimal separators), so two
identical responses are byte-identical — the parity contract the serve
tests pin against the direct :class:`~repro.core.AmppmDesigner` path.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Mapping

from ..core.ampdesign import AmppmDesign
from ..core.errormodel import SlotErrorModel
from ..core.params import SystemConfig

PROTOCOL_VERSION = 1

#: The four operations the control plane serves.
OPS = ("adapt", "link", "health", "metrics")

# Stable error codes (the machine-readable half of every error reply).
E_BAD_REQUEST = "bad-request"
E_UNKNOWN_OP = "unknown-op"
E_BAD_VERSION = "bad-version"
E_OVERLOADED = "overloaded"
E_DRAINING = "draining"
E_INTERNAL = "internal"

#: Error code → HTTP status the HTTP transport maps it to.
HTTP_STATUS = {
    E_BAD_REQUEST: 400,
    E_UNKNOWN_OP: 400,
    E_BAD_VERSION: 400,
    E_OVERLOADED: 503,
    E_DRAINING: 503,
    E_INTERNAL: 500,
}

#: Evidence kinds a ``link`` report may carry.
LINK_OUTCOMES = ("success", "failure", "probe", "probe-success",
                 "probe-failure")


class ProtocolError(ValueError):
    """A request that fails validation; carries a stable error code."""

    def __init__(self, code: str, message: str):
        super().__init__(message)
        self.code = code
        self.message = message


@dataclass(frozen=True)
class AdaptRequest:
    """One validated ``adapt`` request.

    ``dimming`` is the required dimming level; ``ambient`` the ambient
    light level relative to the paper's reference (1.0 = the measured
    worst case); ``distance_m``/``angle_deg`` place the receiver on a
    constant-distance arc, as in Figs. 16-17.
    """

    dimming: float
    ambient: float = 1.0
    distance_m: float = 3.0
    angle_deg: float = 0.0
    id: str | None = None

    op = "adapt"


@dataclass(frozen=True)
class LinkRequest:
    """One validated ``link`` request.

    ``outcome``/``reason`` optionally feed delivery evidence into the
    supervisor before the snapshot is taken (the Wi-Fi feedback plane
    reporting in); both empty means "just read the state".
    """

    outcome: str = ""
    reason: str = "ack-loss"
    id: str | None = None

    op = "link"


@dataclass(frozen=True)
class SimpleRequest:
    """A validated ``health`` or ``metrics`` request (no parameters)."""

    op: str
    id: str | None = None


_ADAPT_FIELDS = {"v", "op", "id", "dimming", "ambient", "distance_m",
                 "angle_deg"}
_LINK_FIELDS = {"v", "op", "id", "report"}
_SIMPLE_FIELDS = {"v", "op", "id"}


def _require_number(obj: Mapping[str, Any], field: str, default: float,
                    *, lo: float, hi: float,
                    lo_open: bool = False, hi_open: bool = False) -> float:
    value = obj.get(field, default)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ProtocolError(E_BAD_REQUEST, f"{field} must be a number")
    value = float(value)
    below = value <= lo if lo_open else value < lo
    above = value >= hi if hi_open else value > hi
    if below or above:
        span = f"{'(' if lo_open else '['}{lo:g}, {hi:g}{')' if hi_open else ']'}"
        raise ProtocolError(E_BAD_REQUEST,
                            f"{field} must lie in {span}, got {value:g}")
    return value


def _request_id(obj: Mapping[str, Any]) -> str | None:
    raw = obj.get("id")
    if raw is None:
        return None
    if isinstance(raw, bool) or not isinstance(raw, (str, int)):
        raise ProtocolError(E_BAD_REQUEST, "id must be a string or integer")
    return str(raw)


def parse_request(obj: Any) -> "AdaptRequest | LinkRequest | SimpleRequest":
    """Validate a decoded JSON object into a typed request.

    Strict: the version must match, the operation must be known, every
    field must be of the declared type and range, and unknown fields
    are rejected (a typoed knob must not silently do nothing).  Raises
    :class:`ProtocolError` with a stable ``code`` on any violation.
    """
    if not isinstance(obj, Mapping):
        raise ProtocolError(E_BAD_REQUEST, "request must be a JSON object")
    version = obj.get("v", PROTOCOL_VERSION)
    if version != PROTOCOL_VERSION:
        raise ProtocolError(E_BAD_VERSION,
                            f"unsupported protocol version {version!r} "
                            f"(this server speaks v{PROTOCOL_VERSION})")
    op = obj.get("op")
    if op not in OPS:
        raise ProtocolError(E_UNKNOWN_OP,
                            f"unknown op {op!r}; known: {list(OPS)}")
    request_id = _request_id(obj)
    if op == "adapt":
        unknown = set(obj) - _ADAPT_FIELDS
        if unknown:
            raise ProtocolError(E_BAD_REQUEST,
                                f"unknown fields for adapt: {sorted(unknown)}")
        if "dimming" not in obj:
            raise ProtocolError(E_BAD_REQUEST,
                                "missing required field 'dimming'")
        return AdaptRequest(
            dimming=_require_number(obj, "dimming", 0.5, lo=0.0, hi=1.0,
                                    lo_open=True, hi_open=True),
            ambient=_require_number(obj, "ambient", 1.0, lo=0.0, hi=1e6),
            distance_m=_require_number(obj, "distance_m", 3.0,
                                       lo=0.0, hi=1e3, lo_open=True),
            angle_deg=_require_number(obj, "angle_deg", 0.0,
                                      lo=0.0, hi=90.0, hi_open=True),
            id=request_id,
        )
    if op == "link":
        unknown = set(obj) - _LINK_FIELDS
        if unknown:
            raise ProtocolError(E_BAD_REQUEST,
                                f"unknown fields for link: {sorted(unknown)}")
        report = obj.get("report")
        if report is None:
            return LinkRequest(id=request_id)
        if not isinstance(report, Mapping):
            raise ProtocolError(E_BAD_REQUEST,
                                "link report must be a JSON object")
        unknown = set(report) - {"outcome", "reason"}
        if unknown:
            raise ProtocolError(
                E_BAD_REQUEST, f"unknown report fields: {sorted(unknown)}")
        outcome = report.get("outcome")
        if outcome not in LINK_OUTCOMES:
            raise ProtocolError(
                E_BAD_REQUEST,
                f"report outcome must be one of {list(LINK_OUTCOMES)}, "
                f"got {outcome!r}")
        reason = report.get("reason", "ack-loss")
        if not isinstance(reason, str) or not reason:
            raise ProtocolError(E_BAD_REQUEST,
                                "report reason must be a non-empty string")
        return LinkRequest(outcome=outcome, reason=reason, id=request_id)
    unknown = set(obj) - _SIMPLE_FIELDS
    if unknown:
        raise ProtocolError(E_BAD_REQUEST,
                            f"unknown fields for {op}: {sorted(unknown)}")
    return SimpleRequest(op=op, id=request_id)


def parse_line(line: bytes) -> "AdaptRequest | LinkRequest | SimpleRequest":
    """Parse one NDJSON request line (bytes, trailing newline allowed)."""
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(E_BAD_REQUEST, f"not JSON: {exc}") from exc
    except UnicodeDecodeError as exc:
        # json.loads(bytes) decodes before parsing; invalid UTF-8 is a
        # client framing error, not a server fault.
        raise ProtocolError(E_BAD_REQUEST,
                            f"not UTF-8: {exc.reason} at byte "
                            f"{exc.start}") from exc
    return parse_request(obj)


# -- responses ---------------------------------------------------------


def ok_response(op: str, result: Mapping[str, Any],
                request_id: str | None = None) -> dict:
    """A successful reply envelope."""
    reply: dict[str, Any] = {"v": PROTOCOL_VERSION, "op": op, "ok": True,
                             "result": dict(result)}
    if request_id is not None:
        reply["id"] = request_id
    return reply


def error_response(code: str, message: str, *, op: str | None = None,
                   request_id: str | None = None) -> dict:
    """A structured error reply (stable ``code``, readable ``message``)."""
    reply: dict[str, Any] = {
        "v": PROTOCOL_VERSION, "ok": False,
        "error": {"code": code, "message": message},
    }
    if op is not None:
        reply["op"] = op
    if request_id is not None:
        reply["id"] = request_id
    return reply


def encode(obj: Mapping[str, Any]) -> bytes:
    """Canonical NDJSON encoding: sorted keys, minimal separators.

    Canonicality is what makes the parity contract testable: the same
    design serialized twice is the same bytes.
    """
    return (json.dumps(obj, sort_keys=True,
                       separators=(",", ":")) + "\n").encode()


def adapt_result(request: AdaptRequest, design: AmppmDesign,
                 errors: SlotErrorModel, config: SystemConfig) -> dict:
    """The ``adapt`` result payload for a finished design.

    Pure in ``(request, design, errors, config)`` — the server and the
    parity tests build responses through this one function, so a served
    design is byte-identical to the direct designer answer.
    """
    ss = design.super_symbol
    return {
        "dimming": request.dimming,
        "achieved_dimming": design.achieved_dimming,
        "dimming_error": design.dimming_error,
        "super_symbol": {
            "n1": ss.first.n_slots, "k1": ss.first.n_on, "m1": ss.m1,
            "n2": ss.second.n_slots, "k2": ss.second.n_on, "m2": ss.m2,
        },
        "n_slots": ss.n_slots,
        "bits": ss.bits,
        "data_rate_bps": design.data_rate(config, errors),
        "slot_error": {"p_off": errors.p_off_error,
                       "p_on": errors.p_on_error},
    }
