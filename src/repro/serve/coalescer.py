"""Deadline-driven micro-batching of concurrent adapt requests.

The designer memoises per quantized dimming bucket
(:meth:`~repro.core.AmppmDesigner.memo_key`), so N concurrent requests
that quantize to the same bucket need exactly one designer invocation —
the rest is fan-out.  The coalescer exploits that: the first request of
a window arms a deadline; every request arriving before it joins the
batch; at the deadline the batch executes one design call per *unique*
bucket and every waiter in a bucket receives the *same* result object.

The algebra the property tests pin:

* one designer call per unique bucket per flush, no matter how many
  requests fold into it;
* every waiter of a bucket gets an identical (``is``-identical, hence
  byte-identical once serialized) result;
* results never cross buckets.

``design_fn``/``bucket_fn`` are injected, so the engine is swappable
for a counting fake in tests; :class:`AdaptCoalescer` itself never
inspects the results it routes.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Hashable

from ..obs.metrics import MetricsRegistry, NullRegistry

#: Latency-ish histogram bounds for batch sizes (requests per flush).
_BATCH_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0)


class AdaptCoalescer:
    """Folds concurrent requests into one designer call per memo bucket.

    ``window_s`` is the coalescing deadline: how long the first request
    of a batch may wait for company (0 disables batching — every
    request becomes its own designer call, the one-call-per-request
    baseline the serve bench races against).  ``max_batch`` bounds how
    many requests a window may hold before it flushes early.
    """

    def __init__(self, design_fn: Callable[[float], Any],
                 bucket_fn: Callable[[float], Hashable], *,
                 window_s: float = 0.002, max_batch: int = 512,
                 registry: MetricsRegistry | NullRegistry | None = None):
        if window_s < 0:
            raise ValueError("window_s cannot be negative")
        if max_batch < 1:
            raise ValueError("max_batch must be positive")
        self._design_fn = design_fn
        self._bucket_fn = bucket_fn
        self.window_s = window_s
        self.max_batch = max_batch
        self._registry = registry if registry is not None else NullRegistry()
        self._waiters: dict[Hashable, list[asyncio.Future]] = {}
        self._representative: dict[Hashable, float] = {}
        self._pending = 0
        self._deadline: asyncio.TimerHandle | None = None
        # Lifetime stats (also mirrored into the registry).
        self.requests = 0
        self.designer_calls = 0
        self.flushes = 0

    @property
    def pending(self) -> int:
        """Requests currently parked waiting for the deadline."""
        return self._pending

    @property
    def coalesce_ratio(self) -> float:
        """Requests served per designer call (1.0 = no coalescing yet)."""
        if self.designer_calls == 0:
            return 1.0
        return self.requests / self.designer_calls

    def _design(self, dimming: float) -> Any:
        self.designer_calls += 1
        self._registry.counter(
            "repro_serve_designer_calls_total",
            help="designer invocations after coalescing").inc()
        return self._design_fn(dimming)

    async def submit(self, dimming: float) -> Any:
        """Submit one request; resolves with its bucket's design.

        Exceptions from the designer propagate to every waiter of the
        failing bucket (and only that bucket).
        """
        self.requests += 1
        self._registry.counter("repro_serve_adapt_requests_total",
                               help="adapt requests submitted").inc()
        if self.window_s == 0.0:
            return self._design(dimming)
        loop = asyncio.get_running_loop()
        key = self._bucket_fn(dimming)
        future: asyncio.Future = loop.create_future()
        self._waiters.setdefault(key, []).append(future)
        self._representative.setdefault(key, dimming)
        self._pending += 1
        self._registry.gauge("repro_serve_queue_depth",
                             help="requests parked in the coalescing "
                                  "window").set(self._pending)
        if self._pending >= self.max_batch:
            self.flush()
        elif self._deadline is None:
            self._deadline = loop.call_later(self.window_s, self.flush)
        return await future

    def flush(self) -> None:
        """Execute the parked batch now (deadline or size trigger)."""
        if self._deadline is not None:
            self._deadline.cancel()
            self._deadline = None
        if not self._waiters:
            return
        waiters, self._waiters = self._waiters, {}
        reps, self._representative = self._representative, {}
        batch_size = self._pending
        self._pending = 0
        self.flushes += 1
        self._registry.gauge("repro_serve_queue_depth",
                             help="requests parked in the coalescing "
                                  "window").set(0)
        self._registry.histogram(
            "repro_serve_coalesce_batch",
            help="requests folded per coalescer flush",
            buckets=_BATCH_BUCKETS).observe(batch_size)
        for key, futures in waiters.items():
            try:
                result = self._design(reps[key])
            except Exception as exc:  # noqa: BLE001 — routed to waiters
                for future in futures:
                    if not future.done():
                        future.set_exception(exc)
                continue
            for future in futures:
                if not future.done():
                    future.set_result(result)

    async def drain(self) -> None:
        """Flush everything parked and give waiters a chance to run."""
        self.flush()
        await asyncio.sleep(0)
